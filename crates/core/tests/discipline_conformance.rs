//! Discipline conformance suite: every queue discipline, run through
//! the same live-server harness, must uphold the dispatch contract —
//! every request executes exactly once (zero loss, zero duplicates,
//! server-side op counts matching what the client sent), spreading
//! disciplines starve no core, and the size-aware discipline places a
//! recorded trace bit-for-bit where the pre-refactor server (the plan's
//! `classify`) would have.

use minos_core::client::Client;
use minos_core::dispatch::{DisciplineKind, PlaceCtx, Placement};
use minos_core::plan::Destination;
use minos_core::server::{MinosServer, ServerConfig};
use minos_net::VirtualTransport;
use minos_workload::{AccessGenerator, Dataset, Operation, Rng};
use std::time::Duration;

const CORES: usize = 4;
const OPS: u64 = 400;

fn server_for(kind: DisciplineKind, steal: bool) -> MinosServer<VirtualTransport> {
    let mut config = ServerConfig::for_test(CORES, 2_000);
    config.minos.discipline = kind;
    config.minos.steal = steal;
    MinosServer::start(config)
}

/// Preloads a scaled dataset, then runs a mixed GET/PUT workload with
/// enough large keys to exercise fragmentation and handoff; returns the
/// total number of requests sent (preload + measured).
fn run_mixed_workload(server: &MinosServer<VirtualTransport>, seed: u64) -> u64 {
    let mut client = Client::new(server, 1, seed);
    let dataset = Dataset::new(500, 5, 0.4, 20_000, seed);
    let gen = AccessGenerator::new(dataset.clone(), 0.02, 0.5, 0.99);
    let mut rng = Rng::new(seed);

    let mut sent = 0u64;
    for key in 0..dataset.num_keys() {
        let value = vec![(key % 256) as u8; dataset.size_of(key) as usize];
        client.send_put(key, &value, dataset.is_large_key(key));
        sent += 1;
        if key % 32 == 31 {
            assert!(client.drain(Duration::from_secs(60)), "preload");
        }
    }
    assert!(client.drain(Duration::from_secs(60)), "preload drain");

    for i in 0..OPS {
        let spec = gen.next_op(&mut rng);
        match spec.op {
            Operation::Get => client.send_get(spec.key, spec.is_large),
            Operation::Put => {
                let value = vec![(spec.key % 256) as u8; spec.item_size as usize];
                client.send_put(spec.key, &value, spec.is_large);
            }
        }
        sent += 1;
        if i % 32 == 31 {
            assert!(client.drain(Duration::from_secs(60)), "batch {i}");
        }
    }
    assert!(client.drain(Duration::from_secs(60)), "final drain");
    let t = client.totals();
    assert_eq!(t.outstanding(), 0, "zero loss required");
    assert_eq!(t.completed, sent, "every request answered exactly once");
    assert_eq!(t.errors, 0, "no error replies");
    sent
}

#[test]
fn every_discipline_executes_each_request_exactly_once() {
    for kind in DisciplineKind::ALL {
        let mut server = server_for(kind, false);
        let sent = run_mixed_workload(&server, 0xD15C ^ kind as u64);
        // Server-side cross-check: the per-core op counters sum to the
        // client's request count — nothing executed twice, nothing
        // vanished into a queue.
        let ops: u64 = server.core_stats().iter().map(|c| c.ops).sum();
        assert_eq!(ops, sent, "{}: per-core ops mismatch", kind.name());
        assert_eq!(server.discipline(), kind);
        server.shutdown();
    }
}

#[test]
fn work_stealing_preserves_exactly_once() {
    // The opt-in ZygOS-style steal path must not duplicate or drop:
    // stolen requests execute on the thief, fragments stay pinned.
    let mut server = server_for(DisciplineKind::SizeAware, true);
    let sent = run_mixed_workload(&server, 0x0005_7EA1);
    let ops: u64 = server.core_stats().iter().map(|c| c.ops).sum();
    assert_eq!(ops, sent);
    server.shutdown();
}

#[test]
fn spreading_disciplines_starve_no_core() {
    // Disciplines that spread by construction must give every core
    // work. (cFCFS and JSQ spread by live load, which a near-idle
    // functional test cannot pin down deterministically; their
    // exactly-once accounting is covered above.)
    for kind in [
        DisciplineKind::Dfcfs,
        DisciplineKind::RoundRobin,
        DisciplineKind::Random,
    ] {
        let mut server = server_for(kind, false);
        run_mixed_workload(&server, 0x5742 ^ kind as u64);
        for (core, stats) in server.core_stats().iter().enumerate() {
            assert!(
                stats.ops > 0,
                "{}: core {core} starved (0 ops)",
                kind.name()
            );
        }
        server.shutdown();
    }
}

#[test]
fn size_aware_matches_pre_refactor_placement_on_recorded_trace() {
    // The pre-refactor server placed a decoded request by
    // `plan.classify(size)`: local on the RX core for Small, the
    // matching large core's software queue otherwise. Replay a recorded
    // (key, size) trace from the real workload generator against a live
    // server's published plan and hold the extracted SizeAware
    // discipline to that bit for bit.
    let server = server_for(DisciplineKind::SizeAware, false);
    run_mixed_workload(&server, 0x7ACE);
    let plan = server.plan();
    let discipline = DisciplineKind::SizeAware.build();

    let dataset = Dataset::new(500, 5, 0.4, 20_000, 0x7ACE);
    let gen = AccessGenerator::new(dataset, 0.02, 0.5, 0.99);
    let mut rng = Rng::new(0x7ACE);
    let depths = vec![0usize; CORES];
    for i in 0..2_000u64 {
        let spec = gen.next_op(&mut rng);
        let rx_core = (i % CORES as u64) as usize;
        let placement = discipline.place(&PlaceCtx {
            rx_core,
            n_cores: CORES,
            key: spec.key,
            size: Some(spec.item_size),
            plan: &plan,
            depths: &depths,
        });
        match plan.classify(spec.item_size) {
            Destination::Local => {
                assert_eq!(placement, Placement::Local, "op {i}: small runs locally");
            }
            Destination::Handoff(target) => {
                assert_eq!(
                    placement,
                    Placement::Core(target),
                    "op {i}: large handed to the plan's core"
                );
            }
        }
    }
    let mut server = server;
    server.shutdown();
}
