//! Property tests on the pure policy layer: for *any* workload
//! histogram and cost share, the published plan must be total, stable
//! and well-formed — these invariants are what both the threaded server
//! and the simulator lean on every polling round.

use minos_core::allocation::allocate;
use minos_core::config::ThresholdMode;
use minos_core::cost::CostFn;
use minos_core::plan::{Destination, ShardingPlan};
use minos_core::ranges::LargeRanges;
use minos_core::threshold::ThresholdController;
use minos_stats::SizeHistogram;
use proptest::prelude::*;

fn arb_histogram() -> impl Strategy<Value = SizeHistogram> {
    // Arbitrary mixtures of size classes with arbitrary counts.
    prop::collection::vec((1u64..1_000_000, 1u64..10_000), 1..20).prop_map(|entries| {
        let mut h = SizeHistogram::new();
        for (size, count) in entries {
            for _ in 0..count.min(200) {
                h.record(size);
            }
        }
        h
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Allocation: always n_small + n_large == n, at least one small
    /// core, at least one handoff target, monotone in the share.
    #[test]
    fn allocation_invariants(n in 1usize..64, share in 0.0f64..=1.0) {
        let a = allocate(n, share);
        prop_assert_eq!(a.n_small + a.n_large, n);
        prop_assert!(a.n_small >= 1);
        prop_assert!(a.n_handoff() >= 1);
        prop_assert_eq!(a.standby, a.n_large == 0);
        // Handoff cores are a suffix of the core range.
        let h = a.handoff_cores();
        prop_assert_eq!(h.end, n);
        // Monotonicity in share.
        let more = allocate(n, (share + 0.1).min(1.0));
        prop_assert!(more.n_small >= a.n_small);
    }

    /// Ranges: for any histogram, threshold and core count, every size
    /// maps to exactly one range, mapping is monotone in size, and the
    /// last bound is unbounded.
    #[test]
    fn range_invariants(
        h in arb_histogram(),
        threshold in 1u64..100_000,
        n_large in 1usize..8,
    ) {
        let buckets: Vec<(u64, f64)> =
            h.inner().iter_buckets().map(|(ub, c)| (ub, c as f64)).collect();
        let r = LargeRanges::build(buckets, threshold, n_large, CostFn::Packets);
        prop_assert_eq!(r.len(), n_large);
        prop_assert_eq!(*r.bounds().last().unwrap(), u64::MAX);
        prop_assert!(r.bounds().windows(2).all(|w| w[0] <= w[1]));
        let mut prev = 0usize;
        for size in (threshold + 1..threshold + 2_000_000).step_by(50_000) {
            let c = r.core_for_size(size);
            prop_assert!(c < n_large);
            prop_assert!(c >= prev, "monotone in size");
            prev = c;
        }
    }

    /// The full pipeline: histogram -> controller -> plan. The plan
    /// must classify every size somewhere valid, route small sizes
    /// locally, and agree with its own threshold decision.
    #[test]
    fn plan_classification_total_and_consistent(
        h in arb_histogram(),
        n_cores in 1usize..16,
    ) {
        let mut c = ThresholdController::new(ThresholdMode::Dynamic, 99.0, 0.9, CostFn::Packets);
        let decision = c.epoch_update(&h);
        prop_assert!((0.0..=1.0).contains(&decision.small_cost_share));
        let plan = ShardingPlan::from_decision(
            1,
            n_cores,
            decision,
            c.smoothed_buckets(),
            CostFn::Packets,
        );
        for size in [0u64, 1, 13, 100, 1_400, 1_456, 2_000, 50_000, 1_000_000, u64::MAX / 2] {
            match plan.classify(size) {
                Destination::Local => prop_assert!(plan.decision.is_small(size)),
                Destination::Handoff(core) => {
                    prop_assert!(!plan.decision.is_small(size));
                    prop_assert!(plan.allocation.is_handoff_core(core), "core {core}");
                }
            }
        }
    }

    /// The controller never produces a threshold of zero on non-empty
    /// input, and repeated identical epochs converge (threshold stops
    /// moving).
    #[test]
    fn controller_converges_on_steady_input(h in arb_histogram()) {
        let mut c = ThresholdController::new(ThresholdMode::Dynamic, 99.0, 0.9, CostFn::Packets);
        let mut last = 0u64;
        for _ in 0..12 {
            last = c.epoch_update(&h).threshold;
        }
        prop_assert!(last > 0);
        let again = c.epoch_update(&h).threshold;
        prop_assert_eq!(again, last, "steady input -> steady threshold");
    }
}
