//! The coordinated-omission guarantee: latency is measured from each
//! request's *scheduled* arrival on the open-loop injection schedule,
//! so a sender that fell behind and drains its backlog in a catch-up
//! burst cannot under-report the queueing delay its lateness caused.
//! Service latency (from first transmission) is kept separately; the
//! schedule-based histogram must dominate it percentile for percentile.

use minos_core::client::Client;
use minos_core::server::{MinosServer, ServerConfig};
use minos_workload::{OpSpec, Operation};
use std::time::Duration;

fn get_spec(key: u64) -> OpSpec {
    OpSpec {
        key,
        op: Operation::Get,
        item_size: 1,
        is_large: false,
        ttl_ms: 0,
    }
}

#[test]
fn backlogged_open_loop_reports_scheduling_lag() {
    let mut server = MinosServer::start(ServerConfig::for_test(2, 10_000));
    let mut client = Client::new(&server, 1, 42);

    // Preload the keys the measured GETs will hit.
    for key in 0..16 {
        client.send_put(key, b"v", false);
    }
    assert!(client.drain(Duration::from_secs(10)), "preload replies");
    let preloads = client.totals().completed;

    // A deliberately backlogged open loop: GETs whose scheduled
    // arrivals stretch up to OPS * GAP_NS ≈ 128 ms into the past, all
    // transmitted right now in one catch-up burst — exactly the shape a
    // load generator behind its schedule produces.
    const OPS: u64 = 256;
    const GAP_NS: u64 = 500_000;
    // Let the client clock run past the backlog span so the past
    // deadlines below don't saturate at the clock's origin.
    while client.now_ns() < OPS * GAP_NS + 1_000_000 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let now = client.now_ns();
    let batch: Vec<(OpSpec, u64)> = (0..OPS)
        .map(|i| (get_spec(i % 16), now.saturating_sub((OPS - i) * GAP_NS)))
        .collect();
    client.send_batch_at(&batch);
    assert!(client.drain(Duration::from_secs(10)), "all GETs complete");
    assert_eq!(client.totals().completed, preloads + OPS);

    let sched = client.latency().quantiles().expect("completions");
    let svc = client.service_latency().quantiles().expect("completions");
    assert_eq!(sched.count, svc.count, "same samples in both histograms");

    // Every sample's schedule-based latency is its service latency plus
    // its (non-negative) scheduling lag, so the schedule-based
    // histogram dominates at every percentile.
    assert!(
        sched.p50_us >= svc.p50_us,
        "{} < {}",
        sched.p50_us,
        svc.p50_us
    );
    assert!(
        sched.p99_us >= svc.p99_us,
        "{} < {}",
        sched.p99_us,
        svc.p99_us
    );
    assert!(
        sched.max_us >= svc.max_us,
        "{} < {}",
        sched.max_us,
        svc.max_us
    );

    // The oldest deadline was ~128 ms late; send-based measurement used
    // to hide that entirely. (0.9: histogram resolution tolerance.)
    let oldest_lag_us = (OPS * GAP_NS) as f64 / 1e3;
    assert!(
        sched.max_us >= 0.9 * oldest_lag_us,
        "schedule-based max {:.0}us must surface the {:.0}us backlog",
        sched.max_us,
        oldest_lag_us
    );
    assert!(
        svc.p50_us < 0.5 * oldest_lag_us,
        "service latency (p50 {:.0}us) must not absorb the backlog",
        svc.p50_us
    );
    server.shutdown();
}

#[test]
fn on_schedule_sender_collapses_the_two_clocks() {
    // Unscheduled sends stamp the scheduled arrival at the send
    // instant, so latency and service latency are the same samples.
    let mut server = MinosServer::start(ServerConfig::for_test(2, 10_000));
    let mut client = Client::new(&server, 1, 7);

    client.send_put(1, b"value", false);
    assert!(client.drain(Duration::from_secs(10)));
    for _ in 0..64 {
        client.send(&get_spec(1));
    }
    assert!(client.drain(Duration::from_secs(10)), "all GETs complete");

    let sched = client.latency().quantiles().expect("completions");
    let svc = client.service_latency().quantiles().expect("completions");
    assert_eq!(sched.count, svc.count);
    // The scheduled arrival is stamped a few instructions before the
    // transmission timestamp, so schedule-based latency sits a hair
    // above service latency — but only a hair.
    for (s, v, what) in [
        (sched.p50_us, svc.p50_us, "p50"),
        (sched.p99_us, svc.p99_us, "p99"),
        (sched.max_us, svc.max_us, "max"),
    ] {
        assert!(s >= v, "{what}: schedule-based {s} below send-based {v}");
        assert!(
            s - v <= 0.01 * v + 5.0,
            "{what}: schedule-based {s} should track send-based {v} when on schedule"
        );
    }
    server.shutdown();
}
