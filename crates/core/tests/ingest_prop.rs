//! Property tests pinning the one-copy streaming ingest path
//! byte-identical to the old concatenate-then-put path.
//!
//! For any value size and any fragment arrival order (with optional
//! duplicate deliveries), streaming a fragmented PUT through
//! `StreamingReassembler` + `PutIngest` + `Store::put_reserved` must
//! store exactly the bytes the old `Reassembler` → `Message::decode` →
//! `Store::put` pipeline stores — while copying each value byte exactly
//! once and holding zero fragment buffers.

use minos_core::ingest::PutIngest;
use minos_kv::{Store, StoreConfig};
use minos_wire::frag::{fragment_with_id, Reassembler, Reassembly, Streamed, StreamingReassembler};
use minos_wire::message::{Body, Message};
use proptest::prelude::*;

fn test_store() -> Store {
    Store::new(StoreConfig::for_items(4, 1_000, 64 << 20))
}

fn put_message(key: u64, value: Vec<u8>) -> Message {
    Message {
        client_id: 9,
        request_id: key ^ 0x5ca1_ab1e,
        client_ts_ns: 7,
        body: Body::Put {
            key,
            value: bytes::Bytes::from(value),
            ttl_ms: 0,
        },
    }
}

/// An arbitrary delivery schedule for `count` fragments: a seeded
/// Fisher–Yates permutation with a few duplicate deliveries spliced in
/// (UDP may reorder and duplicate arbitrarily).
fn delivery_schedule(count: usize, shuffle_seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..count).collect();
    let mut state = shuffle_seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for i in (1..count).rev() {
        order.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    for _ in 0..(next() % 3) {
        let dup = (next() % count as u64) as usize;
        let at = (next() % (order.len() as u64 + 1)) as usize;
        order.insert(at, dup);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The equivalence: for any size crossing any number of fragment
    /// boundaries and any delivery order, the stored value is
    /// byte-identical between the streaming and the concatenating
    /// pipeline, and the streaming store copied exactly value_len bytes.
    #[test]
    fn streaming_ingest_equals_concatenate_then_put(
        len in prop_oneof![
            0usize..9,            // empty + tiny
            1_400usize..1_600,    // around the fragment boundary
            2_800usize..3_000,    // around two fragments
            10_000usize..60_000,  // many fragments
        ],
        seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
    ) {
        let value: Vec<u8> =
            (0..len).map(|i| ((i as u64).wrapping_mul(seed | 1) >> 3) as u8).collect();
        let key = seed % 1_000;
        let msg = put_message(key, value.clone());
        let encoded = msg.encode();
        let frags = fragment_with_id(seed, &encoded);
        prop_assert!(!frags.is_empty());

        // Old path: concatenate, decode, put.
        let old_store = test_store();
        let mut old = Reassembler::new(8);
        let mut old_done = false;
        for f in &frags {
            if let Reassembly::Complete(bytes) = old.push(1, f.clone()) {
                let decoded = Message::decode(bytes).expect("well-formed");
                match decoded.body {
                    Body::Put { key, value, .. } => old_store.put(key, &value).unwrap(),
                    other => prop_assert!(false, "unexpected body {other:?}"),
                };
                old_done = true;
            }
        }
        prop_assert!(old_done);

        // New path: stream fragments (shuffled, possibly duplicated)
        // straight into the mempool reservation.
        let new_store = test_store();
        let mut streaming = StreamingReassembler::new(8);
        let mut committed = false;
        for i in delivery_schedule(frags.len(), shuffle_seed) {
            match streaming.push(1, frags[i].clone(), |fh| PutIngest::open(&new_store, fh)) {
                Streamed::Complete(ingest) => {
                    let done = ingest.commit(&new_store).expect("well-formed put");
                    prop_assert_eq!(done.key, key);
                    committed = true;
                    // A fragment delivered after completion would open a
                    // fresh partial (same as the old reassembler); stop
                    // here so the accounting below is exact.
                    break;
                }
                Streamed::Incomplete | Streamed::Duplicate => {}
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
        prop_assert!(committed, "every permutation must complete");

        // Byte-identical stored values.
        let old_val = old_store.get(key).expect("stored");
        let new_val = new_store.get(key).expect("stored");
        prop_assert_eq!(&old_val[..], &new_val[..]);
        prop_assert_eq!(&new_val[..], &value[..]);

        // And the streaming store moved each value byte exactly once —
        // duplicates included, nothing was double-copied.
        prop_assert_eq!(new_store.mempool().stats().copied_bytes, len as u64);
        prop_assert_eq!(streaming.pending(), 0);
    }
}
