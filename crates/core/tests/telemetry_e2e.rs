//! End-to-end tests of the unified telemetry: snapshots taken against a
//! live threaded server, and the paper's Figure 5/6 decomposition —
//! size-aware sharding keeps the *queue wait* of small requests flat
//! while a size-oblivious configuration lets them wait behind large
//! work on the same core.

use minos_core::client::Client;
use minos_core::config::ThresholdMode;
use minos_core::server::{MinosServer, ServerConfig};
use minos_obs::Snapshot;
use std::time::Duration;

const SMALL_VALUE: usize = 64;
const LARGE_VALUE: usize = 256 * 1024;

/// Driving a mixed workload populates every layer of one snapshot: the
/// engine counters, the transport collector, the store collector, and
/// the per-core per-class lifecycle histograms — and repeated snapshots
/// form a monotone timeline.
#[test]
fn snapshots_populate_per_core_class_telemetry() {
    let mut server = MinosServer::start(ServerConfig::for_test(2, 10_000));
    let registry = server.registry();
    let mut client = Client::new(&server, 1, 52);

    let mut snaps: Vec<Snapshot> = Vec::new();
    for round in 0..5u64 {
        for i in 0..100u64 {
            client.send_put(round * 100 + i, &[round as u8; SMALL_VALUE], false);
        }
        client.send_put(5_000 + round, &vec![3u8; LARGE_VALUE], true);
        assert!(client.drain(Duration::from_secs(60)), "round {round}");
        snaps.push(registry.snapshot());
    }

    // The timeline is monotone in both sequence number and clock.
    for w in snaps.windows(2) {
        assert!(w[1].seq > w[0].seq, "seq regressed");
        assert!(w[1].elapsed_ms >= w[0].elapsed_ms, "clock regressed");
    }

    let last = snaps.last().unwrap();
    // Every layer reported in: engine, transport, store, ingest.
    assert!(last.counter("transport.rx_packets").unwrap_or(0) > 0);
    assert!(last.counter("store.puts").unwrap_or(0) >= 505);
    assert!(last.counter("ingest.put_copied_bytes").unwrap_or(0) >= 5 * LARGE_VALUE as u64);
    assert!(last.counter("core.0.ops").is_some());
    assert!(last.gauge("plan.threshold_bytes").is_some());

    // Per-core per-class histograms exist for every (core, class) pair,
    // with queue-wait and service-time sample counts in lockstep.
    let mut small_samples = 0u64;
    let mut large_samples = 0u64;
    for core in 0..2 {
        for class in ["small", "large"] {
            let wait = last
                .hist(&format!("core.{core}.{class}.queue_wait_ns"))
                .unwrap_or_else(|| panic!("core.{core}.{class}.queue_wait_ns missing"));
            let service = last
                .hist(&format!("core.{core}.{class}.service_ns"))
                .unwrap_or_else(|| panic!("core.{core}.{class}.service_ns missing"));
            assert_eq!(
                wait.count, service.count,
                "core {core} {class}: every request records both halves"
            );
            match class {
                "small" => small_samples += wait.count,
                _ => large_samples += wait.count,
            }
        }
    }
    assert!(
        small_samples >= 500,
        "500 small PUTs recorded ({small_samples})"
    );
    // Large PUTs record one sample per fragment (each fragment is one
    // unit of handed-off work), so 5 multi-fragment PUTs yield far more
    // than 5 samples.
    assert!(
        large_samples >= 5,
        "large class populated ({large_samples})"
    );

    // Service time is real work: the distribution has non-zero mass.
    let small_service = last.hist("core.0.small.service_ns").unwrap();
    let small_service_1 = last.hist("core.1.small.service_ns").unwrap();
    assert!(
        small_service.p99.max(small_service_1.p99) > 0,
        "small service p99 is non-zero"
    );
    server.shutdown();
}

/// Large value used for the sharding comparison: ~724 fragments, so the
/// inline-vs-handoff cost difference per fragment accumulates into an
/// unambiguous queue-wait gap.
const HUGE_VALUE: usize = 1024 * 1024;

/// Worst small-class *median* queue wait (ns) across cores. The median,
/// not the p99: on a loaded single-CPU CI box the p99 of both modes is
/// dominated by the scheduler preempting the busy-poll threads (hundreds
/// of microseconds either way), while the median reflects the structural
/// intra-burst wait this test is about. The release-mode perf smoke
/// exercises the p99 view on real parallel hardware.
fn small_queue_wait_p50(snap: &Snapshot, n_cores: usize) -> u64 {
    (0..n_cores)
        .filter_map(|c| snap.hist(&format!("core.{c}.small.queue_wait_ns")))
        .map(|h| h.p50)
        .max()
        .unwrap_or(0)
}

/// One mixed run at a fixed threshold; returns the worst per-core
/// small-class median queue wait. All traffic targets queue 0 and the
/// RX batch is raised so each huge-PUT fragment train and the GET behind
/// it drain in one stamped burst: the GET's measured wait is then the
/// time the RX core spends on the fragments ahead of it — inline
/// ingest when size-oblivious, a cheap handoff push when sharded.
fn run_mixed(threshold: u64) -> u64 {
    let mut config = ServerConfig::for_test(2, 10_000);
    config.minos.threshold_mode = ThresholdMode::Static(threshold);
    config.minos.batch_size = 1024;
    let mut server = MinosServer::start(config);
    let mut client = Client::new(&server, 1, 53).with_target_queues(0..1);

    // Teach the controller the size mix (the threshold is pinned, but
    // the cost share that sizes the large-core pool is measured), then
    // lock in the resulting plan.
    for i in 0..20u64 {
        client.send_put(i, &[1u8; SMALL_VALUE], false);
    }
    client.send_put(9_000, &vec![2u8; HUGE_VALUE], true);
    assert!(client.drain(Duration::from_secs(60)), "warmup");
    server.force_epoch();

    if threshold < HUGE_VALUE as u64 {
        assert!(
            server.plan().allocation.n_large >= 1,
            "sharded run allocates a large core: {:?}",
            server.plan().allocation
        );
    }

    for round in 0..40u64 {
        client.send_put(9_100 + round, &vec![2u8; HUGE_VALUE], true);
        client.send_get(round % 20, false);
        assert!(client.drain(Duration::from_secs(60)), "round {round}");
    }

    let snap = server.registry().snapshot();
    let p50 = small_queue_wait_p50(&snap, 2);
    server.shutdown();
    p50
}

/// The paper's core claim (Figures 5/6), observed through the server's
/// own telemetry: with sharding on (threshold below the large size, so
/// large work is handed off), small requests' queue wait stays flat;
/// with sharding effectively off (threshold above every size, so
/// everything runs inline on the RX core), small requests queue behind
/// large-PUT fragments and their wait inflates several-fold.
#[test]
fn sharding_keeps_small_queue_wait_flat() {
    let sharded = run_mixed(4_096);
    let unsharded = run_mixed(1 << 30);
    assert!(sharded > 0, "sharded run recorded small queue waits");
    assert!(
        unsharded >= sharded * 2,
        "small queue-wait p50 without sharding ({unsharded} ns) should be \
         at least 2x the sharded p50 ({sharded} ns)"
    );
}
