//! End-to-end tests of the threaded Minos server: real threads, real
//! NIC rings, real wire encoding, real store.

use minos_core::client::Client;
use minos_core::plan::Destination;
use minos_core::server::{MinosServer, ServerConfig};
use minos_wire::message::{OpKind, ReplyStatus};
use std::time::Duration;

/// A lost fragment must not strand the partial reassembly: the stale
/// partial is evicted after two reassembly rounds and its mempool
/// reservation released — the large-PUT ingest analog of the RX-pool
/// leak the ROADMAP tracked.
#[test]
fn lost_fragment_reservation_is_evicted_and_released() {
    use minos_wire::frag::fragment_with_id;
    use minos_wire::message::{Body, Message};
    use minos_wire::packet::{build_frame, Endpoint};
    use minos_wire::udp::UdpHeader;

    let mut config = ServerConfig::for_test(2, 10_000);
    config.minos.reassembly_round_ns = 20_000_000; // 20 ms rounds
    let mut server = MinosServer::start(config);
    let nic = minos_core::engine::KvEngine::nic(&server);

    // A 100 KB PUT, missing its last fragment.
    let msg = Message {
        client_id: 1,
        request_id: 1,
        client_ts_ns: 0,
        body: Body::Put {
            key: 77,
            value: bytes::Bytes::from(vec![7u8; 100_000]),
            ttl_ms: 0,
        },
    };
    let frags = fragment_with_id(0x1234, &msg.encode());
    let src = Endpoint::host(100, 20_000);
    for frag in &frags[..frags.len() - 1] {
        let dst = Endpoint::host(1, UdpHeader::port_for_queue(0));
        nic.deliver_frame(build_frame(src, dst, frag));
    }

    // The partial's reservation charges the mempool now...
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.store().mempool().used_bytes() == 0 {
        assert!(std::time::Instant::now() < deadline, "reservation opened");
        std::thread::yield_now();
    }

    // ...and two 20 ms rounds later the eviction must have released it.
    while server.counters().reassembly_evictions == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "stale partial evicted within the deadline"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let freed_by = std::time::Instant::now() + Duration::from_secs(10);
    while server.store().mempool().used_bytes() > 0 {
        assert!(
            std::time::Instant::now() < freed_by,
            "evicted reservation returns its mempool block"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.store().len(), 0, "nothing was committed");
    server.shutdown();
}

fn start_server(cores: usize) -> MinosServer {
    MinosServer::start(ServerConfig::for_test(cores, 10_000))
}

/// Under memory pressure, discard-mode ingests are rationed per source:
/// a source already at its quota gets over-quota PUTs answered
/// `OutOfMemory` immediately without opening any ingest state (counted
/// in `ingest.discard_quota_rejects`), and once a slot frees up the
/// same source's PUTs flow through discard mode again — still
/// `OutOfMemory`, but via a real (bounded) ingest.
#[test]
fn over_quota_discard_puts_still_get_oom_replies() {
    let mut config = ServerConfig::for_test(2, 10_000);
    // A mempool too small for any large value: every large PUT wants
    // discard mode. One discard slot per source.
    config.store.mempool_bytes = 1024;
    config.minos.discard_quota_per_source = 1;
    let mut server = MinosServer::start(config);
    let mut client = Client::new(&server, 1, 45);

    // Pin the client's only discard slot, exactly as a still-draining
    // discard ingest from the same source would hold it. (Racing real
    // concurrent PUTs cannot guarantee overlap on a small machine: the
    // cores may serialize them, closing each ingest before the next
    // opens.)
    let quota = server.discard_quota();
    let token = quota
        .try_acquire(client.source_key())
        .expect("slot initially free");

    let value = vec![3u8; 60_000];
    client.send_put(0, &value, true);
    assert!(
        client.drain(Duration::from_secs(20)),
        "over-quota PUT still gets a reply"
    );
    let snap = server.registry().snapshot();
    let rejects = snap.counter("ingest.discard_quota_rejects").unwrap_or(0);
    assert!(
        rejects >= 1,
        "over-quota opens must be counted, got {rejects}"
    );

    // Slot released: the next PUT drains through a discard-mode ingest.
    drop(token);
    client.send_put(1, &value, true);
    assert!(
        client.drain(Duration::from_secs(20)),
        "in-quota PUT answered through discard mode"
    );

    let totals = client.totals();
    assert_eq!(totals.completed, 2);
    assert_eq!(totals.errors, 2, "all OutOfMemory");
    assert_eq!(server.store().len(), 0, "nothing was committed");
    server.shutdown();
}

#[test]
fn put_get_roundtrip_small() {
    let mut server = start_server(2);
    let mut client = Client::new(&server, 1, 42);

    client.send_put(7, b"small value", false);
    assert!(client.drain(Duration::from_secs(10)), "put reply");

    client.send_get(7, false);
    assert!(client.drain(Duration::from_secs(10)), "get reply");

    let totals = client.totals();
    assert_eq!(totals.completed, 2);
    assert_eq!(totals.errors, 0);
    assert_eq!(&server.store().get(7).unwrap()[..], b"small value");
    server.shutdown();
}

#[test]
fn large_put_fragments_and_reassembles() {
    let mut server = start_server(2);
    let mut client = Client::new(&server, 1, 43);

    // 100 KB value: ~69 fragments, classified large at the bootstrap
    // threshold, handed off to the standby/large core.
    let value: Vec<u8> = (0..100_000).map(|i| (i % 253) as u8).collect();
    client.send_put(99, &value, true);
    assert!(client.drain(Duration::from_secs(20)), "large put reply");

    let stored = server.store().get(99).expect("stored");
    assert_eq!(stored.len(), value.len());
    assert_eq!(&stored[..], &value[..]);

    // And read it back through the engine (large GET reply fragments).
    client.send_get(99, true);
    assert!(client.drain(Duration::from_secs(20)), "large get reply");
    let totals = client.totals();
    assert_eq!(totals.completed, 2);
    assert_eq!(totals.errors, 0);

    // The reassembled reply streamed straight into its value buffer:
    // exactly one copy per value byte, no header+value concatenation.
    assert_eq!(
        client.reply_copied_bytes(),
        value.len() as u64,
        "large-GET reply value bytes must be copied exactly once"
    );

    // The large work was handed off at least once.
    let stats = server.core_stats();
    let handoffs: u64 = stats.iter().map(|s| s.handoffs).sum();
    assert!(handoffs >= 1, "large requests handed off: {handoffs}");
    server.shutdown();
}

#[test]
fn get_missing_returns_not_found() {
    let mut server = start_server(2);
    let mut client = Client::new(&server, 1, 44);
    client.send_get(123456, false);
    assert!(client.drain(Duration::from_secs(10)));
    let c = client.poll();
    assert!(c.is_empty());
    let totals = client.totals();
    assert_eq!(totals.completed, 1);
    assert_eq!(totals.errors, 1, "NotFound counts as an error reply");
    server.shutdown();
}

#[test]
fn delete_roundtrip() {
    let mut server = start_server(2);
    let mut client = Client::new(&server, 1, 45);
    client.send_put(5, b"to be deleted", false);
    assert!(client.drain(Duration::from_secs(10)));
    client.send_delete(5);
    assert!(client.drain(Duration::from_secs(10)));
    assert!(server.store().get(5).is_none());
    server.shutdown();
}

#[test]
fn mixed_workload_completes_without_loss() {
    let mut server = start_server(4);
    let mut client = Client::new(&server, 1, 46);

    // Mix of sizes crossing the small/large boundary.
    let sizes = [1usize, 13, 100, 1_400, 1_456, 2_000, 10_000, 50_000];
    for (i, &sz) in sizes.iter().enumerate() {
        let value = vec![i as u8; sz];
        client.send_put(1000 + i as u64, &value, sz > 1_456);
    }
    assert!(client.drain(Duration::from_secs(30)), "puts complete");

    for (i, &sz) in sizes.iter().enumerate() {
        client.send_get(1000 + i as u64, sz > 1_456);
    }
    assert!(client.drain(Duration::from_secs(30)), "gets complete");

    let totals = client.totals();
    assert_eq!(totals.completed, 2 * sizes.len() as u64);
    assert_eq!(totals.errors, 0);
    assert_eq!(totals.outstanding(), 0, "zero loss");

    for (i, &sz) in sizes.iter().enumerate() {
        assert_eq!(server.store().get(1000 + i as u64).unwrap().len(), sz);
    }
    server.shutdown();
}

#[test]
fn epoch_adapts_plan_to_workload() {
    // Suppress the 50 ms auto-epochs for this test: the EWMA gives the
    // newest epoch weight alpha = 0.9, so if a timer epoch happens to
    // bisect a batch (e.g. sees only its one large PUT), the final
    // forced epoch inherits a skewed distribution and the asserted
    // threshold bounds get flaky. With one forced epoch over the whole
    // run, the observed mix is exactly the workload's 0.5 % large.
    let mut config = ServerConfig::for_test(4, 10_000);
    config.minos.epoch_ns = u64::MAX;
    let mut server = MinosServer::start(config);
    let mut client = Client::new(&server, 1, 47);

    // Bootstrap: standby mode (all cores small).
    let plan0 = server.plan();
    assert!(plan0.allocation.standby);

    // A paper-like mix: 0.5 % of requests are large, interleaved so
    // every 50 ms epoch observes the same blend (the controller tracks
    // per-epoch distributions with alpha = 0.9 — a phase of large-only
    // traffic would legitimately pull the p99 into the large class).
    // The size p99 stays in the small class while large requests still
    // dominate the packet cost (10 x ~70 packets vs 2000 x 1).
    for batch in 0..10u64 {
        for i in 0..200u64 {
            client.send_put(batch * 200 + i, &[1u8; 100], false);
        }
        client.send_put(10_000 + batch, &vec![2u8; 100_000], true);
        assert!(client.drain(Duration::from_secs(60)), "batch {batch}");
    }

    server.force_epoch();
    let plan = server.plan();
    assert!(plan.epoch_id >= 1);
    assert!(
        plan.decision.threshold < 100_000,
        "threshold {} below the large size",
        plan.decision.threshold
    );
    assert!(
        plan.decision.threshold >= 100,
        "threshold {} above the small size",
        plan.decision.threshold
    );
    // With ~40/340 requests at 138 packets each, the large cost share is
    // ~94 %: most cores must now serve large requests.
    assert!(
        plan.allocation.n_large >= 1 || plan.allocation.standby,
        "allocation: {:?}",
        plan.allocation
    );
    assert_eq!(plan.classify(100), Destination::Local);
    match plan.classify(100_000) {
        Destination::Handoff(c) => assert!(c < 4),
        other => panic!("large must hand off, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn replies_echo_request_kind() {
    let mut server = start_server(2);
    let mut client = Client::new(&server, 1, 48);
    // PUT and GET target different RX queues, so there is no ordering
    // guarantee between them — complete the PUT before issuing the GET.
    client.send_put(1, b"x", false);
    assert!(client.drain(Duration::from_secs(20)));
    client.send_get(1, false);

    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let mut kinds = vec![(OpKind::PutReply, ReplyStatus::Ok)];
    while kinds.len() < 2 && std::time::Instant::now() < deadline {
        for c in client.poll() {
            kinds.push((c.kind, c.status));
        }
    }
    kinds.sort_by_key(|(k, _)| *k as u8);
    assert_eq!(
        kinds,
        vec![
            (OpKind::GetReply, ReplyStatus::Ok),
            (OpKind::PutReply, ReplyStatus::Ok)
        ]
    );
    server.shutdown();
}

#[test]
fn latency_is_recorded() {
    let mut server = start_server(2);
    let mut client = Client::new(&server, 1, 49);
    for i in 0..50u64 {
        client.send_put(i, b"v", false);
    }
    assert!(client.drain(Duration::from_secs(30)));
    let q = client.latency().quantiles().unwrap();
    assert_eq!(q.count, 50);
    assert!(q.p99_us > 0.0);
    assert!(q.mean_us <= q.p99_us * 1.001);
    server.shutdown();
}
