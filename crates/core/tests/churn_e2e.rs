//! Churn stress over real UDP: the dataset outgrows the mempool.
//!
//! A working set at least 4x the server's mempool is churned through a
//! live threaded server on both UDP syscall paths (batched `recvmmsg`/
//! `sendmmsg` and one-datagram fallback). With capacity tiering on, the
//! server must shed cold items instead of failing writes:
//!
//! * **zero OutOfMemory PUT replies** — eviction runs at reservation
//!   time, so even the fill phase never bounces a write (there is no
//!   warm-up exemption to hide behind);
//! * the eviction (or expiry) machinery demonstrably ran;
//! * the accounting invariant holds after the dust settles — bytes
//!   charged to live items equal the pool's used bytes, with zero
//!   `accounting_warnings`;
//! * the hot-path invariants survive the churn: a zero-copy TX path and
//!   a bounded, allocation-free RX pool.

use minos_core::client::Client;
use minos_core::server::{MinosServer, ServerConfig};
use minos_kv::{CapacityConfig, EvictionPolicy, StoreConfig};
use minos_net::{Transport, UdpConfig, UdpTransport};
use minos_wire::message::{OpKind, ReplyStatus};
use minos_workload::access::Operation;
use minos_workload::{ChurnConfig, ChurnGenerator, Rng};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};

static PORTS: minos_net::testport::TestPorts = minos_net::testport::TestPorts::new(37_000, 39_900);

const QUEUES: u16 = 2;
const MEMPOOL_BYTES: usize = 256 << 10;
const NUM_KEYS: u64 = 1024;
const OPS: u64 = 4_000;

fn bind_server(batch: usize) -> Arc<UdpTransport> {
    loop {
        let config = UdpConfig {
            batch,
            ..UdpConfig::loopback(PORTS.alloc(QUEUES), QUEUES)
        };
        if let Ok(t) = UdpTransport::bind(config) {
            return Arc::new(t);
        }
    }
}

fn udp_client(server: &UdpTransport) -> Client {
    let transport = Arc::new(
        UdpTransport::bind_client_with(UdpConfig {
            socket_buffer_bytes: 4 << 20,
            ..UdpConfig::client(Ipv4Addr::LOCALHOST)
        })
        .unwrap(),
    );
    let endpoint = transport.local_endpoint(0);
    Client::with_transport(
        transport as Arc<dyn Transport>,
        endpoint,
        server.local_endpoint(0),
        QUEUES,
        11,
        0xC4A9,
    )
}

/// Polls completions down to `window` outstanding, counting OutOfMemory
/// PUT replies (GET `NotFound` is expected churn — an evicted or
/// expired key — and is not counted here).
fn pump(client: &mut Client, window: u64, oom_puts: &mut u64) {
    while client.totals().outstanding() > window {
        for c in client.poll() {
            if c.kind == OpKind::PutReply && c.status == ReplyStatus::OutOfMemory {
                *oom_puts += 1;
            }
        }
    }
}

/// Like [`Client::drain`], but keeps counting PUT OOMs.
fn drain_counting(client: &mut Client, timeout: Duration, oom_puts: &mut u64) -> bool {
    let deadline = Instant::now() + timeout;
    while client.totals().outstanding() > 0 {
        pump(client, 0, oom_puts);
        if Instant::now() > deadline {
            return false;
        }
    }
    true
}

/// One churn run: `OPS` zipfian operations over a working set >= 4x the
/// mempool, on the given syscall path and eviction policy.
fn churn_run(batch: usize, policy: EvictionPolicy, ttl_ms: u64) {
    let generator = ChurnGenerator::new(ChurnConfig {
        num_keys: NUM_KEYS,
        value_min: 64,
        value_max: 2048,
        ttl_ms,
        salt: 0xC0FFEE,
        ..ChurnConfig::default()
    });
    assert!(
        generator.working_set_bytes() >= 4 * MEMPOOL_BYTES as u64,
        "the working set ({} B) must be at least 4x the mempool ({} B)",
        generator.working_set_bytes(),
        MEMPOOL_BYTES
    );

    let transport = bind_server(batch);
    let mut config = ServerConfig::for_test(QUEUES as usize, NUM_KEYS as usize);
    config.store = StoreConfig::for_items(QUEUES as usize * 4, NUM_KEYS as usize, MEMPOOL_BYTES);
    config.store.capacity = CapacityConfig {
        policy,
        ..CapacityConfig::default()
    };
    let mut server = MinosServer::start_with_transport(config, Arc::clone(&transport));
    let mut client = udp_client(&transport);

    let mut rng = Rng::new(0x5EED ^ batch as u64);
    let mut oom_puts = 0u64;
    for _ in 0..OPS {
        let op = generator.next_op(&mut rng);
        match op.op {
            Operation::Put => {
                let value = vec![(op.key % 251) as u8; op.item_size as usize];
                client.send_put_with_ttl(op.key, &value, op.is_large, op.ttl_ms);
            }
            Operation::Get => client.send_get(op.key, op.is_large),
        }
        pump(&mut client, 32, &mut oom_puts);
    }
    assert!(
        drain_counting(&mut client, Duration::from_secs(60), &mut oom_puts),
        "batch {batch}: churn lost replies"
    );
    let totals = client.totals();
    assert_eq!(totals.outstanding(), 0, "batch {batch}: zero loss");
    assert_eq!(
        oom_puts, 0,
        "batch {batch}: capacity tiering must absorb every PUT \
         ({oom_puts} OutOfMemory replies over {OPS} ops)"
    );
    assert!(server.drain(Duration::from_secs(10)));

    let snap = server.registry().snapshot();
    // The pressure was real: the store had to shed items to stay OOM-free.
    let evictions = snap.counter("store.evictions").unwrap_or(0);
    let expired = snap.counter("store.expired_keys").unwrap_or(0);
    assert!(
        evictions + expired > 0,
        "batch {batch}: a 4x-overcommitted run must evict or expire \
         (evictions {evictions}, expired {expired})"
    );
    if ttl_ms == 0 {
        assert!(evictions > 0, "batch {batch}: pure-eviction run must evict");
    }
    assert_eq!(
        snap.counter("store.accounting_warnings")
            .unwrap_or(u64::MAX),
        0,
        "batch {batch}: watermark enforcement never claimed an undrainable pool"
    );
    // The accounting invariant, cross-checked against the live store.
    assert_eq!(
        server.store().audit_charged_bytes(),
        server.store().mempool().used_bytes(),
        "batch {batch}: bytes charged to live items == pool used bytes"
    );
    assert!(
        server.store().mempool().used_bytes() <= MEMPOOL_BYTES,
        "batch {batch}: the pool never overcommits"
    );

    // Hot-path invariants under churn: zero-copy TX, allocation-free RX.
    let io = transport.io_stats();
    if cfg!(target_os = "linux") {
        assert_eq!(
            io.tx_copied_bytes, 0,
            "batch {batch}: eviction churn must not reintroduce TX copies"
        );
    }
    assert!(
        io.pool_hit_rate() >= 0.95,
        "batch {batch}: RX pool stays warm under churn (hits {}, misses {}, rate {:.4})",
        io.pool_hits,
        io.pool_misses,
        io.pool_hit_rate()
    );
    assert_eq!(
        io.pool_outstanding, 0,
        "batch {batch}: every RX slot is home after the drain"
    );
    server.shutdown();
}

/// Batched syscall path (`recvmmsg`/`sendmmsg`), size-aware CLOCK, no
/// TTLs: pure eviction absorbs a 4x-overcommitted working set.
#[test]
fn churn_4x_mempool_batched_path_size_aware() {
    churn_run(32, EvictionPolicy::SizeAwareClock, 0);
}

/// One-datagram syscall path, plain CLOCK, with 25 ms TTLs riding on
/// every PUT: expiry and eviction share the shedding.
#[test]
fn churn_4x_mempool_single_syscall_path_clock_with_ttl() {
    churn_run(1, EvictionPolicy::Clock, 25);
}
