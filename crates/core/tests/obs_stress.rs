//! Telemetry-under-perturbation stress: a concurrent snapshot reader
//! sampling the registry every 10 ms while a mixed workload (small
//! GET/PUT churn punctuated by fragmented large PUTs) hammers a real
//! UDP server must observe a monotone timeline — and the act of
//! snapshotting must not perturb the hot-path invariants the CI perf
//! gate asserts: a zero-copy reply path and an allocation-free RX pool.

use minos_core::client::Client;
use minos_core::server::{MinosServer, ServerConfig};
use minos_net::{Transport, UdpConfig, UdpTransport};
use minos_obs::Snapshot;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

static PORTS: minos_net::testport::TestPorts = minos_net::testport::TestPorts::new(33_000, 36_900);

const QUEUES: u16 = 2;
const SMALL_KEYS: u64 = 64;
const SMALL_LEN: usize = 512;
const LARGE_LEN: usize = 40_000; // ~28 fragments per large PUT
const OPS: u64 = 2_000;

fn bind_server() -> Arc<UdpTransport> {
    loop {
        let base = PORTS.alloc(QUEUES);
        if let Ok(t) = UdpTransport::bind(UdpConfig::loopback(base, QUEUES)) {
            return Arc::new(t);
        }
    }
}

#[test]
fn snapshots_stay_monotone_and_hot_path_invariants_hold_under_perturbation() {
    let transport = bind_server();
    let mut server = MinosServer::start_with_transport(
        ServerConfig::for_test(QUEUES as usize, 10_000),
        Arc::clone(&transport),
    );
    let registry = server.registry();

    let client_transport = Arc::new(
        UdpTransport::bind_client_with(UdpConfig {
            socket_buffer_bytes: 4 << 20,
            ..UdpConfig::client(Ipv4Addr::LOCALHOST)
        })
        .unwrap(),
    );
    let endpoint = client_transport.local_endpoint(0);
    let mut client = Client::with_transport(
        Arc::clone(&client_transport) as Arc<dyn Transport>,
        endpoint,
        transport.local_endpoint(0),
        QUEUES,
        7,
        0xD1CE,
    );

    // Preload the small working set so the GET churn has real payloads.
    for key in 0..SMALL_KEYS {
        client.send_put(key, &vec![(key % 251) as u8; SMALL_LEN], false);
        while client.totals().outstanding() > 16 {
            client.poll();
        }
    }
    assert!(
        client.drain(Duration::from_secs(30)),
        "preload lost replies"
    );

    // Concurrent snapshot reader at a 10 ms cadence — sampling while the
    // hot path is live is the whole point of this test.
    let stop = Arc::new(AtomicBool::new(false));
    let snapshots: Vec<Snapshot> = std::thread::scope(|scope| {
        let sampler = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut snaps = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    snaps.push(registry.snapshot());
                    std::thread::sleep(Duration::from_millis(10));
                }
                snaps
            })
        };

        // Perturbed churn: small GET/PUT mix with a fragmented large PUT
        // every 50th op, under a shallow zero-loss window.
        for i in 0..OPS {
            match i % 50 {
                49 => client.send_put(10_000 + i, &vec![3u8; LARGE_LEN], true),
                n if n % 8 == 0 => {
                    client.send_put(i % SMALL_KEYS, &vec![(i % 251) as u8; SMALL_LEN], false)
                }
                _ => client.send_get(i % SMALL_KEYS, false),
            }
            while client.totals().outstanding() > 32 {
                client.poll();
            }
        }
        assert!(client.drain(Duration::from_secs(60)), "churn lost replies");
        stop.store(true, Ordering::Relaxed);
        sampler.join().unwrap()
    });

    let totals = client.totals();
    assert_eq!(totals.outstanding(), 0, "zero loss");
    assert!(server.drain(Duration::from_secs(10)));

    // The sampled timeline is monotone in sequence and clock.
    assert!(
        snapshots.len() >= 10,
        "a multi-second run samples a real timeline ({} snapshots)",
        snapshots.len()
    );
    for w in snapshots.windows(2) {
        assert!(w[1].seq > w[0].seq, "snapshot seq regressed");
        assert!(
            w[1].elapsed_ms >= w[0].elapsed_ms,
            "snapshot clock regressed"
        );
    }
    // Counters never run backwards across concurrent samples.
    for name in ["transport.rx_packets", "store.puts", "core.0.ops"] {
        for w in snapshots.windows(2) {
            assert!(
                w[1].counter(name).unwrap_or(0) >= w[0].counter(name).unwrap_or(0),
                "{name} regressed between snapshots"
            );
        }
    }

    // The hot-path invariants, read back through the final snapshot.
    let last = registry.snapshot();
    if cfg!(target_os = "linux") {
        assert_eq!(
            last.counter("transport.tx_copied_bytes")
                .unwrap_or(u64::MAX),
            0,
            "snapshotting must not disturb the zero-copy reply path"
        );
    }
    assert!(
        last.gauge("pool.hit_rate").unwrap_or(0.0) >= 0.99,
        "RX pool stays allocation-free under perturbed churn (hit rate {:?})",
        last.gauge("pool.hit_rate")
    );
    assert_eq!(
        last.gauge("pool.outstanding").unwrap_or(f64::NAN),
        0.0,
        "every RX slot is home after the drain"
    );
    // The per-class decomposition was live while the sampler ran.
    let small = last.hist("core.0.small.service_ns").expect("small hist");
    let large_total: u64 = (0..QUEUES as usize)
        .filter_map(|c| last.hist(&format!("core.{c}.large.queue_wait_ns")))
        .map(|h| h.count)
        .sum();
    assert!(small.count > 0, "small class populated");
    assert!(large_total > 0, "large class populated");
    server.shutdown();
}
