//! The engine abstraction shared by Minos and the baseline designs.
//!
//! The paper's comparison is apples-to-apples: "all the designs we
//! consider are implemented in the same codebase. In particular, they
//! all use the same KV data structure and lightweight network stack"
//! (§5.2). [`KvEngine`] is how the harness code (examples, integration
//! tests, benches) holds that promise: every engine exposes the same
//! NIC, the same store type, and per-core statistics in the same shape.

use minos_kv::Store;
use minos_nic::VirtualNic;
use minos_stats::CoreStats;
use std::sync::Arc;

/// A running KV server engine.
pub trait KvEngine: Send {
    /// Engine name as the paper labels it ("Minos", "HKH", "SHO",
    /// "HKH+WS").
    fn name(&self) -> &'static str;

    /// The engine's NIC: clients deliver request frames here and drain
    /// reply packets from its TX queues.
    fn nic(&self) -> Arc<VirtualNic>;

    /// The underlying store (for pre-loading datasets).
    fn store(&self) -> Arc<Store>;

    /// Number of server cores.
    fn n_cores(&self) -> usize;

    /// Per-core statistics snapshot (ops, packets, handoffs, steals).
    fn core_stats(&self) -> Vec<CoreStats>;

    /// Stops the polling threads and joins them. Idempotent.
    fn shutdown(&mut self);
}
