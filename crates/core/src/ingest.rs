//! One-copy large-PUT ingest: the [`PutIngest`] fragment sink.
//!
//! The old ingest path for a fragmented PUT did double work the paper's
//! DPDK prototype never would: the reassembler concatenated every
//! fragment into a fresh contiguous buffer (one full copy plus a large
//! allocation), `Message::decode` sliced it, and `Store::put` copied the
//! value a second time into its mempool block — all while the pooled RX
//! slots of *every* fragment stayed checked out until the message
//! completed.
//!
//! [`PutIngest`] is the sink a
//! [`StreamingReassembler`](minos_wire::StreamingReassembler) streams
//! fragments into instead. On the message's first-seen fragment it
//! reserves the value's **final mempool block** from the size in the
//! fragment header (the size is on the wire, so no lookup and no
//! buffering is needed to allocate — paper §3); each subsequent chunk is
//! copied once, straight to its final offset; the 32-byte application
//! header is captured on the side. Completion seals the reservation and
//! commits it with [`Store::put_reserved`] — the value moved wire →
//! store exactly once, and the store's `copied_bytes` gauge proves it.
//!
//! Memory pressure degrades gracefully: when the reservation fails, the
//! ingest switches to *discard mode* — it still consumes fragments (so
//! the message completes and the header is captured) but drops value
//! bytes, and the commit answers `OutOfMemory`, exactly like the old
//! reassemble-then-fail path, without ever holding message-sized memory.

use minos_kv::{PoolBytesMut, PutError, Store};
use minos_wire::frag::{FragHeader, FragmentWriter};
use minos_wire::message::{Message, OpKind, ReplyStatus, MSG_HEADER_LEN};
use minos_wire::MAX_FRAG_CHUNK;

/// A committed streamed PUT: everything the server needs to build the
/// reply, recovered from the streamed application header.
#[derive(Clone, Copy, Debug)]
pub struct CompletedPut {
    /// Echoed client identifier.
    pub client_id: u16,
    /// Echoed request identifier.
    pub request_id: u64,
    /// Echoed client send timestamp.
    pub client_ts_ns: u64,
    /// The key written.
    pub key: u64,
    /// Outcome of the commit.
    pub status: ReplyStatus,
    /// The value length, for size-class accounting.
    pub value_len: usize,
}

impl CompletedPut {
    /// True when the written item is large under the wire cost model
    /// (it spans more than one fragment chunk).
    pub fn is_large(&self) -> bool {
        self.value_len > MAX_FRAG_CHUNK
    }

    /// The reply message for this PUT.
    pub fn reply(&self) -> Message {
        Message {
            client_id: self.client_id,
            request_id: self.request_id,
            client_ts_ns: self.client_ts_ns,
            body: minos_wire::message::Body::PutReply {
                status: self.status,
                key: self.key,
            },
        }
    }
}

/// A streaming large-PUT in flight: the 32-byte application header
/// captured on the side, and the value's mempool reservation being
/// filled fragment by fragment.
#[derive(Debug)]
pub struct PutIngest {
    header: [u8; MSG_HEADER_LEN],
    /// `None` in discard mode: the mempool had no room when the message
    /// was first seen, so value bytes are dropped and the commit
    /// answers `OutOfMemory`.
    reservation: Option<PoolBytesMut>,
    value_len: usize,
}

impl PutIngest {
    /// Opens an ingest for the message described by `fh`, reserving its
    /// value's mempool block from the length in the fragment header.
    /// Returns `None` for geometrically impossible messages (shorter
    /// than an application header); a failed reservation is *not* a
    /// `None` — it opens in discard mode so the request still completes
    /// with an honest `OutOfMemory` reply.
    pub fn open(store: &Store, fh: &FragHeader) -> Option<PutIngest> {
        let msg_len = fh.msg_len as usize;
        let value_len = msg_len.checked_sub(MSG_HEADER_LEN)?;
        Some(PutIngest {
            header: [0u8; MSG_HEADER_LEN],
            reservation: store.reserve(value_len),
            value_len,
        })
    }

    /// Commits the completed ingest: validates the streamed header
    /// (kind, length consistency), seals the reservation and splices it
    /// into the store under the bucket lock. Returns `None` when the
    /// streamed bytes were not a well-formed PUT request — the caller
    /// counts it malformed, and dropping `self` releases the
    /// reservation.
    pub fn commit(self, store: &Store) -> Option<CompletedPut> {
        // The header was filled by fragment 0 (MSG_HEADER_LEN is far
        // below one chunk), in the exact wire layout Message::decode
        // reads: kind(1) status(1) client_id(2) request_id(8) ts(8)
        // key(8) value_len(4).
        let h = &self.header;
        if h[0] != OpKind::PutRequest as u8 {
            return None;
        }
        let client_id = u16::from_be_bytes([h[2], h[3]]);
        let request_id = u64::from_be_bytes(h[4..12].try_into().expect("8 bytes"));
        let client_ts_ns = u64::from_be_bytes(h[12..20].try_into().expect("8 bytes"));
        let key = u64::from_be_bytes(h[20..28].try_into().expect("8 bytes"));
        let wire_value_len = u32::from_be_bytes(h[28..32].try_into().expect("4 bytes")) as usize;
        if wire_value_len != self.value_len {
            // The header's value length disagrees with the fragment
            // geometry: a forged or corrupted message.
            return None;
        }
        let status = match self.reservation {
            None => ReplyStatus::OutOfMemory,
            Some(reservation) => match store.put_reserved(key, reservation.seal()) {
                Ok(()) => ReplyStatus::Ok,
                Err(PutError::OutOfMemory) | Err(PutError::TableFull) => ReplyStatus::OutOfMemory,
            },
        };
        Some(CompletedPut {
            client_id,
            request_id,
            client_ts_ns,
            key,
            status,
            value_len: self.value_len,
        })
    }
}

impl FragmentWriter for PutIngest {
    fn write_at(&mut self, offset: usize, chunk: &[u8]) {
        let (header_part, value_part) = if offset < MSG_HEADER_LEN {
            let n = (MSG_HEADER_LEN - offset).min(chunk.len());
            self.header[offset..offset + n].copy_from_slice(&chunk[..n]);
            (n, &chunk[n..])
        } else {
            (0, chunk)
        };
        if !value_part.is_empty() {
            let value_offset = offset + header_part - MSG_HEADER_LEN;
            if let Some(reservation) = &mut self.reservation {
                reservation.write_at(value_offset, value_part);
            }
            // Discard mode: value bytes are dropped on the floor.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_kv::StoreConfig;
    use minos_wire::frag::{fragment_with_id, Streamed, StreamingReassembler};
    use minos_wire::message::Body;

    fn test_store() -> Store {
        Store::new(StoreConfig::for_items(2, 1_000, 16 << 20))
    }

    fn put_message(key: u64, value: Vec<u8>) -> Message {
        Message {
            client_id: 3,
            request_id: 77,
            client_ts_ns: 123,
            body: Body::Put {
                key,
                value: bytes::Bytes::from(value),
            },
        }
    }

    fn stream_message(
        store: &Store,
        reassembler: &mut StreamingReassembler<PutIngest>,
        msg_id: u64,
        msg: &Message,
        order: impl Iterator<Item = usize>,
    ) -> Option<PutIngest> {
        let frags = fragment_with_id(msg_id, &msg.encode());
        let mut done = None;
        for i in order {
            match reassembler.push(1, frags[i].clone(), |fh| PutIngest::open(store, fh)) {
                Streamed::Complete(w) => done = Some(w),
                Streamed::Incomplete => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        done
    }

    #[test]
    fn streamed_put_commits_byte_identical_value() {
        let store = test_store();
        let value: Vec<u8> = (0..50_000).map(|i| (i % 241) as u8).collect();
        let msg = put_message(42, value.clone());
        let mut r = StreamingReassembler::new(16);
        let ingest =
            stream_message(&store, &mut r, 1, &msg, 0..msg.wire_packets() as usize).unwrap();
        let done = ingest.commit(&store).unwrap();
        assert_eq!(done.status, ReplyStatus::Ok);
        assert_eq!(done.key, 42);
        assert_eq!(done.client_id, 3);
        assert_eq!(done.request_id, 77);
        assert_eq!(done.client_ts_ns, 123);
        assert!(done.is_large());
        assert_eq!(&store.get(42).unwrap()[..], &value[..]);
        assert_eq!(
            store.mempool().stats().copied_bytes,
            value.len() as u64,
            "exactly value_len bytes copied end to end"
        );
    }

    #[test]
    fn streamed_put_tolerates_any_fragment_order() {
        let store = test_store();
        let value: Vec<u8> = (0..10_000).map(|i| (i % 239) as u8).collect();
        let msg = put_message(7, value.clone());
        let n = msg.wire_packets() as usize;
        let mut r = StreamingReassembler::new(16);
        let ingest = stream_message(&store, &mut r, 2, &msg, (0..n).rev()).unwrap();
        assert_eq!(ingest.commit(&store).unwrap().status, ReplyStatus::Ok);
        assert_eq!(&store.get(7).unwrap()[..], &value[..]);
    }

    #[test]
    fn oom_ingest_discards_but_still_replies() {
        let store = Store::new(StoreConfig {
            partitions: 1,
            buckets_per_partition: 8,
            overflow_per_partition: 4,
            items_per_partition: 32,
            mempool_bytes: 1024,
            max_value_bytes: 1 << 20,
        });
        let value = vec![9u8; 20_000];
        let msg = put_message(5, value);
        let n = msg.wire_packets() as usize;
        let mut r = StreamingReassembler::new(16);
        let ingest = stream_message(&store, &mut r, 3, &msg, 0..n).unwrap();
        let done = ingest.commit(&store).unwrap();
        assert_eq!(done.status, ReplyStatus::OutOfMemory);
        assert_eq!(done.request_id, 77, "the reply still echoes the request");
        assert!(store.get(5).is_none());
        assert_eq!(store.mempool().used_bytes(), 0);
        assert_eq!(store.stats().put_failures, 1);
    }

    #[test]
    fn non_put_multi_fragment_message_is_malformed() {
        let store = test_store();
        // Forge a multi-fragment GET-kind message with a padded body:
        // geometry is consistent, but the kind/value_len make no sense.
        let mut raw = put_message(1, vec![1u8; 5_000]).encode().to_vec();
        raw[0] = OpKind::GetRequest as u8;
        let frags = fragment_with_id(4, &raw);
        let mut r = StreamingReassembler::new(16);
        let mut done = None;
        for f in &frags {
            if let Streamed::Complete(w) = r.push(1, f.clone(), |fh| PutIngest::open(&store, fh)) {
                done = Some(w);
            }
        }
        assert!(done.unwrap().commit(&store).is_none());
        assert_eq!(store.mempool().used_bytes(), 0, "reservation released");
    }

    #[test]
    fn dropped_ingest_releases_reservation() {
        let store = test_store();
        let msg = put_message(8, vec![2u8; 30_000]);
        let frags = fragment_with_id(5, &msg.encode());
        let mut r = StreamingReassembler::new(16);
        // Stream all but one fragment, then drop the reassembler: the
        // in-flight reservation must return to the mempool.
        for f in &frags[..frags.len() - 1] {
            assert!(matches!(
                r.push(1, f.clone(), |fh| PutIngest::open(&store, fh)),
                Streamed::Incomplete
            ));
        }
        assert!(store.mempool().used_bytes() > 0);
        drop(r);
        assert_eq!(store.mempool().used_bytes(), 0);
    }
}
