//! One-copy large-PUT ingest: the [`PutIngest`] fragment sink.
//!
//! The old ingest path for a fragmented PUT did double work the paper's
//! DPDK prototype never would: the reassembler concatenated every
//! fragment into a fresh contiguous buffer (one full copy plus a large
//! allocation), `Message::decode` sliced it, and `Store::put` copied the
//! value a second time into its mempool block — all while the pooled RX
//! slots of *every* fragment stayed checked out until the message
//! completed.
//!
//! [`PutIngest`] is the sink a
//! [`StreamingReassembler`](minos_wire::StreamingReassembler) streams
//! fragments into instead. On the message's first-seen fragment it
//! reserves the value's **final mempool block** from the size in the
//! fragment header (the size is on the wire, so no lookup and no
//! buffering is needed to allocate — paper §3); each subsequent chunk is
//! copied once, straight to its final offset; the 32-byte application
//! header is captured on the side. Completion seals the reservation and
//! commits it with [`Store::put_reserved`] — the value moved wire →
//! store exactly once, and the store's `copied_bytes` gauge proves it.
//!
//! Memory pressure degrades gracefully: when the reservation fails, the
//! ingest switches to *discard mode* — it still consumes fragments (so
//! the message completes and the header is captured) but drops value
//! bytes, and the commit answers `OutOfMemory`, exactly like the old
//! reassemble-then-fail path, without ever holding message-sized memory.

use minos_kv::{PoolBytesMut, PutError, Store};
use minos_wire::frag::{FragHeader, FragmentWriter};
use minos_wire::message::{
    Body, Message, OpKind, ReplyStatus, MSG_HEADER_LEN, PUT_TTL_FLAG, PUT_TTL_TAIL_LEN,
};
use minos_wire::MAX_FRAG_CHUNK;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Caps how many discard-mode ingests one source endpoint may hold
/// concurrently. Discard mode exists so a PUT that finds the mempool
/// full still completes with an honest `OutOfMemory` reply — but each
/// one occupies a partial-reassembly slot while consuming fragments,
/// and those slots are a shared, bounded resource. Without a bound, one
/// client spraying large PUTs at a memory-starved server monopolizes
/// the reassembler and starves every other client's (payable)
/// requests. Slots are charged per source on open and released when the
/// ingest commits, is dropped as malformed, or is evicted as stale.
pub struct DiscardQuota {
    per_source: u32,
    inner: Mutex<HashMap<u64, u32>>,
    rejects: AtomicU64,
}

impl DiscardQuota {
    /// A quota allowing `per_source` concurrent discard-mode ingests
    /// per source endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `per_source` is zero (a zero quota would turn every
    /// memory-pressure PUT into a silent drop).
    pub fn new(per_source: u32) -> Arc<Self> {
        assert!(per_source > 0, "discard quota must be positive");
        Arc::new(DiscardQuota {
            per_source,
            inner: Mutex::new(HashMap::new()),
            rejects: AtomicU64::new(0),
        })
    }

    /// Charges one discard slot to `src`, or counts a reject when the
    /// source is already at its cap.
    pub fn try_acquire(self: &Arc<Self>, src: u64) -> Option<DiscardToken> {
        {
            let mut map = self.inner.lock();
            let held = map.entry(src).or_insert(0);
            if *held < self.per_source {
                *held += 1;
                return Some(DiscardToken {
                    quota: Arc::clone(self),
                    src,
                });
            }
        }
        self.rejects.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Over-quota opens rejected so far. Note the reassembler re-runs a
    /// rejected message's open on each of its later fragments, so one
    /// over-quota *message* contributes one reject per fragment seen.
    pub fn rejects(&self) -> u64 {
        self.rejects.load(Ordering::Relaxed)
    }
}

/// RAII charge of one discard slot, released on drop — which happens on
/// commit, on a malformed-message drop, and on stale-partial eviction
/// alike, so the quota can never leak.
pub struct DiscardToken {
    quota: Arc<DiscardQuota>,
    src: u64,
}

impl Drop for DiscardToken {
    fn drop(&mut self) {
        let mut map = self.quota.inner.lock();
        if let Some(held) = map.get_mut(&self.src) {
            *held -= 1;
            if *held == 0 {
                map.remove(&self.src);
            }
        }
    }
}

impl std::fmt::Debug for DiscardToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiscardToken")
            .field("src", &self.src)
            .finish()
    }
}

/// Outcome of a quota-checked [`PutIngest::open_bounded`].
#[derive(Debug)]
pub enum OpenOutcome {
    /// The ingest opened (reserved, or in-quota discard mode).
    Open(PutIngest),
    /// The fragment geometry cannot be a valid message.
    Malformed,
    /// No ingest state should be opened and the caller should answer
    /// `OutOfMemory` straight from the fragment in hand: either the
    /// mempool is full and `src` is at its discard quota, or the
    /// store's admission control turned the PUT away *before*
    /// reservation (over the high watermark with an over-large value —
    /// streaming it, even in discard mode, would be wasted work).
    OverQuota,
}

/// A committed streamed PUT: everything the server needs to build the
/// reply, recovered from the streamed application header.
#[derive(Clone, Copy, Debug)]
pub struct CompletedPut {
    /// Echoed client identifier.
    pub client_id: u16,
    /// Echoed request identifier.
    pub request_id: u64,
    /// Echoed client send timestamp.
    pub client_ts_ns: u64,
    /// The key written.
    pub key: u64,
    /// Outcome of the commit.
    pub status: ReplyStatus,
    /// The value length, for size-class accounting.
    pub value_len: usize,
}

impl CompletedPut {
    /// True when the written item is large under the wire cost model
    /// (it spans more than one fragment chunk).
    pub fn is_large(&self) -> bool {
        self.value_len > MAX_FRAG_CHUNK
    }

    /// The reply message for this PUT.
    pub fn reply(&self) -> Message {
        Message {
            client_id: self.client_id,
            request_id: self.request_id,
            client_ts_ns: self.client_ts_ns,
            body: minos_wire::message::Body::PutReply {
                status: self.status,
                key: self.key,
            },
        }
    }
}

/// A streaming large-PUT in flight: the 32-byte application header
/// captured on the side, and the value's mempool reservation being
/// filled fragment by fragment.
#[derive(Debug)]
pub struct PutIngest {
    header: [u8; MSG_HEADER_LEN],
    /// `None` in discard mode: the mempool had no room when the message
    /// was first seen, so value bytes are dropped and the commit
    /// answers `OutOfMemory`.
    reservation: Option<PoolBytesMut>,
    value_len: usize,
    /// The stream's final [`PUT_TTL_TAIL_LEN`] bytes, captured on the
    /// side as they are written: if the header's [`PUT_TTL_FLAG`] is
    /// set, they are the big-endian TTL tail, not value bytes. The
    /// ingest can't know before fragment 0 arrives (any fragment may be
    /// first), so the tail is captured unconditionally and interpreted
    /// at commit.
    tail: [u8; PUT_TTL_TAIL_LEN],
    /// The discard-quota slot this ingest holds while in discard mode
    /// (kept purely for its release-on-drop effect).
    _discard_token: Option<DiscardToken>,
}

impl PutIngest {
    /// Opens an ingest for the message described by `fh`, reserving its
    /// value's mempool block from the length in the fragment header.
    /// Returns `None` for geometrically impossible messages (shorter
    /// than an application header); a failed reservation is *not* a
    /// `None` — it opens in discard mode so the request still completes
    /// with an honest `OutOfMemory` reply.
    pub fn open(store: &Store, fh: &FragHeader) -> Option<PutIngest> {
        let msg_len = fh.msg_len as usize;
        let value_len = msg_len.checked_sub(MSG_HEADER_LEN)?;
        // Admission control runs before reservation: a PUT turned away
        // at the high watermark opens in discard mode straight off,
        // without an eviction pass on its behalf.
        let reservation = if store.admit_put(value_len) {
            store.reserve(value_len)
        } else {
            None
        };
        Some(PutIngest {
            header: [0u8; MSG_HEADER_LEN],
            reservation,
            value_len,
            tail: [0u8; PUT_TTL_TAIL_LEN],
            _discard_token: None,
        })
    }

    /// [`PutIngest::open`] with discard-mode admission control: a
    /// failed reservation may only fall back to discard mode while
    /// `src` holds fewer than the quota's cap of discard slots.
    /// Over-quota opens return [`OpenOutcome::OverQuota`] — no ingest
    /// state is created, the reject is counted, and the caller can
    /// answer `OutOfMemory` straight from the fragment in hand.
    pub fn open_bounded(
        store: &Store,
        fh: &FragHeader,
        src: u64,
        quota: &Arc<DiscardQuota>,
    ) -> OpenOutcome {
        let msg_len = fh.msg_len as usize;
        let Some(value_len) = msg_len.checked_sub(MSG_HEADER_LEN) else {
            return OpenOutcome::Malformed;
        };
        if !store.admit_put(value_len) {
            // Rejected before reservation: no eviction pass, no discard
            // streaming — the caller replies `OutOfMemory` immediately.
            return OpenOutcome::OverQuota;
        }
        let reservation = store.reserve(value_len);
        let token = if reservation.is_none() {
            match quota.try_acquire(src) {
                Some(token) => Some(token),
                None => return OpenOutcome::OverQuota,
            }
        } else {
            None
        };
        OpenOutcome::Open(PutIngest {
            header: [0u8; MSG_HEADER_LEN],
            reservation,
            value_len,
            tail: [0u8; PUT_TTL_TAIL_LEN],
            _discard_token: token,
        })
    }

    /// Commits the completed ingest: validates the streamed header
    /// (kind, length consistency), seals the reservation and splices it
    /// into the store under the bucket lock. Returns `None` when the
    /// streamed bytes were not a well-formed PUT request — the caller
    /// counts it malformed, and dropping `self` releases the
    /// reservation.
    pub fn commit(self, store: &Store) -> Option<CompletedPut> {
        // The header was filled by fragment 0 (MSG_HEADER_LEN is far
        // below one chunk).
        let put = parse_put_header(&self.header)?;
        let has_ttl = put.flags & PUT_TTL_FLAG != 0;
        let tail_len = if has_ttl { PUT_TTL_TAIL_LEN } else { 0 };
        if put.wire_value_len.checked_add(tail_len)? != self.value_len {
            // The header's value length disagrees with the fragment
            // geometry: a forged or corrupted message.
            return None;
        }
        let ttl_ms = if has_ttl {
            u64::from_be_bytes(self.tail)
        } else {
            0
        };
        let PutHeader {
            client_id,
            request_id,
            client_ts_ns,
            key,
            ..
        } = put;
        let status = match self.reservation {
            None => ReplyStatus::OutOfMemory,
            Some(mut reservation) => {
                // The reservation was sized from the fragment geometry,
                // which includes the TTL tail; shed it so only value
                // bytes are stored.
                reservation.truncate(put.wire_value_len);
                match store.put_reserved_with_ttl(key, reservation.seal(), ttl_ms) {
                    Ok(()) => ReplyStatus::Ok,
                    Err(PutError::OutOfMemory) | Err(PutError::TableFull) => {
                        ReplyStatus::OutOfMemory
                    }
                }
            }
        };
        Some(CompletedPut {
            client_id,
            request_id,
            client_ts_ns,
            key,
            status,
            value_len: put.wire_value_len,
        })
    }
}

/// The identifying fields of a PUT request's 32-byte wire header.
struct PutHeader {
    /// The request flag bits (a PUT's status byte); [`PUT_TTL_FLAG`]
    /// marks a trailing TTL field.
    flags: u8,
    client_id: u16,
    request_id: u64,
    client_ts_ns: u64,
    key: u64,
    wire_value_len: usize,
}

/// Parses a PUT request's application header in the exact wire layout
/// `Message::decode` reads: kind(1) status(1) client_id(2)
/// request_id(8) ts(8) key(8) value_len(4), all big-endian. `None` for
/// any other kind.
fn parse_put_header(h: &[u8; MSG_HEADER_LEN]) -> Option<PutHeader> {
    if h[0] != OpKind::PutRequest as u8 {
        return None;
    }
    Some(PutHeader {
        flags: h[1],
        client_id: u16::from_be_bytes([h[2], h[3]]),
        request_id: u64::from_be_bytes(h[4..12].try_into().expect("8 bytes")),
        client_ts_ns: u64::from_be_bytes(h[12..20].try_into().expect("8 bytes")),
        key: u64::from_be_bytes(h[20..28].try_into().expect("8 bytes")),
        wire_value_len: u32::from_be_bytes(h[28..32].try_into().expect("4 bytes")) as usize,
    })
}

/// Builds the immediate error reply (`OutOfMemory` for a discard-quota
/// rejection, `Overloaded` for an overload shed) for a PUT refused
/// before any ingest state was opened, straight from the raw chunk of
/// its *first* fragment (fragment-header already stripped) — the one
/// fragment that carries the application header. Returns `None` when
/// the chunk doesn't hold a PUT header (a later fragment of the
/// refused message, or not a PUT at all): those fragments are simply
/// dropped, and the client's retransmission handles the rest (§4.1).
pub fn rejected_put_reply(chunk: &[u8], status: ReplyStatus) -> Option<Message> {
    if chunk.len() < MSG_HEADER_LEN {
        return None;
    }
    let mut h = [0u8; MSG_HEADER_LEN];
    h.copy_from_slice(&chunk[..MSG_HEADER_LEN]);
    let put = parse_put_header(&h)?;
    Some(Message {
        client_id: put.client_id,
        request_id: put.request_id,
        client_ts_ns: put.client_ts_ns,
        body: Body::PutReply {
            status,
            key: put.key,
        },
    })
}

impl FragmentWriter for PutIngest {
    fn write_at(&mut self, offset: usize, chunk: &[u8]) {
        let (header_part, value_part) = if offset < MSG_HEADER_LEN {
            let n = (MSG_HEADER_LEN - offset).min(chunk.len());
            self.header[offset..offset + n].copy_from_slice(&chunk[..n]);
            (n, &chunk[n..])
        } else {
            (0, chunk)
        };
        if !value_part.is_empty() {
            let value_offset = offset + header_part - MSG_HEADER_LEN;
            if let Some(reservation) = &mut self.reservation {
                reservation.write_at(value_offset, value_part);
            }
            // Capture the stream's last bytes on the side for the TTL
            // tail (runs in discard mode too — the value bytes are
            // dropped, but a TTL'd PUT's geometry still validates).
            let tail_start = self.value_len.saturating_sub(PUT_TTL_TAIL_LEN);
            let end = (value_offset + value_part.len()).min(self.value_len);
            let from = tail_start.max(value_offset);
            if from < end {
                self.tail[from - tail_start..end - tail_start]
                    .copy_from_slice(&value_part[from - value_offset..end - value_offset]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_kv::StoreConfig;
    use minos_wire::frag::{fragment_with_id, Streamed, StreamingReassembler};
    use minos_wire::message::Body;

    fn test_store() -> Store {
        Store::new(StoreConfig::for_items(2, 1_000, 16 << 20))
    }

    fn put_message(key: u64, value: Vec<u8>) -> Message {
        Message {
            client_id: 3,
            request_id: 77,
            client_ts_ns: 123,
            body: Body::Put {
                key,
                value: bytes::Bytes::from(value),
                ttl_ms: 0,
            },
        }
    }

    fn stream_message(
        store: &Store,
        reassembler: &mut StreamingReassembler<PutIngest>,
        msg_id: u64,
        msg: &Message,
        order: impl Iterator<Item = usize>,
    ) -> Option<PutIngest> {
        let frags = fragment_with_id(msg_id, &msg.encode());
        let mut done = None;
        for i in order {
            match reassembler.push(1, frags[i].clone(), |fh| PutIngest::open(store, fh)) {
                Streamed::Complete(w) => done = Some(w),
                Streamed::Incomplete => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        done
    }

    #[test]
    fn streamed_put_commits_byte_identical_value() {
        let store = test_store();
        let value: Vec<u8> = (0..50_000).map(|i| (i % 241) as u8).collect();
        let msg = put_message(42, value.clone());
        let mut r = StreamingReassembler::new(16);
        let ingest =
            stream_message(&store, &mut r, 1, &msg, 0..msg.wire_packets() as usize).unwrap();
        let done = ingest.commit(&store).unwrap();
        assert_eq!(done.status, ReplyStatus::Ok);
        assert_eq!(done.key, 42);
        assert_eq!(done.client_id, 3);
        assert_eq!(done.request_id, 77);
        assert_eq!(done.client_ts_ns, 123);
        assert!(done.is_large());
        assert_eq!(&store.get(42).unwrap()[..], &value[..]);
        assert_eq!(
            store.mempool().stats().copied_bytes,
            value.len() as u64,
            "exactly value_len bytes copied end to end"
        );
    }

    #[test]
    fn streamed_put_tolerates_any_fragment_order() {
        let store = test_store();
        let value: Vec<u8> = (0..10_000).map(|i| (i % 239) as u8).collect();
        let msg = put_message(7, value.clone());
        let n = msg.wire_packets() as usize;
        let mut r = StreamingReassembler::new(16);
        let ingest = stream_message(&store, &mut r, 2, &msg, (0..n).rev()).unwrap();
        assert_eq!(ingest.commit(&store).unwrap().status, ReplyStatus::Ok);
        assert_eq!(&store.get(7).unwrap()[..], &value[..]);
    }

    #[test]
    fn oom_ingest_discards_but_still_replies() {
        let store = Store::new(StoreConfig {
            partitions: 1,
            buckets_per_partition: 8,
            overflow_per_partition: 4,
            items_per_partition: 32,
            mempool_bytes: 1024,
            max_value_bytes: 1 << 20,
            capacity: Default::default(),
        });
        let value = vec![9u8; 20_000];
        let msg = put_message(5, value);
        let n = msg.wire_packets() as usize;
        let mut r = StreamingReassembler::new(16);
        let ingest = stream_message(&store, &mut r, 3, &msg, 0..n).unwrap();
        let done = ingest.commit(&store).unwrap();
        assert_eq!(done.status, ReplyStatus::OutOfMemory);
        assert_eq!(done.request_id, 77, "the reply still echoes the request");
        assert!(store.get(5).is_none());
        assert_eq!(store.mempool().used_bytes(), 0);
        assert_eq!(store.stats().put_failures, 1);
    }

    #[test]
    fn non_put_multi_fragment_message_is_malformed() {
        let store = test_store();
        // Forge a multi-fragment GET-kind message with a padded body:
        // geometry is consistent, but the kind/value_len make no sense.
        let mut raw = put_message(1, vec![1u8; 5_000]).encode().to_vec();
        raw[0] = OpKind::GetRequest as u8;
        let frags = fragment_with_id(4, &raw);
        let mut r = StreamingReassembler::new(16);
        let mut done = None;
        for f in &frags {
            if let Streamed::Complete(w) = r.push(1, f.clone(), |fh| PutIngest::open(&store, fh)) {
                done = Some(w);
            }
        }
        assert!(done.unwrap().commit(&store).is_none());
        assert_eq!(store.mempool().used_bytes(), 0, "reservation released");
    }

    fn oom_store() -> Store {
        Store::new(StoreConfig {
            partitions: 1,
            buckets_per_partition: 8,
            overflow_per_partition: 4,
            items_per_partition: 32,
            mempool_bytes: 1024,
            max_value_bytes: 1 << 20,
            capacity: Default::default(),
        })
    }

    fn large_frag_header() -> FragHeader {
        FragHeader {
            msg_id: 9,
            index: 0,
            count: 15,
            msg_len: (MSG_HEADER_LEN + 20_000) as u32,
        }
    }

    #[test]
    fn discard_quota_bounds_per_source() {
        let store = oom_store();
        let quota = DiscardQuota::new(1);
        let fh = large_frag_header();
        // The mempool has no room, so this opens in discard mode and
        // charges source 1's only slot...
        let first = match PutIngest::open_bounded(&store, &fh, 1, &quota) {
            OpenOutcome::Open(i) => i,
            other => panic!("expected in-quota discard open, got {other:?}"),
        };
        assert!(first.reservation.is_none(), "discard mode");
        // ...so source 1's next open is rejected, while source 2 still
        // gets its own slot.
        assert!(matches!(
            PutIngest::open_bounded(&store, &fh, 1, &quota),
            OpenOutcome::OverQuota
        ));
        assert_eq!(quota.rejects(), 1);
        assert!(matches!(
            PutIngest::open_bounded(&store, &fh, 2, &quota),
            OpenOutcome::Open(_)
        ));
        // Dropping the held ingest releases the slot.
        drop(first);
        assert!(matches!(
            PutIngest::open_bounded(&store, &fh, 1, &quota),
            OpenOutcome::Open(_)
        ));
        assert_eq!(quota.rejects(), 1, "in-quota opens are not rejects");
    }

    #[test]
    fn reserved_ingests_do_not_charge_quota() {
        let store = test_store();
        let quota = DiscardQuota::new(1);
        let fh = large_frag_header();
        // Plenty of mempool: both opens reserve, neither touches the
        // quota even though the per-source cap is 1.
        let a = PutIngest::open_bounded(&store, &fh, 1, &quota);
        let b = PutIngest::open_bounded(&store, &fh, 1, &quota);
        assert!(matches!(a, OpenOutcome::Open(ref i) if i.reservation.is_some()));
        assert!(matches!(b, OpenOutcome::Open(ref i) if i.reservation.is_some()));
        assert_eq!(quota.rejects(), 0);
    }

    #[test]
    fn rejected_put_reply_echoes_identifiers() {
        let enc = put_message(5, vec![1u8; 20_000]).encode();
        let reply = rejected_put_reply(&enc, ReplyStatus::OutOfMemory)
            .expect("fragment 0 carries the header");
        assert_eq!(reply.client_id, 3);
        assert_eq!(reply.request_id, 77);
        assert_eq!(reply.client_ts_ns, 123);
        match reply.body {
            Body::PutReply { status, key } => {
                assert_eq!(status, ReplyStatus::OutOfMemory);
                assert_eq!(key, 5);
            }
            other => panic!("unexpected body {other:?}"),
        }
        // The shed valve's flavor carries its own status.
        let shed = rejected_put_reply(&enc, ReplyStatus::Overloaded).expect("same header");
        assert!(matches!(
            shed.body,
            Body::PutReply {
                status: ReplyStatus::Overloaded,
                ..
            }
        ));
        // A later fragment's chunk (no header) and a non-PUT header
        // both yield no reply.
        assert!(rejected_put_reply(&enc[..10], ReplyStatus::OutOfMemory).is_none());
        let mut get = enc.to_vec();
        get[0] = OpKind::GetRequest as u8;
        assert!(rejected_put_reply(&get, ReplyStatus::OutOfMemory).is_none());
    }

    #[test]
    fn streamed_ttl_put_round_trips_and_expires() {
        let store = test_store();
        let value: Vec<u8> = (0..20_000).map(|i| (i % 251) as u8).collect();
        let msg = Message {
            client_id: 3,
            request_id: 78,
            client_ts_ns: 123,
            body: Body::Put {
                key: 11,
                value: bytes::Bytes::from(value.clone()),
                ttl_ms: 5,
            },
        };
        let n = msg.wire_packets() as usize;
        let mut r = StreamingReassembler::new(16);
        // Reverse order: the TTL tail must be captured correctly even
        // when the final fragment arrives first.
        let ingest = stream_message(&store, &mut r, 6, &msg, (0..n).rev()).unwrap();
        let done = ingest.commit(&store).unwrap();
        assert_eq!(done.status, ReplyStatus::Ok);
        assert_eq!(done.value_len, value.len(), "tail excluded from value_len");
        assert_eq!(&store.get(11).unwrap()[..], &value[..]);
        // Advance the store clock past the 5 ms deadline: the key is
        // gone and counted as expired, not missing.
        store.set_clock_ns(6_000_000);
        assert!(store.get(11).is_none());
        assert_eq!(store.stats().expired_keys, 1);
    }

    #[test]
    fn admission_rejected_open_is_over_quota() {
        use minos_kv::{CapacityConfig, EvictionPolicy};
        let store = Store::new(StoreConfig {
            partitions: 1,
            buckets_per_partition: 8,
            overflow_per_partition: 4,
            items_per_partition: 32,
            mempool_bytes: 16 << 10,
            max_value_bytes: 1 << 20,
            capacity: CapacityConfig {
                policy: EvictionPolicy::Clock,
                admission_cutoff_bytes: 4096,
                ..Default::default()
            },
        });
        let quota = DiscardQuota::new(4);
        // A 20 000-byte PUT charges more than the 16 KiB pool's high
        // watermark: turned away before reservation, before the
        // discard quota, with no eviction pass run on its behalf.
        let fh = large_frag_header();
        assert!(matches!(
            PutIngest::open_bounded(&store, &fh, 1, &quota),
            OpenOutcome::OverQuota
        ));
        assert_eq!(store.stats().admission_rejects, 1);
        assert_eq!(quota.rejects(), 0, "rejected before the discard quota");
        assert_eq!(store.stats().evictions, 0);
    }

    #[test]
    fn dropped_ingest_releases_reservation() {
        let store = test_store();
        let msg = put_message(8, vec![2u8; 30_000]);
        let frags = fragment_with_id(5, &msg.encode());
        let mut r = StreamingReassembler::new(16);
        // Stream all but one fragment, then drop the reassembler: the
        // in-flight reservation must return to the mempool.
        for f in &frags[..frags.len() - 1] {
            assert!(matches!(
                r.push(1, f.clone(), |fh| PutIngest::open(&store, fh)),
                Streamed::Incomplete
            ));
        }
        assert!(store.mempool().used_bytes() > 0);
        drop(r);
        assert_eq!(store.mempool().used_bytes(), 0);
    }
}
