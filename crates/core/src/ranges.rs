//! Size-aware sharding *within* the large class (paper §3).
//!
//! "Minos distributes the large requests over the large cores such that
//! each large core handles a non-overlapping contiguous size range of
//! requests, and such that the processing cost of requests assigned to
//! each large core is the same. ... the smallest among the large
//! requests are assigned to the first large core, and larger requests
//! are progressively assigned to other cores."

use crate::cost::CostFn;

/// The size-range partition over the large cores.
///
/// `bounds[i]` is the inclusive upper size bound of large core `i`; the
/// last bound is always `u64::MAX`, so every large size maps somewhere.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LargeRanges {
    bounds: Vec<u64>,
}

impl LargeRanges {
    /// A single range covering all large sizes (used when there is one
    /// large core, the common case on the default workload).
    pub fn single() -> Self {
        LargeRanges {
            bounds: vec![u64::MAX],
        }
    }

    /// Builds an equal-cost partition into `n_large` contiguous ranges
    /// from `(size_upper_bound, weight)` histogram buckets. Only buckets
    /// strictly above `threshold` participate (smaller requests never
    /// reach large cores).
    ///
    /// With no mass above the threshold the partition degenerates to
    /// even log-spaced bounds so a fresh plan is still well-formed.
    pub fn build<I>(buckets: I, threshold: u64, n_large: usize, cost_fn: CostFn) -> Self
    where
        I: IntoIterator<Item = (u64, f64)> + Clone,
    {
        assert!(n_large > 0);
        if n_large == 1 {
            return Self::single();
        }
        let large_buckets = || {
            buckets
                .clone()
                .into_iter()
                .filter(move |&(ub, w)| ub > threshold && w > 0.0)
        };
        let total_cost: f64 = large_buckets()
            .map(|(ub, w)| cost_fn.cost(ub) as f64 * w)
            .sum();
        if total_cost <= 0.0 {
            // No observed large mass: split the space evenly in log
            // scale between the threshold and 1 GiB.
            let mut bounds = Vec::with_capacity(n_large);
            let lo = (threshold.max(1) as f64).ln();
            let hi = (1u64 << 30) as f64;
            let hi = hi.ln();
            for i in 1..n_large {
                let b = (lo + (hi - lo) * i as f64 / n_large as f64).exp() as u64;
                bounds.push(b);
            }
            bounds.push(u64::MAX);
            return LargeRanges { bounds };
        }

        let per_core = total_cost / n_large as f64;
        let mut bounds = Vec::with_capacity(n_large);
        let mut acc = 0.0f64;
        let mut next_cut = per_core;
        for (ub, w) in large_buckets() {
            acc += cost_fn.cost(ub) as f64 * w;
            while acc >= next_cut && bounds.len() < n_large - 1 {
                bounds.push(ub);
                next_cut += per_core;
            }
        }
        while bounds.len() < n_large - 1 {
            // Degenerate mass concentration: pad with the largest bound.
            let last = bounds.last().copied().unwrap_or(threshold);
            bounds.push(last);
        }
        bounds.push(u64::MAX);
        LargeRanges { bounds }
    }

    /// Number of ranges (= large cores).
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// True if there is a single range.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The index (among large cores, `0..n_large`) that serves an item
    /// of `size` bytes: the first range whose upper bound admits it.
    pub fn core_for_size(&self, size: u64) -> usize {
        match self.bounds.binary_search(&size) {
            // On an exact bound match, sizes equal to the bound belong
            // to that range (bounds are inclusive); binary_search may
            // land on any equal element, so scan back to the first.
            Ok(mut i) => {
                while i > 0 && self.bounds[i - 1] >= size {
                    i -= 1;
                }
                i
            }
            Err(i) => i,
        }
    }

    /// The inclusive upper bounds of each range.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_range_maps_everything_to_core_zero() {
        let r = LargeRanges::single();
        assert_eq!(r.len(), 1);
        assert_eq!(r.core_for_size(2_000), 0);
        assert_eq!(r.core_for_size(u64::MAX), 0);
    }

    /// A uniform large-size histogram between 1500 and 500 000 bytes.
    fn uniform_large_buckets() -> Vec<(u64, f64)> {
        (0..500).map(|i| (1_500 + i * 1_000, 1.0)).collect()
    }

    #[test]
    fn equal_cost_split_is_balanced() {
        let buckets = uniform_large_buckets();
        let r = LargeRanges::build(buckets.clone(), 1_400, 4, CostFn::Packets);
        assert_eq!(r.len(), 4);
        // Cost within each range should be ~25 % of the total.
        let cost = |lo: u64, hi: u64| -> f64 {
            buckets
                .iter()
                .filter(|&&(ub, _)| ub > lo && ub <= hi)
                .map(|&(ub, w)| CostFn::Packets.cost(ub) as f64 * w)
                .sum()
        };
        let total: f64 = cost(1_400, u64::MAX);
        let mut lo = 1_400u64;
        for &b in r.bounds() {
            let share = cost(lo, b) / total;
            assert!(
                (share - 0.25).abs() < 0.05,
                "range up to {b}: share {share}"
            );
            lo = b;
            if b == u64::MAX {
                break;
            }
        }
    }

    #[test]
    fn ranges_are_ordered_smallest_first() {
        let r = LargeRanges::build(uniform_large_buckets(), 1_400, 3, CostFn::Packets);
        let b = r.bounds();
        assert!(b.windows(2).all(|w| w[0] <= w[1]), "sorted bounds: {b:?}");
        assert_eq!(*b.last().unwrap(), u64::MAX);
        // Smaller sizes map to earlier cores.
        assert_eq!(r.core_for_size(2_000), 0);
        assert!(r.core_for_size(490_000) > r.core_for_size(2_000));
    }

    #[test]
    fn every_size_maps_to_exactly_one_range() {
        let r = LargeRanges::build(uniform_large_buckets(), 1_400, 4, CostFn::Packets);
        let mut prev_core = 0;
        for size in (1_500..=500_000u64).step_by(777) {
            let c = r.core_for_size(size);
            assert!(c < 4);
            assert!(c >= prev_core, "monotone in size");
            prev_core = c;
        }
    }

    #[test]
    fn boundary_sizes_belong_to_lower_range() {
        let r = LargeRanges::build(uniform_large_buckets(), 1_400, 2, CostFn::Packets);
        let cut = r.bounds()[0];
        assert_eq!(r.core_for_size(cut), 0, "inclusive upper bound");
        assert_eq!(r.core_for_size(cut + 1), 1);
    }

    #[test]
    fn no_large_mass_falls_back_to_log_split() {
        let r = LargeRanges::build(Vec::<(u64, f64)>::new(), 1_400, 3, CostFn::Packets);
        assert_eq!(r.len(), 3);
        assert_eq!(*r.bounds().last().unwrap(), u64::MAX);
        let b = r.bounds();
        assert!(b[0] > 1_400 && b[0] < b[1]);
    }

    #[test]
    fn skewed_mass_still_produces_full_partition() {
        // All the cost in one bucket: ranges degenerate but remain valid.
        let buckets = vec![(250_000u64, 1_000.0)];
        let r = LargeRanges::build(buckets, 1_400, 4, CostFn::Packets);
        assert_eq!(r.len(), 4);
        assert_eq!(*r.bounds().last().unwrap(), u64::MAX);
        // Every size still maps somewhere valid.
        for size in [1_500u64, 250_000, 900_000] {
            assert!(r.core_for_size(size) < 4);
        }
    }
}
