//! The per-request cost function (paper §3).
//!
//! "We maintain a cost function that gives us for a request of a given
//! size a certain processing cost. Minos can use various cost functions,
//! but currently uses the number of network packets handled to serve the
//! request ... Alternatives would be the number of bytes or a constant
//! plus the number of bytes."
//!
//! All three are implemented; [`CostFn::Packets`] is the default and the
//! one every experiment uses unless the ablation bench says otherwise.

use minos_wire::message::MSG_HEADER_LEN;

/// A per-request processing-cost model, keyed by item size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostFn {
    /// Number of network packets carrying the item (PUT request payload
    /// or GET reply payload) — the paper's choice.
    Packets,
    /// Raw item bytes.
    Bytes,
    /// A fixed per-request overhead plus the item bytes; models
    /// per-request CPU cost more faithfully for tiny items.
    ConstantPlusBytes {
        /// The fixed per-request cost, in byte-equivalents.
        constant: u64,
    },
}

impl CostFn {
    /// The cost of serving a request for an item of `item_size` bytes.
    ///
    /// Never returns zero: every request costs at least one unit, so
    /// cost shares stay well-defined for all-tiny workloads.
    #[inline]
    pub fn cost(&self, item_size: u64) -> u64 {
        match self {
            CostFn::Packets => u64::from(minos_wire::packets_for_payload(
                item_size as usize + MSG_HEADER_LEN,
            )),
            CostFn::Bytes => item_size.max(1),
            CostFn::ConstantPlusBytes { constant } => constant.saturating_add(item_size).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_cost_boundaries() {
        let f = CostFn::Packets;
        assert_eq!(f.cost(0), 1);
        assert_eq!(f.cost(13), 1); // tiny item: one packet
        assert_eq!(f.cost(1400), 1); // small item: one packet
        assert!(f.cost(1500) >= 2, "large items span packets");
        // A 500 KB reply spans hundreds of packets.
        let c = f.cost(500_000);
        assert!((300..400).contains(&c), "500 KB costs {c} packets");
    }

    #[test]
    fn bytes_cost() {
        assert_eq!(CostFn::Bytes.cost(1234), 1234);
        assert_eq!(CostFn::Bytes.cost(0), 1, "never zero");
    }

    #[test]
    fn constant_plus_bytes() {
        let f = CostFn::ConstantPlusBytes { constant: 100 };
        assert_eq!(f.cost(0), 100);
        assert_eq!(f.cost(50), 150);
    }

    #[test]
    fn packets_cost_is_monotonic() {
        let f = CostFn::Packets;
        let mut prev = 0;
        for size in (0..1_000_000u64).step_by(10_000) {
            let c = f.cost(size);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn cost_matches_wire_fragmentation() {
        // The controller's cost model and the actual datapath must agree
        // on packet counts — they share packets_for_payload.
        use bytes::Bytes;
        use minos_wire::message::{Body, Message};
        for size in [0usize, 100, 1456, 1457, 10_000, 500_000] {
            let m = Message {
                client_id: 0,
                request_id: 0,
                client_ts_ns: 0,
                body: Body::Put {
                    key: 1,
                    value: Bytes::from(vec![0u8; size]),
                    ttl_ms: 0,
                },
            };
            assert_eq!(
                CostFn::Packets.cost(size as u64),
                u64::from(m.wire_packets()),
                "size {size}"
            );
        }
    }
}
