//! Load-generating client with the paper's measurement methodology
//! (§5.4): open-loop request injection, send timestamps echoed on
//! replies, end-to-end latency histograms (overall, small-only and
//! large-only), and
//! strict zero-loss accounting ("we only report performance values
//! corresponding to scenarios in which the packet loss rate is equal
//! to 0").
//!
//! Latency is measured from each request's **scheduled arrival time**
//! ([`Client::send_batch_at`]), not from when the loadgen got around to
//! transmitting it — an open-loop generator that falls behind its
//! schedule and catches up in bursts would otherwise silently
//! under-report queueing delay (coordinated omission). The time between
//! first transmission and the reply is kept separately as *service
//! latency* ([`Client::service_latency`]); with an on-schedule sender
//! the two are equal, and schedule-based latency is never below
//! send-based.
//!
//! Request addressing follows §3: "The target RX queue is chosen at
//! random for GET operations, and depends on the keyhash for PUT
//! operations."
//!
//! The client speaks through a [`Transport`], so the same code drives
//! the in-process virtual NIC (via [`VirtualClientTransport`], the
//! default [`Client::new`] wires up) or real UDP sockets (the
//! `minos-loadgen` binary passes a `UdpTransport`).

use crate::engine::KvEngine;
use bytes::Bytes;
use minos_net::{Transport, VirtualClientTransport};
use minos_stats::LatencyHistogram;
use minos_wire::frag::{FragHeader, FragmentWriter, Fragmenter, Streamed, StreamingReassembler};
use minos_wire::message::{Body, Message, OpKind, ReplyStatus, MSG_HEADER_LEN};
use minos_wire::packet::{synthesize_frame, Endpoint, TxPacket};
use minos_wire::TxFrame;
use minos_workload::{OpSpec, Operation, Rng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of one completed request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The key operated on.
    pub key: u64,
    /// Kind of the reply received.
    pub kind: OpKind,
    /// Reply status.
    pub status: ReplyStatus,
    /// End-to-end latency in nanoseconds, measured from the request's
    /// scheduled arrival time (coordinated-omission-free).
    pub latency_ns: u64,
    /// Service latency in nanoseconds, measured from the request's
    /// first transmission. `latency_ns - service_ns` is the scheduling
    /// lag the sender accumulated before this request went out.
    pub service_ns: u64,
    /// Whether the request targeted a large item.
    pub large: bool,
}

/// Client-side retransmission policy. The paper leaves retransmission
/// to the client (§4.1); this is the optional timeout-and-retry flavor
/// `minos-loadgen --retry-timeout-ms` enables. Latency is always
/// measured from the request's scheduled arrival (service latency from
/// its *first* transmission), never from a retry, and requests that
/// exhaust their retry budget stay outstanding, so loss accounting
/// remains honest: the zero-loss reporting mode is simply "no retry
/// policy".
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// How long a request may stay unanswered before it is resent.
    pub timeout: Duration,
    /// Maximum resends per request; afterwards the request is left to
    /// the loss accounting.
    pub max_retries: u32,
}

struct Pending {
    /// Scheduled arrival time on the open-loop injection schedule
    /// (latency is measured from here — the coordinated-omission fix).
    /// Callers that don't schedule pass the send instant, collapsing
    /// the two clocks.
    sched_ns: u64,
    /// First transmission time (service latency is measured from here).
    first_tx_ns: u64,
    /// Most recent (re)transmission time.
    last_tx_ns: u64,
    retries: u32,
    key: u64,
    large: bool,
    /// Encoded request frame and target queue, kept only when a retry
    /// policy is active (cloning a frame is an `O(1)` refcount bump per
    /// segment, not a value copy).
    resend: Option<(TxFrame, u16)>,
}

/// Client-side totals.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientTotals {
    /// Requests sent.
    pub sent: u64,
    /// Replies received and matched.
    pub completed: u64,
    /// Replies that could not be matched to a pending request (includes
    /// duplicate replies caused by retransmission).
    pub unmatched: u64,
    /// Non-Ok replies.
    pub errors: u64,
    /// Requests re-sent by the retry policy.
    pub retransmits: u64,
}

impl ClientTotals {
    /// Requests with no reply yet. Non-zero at the end of a run means
    /// packet loss — the paper's methodology discards such runs.
    pub fn outstanding(&self) -> u64 {
        self.sent - self.completed
    }
}

/// Default reassembly-round length for the client's stale-partial
/// eviction clock: one second dwarfs any realistic reply spread, so
/// only partials that actually lost a fragment are ever dropped.
pub const CLIENT_REASSEMBLY_ROUND_NS: u64 = 1_000_000_000;

/// Reassembly sink for multi-fragment GET replies that streams each
/// fragment to its final destination as it arrives: header bytes into a
/// fixed 32-byte array (parsed in place on completion) and value bytes
/// straight into the buffer that *becomes* the reply's value — no
/// intermediate header+value concatenation is ever built, and the
/// completed sink decodes via [`Message::decode_streamed`] instead of a
/// contiguous [`Message::decode`]. Single-fragment replies never
/// construct one (their payload decodes in place).
struct ReplySink {
    header: [u8; MSG_HEADER_LEN],
    value: Vec<u8>,
    /// Value bytes written through `write_at` — exactly one copy per
    /// value byte on this path, surfaced as `client.reply_copied_bytes`
    /// so tests can pin the single-copy property.
    copied: u64,
}

impl ReplySink {
    fn open(h: &FragHeader) -> Option<ReplySink> {
        let msg_len = h.msg_len as usize;
        // A multi-fragment message shorter than the fixed header is
        // malformed; rejecting here surfaces it in the unmatched count.
        if msg_len < MSG_HEADER_LEN {
            return None;
        }
        Some(ReplySink {
            header: [0; MSG_HEADER_LEN],
            value: vec![0; msg_len - MSG_HEADER_LEN],
            copied: 0,
        })
    }
}

impl FragmentWriter for ReplySink {
    fn write_at(&mut self, offset: usize, chunk: &[u8]) {
        let mut offset = offset;
        let mut chunk = chunk;
        if offset < MSG_HEADER_LEN {
            let n = chunk.len().min(MSG_HEADER_LEN - offset);
            self.header[offset..offset + n].copy_from_slice(&chunk[..n]);
            offset += n;
            chunk = &chunk[n..];
        }
        if !chunk.is_empty() {
            let at = offset - MSG_HEADER_LEN;
            self.value[at..at + chunk.len()].copy_from_slice(chunk);
            self.copied += chunk.len() as u64;
        }
    }
}

/// A synchronous client bound to one server over some transport.
pub struct Client {
    transport: Arc<dyn Transport>,
    endpoint: Endpoint,
    /// Queue-0 endpoint of the server; queue `q` is the same address
    /// at `port + q` (the paper's port-addresses-queue convention).
    server: Endpoint,
    server_queues: u16,
    /// Queues requests may target. Defaults to all; SHO restricts it to
    /// the handoff cores' queues ("The number of handoff cores is fixed
    /// and known a priori by the clients, which only send requests to
    /// the corresponding RX queues", §5.2).
    target_queues: std::ops::Range<u16>,
    fragmenter: Fragmenter,
    /// Streams multi-fragment reply chunks straight into their final
    /// contiguous buffer; stale partials (a lost reply fragment) are
    /// evicted by the round clock below instead of lingering until the
    /// capacity bound forces them out.
    reassembler: StreamingReassembler<ReplySink>,
    /// Length of one reassembly round; a partial untouched for two
    /// completed rounds is evicted.
    reassembly_round_ns: u64,
    /// When the current reassembly round closes.
    next_round_ns: u64,
    rng: Rng,
    clock: Instant,
    next_request_id: u64,
    pending: HashMap<u64, Pending>,
    latency: LatencyHistogram,
    latency_small: LatencyHistogram,
    latency_large: LatencyHistogram,
    service_latency: LatencyHistogram,
    /// Value bytes copied while reassembling multi-fragment replies
    /// (one copy per byte; see [`ReplySink`]).
    reply_copied_bytes: u64,
    totals: ClientTotals,
    client_id: u16,
    retry: Option<RetryPolicy>,
    /// Next time (ns) the pending map is scanned for due retransmits;
    /// scanning every poll would be O(pending) per packet.
    next_retry_scan_ns: u64,
}

impl Client {
    /// Creates a client with the given id talking to `engine` through
    /// its virtual NIC.
    pub fn new(engine: &dyn KvEngine, client_id: u16, seed: u64) -> Self {
        let nic = engine.nic();
        // Client host ids start at 100 to stay clear of the server.
        let endpoint = Endpoint::host(100 + u32::from(client_id), 20_000 + client_id);
        let server = Transport::local_endpoint(&*nic, 0);
        let server_queues = Transport::num_queues(&*nic);
        let transport = Arc::new(VirtualClientTransport::new(nic, endpoint));
        Self::with_transport(transport, endpoint, server, server_queues, client_id, seed)
    }

    /// Creates a client over an arbitrary transport.
    ///
    /// * `endpoint` — the client's own address (replies must be
    ///   addressed to it).
    /// * `server` — the server's queue-0 endpoint; queue `q` is reached
    ///   at `server.port + q`.
    /// * `server_queues` — number of server RX queues.
    pub fn with_transport(
        transport: Arc<dyn Transport>,
        endpoint: Endpoint,
        server: Endpoint,
        server_queues: u16,
        client_id: u16,
        seed: u64,
    ) -> Self {
        assert!(server_queues > 0);
        assert!(
            server.port.checked_add(server_queues - 1).is_some(),
            "server port {} + {} queues exceeds the u16 port space",
            server.port,
            server_queues
        );
        Client {
            transport,
            endpoint,
            server,
            server_queues,
            target_queues: 0..server_queues,
            fragmenter: Fragmenter::new(u64::from(client_id) << 32),
            reassembler: StreamingReassembler::new(1024),
            reassembly_round_ns: CLIENT_REASSEMBLY_ROUND_NS,
            next_round_ns: CLIENT_REASSEMBLY_ROUND_NS,
            rng: Rng::new(seed),
            clock: Instant::now(),
            next_request_id: 1,
            pending: HashMap::new(),
            latency: LatencyHistogram::new(),
            latency_small: LatencyHistogram::new(),
            latency_large: LatencyHistogram::new(),
            service_latency: LatencyHistogram::new(),
            reply_copied_bytes: 0,
            totals: ClientTotals::default(),
            client_id,
            retry: None,
            next_retry_scan_ns: 0,
        }
    }

    /// Restricts the RX queues this client targets (SHO's contract).
    pub fn with_target_queues(mut self, queues: std::ops::Range<u16>) -> Self {
        assert!(!queues.is_empty());
        assert!(queues.end <= self.server_queues);
        self.target_queues = queues;
        self
    }

    /// Overrides the reassembly-round length (stale-partial eviction
    /// cadence; see [`CLIENT_REASSEMBLY_ROUND_NS`]). Tests use short
    /// rounds to observe evictions quickly.
    pub fn with_reassembly_round(mut self, round: Duration) -> Self {
        assert!(!round.is_zero());
        self.reassembly_round_ns = round.as_nanos() as u64;
        self.next_round_ns = self.now_ns() + self.reassembly_round_ns;
        self
    }

    /// Enables timeout-and-retry retransmission. Without a policy
    /// (the default) the client never resends — the paper's zero-loss
    /// measurement mode, where any loss must surface in the report.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        assert!(!policy.timeout.is_zero(), "retry timeout must be positive");
        self.retry = Some(policy);
        self
    }

    /// Nanoseconds on this client's private monotonic clock — the time
    /// domain scheduled-arrival deadlines for [`Client::send_at`] /
    /// [`Client::send_batch_at`] must be expressed in.
    pub fn now_ns(&self) -> u64 {
        self.clock.elapsed().as_nanos() as u64
    }

    /// The per-source key the server derives for this client's frames
    /// (reassembly and discard-quota accounting are charged to it).
    pub fn source_key(&self) -> u64 {
        self.endpoint.source_key()
    }

    fn pick_random_queue(&mut self) -> u16 {
        let span = self.target_queues.len();
        self.target_queues.start + self.rng.index(span) as u16
    }

    fn pick_keyhash_queue(&self, key: u64) -> u16 {
        let span = u64::from(self.target_queues.end - self.target_queues.start);
        self.target_queues.start + (minos_kv::keyhash(key) % span) as u16
    }

    /// Sends one operation from the workload generator. Values for PUTs
    /// are synthesized at the spec's item size. Latency is measured from
    /// now — use [`Client::send_at`] when the op had an earlier
    /// scheduled arrival.
    pub fn send(&mut self, spec: &OpSpec) {
        let sched_ns = self.now_ns();
        self.send_at(spec, sched_ns);
    }

    /// Sends one operation whose scheduled arrival on the open-loop
    /// injection schedule was `sched_ns` (in [`Client::now_ns`]'s time
    /// domain). Latency is measured from `sched_ns`, so a sender that
    /// fell behind schedule still reports the queueing delay its
    /// lateness inflicted — the coordinated-omission fix.
    pub fn send_at(&mut self, spec: &OpSpec, sched_ns: u64) {
        let (frame, queue) = self.prepare_spec(spec, sched_ns);
        self.transmit(&frame, queue);
    }

    /// Sends a batch of operations as one coalesced transmit: every
    /// fragment of every request goes out through a single
    /// [`Transport::tx_frames`] (one `sendmmsg` on the UDP backend for
    /// bursts up to the syscall batch size), instead of one
    /// send per request. This is how an open-loop load generator that
    /// has fallen behind its schedule catches up without paying a
    /// syscall per overdue arrival. PUT values ride the burst as
    /// refcounted frame segments — uncopied all the way into the
    /// kernel's gather list.
    pub fn send_batch(&mut self, specs: &[OpSpec]) {
        match specs {
            [] => {}
            [one] => self.send(one),
            many => {
                let sched_ns = self.now_ns();
                let mut burst: Vec<TxPacket> = Vec::with_capacity(many.len());
                for spec in many {
                    let (frame, queue) = self.prepare_spec(spec, sched_ns);
                    let dst = self.queue_endpoint(queue);
                    for frag in self.fragmenter.fragment_frame(&frame) {
                        burst.push(synthesize_frame(self.endpoint, dst, frag));
                    }
                }
                let _ = self.transport.tx_frames(0, &mut burst);
            }
        }
    }

    /// [`Client::send_batch`] with a per-op scheduled arrival time:
    /// each `(spec, sched_ns)` pair is prepared with its own deadline
    /// (see [`Client::send_at`]) and the whole batch still goes out as
    /// one coalesced [`Transport::tx_frames`] burst. This is the open
    /// loop's catch-up path — overdue arrivals keep their original
    /// deadlines, so the latency histogram charges the backlog to the
    /// requests that sat in it.
    pub fn send_batch_at(&mut self, specs: &[(OpSpec, u64)]) {
        match specs {
            [] => {}
            [(one, sched_ns)] => self.send_at(one, *sched_ns),
            many => {
                let mut burst: Vec<TxPacket> = Vec::with_capacity(many.len());
                for (spec, sched_ns) in many {
                    let (frame, queue) = self.prepare_spec(spec, *sched_ns);
                    let dst = self.queue_endpoint(queue);
                    for frag in self.fragmenter.fragment_frame(&frame) {
                        burst.push(synthesize_frame(self.endpoint, dst, frag));
                    }
                }
                let _ = self.transport.tx_frames(0, &mut burst);
            }
        }
    }

    /// Encodes one workload op and registers it as pending (latency
    /// clock starts at `sched_ns`, service clock at now); returns the
    /// encoded message frame and its target queue.
    fn prepare_spec(&mut self, spec: &OpSpec, sched_ns: u64) -> (TxFrame, u16) {
        match spec.op {
            Operation::Get => {
                let queue = self.pick_random_queue();
                self.prepare_message(
                    Body::Get { key: spec.key },
                    spec.key,
                    queue,
                    spec.is_large,
                    sched_ns,
                )
            }
            Operation::Put => {
                let value = vec![(spec.key % 251) as u8; spec.item_size as usize];
                let queue = self.pick_keyhash_queue(spec.key);
                let body = Body::Put {
                    key: spec.key,
                    // The synthesized value moves into the message —
                    // no second copy on the loadgen hot path.
                    value: Bytes::from(value),
                    ttl_ms: spec.ttl_ms,
                };
                self.prepare_message(body, spec.key, queue, spec.is_large, sched_ns)
            }
        }
    }

    /// Sends a GET for `key` to a uniformly random (permitted) RX queue.
    pub fn send_get(&mut self, key: u64, large_hint: bool) {
        let queue = self.pick_random_queue();
        let body = Body::Get { key };
        self.send_message(body, key, queue, large_hint);
    }

    /// Sends a PUT for `key`; the RX queue is derived from the keyhash
    /// (so all fragments of one PUT land in the same queue and writes to
    /// one key are CREW-routable).
    pub fn send_put(&mut self, key: u64, value: &[u8], large_hint: bool) {
        self.send_put_with_ttl(key, value, large_hint, 0);
    }

    /// [`Client::send_put`] with a per-key TTL in milliseconds (`0` =
    /// never expires).
    pub fn send_put_with_ttl(&mut self, key: u64, value: &[u8], large_hint: bool, ttl_ms: u64) {
        let queue = self.pick_keyhash_queue(key);
        let body = Body::Put {
            key,
            value: bytes::Bytes::copy_from_slice(value),
            ttl_ms,
        };
        self.send_message(body, key, queue, large_hint);
    }

    /// Sends a DELETE for `key` (keyhash-routed like PUTs).
    pub fn send_delete(&mut self, key: u64) {
        let queue = self.pick_keyhash_queue(key);
        self.send_message(Body::Delete { key }, key, queue, false);
    }

    fn send_message(&mut self, body: Body, key: u64, queue: u16, large: bool) {
        let sched_ns = self.now_ns();
        let (frame, queue) = self.prepare_message(body, key, queue, large, sched_ns);
        self.transmit(&frame, queue);
    }

    /// Encodes a request as a scatter-gather frame and registers it as
    /// pending — everything [`Client::send_message`] does short of
    /// transmitting, so batched senders can coalesce many prepared
    /// requests into one burst.
    fn prepare_message(
        &mut self,
        body: Body,
        key: u64,
        queue: u16,
        large: bool,
        sched_ns: u64,
    ) -> (TxFrame, u16) {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let now = self.now_ns();
        let msg = Message {
            client_id: self.client_id,
            request_id,
            client_ts_ns: now,
            body,
        };
        let frame = msg.encode_frame();
        self.pending.insert(
            request_id,
            Pending {
                sched_ns,
                first_tx_ns: now,
                last_tx_ns: now,
                retries: 0,
                key,
                large,
                resend: self.retry.map(|_| (frame.clone(), queue)),
            },
        );
        self.totals.sent += 1;
        (frame, queue)
    }

    /// The server endpoint addressing RX queue `queue`.
    fn queue_endpoint(&self, queue: u16) -> Endpoint {
        Endpoint {
            mac: self.server.mac,
            ip: self.server.ip,
            port: self.server.port + queue,
        }
    }

    /// Fragments the request `frame` and transmits it as one
    /// [`Transport::tx_frames`] burst (one `sendmmsg` on the UDP
    /// backend instead of a syscall per fragment); each fragment's
    /// payload segments are slices of the original frame's segments, so
    /// nothing is copied here regardless of size.
    fn transmit(&mut self, frame: &TxFrame, queue: u16) {
        let dst = self.queue_endpoint(queue);
        let mut burst: Vec<TxPacket> = self
            .fragmenter
            .fragment_frame(frame)
            .into_iter()
            .map(|frag| synthesize_frame(self.endpoint, dst, frag))
            .collect();
        let _ = self.transport.tx_frames(0, &mut burst);
    }

    /// Resends every pending request whose retry timer expired. Called
    /// from [`Client::poll`]; scans at most every `timeout / 4`.
    fn retransmit_due(&mut self) {
        let Some(policy) = self.retry else { return };
        let now = self.now_ns();
        if now < self.next_retry_scan_ns {
            return;
        }
        let timeout_ns = policy.timeout.as_nanos() as u64;
        self.next_retry_scan_ns = now + (timeout_ns / 4).max(1);
        let due: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| {
                p.resend.is_some()
                    && p.retries < policy.max_retries
                    && now.saturating_sub(p.last_tx_ns) >= timeout_ns
            })
            .map(|(id, _)| *id)
            .collect();
        for id in due {
            let (frame, queue) = self.pending[&id]
                .resend
                .clone()
                .expect("filtered on resend presence");
            // Re-fragmenting draws a fresh msg id, so stale fragments of
            // the original transmission can never merge with the retry
            // in the server's reassembler.
            self.transmit(&frame, queue);
            let sent_at = self.now_ns();
            let p = self.pending.get_mut(&id).expect("still pending");
            p.retries += 1;
            p.last_tx_ns = sent_at;
            self.totals.retransmits += 1;
        }
    }

    /// Drains reply packets from the transport, reassembles and matches
    /// them; returns completions observed in this poll.
    pub fn poll(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        let mut pkts = Vec::new();
        self.transport.rx_burst(0, &mut pkts, 4096);
        for pkt in pkts.drain(..) {
            // Filter by destination port: over UDP the kernel already
            // isolates sockets, but the virtual adapter drains the
            // server's shared TX rings, where a reply addressed to a
            // different client can surface. Such a reply is dropped
            // here — each engine supports ONE virtual client; loss
            // accounting flags any misuse.
            if pkt.meta.udp.dst_port != self.endpoint.port {
                continue;
            }
            let src = pkt.source_endpoint();
            // Single-fragment replies (the overwhelming majority)
            // decode straight from the datagram payload — no reassembly
            // state, no buffer allocation, no extra copy.
            let mut rd = pkt.payload.clone();
            match FragHeader::decode(&mut rd) {
                None => {
                    self.totals.unmatched += 1;
                    continue;
                }
                Some(fh) if fh.count == 1 => {
                    if let Some(msg) = Message::decode(rd) {
                        if let Some(c) = self.complete(msg) {
                            out.push(c);
                        }
                    } else {
                        self.totals.unmatched += 1;
                    }
                    continue;
                }
                Some(_) => {}
            }
            match self.reassembler.push(src, pkt.payload, ReplySink::open) {
                Streamed::Complete(sink) => {
                    self.reply_copied_bytes += sink.copied;
                    if let Some(msg) =
                        Message::decode_streamed(&sink.header, Bytes::from(sink.value))
                    {
                        if let Some(c) = self.complete(msg) {
                            out.push(c);
                        }
                    } else {
                        self.totals.unmatched += 1;
                    }
                }
                Streamed::Incomplete => {}
                _ => self.totals.unmatched += 1,
            }
        }
        self.advance_reassembly_round();
        self.retransmit_due();
        out
    }

    /// Drives the stale-partial eviction clock: closes the reassembly
    /// round when it expires, evicting partials untouched for two
    /// completed rounds — a lost reply fragment no longer strands its
    /// buffer (and its pending-map entry stays for loss accounting,
    /// exactly as before). With no partials in flight the round is just
    /// re-armed, so a fresh partial always gets its full grace period.
    fn advance_reassembly_round(&mut self) {
        let now = self.now_ns();
        if now < self.next_round_ns {
            return;
        }
        self.next_round_ns = now + self.reassembly_round_ns;
        if self.reassembler.pending() > 0 {
            self.reassembler.advance_round();
        }
    }

    /// Stale reply partials evicted by the round clock (plus capacity
    /// and geometry-mismatch drops). Non-zero means reply fragments were
    /// lost on the wire. Reported as `client.reassembly_evictions`.
    pub fn reassembly_evictions(&self) -> u64 {
        self.reassembler.evicted
    }

    fn complete(&mut self, msg: Message) -> Option<Completion> {
        let Some(pending) = self.pending.remove(&msg.request_id) else {
            self.totals.unmatched += 1;
            return None;
        };
        let now = self.now_ns();
        let latency_ns = now.saturating_sub(pending.sched_ns);
        let service_ns = now.saturating_sub(pending.first_tx_ns);
        let status = match &msg.body {
            Body::GetReply { status, .. }
            | Body::PutReply { status, .. }
            | Body::DeleteReply { status, .. } => *status,
            _ => {
                self.totals.unmatched += 1;
                return None;
            }
        };
        self.totals.completed += 1;
        if status != ReplyStatus::Ok {
            self.totals.errors += 1;
        }
        self.latency.record_ns(latency_ns);
        self.service_latency.record_ns(service_ns);
        if pending.large {
            self.latency_large.record_ns(latency_ns);
        } else {
            self.latency_small.record_ns(latency_ns);
        }
        Some(Completion {
            key: pending.key,
            kind: msg.body.kind(),
            status,
            latency_ns,
            service_ns,
            large: pending.large,
        })
    }

    /// Busy-polls until all outstanding requests complete or `timeout`
    /// elapses; returns true on full completion.
    pub fn drain(&mut self, timeout: std::time::Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.totals.outstanding() > 0 {
            self.poll();
            if Instant::now() > deadline {
                return false;
            }
            std::hint::spin_loop();
        }
        true
    }

    /// Latency histogram over all completed requests, measured from
    /// each request's scheduled arrival (coordinated-omission-free).
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Latency histogram over small requests only — the tail the paper
    /// protects, and the one the discipline shoot-out compares —
    /// schedule-based like [`Client::latency`].
    pub fn latency_small(&self) -> &LatencyHistogram {
        &self.latency_small
    }

    /// Latency histogram over large requests only (Figure 4's metric),
    /// schedule-based like [`Client::latency`].
    pub fn latency_large(&self) -> &LatencyHistogram {
        &self.latency_large
    }

    /// Service-latency histogram: time from each request's *first
    /// transmission* to its reply, over all completed requests. With an
    /// on-schedule sender this equals [`Client::latency`]; the gap
    /// between the two is the scheduling lag coordinated omission used
    /// to hide.
    pub fn service_latency(&self) -> &LatencyHistogram {
        &self.service_latency
    }

    /// Value bytes copied while reassembling multi-fragment replies.
    /// Each streamed value byte is written exactly once into the buffer
    /// the reply hands out, so this equals the total value bytes
    /// received on the large-GET path — any excess would mean an
    /// intermediate copy crept back in. Reported as
    /// `client.reply_copied_bytes`.
    pub fn reply_copied_bytes(&self) -> u64 {
        self.reply_copied_bytes
    }

    /// Totals snapshot.
    pub fn totals(&self) -> ClientTotals {
        self.totals
    }
}
