//! Load-generating client with the paper's measurement methodology
//! (§5.4): open-loop request injection, send timestamps echoed on
//! replies, end-to-end latency histograms (overall, small-only and
//! large-only), and
//! strict zero-loss accounting ("we only report performance values
//! corresponding to scenarios in which the packet loss rate is equal
//! to 0").
//!
//! Latency is measured from each request's **scheduled arrival time**
//! ([`Client::send_batch_at`]), not from when the loadgen got around to
//! transmitting it — an open-loop generator that falls behind its
//! schedule and catches up in bursts would otherwise silently
//! under-report queueing delay (coordinated omission). The time between
//! first transmission and the reply is kept separately as *service
//! latency* ([`Client::service_latency`]); with an on-schedule sender
//! the two are equal, and schedule-based latency is never below
//! send-based.
//!
//! Request addressing follows §3: "The target RX queue is chosen at
//! random for GET operations, and depends on the keyhash for PUT
//! operations."
//!
//! The client speaks through a [`Transport`], so the same code drives
//! the in-process virtual NIC (via [`VirtualClientTransport`], the
//! default [`Client::new`] wires up) or real UDP sockets (the
//! `minos-loadgen` binary passes a `UdpTransport`).

use crate::engine::KvEngine;
use bytes::Bytes;
use minos_net::{Transport, VirtualClientTransport};
use minos_stats::LatencyHistogram;
use minos_wire::frag::{FragHeader, FragmentWriter, Fragmenter, Streamed, StreamingReassembler};
use minos_wire::message::{Body, Message, OpKind, ReplyStatus, MSG_HEADER_LEN};
use minos_wire::packet::{synthesize_frame, Endpoint, TxPacket};
use minos_wire::TxFrame;
use minos_workload::{OpSpec, Operation, Rng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of one completed request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The key operated on.
    pub key: u64,
    /// Kind of the reply received.
    pub kind: OpKind,
    /// Reply status.
    pub status: ReplyStatus,
    /// End-to-end latency in nanoseconds, measured from the request's
    /// scheduled arrival time (coordinated-omission-free).
    pub latency_ns: u64,
    /// Service latency in nanoseconds, measured from the request's
    /// first transmission. `latency_ns - service_ns` is the scheduling
    /// lag the sender accumulated before this request went out.
    pub service_ns: u64,
    /// Whether the request targeted a large item.
    pub large: bool,
}

/// Client-side retransmission policy. The paper leaves retransmission
/// to the client (§4.1); this is the optional timeout-and-retry flavor
/// `minos-loadgen --retry-timeout-ms` enables. Latency is always
/// measured from the request's scheduled arrival (service latency from
/// its *first* transmission), never from a retry.
///
/// The per-attempt timeout grows exponentially (`timeout ×
/// backoff^retries`, capped at `max_timeout`) with a deterministic
/// per-request jitter in `[1.0, 1.25)`, so a loss burst doesn't
/// resynchronize every straggler into one retransmit storm. A request
/// that exhausts its budget and times out once more is *abandoned* and
/// counted in [`ClientTotals::timed_out`] — explicit loss, never a
/// silent histogram hole (`sent == completed + outstanding +
/// timed_out` always holds). The zero-loss reporting mode is simply
/// "no retry policy".
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// How long the first attempt may stay unanswered before it is
    /// resent.
    pub timeout: Duration,
    /// Maximum resends per request; afterwards one final timeout moves
    /// the request to [`ClientTotals::timed_out`].
    pub max_retries: u32,
    /// Timeout multiplier per retry (exponential backoff; `1.0` = flat).
    pub backoff: f64,
    /// Upper bound on the backed-off per-attempt timeout.
    pub max_timeout: Duration,
}

impl RetryPolicy {
    /// A policy with the given first-attempt timeout and retry budget,
    /// doubling per retry up to `8 × timeout`.
    pub fn new(timeout: Duration, max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            timeout,
            max_retries,
            backoff: 2.0,
            max_timeout: timeout.saturating_mul(8),
        }
    }
}

/// Hedged-request policy ("tail-tolerant" duplicate requests): once a
/// request has waited longer than an adaptive delay — the client's own
/// observed service-latency `percentile`, clamped to `[min_delay,
/// max_delay]` — a duplicate is sent to a *different* RX queue and the
/// first reply wins. The hedge never touches the schedule or
/// first-transmission clocks, so latency accounting stays
/// coordinated-omission-honest; the losing reply is counted
/// ([`ClientTotals::wasted_replies`]) and its buffer dropped.
#[derive(Clone, Copy, Debug)]
pub struct HedgePolicy {
    /// Service-latency percentile the hedge delay adapts to.
    pub percentile: f64,
    /// Floor for the adaptive delay (hedge no sooner than this).
    pub min_delay: Duration,
    /// Cap for the adaptive delay; also the delay used until enough
    /// samples exist to estimate the percentile.
    pub max_delay: Duration,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy {
            percentile: 99.0,
            min_delay: Duration::from_micros(500),
            max_delay: Duration::from_millis(100),
        }
    }
}

struct Pending {
    /// Scheduled arrival time on the open-loop injection schedule
    /// (latency is measured from here — the coordinated-omission fix).
    /// Callers that don't schedule pass the send instant, collapsing
    /// the two clocks.
    sched_ns: u64,
    /// First transmission time (service latency is measured from here).
    first_tx_ns: u64,
    /// Most recent (re)transmission time.
    last_tx_ns: u64,
    retries: u32,
    key: u64,
    large: bool,
    /// The request message and its original target queue, kept only
    /// when a retry or hedging policy is active (a [`Message`] clone is
    /// an `O(1)` refcount bump on the value bytes, not a value copy;
    /// re-encoding on the rare resend path is what lets the hedge copy
    /// carry its marker bit).
    resend: Option<(Message, u16)>,
    /// Queue the hedge duplicate was sent to, once one was.
    hedge_queue: Option<u16>,
}

/// Client-side totals.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientTotals {
    /// Requests sent.
    pub sent: u64,
    /// Replies received and matched.
    pub completed: u64,
    /// Replies that could not be matched to a pending request (includes
    /// duplicate replies caused by retransmission).
    pub unmatched: u64,
    /// Non-Ok replies.
    pub errors: u64,
    /// Requests re-sent by the retry policy.
    pub retransmits: u64,
    /// Requests abandoned after exhausting the retry budget — explicit
    /// loss that would otherwise vanish from the histograms
    /// (`sent == completed + outstanding + timed_out`).
    pub timed_out: u64,
    /// Hedge duplicates sent.
    pub hedges_sent: u64,
    /// Requests whose *hedge* reply arrived first.
    pub hedge_wins: u64,
    /// Duplicate or late replies discarded after the request was
    /// already completed or abandoned — hedge losers and post-timeout
    /// stragglers (their buffers are dropped on the spot).
    pub wasted_replies: u64,
    /// `Overloaded` replies: the server shed the request at placement
    /// time; the client backs off hedges and stretches retry timeouts
    /// for a short window after each one.
    pub overloaded: u64,
}

impl ClientTotals {
    /// Requests still awaiting a reply (abandoned requests are counted
    /// in [`ClientTotals::timed_out`], not here). Non-zero at the end
    /// of a run means unresolved packet loss — the paper's methodology
    /// discards such runs; so does a non-zero `timed_out`.
    pub fn outstanding(&self) -> u64 {
        self.sent - self.completed - self.timed_out
    }
}

/// Default reassembly-round length for the client's stale-partial
/// eviction clock: one second dwarfs any realistic reply spread, so
/// only partials that actually lost a fragment are ever dropped.
pub const CLIENT_REASSEMBLY_ROUND_NS: u64 = 1_000_000_000;

/// Reassembly sink for multi-fragment GET replies that streams each
/// fragment to its final destination as it arrives: header bytes into a
/// fixed 32-byte array (parsed in place on completion) and value bytes
/// straight into the buffer that *becomes* the reply's value — no
/// intermediate header+value concatenation is ever built, and the
/// completed sink decodes via [`Message::decode_streamed`] instead of a
/// contiguous [`Message::decode`]. Single-fragment replies never
/// construct one (their payload decodes in place).
struct ReplySink {
    header: [u8; MSG_HEADER_LEN],
    value: Vec<u8>,
    /// Value bytes written through `write_at` — exactly one copy per
    /// value byte on this path, surfaced as `client.reply_copied_bytes`
    /// so tests can pin the single-copy property.
    copied: u64,
}

impl ReplySink {
    fn open(h: &FragHeader) -> Option<ReplySink> {
        let msg_len = h.msg_len as usize;
        // A multi-fragment message shorter than the fixed header is
        // malformed; rejecting here surfaces it in the unmatched count.
        if msg_len < MSG_HEADER_LEN {
            return None;
        }
        Some(ReplySink {
            header: [0; MSG_HEADER_LEN],
            value: vec![0; msg_len - MSG_HEADER_LEN],
            copied: 0,
        })
    }
}

impl FragmentWriter for ReplySink {
    fn write_at(&mut self, offset: usize, chunk: &[u8]) {
        let mut offset = offset;
        let mut chunk = chunk;
        if offset < MSG_HEADER_LEN {
            let n = chunk.len().min(MSG_HEADER_LEN - offset);
            self.header[offset..offset + n].copy_from_slice(&chunk[..n]);
            offset += n;
            chunk = &chunk[n..];
        }
        if !chunk.is_empty() {
            let at = offset - MSG_HEADER_LEN;
            self.value[at..at + chunk.len()].copy_from_slice(chunk);
            self.copied += chunk.len() as u64;
        }
    }
}

/// A synchronous client bound to one server over some transport.
pub struct Client {
    transport: Arc<dyn Transport>,
    endpoint: Endpoint,
    /// Queue-0 endpoint of the server; queue `q` is the same address
    /// at `port + q` (the paper's port-addresses-queue convention).
    server: Endpoint,
    server_queues: u16,
    /// Queues requests may target. Defaults to all; SHO restricts it to
    /// the handoff cores' queues ("The number of handoff cores is fixed
    /// and known a priori by the clients, which only send requests to
    /// the corresponding RX queues", §5.2).
    target_queues: std::ops::Range<u16>,
    fragmenter: Fragmenter,
    /// Streams multi-fragment reply chunks straight into their final
    /// contiguous buffer; stale partials (a lost reply fragment) are
    /// evicted by the round clock below instead of lingering until the
    /// capacity bound forces them out.
    reassembler: StreamingReassembler<ReplySink>,
    /// Length of one reassembly round; a partial untouched for two
    /// completed rounds is evicted.
    reassembly_round_ns: u64,
    /// When the current reassembly round closes.
    next_round_ns: u64,
    rng: Rng,
    clock: Instant,
    next_request_id: u64,
    pending: HashMap<u64, Pending>,
    latency: LatencyHistogram,
    latency_small: LatencyHistogram,
    latency_large: LatencyHistogram,
    service_latency: LatencyHistogram,
    /// Value bytes copied while reassembling multi-fragment replies
    /// (one copy per byte; see [`ReplySink`]).
    reply_copied_bytes: u64,
    totals: ClientTotals,
    client_id: u16,
    retry: Option<RetryPolicy>,
    hedge: Option<HedgePolicy>,
    /// Next time (ns) the pending map is scanned for due retransmits
    /// and hedges; scanning every poll would be O(pending) per packet.
    next_retry_scan_ns: u64,
    /// End of the current overload-backoff window: while `now` is below
    /// it, hedges are suppressed and retry timeouts doubled. Armed by
    /// every [`ReplyStatus::Overloaded`] reply.
    backoff_until_ns: u64,
    /// Recently completed-or-abandoned request ids that may still have
    /// a duplicate reply in flight (hedged, retried, or timed out), so
    /// a late reply counts as [`ClientTotals::wasted_replies`] instead
    /// of polluting `unmatched`. Bounded FIFO ring.
    dup_ring: std::collections::VecDeque<u64>,
    dup_set: std::collections::HashSet<u64>,
}

/// Capacity of the duplicate-reply recognition ring.
const DUP_RING_CAP: usize = 4096;

/// How long one `Overloaded` reply suppresses hedging and stretches
/// retry timeouts.
const OVERLOAD_BACKOFF_NS: u64 = 2_000_000;

/// Service-latency samples required before the hedge delay trusts the
/// percentile estimate; below this the policy's `max_delay` is used.
const HEDGE_WARMUP_SAMPLES: u64 = 64;

fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Client {
    /// Creates a client with the given id talking to `engine` through
    /// its virtual NIC.
    pub fn new(engine: &dyn KvEngine, client_id: u16, seed: u64) -> Self {
        let nic = engine.nic();
        // Client host ids start at 100 to stay clear of the server.
        let endpoint = Endpoint::host(100 + u32::from(client_id), 20_000 + client_id);
        let server = Transport::local_endpoint(&*nic, 0);
        let server_queues = Transport::num_queues(&*nic);
        let transport = Arc::new(VirtualClientTransport::new(nic, endpoint));
        Self::with_transport(transport, endpoint, server, server_queues, client_id, seed)
    }

    /// Creates a client over an arbitrary transport.
    ///
    /// * `endpoint` — the client's own address (replies must be
    ///   addressed to it).
    /// * `server` — the server's queue-0 endpoint; queue `q` is reached
    ///   at `server.port + q`.
    /// * `server_queues` — number of server RX queues.
    pub fn with_transport(
        transport: Arc<dyn Transport>,
        endpoint: Endpoint,
        server: Endpoint,
        server_queues: u16,
        client_id: u16,
        seed: u64,
    ) -> Self {
        assert!(server_queues > 0);
        assert!(
            server.port.checked_add(server_queues - 1).is_some(),
            "server port {} + {} queues exceeds the u16 port space",
            server.port,
            server_queues
        );
        Client {
            transport,
            endpoint,
            server,
            server_queues,
            target_queues: 0..server_queues,
            fragmenter: Fragmenter::new(u64::from(client_id) << 32),
            reassembler: StreamingReassembler::new(1024),
            reassembly_round_ns: CLIENT_REASSEMBLY_ROUND_NS,
            next_round_ns: CLIENT_REASSEMBLY_ROUND_NS,
            rng: Rng::new(seed),
            clock: Instant::now(),
            next_request_id: 1,
            pending: HashMap::new(),
            latency: LatencyHistogram::new(),
            latency_small: LatencyHistogram::new(),
            latency_large: LatencyHistogram::new(),
            service_latency: LatencyHistogram::new(),
            reply_copied_bytes: 0,
            totals: ClientTotals::default(),
            client_id,
            retry: None,
            hedge: None,
            next_retry_scan_ns: 0,
            backoff_until_ns: 0,
            dup_ring: std::collections::VecDeque::new(),
            dup_set: std::collections::HashSet::new(),
        }
    }

    /// Restricts the RX queues this client targets (SHO's contract).
    pub fn with_target_queues(mut self, queues: std::ops::Range<u16>) -> Self {
        assert!(!queues.is_empty());
        assert!(queues.end <= self.server_queues);
        self.target_queues = queues;
        self
    }

    /// Overrides the reassembly-round length (stale-partial eviction
    /// cadence; see [`CLIENT_REASSEMBLY_ROUND_NS`]). Tests use short
    /// rounds to observe evictions quickly.
    pub fn with_reassembly_round(mut self, round: Duration) -> Self {
        assert!(!round.is_zero());
        self.reassembly_round_ns = round.as_nanos() as u64;
        self.next_round_ns = self.now_ns() + self.reassembly_round_ns;
        self
    }

    /// Enables timeout-and-retry retransmission. Without a policy
    /// (the default) the client never resends — the paper's zero-loss
    /// measurement mode, where any loss must surface in the report.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        assert!(!policy.timeout.is_zero(), "retry timeout must be positive");
        assert!(policy.backoff >= 1.0, "retry backoff must be >= 1.0");
        assert!(
            policy.max_timeout >= policy.timeout,
            "max_timeout below the base timeout"
        );
        self.retry = Some(policy);
        self
    }

    /// Enables hedged requests (see [`HedgePolicy`]). Hedges duplicate
    /// only small (single-class) requests — the tail the paper
    /// protects; re-streaming a multi-megabyte PUT to recover its tail
    /// would do the opposite. Requires at least two target queues
    /// (hedges go to a *different* queue by construction).
    pub fn with_hedging(mut self, policy: HedgePolicy) -> Self {
        assert!(
            !policy.max_delay.is_zero(),
            "hedge max_delay must be positive"
        );
        assert!(
            (1.0..=100.0).contains(&policy.percentile),
            "hedge percentile out of range"
        );
        self.hedge = Some(policy);
        self
    }

    /// Nanoseconds on this client's private monotonic clock — the time
    /// domain scheduled-arrival deadlines for [`Client::send_at`] /
    /// [`Client::send_batch_at`] must be expressed in.
    pub fn now_ns(&self) -> u64 {
        self.clock.elapsed().as_nanos() as u64
    }

    /// The per-source key the server derives for this client's frames
    /// (reassembly and discard-quota accounting are charged to it).
    pub fn source_key(&self) -> u64 {
        self.endpoint.source_key()
    }

    fn pick_random_queue(&mut self) -> u16 {
        let span = self.target_queues.len();
        self.target_queues.start + self.rng.index(span) as u16
    }

    fn pick_keyhash_queue(&self, key: u64) -> u16 {
        let span = u64::from(self.target_queues.end - self.target_queues.start);
        self.target_queues.start + (minos_kv::keyhash(key) % span) as u16
    }

    /// Sends one operation from the workload generator. Values for PUTs
    /// are synthesized at the spec's item size. Latency is measured from
    /// now — use [`Client::send_at`] when the op had an earlier
    /// scheduled arrival.
    pub fn send(&mut self, spec: &OpSpec) {
        let sched_ns = self.now_ns();
        self.send_at(spec, sched_ns);
    }

    /// Sends one operation whose scheduled arrival on the open-loop
    /// injection schedule was `sched_ns` (in [`Client::now_ns`]'s time
    /// domain). Latency is measured from `sched_ns`, so a sender that
    /// fell behind schedule still reports the queueing delay its
    /// lateness inflicted — the coordinated-omission fix.
    pub fn send_at(&mut self, spec: &OpSpec, sched_ns: u64) {
        let (frame, queue) = self.prepare_spec(spec, sched_ns);
        self.transmit(&frame, queue);
    }

    /// Sends a batch of operations as one coalesced transmit: every
    /// fragment of every request goes out through a single
    /// [`Transport::tx_frames`] (one `sendmmsg` on the UDP backend for
    /// bursts up to the syscall batch size), instead of one
    /// send per request. This is how an open-loop load generator that
    /// has fallen behind its schedule catches up without paying a
    /// syscall per overdue arrival. PUT values ride the burst as
    /// refcounted frame segments — uncopied all the way into the
    /// kernel's gather list.
    pub fn send_batch(&mut self, specs: &[OpSpec]) {
        match specs {
            [] => {}
            [one] => self.send(one),
            many => {
                let sched_ns = self.now_ns();
                let mut burst: Vec<TxPacket> = Vec::with_capacity(many.len());
                for spec in many {
                    let (frame, queue) = self.prepare_spec(spec, sched_ns);
                    let dst = self.queue_endpoint(queue);
                    for frag in self.fragmenter.fragment_frame(&frame) {
                        burst.push(synthesize_frame(self.endpoint, dst, frag));
                    }
                }
                let _ = self.transport.tx_frames(0, &mut burst);
            }
        }
    }

    /// [`Client::send_batch`] with a per-op scheduled arrival time:
    /// each `(spec, sched_ns)` pair is prepared with its own deadline
    /// (see [`Client::send_at`]) and the whole batch still goes out as
    /// one coalesced [`Transport::tx_frames`] burst. This is the open
    /// loop's catch-up path — overdue arrivals keep their original
    /// deadlines, so the latency histogram charges the backlog to the
    /// requests that sat in it.
    pub fn send_batch_at(&mut self, specs: &[(OpSpec, u64)]) {
        match specs {
            [] => {}
            [(one, sched_ns)] => self.send_at(one, *sched_ns),
            many => {
                let mut burst: Vec<TxPacket> = Vec::with_capacity(many.len());
                for (spec, sched_ns) in many {
                    let (frame, queue) = self.prepare_spec(spec, *sched_ns);
                    let dst = self.queue_endpoint(queue);
                    for frag in self.fragmenter.fragment_frame(&frame) {
                        burst.push(synthesize_frame(self.endpoint, dst, frag));
                    }
                }
                let _ = self.transport.tx_frames(0, &mut burst);
            }
        }
    }

    /// Encodes one workload op and registers it as pending (latency
    /// clock starts at `sched_ns`, service clock at now); returns the
    /// encoded message frame and its target queue.
    fn prepare_spec(&mut self, spec: &OpSpec, sched_ns: u64) -> (TxFrame, u16) {
        match spec.op {
            Operation::Get => {
                let queue = self.pick_random_queue();
                self.prepare_message(
                    Body::Get { key: spec.key },
                    spec.key,
                    queue,
                    spec.is_large,
                    sched_ns,
                )
            }
            Operation::Put => {
                let value = vec![(spec.key % 251) as u8; spec.item_size as usize];
                let queue = self.pick_keyhash_queue(spec.key);
                let body = Body::Put {
                    key: spec.key,
                    // The synthesized value moves into the message —
                    // no second copy on the loadgen hot path.
                    value: Bytes::from(value),
                    ttl_ms: spec.ttl_ms,
                };
                self.prepare_message(body, spec.key, queue, spec.is_large, sched_ns)
            }
        }
    }

    /// Sends a GET for `key` to a uniformly random (permitted) RX queue.
    pub fn send_get(&mut self, key: u64, large_hint: bool) {
        let queue = self.pick_random_queue();
        let body = Body::Get { key };
        self.send_message(body, key, queue, large_hint);
    }

    /// Sends a PUT for `key`; the RX queue is derived from the keyhash
    /// (so all fragments of one PUT land in the same queue and writes to
    /// one key are CREW-routable).
    pub fn send_put(&mut self, key: u64, value: &[u8], large_hint: bool) {
        self.send_put_with_ttl(key, value, large_hint, 0);
    }

    /// [`Client::send_put`] with a per-key TTL in milliseconds (`0` =
    /// never expires).
    pub fn send_put_with_ttl(&mut self, key: u64, value: &[u8], large_hint: bool, ttl_ms: u64) {
        let queue = self.pick_keyhash_queue(key);
        let body = Body::Put {
            key,
            value: bytes::Bytes::copy_from_slice(value),
            ttl_ms,
        };
        self.send_message(body, key, queue, large_hint);
    }

    /// Sends a DELETE for `key` (keyhash-routed like PUTs).
    pub fn send_delete(&mut self, key: u64) {
        let queue = self.pick_keyhash_queue(key);
        self.send_message(Body::Delete { key }, key, queue, false);
    }

    fn send_message(&mut self, body: Body, key: u64, queue: u16, large: bool) {
        let sched_ns = self.now_ns();
        let (frame, queue) = self.prepare_message(body, key, queue, large, sched_ns);
        self.transmit(&frame, queue);
    }

    /// Encodes a request as a scatter-gather frame and registers it as
    /// pending — everything [`Client::send_message`] does short of
    /// transmitting, so batched senders can coalesce many prepared
    /// requests into one burst.
    fn prepare_message(
        &mut self,
        body: Body,
        key: u64,
        queue: u16,
        large: bool,
        sched_ns: u64,
    ) -> (TxFrame, u16) {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let now = self.now_ns();
        let msg = Message {
            client_id: self.client_id,
            request_id,
            // The low timestamp bit is the hedge marker: originals are
            // always even, the hedge duplicate flips it to odd, and the
            // server echoes the timestamp verbatim — so the client can
            // tell exactly which copy's reply won, no matter which
            // server core the executing side handed the request to.
            client_ts_ns: now & !1,
            body,
        };
        let frame = msg.encode_frame();
        let keep = self.retry.is_some() || self.hedge.is_some();
        self.pending.insert(
            request_id,
            Pending {
                sched_ns,
                first_tx_ns: now,
                last_tx_ns: now,
                retries: 0,
                key,
                large,
                resend: keep.then_some((msg, queue)),
                hedge_queue: None,
            },
        );
        self.totals.sent += 1;
        (frame, queue)
    }

    /// The server endpoint addressing RX queue `queue`.
    fn queue_endpoint(&self, queue: u16) -> Endpoint {
        Endpoint {
            mac: self.server.mac,
            ip: self.server.ip,
            port: self.server.port + queue,
        }
    }

    /// Fragments the request `frame` and transmits it as one
    /// [`Transport::tx_frames`] burst (one `sendmmsg` on the UDP
    /// backend instead of a syscall per fragment); each fragment's
    /// payload segments are slices of the original frame's segments, so
    /// nothing is copied here regardless of size.
    fn transmit(&mut self, frame: &TxFrame, queue: u16) {
        let dst = self.queue_endpoint(queue);
        let mut burst: Vec<TxPacket> = self
            .fragmenter
            .fragment_frame(frame)
            .into_iter()
            .map(|frag| synthesize_frame(self.endpoint, dst, frag))
            .collect();
        let _ = self.transport.tx_frames(0, &mut burst);
    }

    /// The jittered, backed-off timeout for attempt number `retries` of
    /// request `id`: `timeout × backoff^retries` capped at
    /// `max_timeout`, times a deterministic per-(request, attempt)
    /// jitter in `[1.0, 1.25)`, doubled inside an overload-backoff
    /// window.
    fn retry_timeout_ns(&self, policy: &RetryPolicy, id: u64, retries: u32, now: u64) -> u64 {
        let base = policy.timeout.as_nanos() as f64;
        let cap = policy.max_timeout.as_nanos() as f64;
        let mut t = (base * policy.backoff.powi(retries as i32)).min(cap);
        let h = mix64(id ^ (u64::from(retries) << 48) ^ 0x7edc_a11e);
        t *= 1.0 + ((h >> 11) as f64 / (1u64 << 53) as f64) * 0.25;
        if now < self.backoff_until_ns {
            t *= 2.0;
        }
        t as u64
    }

    /// The adaptive hedge delay: the observed service-latency
    /// percentile clamped to the policy's bounds, or the effective cap
    /// until enough samples exist.
    ///
    /// When a retry policy is also active, the cap tightens to half its
    /// first-attempt timeout. The ladder only works hedge-first: under
    /// loss the observed service percentile is dominated by the
    /// retransmit path itself, so an uncapped adaptive delay settles
    /// *above* the retry timeout and hedges stop firing — the
    /// feedback loop would disable exactly the mechanism that breaks
    /// it.
    fn hedge_delay_ns(&self, policy: &HedgePolicy) -> u64 {
        let min = policy.min_delay.as_nanos() as u64;
        let mut max = policy.max_delay.as_nanos() as u64;
        if let Some(retry) = &self.retry {
            max = max.min((retry.timeout.as_nanos() as u64 / 2).max(1));
        }
        if self.service_latency.total() < HEDGE_WARMUP_SAMPLES {
            return max;
        }
        self.service_latency
            .percentile_ns(policy.percentile)
            .unwrap_or(max)
            .clamp(min.min(max), max)
    }

    /// Remembers a completed-or-abandoned request id that may still
    /// have a duplicate reply in flight.
    fn remember_duplicate(&mut self, id: u64) {
        if self.dup_set.insert(id) {
            self.dup_ring.push_back(id);
            if self.dup_ring.len() > DUP_RING_CAP {
                if let Some(old) = self.dup_ring.pop_front() {
                    self.dup_set.remove(&old);
                }
            }
        }
    }

    /// Scans the pending map: resends requests whose (backed-off,
    /// jittered) retry timer expired, abandons requests that exhausted
    /// their budget (explicit [`ClientTotals::timed_out`] loss), and
    /// sends hedge duplicates for small requests stuck past the
    /// adaptive hedge delay. Called from [`Client::poll`]; scan cadence
    /// is a quarter of the shortest active timer. Neither a retry nor a
    /// hedge ever touches `sched_ns`/`first_tx_ns` — the latency clocks
    /// stay coordinated-omission-honest.
    fn scan_pending(&mut self) {
        if self.retry.is_none() && self.hedge.is_none() {
            return;
        }
        let now = self.now_ns();
        if now < self.next_retry_scan_ns {
            return;
        }
        let hedge_delay_ns = self.hedge.map(|h| self.hedge_delay_ns(&h));
        let mut interval = u64::MAX;
        if let Some(policy) = self.retry {
            interval = interval.min((policy.timeout.as_nanos() as u64) / 4);
        }
        if let Some(d) = hedge_delay_ns {
            interval = interval.min(d / 4);
        }
        self.next_retry_scan_ns = now + interval.max(1);

        // Retries and timeouts.
        if let Some(policy) = self.retry {
            let mut due = Vec::new();
            let mut expired = Vec::new();
            for (&id, p) in &self.pending {
                if p.resend.is_none() {
                    continue;
                }
                let t = self.retry_timeout_ns(&policy, id, p.retries, now);
                if now.saturating_sub(p.last_tx_ns) < t {
                    continue;
                }
                if p.retries < policy.max_retries {
                    due.push(id);
                } else {
                    expired.push(id);
                }
            }
            for id in due {
                let (msg, queue) = self.pending[&id]
                    .resend
                    .clone()
                    .expect("filtered on resend presence");
                // Re-encoding + re-fragmenting draws a fresh msg id, so
                // stale fragments of the original transmission can never
                // merge with the retry in the server's reassembler.
                let frame = msg.encode_frame();
                self.transmit(&frame, queue);
                let sent_at = self.now_ns();
                let p = self.pending.get_mut(&id).expect("still pending");
                p.retries += 1;
                p.last_tx_ns = sent_at;
                self.totals.retransmits += 1;
            }
            for id in expired {
                // Out of budget: the request is abandoned and becomes
                // explicit loss — it must not linger in `outstanding`
                // (that would stall drains forever) nor silently vanish.
                self.pending.remove(&id);
                self.totals.timed_out += 1;
                self.remember_duplicate(id);
            }
        }

        // Hedges: one duplicate per request, small class only, to a
        // different queue, suppressed inside an overload-backoff window.
        if let (Some(delay), true) = (hedge_delay_ns, now >= self.backoff_until_ns) {
            let span = self.target_queues.len() as u16;
            if span > 1 {
                let due: Vec<u64> = self
                    .pending
                    .iter()
                    .filter(|(_, p)| {
                        p.resend.is_some()
                            && p.hedge_queue.is_none()
                            && !p.large
                            && now.saturating_sub(p.first_tx_ns) >= delay
                    })
                    .map(|(id, _)| *id)
                    .collect();
                for id in due {
                    let (msg, queue) = self.pending[&id]
                        .resend
                        .clone()
                        .expect("filtered on resend presence");
                    let hq =
                        self.target_queues.start + ((queue - self.target_queues.start + 1) % span);
                    let mut hedge_msg = msg;
                    hedge_msg.client_ts_ns |= 1;
                    let frame = hedge_msg.encode_frame();
                    self.transmit(&frame, hq);
                    let p = self.pending.get_mut(&id).expect("still pending");
                    p.hedge_queue = Some(hq);
                    self.totals.hedges_sent += 1;
                }
            }
        }
    }

    /// Drains reply packets from the transport, reassembles and matches
    /// them; returns completions observed in this poll.
    pub fn poll(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        let mut pkts = Vec::new();
        self.transport.rx_burst(0, &mut pkts, 4096);
        for pkt in pkts.drain(..) {
            // Filter by destination port: over UDP the kernel already
            // isolates sockets, but the virtual adapter drains the
            // server's shared TX rings, where a reply addressed to a
            // different client can surface. Such a reply is dropped
            // here — each engine supports ONE virtual client; loss
            // accounting flags any misuse.
            if pkt.meta.udp.dst_port != self.endpoint.port {
                continue;
            }
            let src = pkt.source_endpoint();
            // Single-fragment replies (the overwhelming majority)
            // decode straight from the datagram payload — no reassembly
            // state, no buffer allocation, no extra copy.
            let mut rd = pkt.payload.clone();
            match FragHeader::decode(&mut rd) {
                None => {
                    self.totals.unmatched += 1;
                    continue;
                }
                Some(fh) if fh.count == 1 => {
                    if let Some(msg) = Message::decode(rd) {
                        if let Some(c) = self.complete(msg) {
                            out.push(c);
                        }
                    } else {
                        self.totals.unmatched += 1;
                    }
                    continue;
                }
                Some(_) => {}
            }
            match self.reassembler.push(src, pkt.payload, ReplySink::open) {
                Streamed::Complete(sink) => {
                    self.reply_copied_bytes += sink.copied;
                    if let Some(msg) =
                        Message::decode_streamed(&sink.header, Bytes::from(sink.value))
                    {
                        if let Some(c) = self.complete(msg) {
                            out.push(c);
                        }
                    } else {
                        self.totals.unmatched += 1;
                    }
                }
                Streamed::Incomplete => {}
                _ => self.totals.unmatched += 1,
            }
        }
        self.advance_reassembly_round();
        self.scan_pending();
        out
    }

    /// Drives the stale-partial eviction clock: closes the reassembly
    /// round when it expires, evicting partials untouched for two
    /// completed rounds — a lost reply fragment no longer strands its
    /// buffer (and its pending-map entry stays for loss accounting,
    /// exactly as before). With no partials in flight the round is just
    /// re-armed, so a fresh partial always gets its full grace period.
    fn advance_reassembly_round(&mut self) {
        let now = self.now_ns();
        if now < self.next_round_ns {
            return;
        }
        self.next_round_ns = now + self.reassembly_round_ns;
        if self.reassembler.pending() > 0 {
            self.reassembler.advance_round();
        }
    }

    /// Stale reply partials evicted by the round clock (plus capacity
    /// and geometry-mismatch drops). Non-zero means reply fragments were
    /// lost on the wire. Reported as `client.reassembly_evictions`.
    pub fn reassembly_evictions(&self) -> u64 {
        self.reassembler.evicted
    }

    fn complete(&mut self, msg: Message) -> Option<Completion> {
        let Some(pending) = self.pending.remove(&msg.request_id) else {
            // A hedge loser or post-timeout straggler: counted and its
            // buffer dropped — distinct from truly inexplicable replies.
            if self.dup_set.contains(&msg.request_id) {
                self.totals.wasted_replies += 1;
            } else {
                self.totals.unmatched += 1;
            }
            return None;
        };
        let now = self.now_ns();
        let latency_ns = now.saturating_sub(pending.sched_ns);
        let service_ns = now.saturating_sub(pending.first_tx_ns);
        let status = match &msg.body {
            Body::GetReply { status, .. }
            | Body::PutReply { status, .. }
            | Body::DeleteReply { status, .. } => *status,
            _ => {
                self.totals.unmatched += 1;
                return None;
            }
        };
        if pending.hedge_queue.is_some() {
            // The echoed timestamp's low bit says which copy this reply
            // answers; the loser's reply (if it ever arrives) will be
            // counted as wasted via the duplicate ring.
            if msg.client_ts_ns & 1 == 1 {
                self.totals.hedge_wins += 1;
            }
            self.remember_duplicate(msg.request_id);
        } else if pending.retries > 0 {
            self.remember_duplicate(msg.request_id);
        }
        self.totals.completed += 1;
        if status != ReplyStatus::Ok {
            self.totals.errors += 1;
        }
        if status == ReplyStatus::Overloaded {
            // The shed valve spoke: suppress hedges and stretch retry
            // timeouts for a beat instead of piling on.
            self.totals.overloaded += 1;
            self.backoff_until_ns = now + OVERLOAD_BACKOFF_NS;
        }
        self.latency.record_ns(latency_ns);
        self.service_latency.record_ns(service_ns);
        if pending.large {
            self.latency_large.record_ns(latency_ns);
        } else {
            self.latency_small.record_ns(latency_ns);
        }
        Some(Completion {
            key: pending.key,
            kind: msg.body.kind(),
            status,
            latency_ns,
            service_ns,
            large: pending.large,
        })
    }

    /// Busy-polls until all outstanding requests complete or `timeout`
    /// elapses; returns true on full completion.
    pub fn drain(&mut self, timeout: std::time::Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.totals.outstanding() > 0 {
            self.poll();
            if Instant::now() > deadline {
                return false;
            }
            std::hint::spin_loop();
        }
        true
    }

    /// Latency histogram over all completed requests, measured from
    /// each request's scheduled arrival (coordinated-omission-free).
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Latency histogram over small requests only — the tail the paper
    /// protects, and the one the discipline shoot-out compares —
    /// schedule-based like [`Client::latency`].
    pub fn latency_small(&self) -> &LatencyHistogram {
        &self.latency_small
    }

    /// Latency histogram over large requests only (Figure 4's metric),
    /// schedule-based like [`Client::latency`].
    pub fn latency_large(&self) -> &LatencyHistogram {
        &self.latency_large
    }

    /// Service-latency histogram: time from each request's *first
    /// transmission* to its reply, over all completed requests. With an
    /// on-schedule sender this equals [`Client::latency`]; the gap
    /// between the two is the scheduling lag coordinated omission used
    /// to hide.
    pub fn service_latency(&self) -> &LatencyHistogram {
        &self.service_latency
    }

    /// Value bytes copied while reassembling multi-fragment replies.
    /// Each streamed value byte is written exactly once into the buffer
    /// the reply hands out, so this equals the total value bytes
    /// received on the large-GET path — any excess would mean an
    /// intermediate copy crept back in. Reported as
    /// `client.reply_copied_bytes`.
    pub fn reply_copied_bytes(&self) -> u64 {
        self.reply_copied_bytes
    }

    /// Requests currently tracked in the pending table. The counter
    /// identity `sent == completed + outstanding + timed_out` is only
    /// trustworthy if [`ClientTotals::outstanding`] (pure counter
    /// arithmetic) agrees with this (the actual table size); the loadgen
    /// report cross-checks the two and raises `accounting_warnings`
    /// when they diverge.
    pub fn pending_len(&self) -> u64 {
        self.pending.len() as u64
    }

    /// Totals snapshot.
    pub fn totals(&self) -> ClientTotals {
        self.totals
    }
}
