//! The size-threshold control loop (paper §3).
//!
//! "Each small core maintains a histogram of the number of requests that
//! correspond to item sizes in certain ranges. ... Periodically, core 0
//! aggregates these histograms, finds the size corresponding to the 99th
//! percentile, declares that size to be the threshold for the next
//! epoch, and resets the histograms to zero. To be resilient to
//! transient workload oscillations, core 0 smooths the values in the
//! aggregated histogram according to a moving average."

use crate::config::ThresholdMode;
use crate::cost::CostFn;
use minos_stats::{SizeHistogram, SmoothedHistogram};

/// The controller's per-epoch output.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThresholdDecision {
    /// Sizes `<= threshold` are small; larger are large.
    pub threshold: u64,
    /// The fraction of total processing cost attributable to small
    /// requests — the input to core allocation.
    pub small_cost_share: f64,
    /// Requests observed in the epoch that produced this decision.
    pub epoch_requests: u64,
}

impl ThresholdDecision {
    /// A safe bootstrap decision before any statistics exist: everything
    /// at or below the small/large boundary of the wire MTU is small,
    /// and all cores serve small requests (standby-large mode).
    pub fn bootstrap() -> Self {
        ThresholdDecision {
            threshold: minos_wire::MAX_FRAG_CHUNK as u64,
            small_cost_share: 1.0,
            epoch_requests: 0,
        }
    }

    /// True if `size` falls in the small class under this decision.
    #[inline]
    pub fn is_small(&self, size: u64) -> bool {
        size <= self.threshold
    }
}

/// The epoch-driven threshold controller run by core 0.
#[derive(Clone, Debug)]
pub struct ThresholdController {
    mode: ThresholdMode,
    percentile: f64,
    cost_fn: CostFn,
    smoothed: SmoothedHistogram,
    current: ThresholdDecision,
    epochs: u64,
}

impl ThresholdController {
    /// Creates a controller.
    pub fn new(mode: ThresholdMode, percentile: f64, alpha: f64, cost_fn: CostFn) -> Self {
        let current = match mode {
            ThresholdMode::Dynamic => ThresholdDecision::bootstrap(),
            ThresholdMode::Static(t) => ThresholdDecision {
                threshold: t,
                small_cost_share: 1.0,
                epoch_requests: 0,
            },
        };
        ThresholdController {
            mode,
            percentile,
            cost_fn,
            smoothed: SmoothedHistogram::new(alpha),
            current,
            epochs: 0,
        }
    }

    /// The decision currently in force.
    pub fn current(&self) -> ThresholdDecision {
        self.current
    }

    /// Number of epochs processed.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Folds in the epoch's aggregated per-core histogram and produces
    /// the decision for the next epoch.
    ///
    /// Under [`ThresholdMode::Static`] the threshold never moves, but the
    /// cost share is still recomputed so core allocation keeps adapting
    /// (the paper's static variant only pins the *threshold*).
    pub fn epoch_update(&mut self, aggregate: &SizeHistogram) -> ThresholdDecision {
        self.epochs += 1;
        let epoch_requests = aggregate.total();
        if epoch_requests > 0 {
            self.smoothed.update(aggregate);
        }
        let threshold = match self.mode {
            ThresholdMode::Static(t) => t,
            ThresholdMode::Dynamic => self
                .smoothed
                .percentile(self.percentile)
                .unwrap_or(ThresholdDecision::bootstrap().threshold),
        };
        let small_cost_share = self.small_cost_share(threshold);
        self.current = ThresholdDecision {
            threshold,
            small_cost_share,
            epoch_requests,
        };
        self.current
    }

    /// The smoothed `(size_upper_bound, weight)` buckets — the input to
    /// [`crate::ranges::LargeRanges::build`] when the plan is assembled.
    pub fn smoothed_buckets(&self) -> Vec<(u64, f64)> {
        self.smoothed.iter_buckets().collect()
    }

    /// The fraction of smoothed cost mass at or below `threshold`.
    fn small_cost_share(&self, threshold: u64) -> f64 {
        let mut small = 0.0f64;
        let mut total = 0.0f64;
        for (ub, weight) in self.smoothed.iter_buckets() {
            let cost = self.cost_fn.cost(ub) as f64 * weight;
            total += cost;
            if ub <= threshold {
                small += cost;
            }
        }
        if total <= 0.0 {
            1.0
        } else {
            small / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch_hist(small_n: u64, small_sz: u64, large_n: u64, large_sz: u64) -> SizeHistogram {
        let mut h = SizeHistogram::new();
        for _ in 0..small_n {
            h.record(small_sz);
        }
        for _ in 0..large_n {
            h.record(large_sz);
        }
        h
    }

    fn dynamic() -> ThresholdController {
        ThresholdController::new(ThresholdMode::Dynamic, 99.0, 0.9, CostFn::Packets)
    }

    #[test]
    fn bootstrap_treats_single_packet_items_as_small() {
        let d = ThresholdDecision::bootstrap();
        assert!(d.is_small(100));
        assert!(d.is_small(1400));
        assert!(!d.is_small(500_000));
        assert_eq!(d.small_cost_share, 1.0);
    }

    #[test]
    fn threshold_lands_between_classes() {
        // 99.875 % at 100 B, 0.125 % at 500 KB: p99 of sizes must fall in
        // the small class, so the threshold separates the two.
        let mut c = dynamic();
        let d = c.epoch_update(&epoch_hist(99_875, 100, 125, 500_000));
        assert!(d.threshold < 1_500, "threshold {}", d.threshold);
        assert!(d.is_small(100));
        assert!(!d.is_small(500_000));
    }

    #[test]
    fn cost_share_reflects_packet_weight() {
        // With 0.125 % of requests at 500 KB (344 packets each) and the
        // paper's packet cost: large cost share is
        // 125*344 / (125*344 + 99875*1) ≈ 30 %.
        let mut c = dynamic();
        let d = c.epoch_update(&epoch_hist(99_875, 100, 125, 500_000));
        assert!(
            (d.small_cost_share - 0.70).abs() < 0.05,
            "small share {}",
            d.small_cost_share
        );
    }

    #[test]
    fn all_small_workload_gives_full_share() {
        let mut c = dynamic();
        let d = c.epoch_update(&epoch_hist(10_000, 200, 0, 0));
        assert_eq!(d.small_cost_share, 1.0);
        assert!(d.threshold < 1_500);
    }

    #[test]
    fn static_mode_pins_threshold_but_tracks_share() {
        let mut c =
            ThresholdController::new(ThresholdMode::Static(1_400), 99.0, 0.9, CostFn::Packets);
        let d1 = c.epoch_update(&epoch_hist(10_000, 100, 0, 0));
        assert_eq!(d1.threshold, 1_400);
        assert_eq!(d1.small_cost_share, 1.0);
        let d2 = c.epoch_update(&epoch_hist(5_000, 100, 5_000, 500_000));
        assert_eq!(d2.threshold, 1_400, "threshold pinned");
        assert!(d2.small_cost_share < 0.1, "share tracks the new mix");
    }

    #[test]
    fn smoothing_damps_transients() {
        // After many steady epochs, one anomalous epoch (all large)
        // moves the p99 (alpha = 0.9 weighs fresh data heavily), and the
        // EWMA pulls it back within two steady epochs: after one epoch
        // the residual large weight is 0.1 * 10 000 ≈ 1.1 % (just above
        // the 99th percentile), after two it is ≈ 0.2 %.
        let mut c = dynamic();
        for _ in 0..5 {
            c.epoch_update(&epoch_hist(100_000, 100, 125, 500_000));
        }
        let steady = c.current().threshold;
        assert!(steady < 1_500);
        c.epoch_update(&epoch_hist(0, 0, 10_000, 500_000));
        let disturbed = c.current().threshold;
        assert!(disturbed > steady, "threshold reacts to the burst");
        c.epoch_update(&epoch_hist(100_000, 100, 125, 500_000));
        c.epoch_update(&epoch_hist(100_000, 100, 125, 500_000));
        let recovered = c.current().threshold;
        assert!(recovered < 1_500, "recovered to {recovered}");
    }

    #[test]
    fn empty_epoch_keeps_previous_state() {
        let mut c = dynamic();
        c.epoch_update(&epoch_hist(10_000, 100, 12, 500_000));
        let before = c.current();
        let after = c.epoch_update(&SizeHistogram::new());
        assert_eq!(before.threshold, after.threshold);
        assert_eq!(after.epoch_requests, 0);
    }

    #[test]
    fn decision_adapts_to_growing_large_share() {
        // As p_L rises 0.125 % -> 0.75 %, the small cost share must fall
        // (more cores will be given to large requests) — the mechanism
        // behind Figure 10.
        let mut c = dynamic();
        c.epoch_update(&epoch_hist(99_875, 100, 125, 500_000));
        let low = c.current().small_cost_share;
        for _ in 0..6 {
            c.epoch_update(&epoch_hist(99_250, 100, 750, 500_000));
        }
        let high = c.current().small_cost_share;
        assert!(high < low, "share must drop as p_L grows: {low} -> {high}");
    }
}
