//! The threaded Minos server runtime.
//!
//! One busy-polling OS thread per simulated core, run-to-completion, no
//! async runtime (DPDK style — the Rust networking guides' advice is
//! that cooperative async schedulers and CPU-bound polling loops don't
//! mix). Responsibilities per the paper (§3):
//!
//! * **Small cores** drain their own RX queue in batches of `B`, then
//!   `B/n_s` from each large core's RX queue; they execute small
//!   requests to completion and hand large ones to the software queue of
//!   the large core whose size range matches.
//! * **Large cores** never touch RX queues; they poll their lock-free
//!   software queue, *stream* large-PUT fragments straight into the
//!   value's final store-mempool block (reserved from the size in the
//!   first-seen fragment header — no lookup, no reassembly buffer; see
//!   [`crate::ingest`]), commit on completion, and reply on their own
//!   TX queue. Each fragment's pooled RX buffer is released the moment
//!   its chunk is copied, so RX-pool occupancy stays O(rx batch)
//!   instead of O(message size / MTU).
//! * **Core 0** additionally runs the epoch control loop: aggregate the
//!   per-core size histograms, update the threshold, re-allocate cores,
//!   rebuild the size ranges, publish the new [`ShardingPlan`].
//!
//! The server is generic over [`Transport`]: the same engine code runs
//! over the in-process [`VirtualNic`] (by default through
//! [`VirtualTransport`]'s pooled gather, used by tests and the
//! simulator harnesses) or over real `SO_REUSEPORT` UDP sockets
//! (`minos_net::UdpTransport`, used by the `minos-server` binary).

use crate::allocation::allocate;
use crate::config::MinosConfig;
use crate::dispatch::{
    drain_schedule, fragment_key, Discipline, DisciplineKind, DrainSchedule, PlaceCtx, Placement,
    QueueDepths,
};
use crate::engine::KvEngine;
use crate::ingest::{rejected_put_reply, DiscardQuota, OpenOutcome, PutIngest};
use crate::plan::ShardingPlan;
use crate::ranges::LargeRanges;
use crate::threshold::ThresholdController;
use crossbeam::queue::ArrayQueue;
use minos_kv::{PutError, Store, StoreConfig};
use minos_net::{Transport, VirtualTransport};
use minos_nic::{NicConfig, VirtualNic};
use minos_obs::{
    Collector, CoreClock, CoreTelemetry, Counter, MetricValue, MetricsRegistry, ReqClass,
};
use minos_stats::{AtomicSizeHistogram, CoreStats, SharedCoreStats, SizeHistogram};
use minos_wire::frag::{fragment_frame_with_id, FragHeader, Streamed, StreamingReassembler};
use minos_wire::message::{Body, Message, ReplyStatus, MSG_HEADER_LEN};
use minos_wire::packet::{synthesize_frame, Endpoint, Packet, TxPacket};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

/// Host id the server's endpoints use in the virtual world (clients
/// must differ).
pub const SERVER_HOST_ID: u32 = 1;

/// Server configuration: engine policy plus store sizing.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Engine policy knobs.
    pub minos: MinosConfig,
    /// Store geometry.
    pub store: StoreConfig,
    /// NIC ring capacity per queue.
    pub nic_queue_capacity: usize,
    /// CPUs to pin polling threads to: the thread for core `i` is pinned
    /// to `pin_cpus[i % len]` (the paper pins one thread per physical
    /// core, §5.1). `None` (the default) leaves scheduling to the OS;
    /// pin failures are reported once and otherwise best-effort.
    pub pin_cpus: Option<Vec<usize>>,
}

impl ServerConfig {
    /// A config sized for functional tests: `n_cores` cores and room
    /// for `n_items` items.
    pub fn for_test(n_cores: usize, n_items: usize) -> Self {
        let minos = MinosConfig {
            n_cores,
            epoch_ns: 50_000_000,        // 50 ms epochs so tests adapt fast
            soft_queue_capacity: 65_536, // bursty unpaced test clients
            ..MinosConfig::default()
        };
        ServerConfig {
            minos,
            store: StoreConfig::for_items(n_cores * 4, n_items, 1 << 30),
            nic_queue_capacity: 65_536,
            pin_cpus: None,
        }
    }
}

/// A request extracted from the wire, ready to execute.
#[derive(Debug)]
pub struct ServerRequest {
    /// The decoded message.
    pub msg: Message,
    /// Where the reply goes.
    pub reply_to: Endpoint,
    /// When the packet left the NIC ring (rx-dequeue, nanoseconds on
    /// the server's shared clock). Queue-wait telemetry measures from
    /// here; engines without lifecycle telemetry (the baselines) pass 0.
    pub arrival_ns: u64,
}

/// Items travelling through a large core's software queue.
#[derive(Debug)]
pub enum Handoff {
    /// A complete request classified as large.
    Request(ServerRequest),
    /// One fragment of a multi-packet (large PUT) message; the large
    /// core owns reassembly so small cores never buffer large payloads.
    /// Carries its rx-dequeue timestamp so the executing core can
    /// attribute the software-queue wait.
    Fragment(Packet, u64),
}

/// Counters specific to the Minos engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineCounters {
    /// Requests dropped because a software queue was full.
    pub soft_queue_drops: u64,
    /// Epochs the controller has published.
    pub epochs: u64,
    /// Malformed payloads dropped.
    pub malformed: u64,
    /// Value bytes copied into store-mempool blocks — the one wire →
    /// pool copy of the ingest path, small and large PUTs alike
    /// (mirrors `tx_copied_bytes` on the reply path). A one-copy ingest
    /// keeps this exactly `Σ value_len` over all successful PUTs.
    pub put_copied_bytes: u64,
    /// Stale partial reassemblies evicted (their mempool reservations
    /// released). Non-zero means fragments were lost on the wire.
    pub reassembly_evictions: u64,
}

/// Pins every fragment of one in-flight multi-packet message to the core
/// chosen for its first-seen fragment.
///
/// Without this, an epoch plan change landing between two fragments of a
/// large PUT could split the message across two large cores' reassembly
/// state and the request would never complete. Entries are removed when
/// all fragments have been seen and are evicted oldest-first on overflow
/// (a lost fragment means a lost request, which is the client's
/// retransmission problem — §4.1).
struct FlowPins {
    inner: Mutex<std::collections::HashMap<(u64, u64), PinEntry>>,
    cap: usize,
}

struct PinEntry {
    target: usize,
    seen: u16,
    count: u16,
    seq: u64,
}

impl FlowPins {
    fn new(cap: usize) -> Self {
        FlowPins {
            inner: Mutex::new(std::collections::HashMap::new()),
            cap,
        }
    }

    /// Returns the pinned target core for fragment `(src, msg_id)`,
    /// establishing `fresh_target` on first sight. `count` is the
    /// message's total fragment count.
    fn pin(
        &self,
        src: u64,
        msg_id: u64,
        count: u16,
        fresh_target: impl FnOnce() -> usize,
    ) -> usize {
        let mut map = self.inner.lock();
        let next_seq = map.len() as u64; // strictly for eviction ordering
        let entry = map.entry((src, msg_id)).or_insert_with(|| PinEntry {
            target: fresh_target(),
            seen: 0,
            count,
            seq: next_seq,
        });
        entry.seen += 1;
        let target = entry.target;
        let done = entry.seen >= entry.count;
        if done {
            map.remove(&(src, msg_id));
        } else if map.len() > self.cap {
            if let Some(oldest) = map.iter().min_by_key(|(_, e)| e.seq).map(|(k, _)| *k) {
                map.remove(&oldest);
            }
        }
        target
    }
}

/// Live soft-queue depths as the [`QueueDepths`] view disciplines
/// consume (JSQ reads them at placement time; `len()` on an
/// [`ArrayQueue`] is a pair of relaxed loads).
struct SoftQueueDepths<'a>(&'a [ArrayQueue<Handoff>]);

impl QueueDepths for SoftQueueDepths<'_> {
    fn depth(&self, core: usize) -> usize {
        self.0[core].len()
    }
}

struct Shared<T: Transport> {
    config: MinosConfig,
    transport: Arc<T>,
    store: Arc<Store>,
    plan: RwLock<Arc<ShardingPlan>>,
    /// The queue discipline placing decoded requests onto cores
    /// (size-aware sharding unless configured otherwise).
    discipline: Box<dyn Discipline>,
    soft_queues: Vec<ArrayQueue<Handoff>>,
    /// The single cFCFS queue every core polls when the discipline
    /// requests it ([`Discipline::uses_shared_queue`]); empty and
    /// unpolled otherwise.
    shared_queue: ArrayQueue<Handoff>,
    stats: Vec<SharedCoreStats>,
    /// Core-owned size histograms: recording is a relaxed `fetch_add`
    /// on an atomic bucket counter (no per-request lock), the epoch
    /// controller snapshots them by draining.
    size_hists: Vec<AtomicSizeHistogram>,
    controller: Mutex<ThresholdController>,
    shutdown: AtomicBool,
    start: Instant,
    /// The unified metric registry every subsystem reports into; shares
    /// its zero instant with `start` so hot-path timestamps line up with
    /// snapshot `elapsed_ms`.
    registry: Arc<MetricsRegistry>,
    /// Per-core request-lifecycle histograms (queue wait + service time,
    /// split small/large — the paper's Fig. 5/6 decomposition).
    telemetry: Vec<CoreTelemetry>,
    soft_drops: Counter,
    epochs: Counter,
    malformed: Counter,
    reassembly_evictions: Counter,
    /// Placements onto a specific core's software queue
    /// (`dispatch.queue_picks`; for size-aware these are the handoffs).
    queue_picks: Counter,
    /// Placements onto the shared cFCFS queue (`dispatch.shared_picks`).
    shared_picks: Counter,
    /// Requests executed by a core that stole them from a peer's
    /// software queue (`dispatch.steals`; only moves when
    /// [`MinosConfig::steal`] is on).
    steal_picks: Counter,
    /// Large requests shed with an `Overloaded` reply because their
    /// target queue sat past [`MinosConfig::shed_watermark`]
    /// (`dispatch.sheds`; only moves when the watermark is set).
    sheds: Counter,
    epoch_deadline_ns: AtomicU64,
    /// Per-core reply message-id counters (fragment reassembly keys).
    msg_ids: Vec<AtomicU64>,
    /// Fragment-to-core pinning for in-flight multi-packet messages.
    flow_pins: FlowPins,
    /// Per-source cap on concurrent discard-mode ingests (memory-
    /// pressure PUTs held only to answer `OutOfMemory`).
    discard_quota: Arc<DiscardQuota>,
}

impl<T: Transport> Shared<T> {
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn endpoint(&self, core: usize) -> Endpoint {
        self.transport.local_endpoint(core as u16)
    }
}

/// Snapshot-time adapter from the [`Transport`]'s own stats structs to
/// registry metrics (`transport.*`, and `pool.*` / `nic.*` where the
/// backend overrides [`Transport::collect_metrics`]).
struct TransportCollector<T: Transport>(Arc<T>);

impl<T: Transport + 'static> Collector for TransportCollector<T> {
    fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
        self.0.collect_metrics(out);
    }
}

/// Snapshot-time view of the engine: per-core throughput counters, the
/// plan in force, software-queue depth and the ingest copy gauge. Holds
/// a `Weak` so the registry (which callers may outlive the server with)
/// never keeps the engine alive, and never cycles with [`Shared`]'s own
/// `registry` field.
struct EngineCollector<T: Transport>(Weak<Shared<T>>);

impl<T: Transport + 'static> Collector for EngineCollector<T> {
    fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
        let Some(shared) = self.0.upgrade() else {
            return; // server gone: its owned metrics retain final values
        };
        for (i, stats) in shared.stats.iter().enumerate() {
            let c = stats.snapshot();
            let counter =
                |leaf: &str, v: u64| (format!("core.{i}.{leaf}"), MetricValue::Counter(v));
            out.push(counter("ops", c.ops));
            out.push(counter("get_ops", c.get_ops));
            out.push(counter("put_ops", c.put_ops));
            out.push(counter("large_ops", c.large_ops));
            out.push(counter("handoffs", c.handoffs));
            out.push(counter("steals", c.steals));
            out.push(counter("packets_rx", c.packets_rx));
            out.push(counter("packets_tx", c.packets_tx));
            out.push(counter("bytes_rx", c.bytes_rx));
            out.push(counter("bytes_tx", c.bytes_tx));
        }
        let plan = shared.plan.read().clone();
        let gauge = |name: &str, v: f64| (name.to_string(), MetricValue::Gauge(v));
        out.push((
            "plan.epoch".to_string(),
            MetricValue::Counter(plan.epoch_id),
        ));
        out.push(gauge(
            "plan.threshold_bytes",
            plan.decision.threshold as f64,
        ));
        out.push(gauge("plan.n_small", plan.allocation.n_small as f64));
        out.push(gauge("plan.n_large", plan.allocation.n_large as f64));
        out.push(gauge(
            "plan.standby",
            if plan.allocation.standby { 1.0 } else { 0.0 },
        ));
        let depth: usize = shared.soft_queues.iter().map(|q| q.len()).sum();
        out.push(gauge("dispatch.soft_queue_depth", depth as f64));
        out.push(gauge(
            "dispatch.shared_queue_depth",
            shared.shared_queue.len() as f64,
        ));
        out.push((
            "ingest.put_copied_bytes".to_string(),
            MetricValue::Counter(shared.store.mempool().stats().copied_bytes),
        ));
        out.push((
            "ingest.discard_quota_rejects".to_string(),
            MetricValue::Counter(shared.discard_quota.rejects()),
        ));
    }
}

/// The running Minos server, generic over its packet [`Transport`]
/// (defaulting to the pooled-gather adapter over the in-process virtual
/// NIC).
pub struct MinosServer<T: Transport = VirtualTransport> {
    shared: Arc<Shared<T>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl MinosServer<VirtualTransport> {
    /// Builds a virtual NIC sized by `config` and starts the server
    /// threads over it, sending through [`VirtualTransport`]'s pooled
    /// gather — so the simulated backend's TX path is allocation-free
    /// in steady state, just like the UDP backend's, with every
    /// gathered segment byte counted in
    /// [`minos_nic::NicStats::tx_gathered_bytes`].
    pub fn start(config: ServerConfig) -> Self {
        let nic = Arc::new(VirtualNic::new(
            NicConfig::new(config.minos.n_cores as u16)
                .with_queue_capacity(config.nic_queue_capacity),
        ));
        Self::start_with_transport(config, Arc::new(VirtualTransport::new(nic)))
    }
}

impl<T: Transport + 'static> MinosServer<T> {
    /// Starts the server threads over an externally constructed
    /// transport. The transport must expose exactly one RX/TX queue
    /// pair per configured core.
    pub fn start_with_transport(config: ServerConfig, transport: Arc<T>) -> Self {
        config.minos.validate().expect("invalid Minos config");
        let n = config.minos.n_cores;
        assert_eq!(
            transport.num_queues(),
            n as u16,
            "transport must have one queue per core"
        );
        let controller = ThresholdController::new(
            config.minos.threshold_mode,
            config.minos.threshold_percentile,
            config.minos.alpha,
            config.minos.cost_fn,
        );
        // The initial plan honours the controller's seed decision, so a
        // `Static(t)` threshold is in force from the first packet (it
        // used to be overwritten by the bootstrap plan until the first
        // dynamic epoch — which never came in static mode). In dynamic
        // mode `current()` *is* the bootstrap decision.
        let initial = {
            let decision = controller.current();
            ShardingPlan {
                epoch_id: 0,
                allocation: allocate(n, decision.small_cost_share),
                ranges: LargeRanges::single(),
                decision,
            }
        };
        let registry = Arc::new(MetricsRegistry::new());
        let store = Arc::new(Store::new(config.store.clone()));
        let shared = Arc::new(Shared {
            store: Arc::clone(&store),
            plan: RwLock::new(Arc::new(initial)),
            discipline: config.minos.discipline.build(),
            soft_queues: (0..n)
                .map(|_| ArrayQueue::new(config.minos.soft_queue_capacity))
                .collect(),
            // The cFCFS queue stands in for *all* per-core queues, so it
            // gets their aggregate capacity — equal total backlog before
            // tail-drop, whatever the discipline.
            shared_queue: ArrayQueue::new(config.minos.soft_queue_capacity * n),
            stats: (0..n).map(|_| SharedCoreStats::new()).collect(),
            size_hists: (0..n).map(|_| AtomicSizeHistogram::new()).collect(),
            controller: Mutex::new(controller),
            shutdown: AtomicBool::new(false),
            start: registry.start(),
            telemetry: (0..n)
                .map(|core| CoreTelemetry::register(&registry, core))
                .collect(),
            soft_drops: registry.counter("engine.soft_queue_drops"),
            epochs: registry.counter("engine.epochs"),
            malformed: registry.counter("engine.malformed"),
            reassembly_evictions: registry.counter("ingest.reassembly_evictions"),
            queue_picks: registry.counter("dispatch.queue_picks"),
            shared_picks: registry.counter("dispatch.shared_picks"),
            steal_picks: registry.counter("dispatch.steals"),
            sheds: registry.counter("dispatch.sheds"),
            epoch_deadline_ns: AtomicU64::new(config.minos.epoch_ns),
            msg_ids: (0..n).map(|_| AtomicU64::new(0)).collect(),
            flow_pins: FlowPins::new(4096),
            discard_quota: DiscardQuota::new(config.minos.discard_quota_per_source),
            config: config.minos,
            transport: Arc::clone(&transport),
            registry: Arc::clone(&registry),
        });
        // Snapshot-time collectors: the store (store.* / mempool.*), the
        // transport backend (transport.* / pool.* / nic.*), and the
        // engine itself (core.* counters, plan.*, dispatch.*, ingest.*).
        // The engine collector holds a Weak so the registry — which
        // callers may keep past shutdown — never cycles with Shared.
        registry.register_collector(Box::new(store));
        registry.register_collector(Box::new(TransportCollector(transport)));
        registry.register_collector(Box::new(EngineCollector(Arc::downgrade(&shared))));
        let pin_cpus = config.pin_cpus.filter(|cpus| !cpus.is_empty());
        let threads = (0..n)
            .map(|core| {
                let shared = Arc::clone(&shared);
                let pin = pin_cpus.as_ref().map(|cpus| cpus[core % cpus.len()]);
                std::thread::Builder::new()
                    .name(format!("minos-core-{core}"))
                    .spawn(move || {
                        if let Some(cpu) = pin {
                            if let Err(e) = minos_net::affinity::pin_current_thread(cpu) {
                                eprintln!("minos-core-{core}: pinning to cpu {cpu} failed: {e}");
                            }
                        }
                        core_loop(&shared, core)
                    })
                    .expect("spawn core thread")
            })
            .collect();
        MinosServer { shared, threads }
    }

    /// The transport the server polls.
    pub fn transport(&self) -> Arc<T> {
        Arc::clone(&self.shared.transport)
    }

    /// The plan currently in force (inspection/testing).
    pub fn plan(&self) -> Arc<ShardingPlan> {
        self.shared.plan.read().clone()
    }

    /// The underlying store (preloading, inspection).
    pub fn store(&self) -> Arc<Store> {
        Arc::clone(&self.shared.store)
    }

    /// Number of server cores.
    pub fn n_cores(&self) -> usize {
        self.shared.config.n_cores
    }

    /// The queue discipline placing requests onto cores.
    pub fn discipline(&self) -> DisciplineKind {
        self.shared.discipline.kind()
    }

    /// Per-core statistics snapshot.
    pub fn core_stats(&self) -> Vec<CoreStats> {
        self.shared.stats.iter().map(|s| s.snapshot()).collect()
    }

    /// Engine-specific counters.
    pub fn counters(&self) -> EngineCounters {
        EngineCounters {
            soft_queue_drops: self.shared.soft_drops.get(),
            epochs: self.shared.epochs.get(),
            malformed: self.shared.malformed.get(),
            put_copied_bytes: self.shared.store.mempool().stats().copied_bytes,
            reassembly_evictions: self.shared.reassembly_evictions.get(),
        }
    }

    /// The unified metric registry: every subsystem's counters, gauges
    /// and lifecycle histograms, renderable as a [`minos_obs::Snapshot`]
    /// at any time. The registry outlives the server (collectors held
    /// weakly go quiet after shutdown; owned metrics keep their final
    /// values).
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.registry)
    }

    /// The per-source discard-mode quota guarding `PutIngest` opens
    /// under memory pressure. Exposed so tests can pin a source's
    /// slots and exercise the over-quota reply path deterministically.
    pub fn discard_quota(&self) -> Arc<DiscardQuota> {
        Arc::clone(&self.shared.discard_quota)
    }

    /// Forces an epoch update immediately (testing hook: the same code
    /// path core 0 runs on the epoch timer).
    pub fn force_epoch(&self) {
        run_epoch(&self.shared);
    }

    /// Requests still queued in software queues — the per-core ones plus
    /// the shared cFCFS queue — i.e. handoffs not yet executed. Zero
    /// means every accepted request has been replied to.
    pub fn pending_handoffs(&self) -> usize {
        let soft: usize = self.shared.soft_queues.iter().map(|q| q.len()).sum();
        soft + self.shared.shared_queue.len()
    }

    /// Waits for in-flight work to drain: returns `true` once the
    /// software queues have stayed empty for a short quiet period, or
    /// `false` on timeout. Used for graceful shutdown — the cores keep
    /// polling (and replying) while this waits.
    pub fn drain(&self, timeout: std::time::Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut quiet = 0u32;
        while quiet < 10 {
            if Instant::now() > deadline {
                return false;
            }
            if self.pending_handoffs() == 0 {
                quiet += 1;
            } else {
                quiet = 0;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        true
    }
}

impl<T: Transport> MinosServer<T> {
    /// Stops the polling threads and joins them. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl KvEngine for MinosServer<VirtualTransport> {
    fn name(&self) -> &'static str {
        "Minos"
    }

    fn nic(&self) -> Arc<VirtualNic> {
        Arc::clone(self.shared.transport.nic())
    }

    fn store(&self) -> Arc<Store> {
        MinosServer::store(self)
    }

    fn n_cores(&self) -> usize {
        MinosServer::n_cores(self)
    }

    fn core_stats(&self) -> Vec<CoreStats> {
        MinosServer::core_stats(self)
    }

    fn shutdown(&mut self) {
        MinosServer::shutdown(self);
    }
}

impl<T: Transport> Drop for MinosServer<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn core_loop<T: Transport>(shared: &Shared<T>, core: usize) {
    // Lifecycle clock, zeroed at the registry's start so queue-wait /
    // service stamps are directly comparable across cores and with
    // snapshot `elapsed_ms`. One monotonic read per event, no syscalls
    // beyond `clock_gettime` (vDSO), no allocation.
    let clock = CoreClock::starting_at(shared.start);
    let mut rx_buf: Vec<Packet> = Vec::with_capacity(shared.config.batch_size * 2);
    // Streaming large-PUT ingest: fragments are copied straight into
    // their value's reserved mempool block and released; no contiguous
    // reassembly buffer exists anywhere in the server.
    let mut reassembler: StreamingReassembler<PutIngest> = StreamingReassembler::new(1024);
    let mut idle_rounds = 0u32;
    let mut loop_count = 0u32;
    let mut next_reassembly_round = shared.config.reassembly_round_ns;
    // Evictions already folded into the shared gauge; the reassembler's
    // own counter covers *every* eviction cause (stale round, capacity,
    // geometry mismatch), all of which drop a live reservation and must
    // be visible.
    let mut reported_evictions = 0u64;

    while !shared.shutdown.load(Ordering::Relaxed) {
        let plan = shared.plan.read().clone();
        let mut did_work = false;

        // Advance the stale-partial eviction clock (checked only every
        // few iterations to keep the hot loop free of timestamp reads):
        // a partial untouched for two completed rounds lost a fragment,
        // and holding its reservation any longer just starves the
        // mempool — §4.1 leaves the retry to the client anyway.
        loop_count = loop_count.wrapping_add(1);
        if loop_count & 0x3F == 0 {
            let now = shared.now_ns();
            // Capacity housekeeping rides the same cadence: advance the
            // store clock, sweep this core's share of the partitions for
            // expired keys, and run an eviction pass if occupancy sits
            // above the high watermark. No-ops entirely when TTLs were
            // never used and no eviction policy is configured.
            shared.store.capacity_tick(core, shared.config.n_cores, now);
            if reassembler.pending() == 0 {
                // Nothing can go stale; keep the clock re-armed so the
                // first partial after an idle stretch still gets its
                // full two-round grace period rather than hitting a
                // long-expired deadline immediately.
                next_reassembly_round = now + shared.config.reassembly_round_ns;
            } else if now >= next_reassembly_round {
                next_reassembly_round = now + shared.config.reassembly_round_ns;
                reassembler.advance_round();
            }
        }
        if reassembler.evicted != reported_evictions {
            shared
                .reassembly_evictions
                .add(reassembler.evicted - reported_evictions);
            reported_evictions = reassembler.evicted;
        }

        // Core 0 drives the epoch control loop — in static mode too:
        // the threshold stays pinned but the cost share (and with it the
        // small/large core split) still tracks the observed size mix.
        if core == 0 {
            let now = shared.now_ns();
            let deadline = shared.epoch_deadline_ns.load(Ordering::Relaxed);
            if now >= deadline
                && shared
                    .epoch_deadline_ns
                    .compare_exchange(
                        deadline,
                        now + shared.config.epoch_ns,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_ok()
            {
                run_epoch(shared);
            }
        }

        // RX draining. Under the size-aware discipline's plan drain,
        // small cores drain RX queues (their own plus the large cores')
        // and large cores never touch RX. Every other discipline has
        // each core drain only its own RX queue at the full batch — the
        // symmetric hardware-dispatch model the baselines assume.
        let schedule = if shared.discipline.plan_drain() {
            plan.allocation.is_small_core(core).then(|| {
                drain_schedule(
                    core,
                    shared.config.batch_size,
                    plan.allocation.n_small,
                    plan.allocation.handoff_cores(),
                )
            })
        } else {
            Some(DrainSchedule {
                own: (core, shared.config.batch_size),
                others: Vec::new(),
            })
        };
        if let Some(schedule) = schedule {
            rx_buf.clear();
            let own = shared
                .transport
                .rx_burst(schedule.own.0 as u16, &mut rx_buf, schedule.own.1);
            let mut total = own;
            for &(q, quota) in &schedule.others {
                total += shared.transport.rx_burst(q as u16, &mut rx_buf, quota);
            }
            if total > 0 {
                did_work = true;
                // One rx-dequeue stamp per burst: the packets left the
                // NIC ring together, and per-packet clock reads would
                // only smear the same instant across a few hundred ns.
                let arrival_ns = clock.now_ns();
                for pkt in rx_buf.drain(..) {
                    process_rx_packet(
                        shared,
                        core,
                        &plan,
                        &mut reassembler,
                        clock,
                        arrival_ns,
                        pkt,
                    );
                }
            }
        }

        // Every core drains its own software queue: dedicated large
        // cores live off it, the standby core serves it alongside small
        // work, and a core that just flipped large -> small still
        // flushes stragglers.
        for _ in 0..shared.config.batch_size {
            match shared.soft_queues[core].pop() {
                Some(item) => {
                    did_work = true;
                    execute_queued(shared, core, &mut reassembler, clock, item);
                }
                None => break,
            }
        }

        // Under cFCFS every core also pulls from the single shared
        // queue — the M/G/k system the paper argues against.
        if shared.discipline.uses_shared_queue() {
            for _ in 0..shared.config.batch_size {
                match shared.shared_queue.pop() {
                    Some(item) => {
                        did_work = true;
                        execute_queued(shared, core, &mut reassembler, clock, item);
                    }
                    None => break,
                }
            }
        }

        // Work stealing (opt-in): an idle core takes one request from
        // the longest peer software queue before spinning.
        if !did_work && shared.config.steal {
            did_work = try_steal(shared, core, clock);
        }

        if did_work {
            idle_rounds = 0;
        } else {
            idle_rounds = idle_rounds.saturating_add(1);
            if idle_rounds > 64 {
                // Be a polite busy-poller on shared test machines: the
                // real deployment would pin cores and spin.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

/// The telemetry class of work popped off a software queue. Under
/// size-aware sharding queued work is large-class *by route* — the
/// class records the execution path, exactly the paper's decomposition.
/// Under every other discipline smalls and larges share the queues, so
/// requests class by what they turned out to be (`large` from
/// [`execute`]; a malformed request classes small).
fn queued_class<T: Transport>(shared: &Shared<T>, large: Option<bool>) -> ReqClass {
    if shared.discipline.kind() == DisciplineKind::SizeAware || large.unwrap_or(false) {
        ReqClass::Large
    } else {
        ReqClass::Small
    }
}

/// Executes one complete request popped off a software queue (own,
/// shared, or a steal victim's), recording its queue-wait/service
/// telemetry.
fn execute_queued_request<T: Transport>(
    shared: &Shared<T>,
    core: usize,
    clock: CoreClock,
    req: ServerRequest,
) {
    let t0 = clock.now_ns();
    let wait = t0.saturating_sub(req.arrival_ns);
    let large = execute_and_reply(shared, core, req);
    shared.telemetry[core].record(
        queued_class(shared, large),
        wait,
        clock.now_ns().saturating_sub(t0),
    );
}

/// Executes one item popped off a software queue. Fragments are always
/// large-class (only large PUTs fragment) and are recorded per
/// *fragment*, not per message: each fragment is one unit of queue
/// work, and its wait is exactly the software-queue delay the paper
/// decomposes — a k-fragment PUT contributes k large-class samples.
fn execute_queued<T: Transport>(
    shared: &Shared<T>,
    core: usize,
    reassembler: &mut StreamingReassembler<PutIngest>,
    clock: CoreClock,
    item: Handoff,
) {
    match item {
        Handoff::Request(req) => execute_queued_request(shared, core, clock, req),
        Handoff::Fragment(pkt, arrival_ns) => {
            let t0 = clock.now_ns();
            let wait = t0.saturating_sub(arrival_ns);
            stream_put_fragment(shared, core, reassembler, pkt);
            shared.telemetry[core].record(ReqClass::Large, wait, clock.now_ns().saturating_sub(t0));
        }
    }
}

/// One steal attempt by an idle core: pop a request from the longest
/// peer software queue and execute it here. Fragments are never stolen
/// — all fragments of one message are pinned to a single core's
/// reassembler — so one found at the head is pushed straight back and
/// the attempt abandoned.
fn try_steal<T: Transport>(shared: &Shared<T>, core: usize, clock: CoreClock) -> bool {
    let mut victim = None;
    let mut longest = 0;
    for (i, q) in shared.soft_queues.iter().enumerate() {
        if i != core && q.len() > longest {
            longest = q.len();
            victim = Some(i);
        }
    }
    let Some(victim) = victim else {
        return false;
    };
    match shared.soft_queues[victim].pop() {
        Some(Handoff::Request(req)) => {
            shared.stats[core].record_steal();
            shared.steal_picks.inc();
            execute_queued_request(shared, core, clock, req);
            true
        }
        Some(frag @ Handoff::Fragment(..)) => {
            // Returning the fragment can only fail if the queue refilled
            // between the pop and this push; that loss is still a drop.
            if shared.soft_queues[victim].push(frag).is_err() {
                shared.soft_drops.inc();
            }
            false
        }
        None => false,
    }
}

/// The epoch control step (paper §3, "How to find the threshold" +
/// "How to choose the number of small cores").
fn run_epoch<T: Transport>(shared: &Shared<T>) {
    let mut aggregate = SizeHistogram::new();
    for hist in &shared.size_hists {
        // Draining swaps each atomic bucket to zero: concurrent records
        // land in this epoch or the next, never lost, and the recording
        // cores are never blocked.
        aggregate.merge(&hist.drain());
    }
    let mut controller = shared.controller.lock();
    let decision = controller.epoch_update(&aggregate);
    let epoch_id = controller.epochs();
    let plan = ShardingPlan::from_decision(
        epoch_id,
        shared.config.n_cores,
        decision,
        controller.smoothed_buckets(),
        shared.config.cost_fn,
    );
    *shared.plan.write() = Arc::new(plan);
    shared.epochs.set(epoch_id);
}

fn endpoint_of(pkt: &Packet) -> Endpoint {
    Endpoint {
        mac: pkt.meta.eth.src,
        ip: pkt.meta.ip.src,
        port: pkt.meta.udp.src_port,
    }
}

/// Streams one large-PUT fragment into this core's ingest reassembler:
/// the chunk is copied straight into the message's reserved mempool
/// block (opened on the first-seen fragment) and the fragment's pooled
/// RX buffer is released immediately. On completion the reservation is
/// committed under the bucket lock and the reply transmitted.
fn stream_put_fragment<T: Transport>(
    shared: &Shared<T>,
    core: usize,
    reassembler: &mut StreamingReassembler<PutIngest>,
    pkt: Packet,
) {
    let src = pkt.source_endpoint();
    let reply_to = endpoint_of(&pkt);
    // Cheap refcount clone: keeps the chunk reachable for the
    // over-quota reply below after `push` consumes the payload.
    let payload = pkt.payload.clone();
    let mut over_quota = false;
    let streamed = reassembler.push(src, pkt.payload, |fh| {
        match PutIngest::open_bounded(&shared.store, fh, src, &shared.discard_quota) {
            OpenOutcome::Open(ingest) => Some(ingest),
            OpenOutcome::Malformed => None,
            OpenOutcome::OverQuota => {
                over_quota = true;
                None
            }
        }
    });
    match streamed {
        Streamed::Complete(ingest) => finish_streamed_put(shared, core, ingest, reply_to),
        Streamed::Incomplete | Streamed::Duplicate => {}
        Streamed::Rejected if over_quota => {
            // The source is hogging discard slots: no ingest state was
            // opened, but the paper's contract (every request gets a
            // reply) still holds when this fragment is the one carrying
            // the application header — answer `OutOfMemory` right here.
            // Header-less fragments of the rejected message are simply
            // dropped.
            let mut rd = payload;
            if let Some(fh) = FragHeader::decode(&mut rd) {
                if fh.index == 0 {
                    if let Some(reply) = rejected_put_reply(&rd, ReplyStatus::OutOfMemory) {
                        send_reply(shared, core, reply_to, &reply);
                    }
                }
            }
        }
        Streamed::Rejected => {
            shared.malformed.inc();
        }
    }
}

/// Commits a fully streamed PUT and transmits its reply.
fn finish_streamed_put<T: Transport>(
    shared: &Shared<T>,
    core: usize,
    ingest: PutIngest,
    reply_to: Endpoint,
) {
    let Some(done) = ingest.commit(&shared.store) else {
        shared.malformed.inc();
        return;
    };
    shared.stats[core].record_put(done.is_large());
    send_reply(shared, core, reply_to, &done.reply());
}

/// Transmits one reply message from `core`, drawing the core's next
/// reply message id and recording the TX stats — the single place the
/// per-core `(core << 48) | counter` id scheme lives on the server.
fn send_reply<T: Transport>(shared: &Shared<T>, core: usize, reply_to: Endpoint, reply: &Message) {
    let msg_id = ((core as u64) << 48)
        | (shared.msg_ids[core].fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF_FFFF);
    let (packets, bytes_out) = transmit_message(
        &*shared.transport,
        core as u16,
        shared.endpoint(core),
        reply_to,
        reply,
        msg_id,
    );
    shared.stats[core].record_tx(packets, bytes_out);
}

/// Handles one packet drained from an RX queue by a small core.
/// `arrival_ns` is the rx-dequeue stamp of the burst the packet arrived
/// in — the zero point of its queue-wait measurement.
fn process_rx_packet<T: Transport>(
    shared: &Shared<T>,
    core: usize,
    plan: &ShardingPlan,
    reassembler: &mut StreamingReassembler<PutIngest>,
    clock: CoreClock,
    arrival_ns: u64,
    pkt: Packet,
) {
    shared.stats[core].record_rx(1, pkt.wire_len() as u64);
    let mut rd = pkt.payload.clone();
    let Some(fh) = FragHeader::decode(&mut rd) else {
        shared.malformed.inc();
        return;
    };

    if fh.count > 1 {
        // A multi-fragment message: necessarily a large PUT request.
        // The item size is knowable from the fragment header alone, so
        // classify without reassembling ("the size is known to the
        // client and present in the request. There is therefore no need
        // to do a lookup").
        let item_size = u64::from(fh.msg_len).saturating_sub(MSG_HEADER_LEN as u64);
        if fh.index == 0 {
            shared.size_hists[core].record(item_size);
        }
        // All fragments of one message must reach the same reassembler,
        // across plan changes and across the multiple small cores that
        // drain one RX queue — so the target core is pinned on the
        // message's first-seen fragment. The discipline picks the
        // owner; under size-aware sharding that is the plan's range
        // core (or this core itself when the threshold sits above the
        // size — a heavily large-skewed workload).
        let src = pkt.source_endpoint();
        let watermark = shared.config.shed_watermark;
        let target = shared.flow_pins.pin(src, fh.msg_id, fh.count, || {
            let depths = SoftQueueDepths(&shared.soft_queues);
            let t = shared.discipline.place_fragment(&PlaceCtx {
                rx_core: core,
                n_cores: shared.config.n_cores,
                key: fragment_key(src, fh.msg_id),
                size: Some(item_size),
                plan,
                depths: &depths,
            });
            // The shed valve, decided once per message at pin time so
            // every fragment of a shed PUT is dropped consistently: a
            // multi-fragment message is by construction large, exactly
            // what degrades first under overload.
            if watermark > 0 && t != core && shared.soft_queues[t].len() >= watermark {
                SHED_TARGET
            } else {
                t
            }
        });
        if target == SHED_TARGET {
            // Every fragment of the shed message lands here via the pin;
            // the one carrying the application header answers
            // `Overloaded` (the client backs off), the rest just drop.
            if fh.index == 0 {
                shared.sheds.inc();
                if let Some(reply) = rejected_put_reply(&rd, ReplyStatus::Overloaded) {
                    send_reply(shared, core, endpoint_of(&pkt), &reply);
                }
            }
            return;
        }
        if target == core {
            // Large work executing on the RX-draining core itself
            // (standby mode, or a large-skewed threshold): still
            // large-class — the class records the execution route.
            let t0 = clock.now_ns();
            let wait = t0.saturating_sub(arrival_ns);
            stream_put_fragment(shared, core, reassembler, pkt);
            shared.telemetry[core].record(ReqClass::Large, wait, clock.now_ns().saturating_sub(t0));
        } else if shared.soft_queues[target]
            .push(Handoff::Fragment(pkt, arrival_ns))
            .is_err()
        {
            shared.soft_drops.inc();
        } else {
            shared.stats[core].record_handoff();
        }
        return;
    }

    // Single-fragment packet: a complete (small-sized) message.
    let Some(msg) = Message::decode(rd) else {
        shared.malformed.inc();
        return;
    };
    let reply_to = endpoint_of(&pkt);
    handle_message(
        shared,
        core,
        plan,
        clock,
        ServerRequest {
            msg,
            reply_to,
            arrival_ns,
        },
    );
}

/// Places one complete request per the configured discipline: executes
/// it inline, pushes it to a peer core's software queue, or pushes it
/// to the shared cFCFS queue. Locally executed work records small-class
/// lifecycle telemetry (queue wait = service start − rx dequeue);
/// queued work is recorded by the core that executes it.
fn handle_message<T: Transport>(
    shared: &Shared<T>,
    core: usize,
    plan: &ShardingPlan,
    clock: CoreClock,
    req: ServerRequest,
) {
    let t0 = clock.now_ns();
    let wait = t0.saturating_sub(req.arrival_ns);
    if shared.discipline.needs_size() {
        handle_message_size_aware(shared, core, plan, clock, t0, wait, req);
    } else {
        handle_message_by_key(shared, core, plan, clock, t0, wait, req);
    }
}

/// Places where the discipline needs the item's size (size-aware
/// sharding, paper §3): for GETs, one lookup on the RX core decides —
/// reply directly if the item is small, hand the *request* off if large
/// (the executing core re-reads).
fn handle_message_size_aware<T: Transport>(
    shared: &Shared<T>,
    core: usize,
    plan: &ShardingPlan,
    clock: CoreClock,
    t0: u64,
    wait: u64,
    req: ServerRequest,
) {
    let record_small = |shared: &Shared<T>| {
        shared.telemetry[core].record(ReqClass::Small, wait, clock.now_ns().saturating_sub(t0));
    };
    let place = |key: u64, size: u64| {
        let depths = SoftQueueDepths(&shared.soft_queues);
        shared.discipline.place(&PlaceCtx {
            rx_core: core,
            n_cores: shared.config.n_cores,
            key,
            size: Some(size),
            plan,
            depths: &depths,
        })
    };
    match &req.msg.body {
        Body::Get { key } => match shared.store.get(*key) {
            None => {
                shared.size_hists[core].record(0);
                shared.stats[core].record_get(false);
                reply_direct(shared, core, &req, ReplyStatus::NotFound, None);
                record_small(shared);
            }
            Some(value) => {
                let size = value.len() as u64;
                shared.size_hists[core].record(size);
                match place(*key, size) {
                    Placement::Local => {
                        shared.stats[core].record_get(false);
                        reply_direct(shared, core, &req, ReplyStatus::Ok, Some(value));
                        record_small(shared);
                    }
                    placement => {
                        drop(value);
                        // A handed-off request is large by definition
                        // under size-aware sharding: sheddable.
                        enqueue_placed(shared, core, placement, req, true);
                    }
                }
            }
        },
        Body::Put { key, value, .. } => {
            let size = value.len() as u64;
            shared.size_hists[core].record(size);
            match place(*key, size) {
                Placement::Local => {
                    execute_and_reply(shared, core, req);
                    record_small(shared);
                }
                placement => enqueue_placed(shared, core, placement, req, true),
            }
        }
        Body::Delete { .. } => {
            // Deletes carry no payload and free memory; they execute
            // locally (create/delete are PUT variants in the paper and
            // are not discussed further — this is the obvious policy).
            execute_and_reply(shared, core, req);
            record_small(shared);
        }
        _ => {
            // Replies arriving at a server are protocol violations.
            shared.malformed.inc();
        }
    }
}

/// Places where the discipline works from the key and queue state alone
/// (every non-size-aware discipline): no classification lookup on the
/// RX core — the executing core performs the only store access, and
/// telemetry classes by what the request turned out to be.
fn handle_message_by_key<T: Transport>(
    shared: &Shared<T>,
    core: usize,
    plan: &ShardingPlan,
    clock: CoreClock,
    t0: u64,
    wait: u64,
    req: ServerRequest,
) {
    let (key, size) = match &req.msg.body {
        Body::Get { key } | Body::Delete { key } => (*key, None),
        Body::Put { key, value, .. } => (*key, Some(value.len() as u64)),
        _ => {
            // Replies arriving at a server are protocol violations.
            shared.malformed.inc();
            return;
        }
    };
    // Keep the size statistics (and with them the epoch controller and
    // the `plan.*` telemetry) flowing where the size is knowable
    // without a lookup. The plan these feed is advisory here — no
    // placement consults it.
    if let Some(size) = size {
        shared.size_hists[core].record(size);
    }
    let placement = {
        let depths = SoftQueueDepths(&shared.soft_queues);
        shared.discipline.place(&PlaceCtx {
            rx_core: core,
            n_cores: shared.config.n_cores,
            key,
            size,
            plan,
            depths: &depths,
        })
    };
    match placement {
        Placement::Local => {
            let large = execute_and_reply(shared, core, req);
            let class = if large.unwrap_or(false) {
                ReqClass::Large
            } else {
                ReqClass::Small
            };
            shared.telemetry[core].record(class, wait, clock.now_ns().saturating_sub(t0));
        }
        placement => {
            // Non-size-aware disciplines don't classify to place, but
            // the shed valve still needs to know large from small:
            // consult the advisory plan's threshold where the size is
            // knowable without a lookup (PUTs; GETs/DELETEs pass).
            let sheddable = size.is_some_and(|s| s >= plan.decision.threshold);
            enqueue_placed(shared, core, placement, req, sheddable);
        }
    }
}

/// The [`FlowPins`] target marking a multi-fragment message shed by the
/// overload valve: every fragment observing it is dropped, fragment 0
/// answers `Overloaded`.
const SHED_TARGET: usize = usize::MAX;

/// Pushes a placed request onto its target queue — a peer core's
/// software queue or the shared cFCFS queue — with the pick counters
/// and tail-drop accounting. `Placement::Local` is the caller's job
/// (the two paths reply with different state in hand).
///
/// `sheddable` marks requests the overload valve may refuse: large
/// ones, per the size-aware insight inverted — under overload the
/// small-class tail is protected first, so a queue sitting past
/// [`MinosConfig::shed_watermark`] sheds the large request with an
/// immediate [`ReplyStatus::Overloaded`] reply (an error, not an ack:
/// nothing executes, nothing is stored) instead of deepening the
/// backlog until tail-drop loses it silently.
fn enqueue_placed<T: Transport>(
    shared: &Shared<T>,
    core: usize,
    placement: Placement,
    req: ServerRequest,
    sheddable: bool,
) {
    let (queue, pick) = match placement {
        Placement::Core(target) => (&shared.soft_queues[target], &shared.queue_picks),
        Placement::Shared => (&shared.shared_queue, &shared.shared_picks),
        Placement::Local => unreachable!("local placement executes inline"),
    };
    let watermark = shared.config.shed_watermark;
    if sheddable && watermark > 0 {
        // The shared queue serves all cores and is sized n× a software
        // queue; its watermark scales the same way.
        let limit = match placement {
            Placement::Shared => watermark * shared.config.n_cores,
            _ => watermark,
        };
        if queue.len() >= limit {
            shared.sheds.inc();
            reply_direct(shared, core, &req, ReplyStatus::Overloaded, None);
            return;
        }
    }
    pick.inc();
    if queue.push(Handoff::Request(req)).is_err() {
        shared.soft_drops.inc();
    } else {
        shared.stats[core].record_handoff();
    }
}

/// Transmits a reply for a request whose outcome is already known
/// (small-core fast path: the lookup already happened during
/// classification).
fn reply_direct<T: Transport>(
    shared: &Shared<T>,
    core: usize,
    req: &ServerRequest,
    status: ReplyStatus,
    value: Option<minos_kv::PoolBytes>,
) {
    let reply = req.msg.reply(status, value.map(bytes::Bytes::from_owner));
    send_reply(shared, core, req.reply_to, &reply);
}

/// Executes a request on this core (small or large) and transmits the
/// reply on this core's TX queue. Returns whether the item was large
/// (`None` for malformed requests) so queued-work telemetry can class
/// by outcome under the non-size-aware disciplines.
fn execute_and_reply<T: Transport>(
    shared: &Shared<T>,
    core: usize,
    req: ServerRequest,
) -> Option<bool> {
    let Some((status, value, was_get, large)) = execute(&shared.store, &req.msg) else {
        shared.malformed.inc();
        return None;
    };
    if was_get {
        shared.stats[core].record_get(large);
    } else {
        shared.stats[core].record_put(large);
    }
    let reply = req.msg.reply(status, value.map(bytes::Bytes::from_owner));
    send_reply(shared, core, req.reply_to, &reply);
    Some(large)
}

/// Executes `msg` against `store`, returning `(status, reply value,
/// was_get, item_was_large)`; `None` for protocol violations (a reply
/// arriving at the server). Shared by every engine — Minos and the
/// baselines execute requests identically (§5.2's fairness requirement).
pub fn execute(
    store: &Store,
    msg: &Message,
) -> Option<(ReplyStatus, Option<minos_kv::PoolBytes>, bool, bool)> {
    match &msg.body {
        Body::Get { key } => match store.get(*key) {
            Some(value) => {
                let large = value.len() > minos_wire::MAX_FRAG_CHUNK;
                Some((ReplyStatus::Ok, Some(value), true, large))
            }
            None => Some((ReplyStatus::NotFound, None, true, false)),
        },
        Body::Put { key, value, ttl_ms } => {
            let large = value.len() > minos_wire::MAX_FRAG_CHUNK;
            let status = match store.put_with_ttl(*key, value, *ttl_ms) {
                Ok(()) => ReplyStatus::Ok,
                Err(PutError::OutOfMemory) | Err(PutError::TableFull) => ReplyStatus::OutOfMemory,
            };
            Some((status, None, false, large))
        }
        Body::Delete { key } => {
            let found = store.delete(*key);
            Some((
                if found {
                    ReplyStatus::Ok
                } else {
                    ReplyStatus::NotFound
                },
                None,
                false,
                false,
            ))
        }
        _ => None,
    }
}

/// Encodes, fragments and transmits a reply on `tx_queue` of
/// `transport`. Returns the `(packets, bytes)` accepted by the
/// transport (a full ring/socket buffer tail-drops the rest, like
/// hardware; the client's loss accounting notices). Shared by every
/// engine.
///
/// The whole reply is scatter-gather end to end: the value leaves the
/// store as refcounted mempool memory (`PoolBytes` →
/// `Bytes::from_owner`), [`Message::encode_frame`] appends it to the
/// reply frame as a segment, fragmentation slices it per datagram
/// ([`fragment_frame_with_id`]), and one [`Transport::tx_frames`] burst
/// hands header-iovec + value-iovec pairs to the transport — the value
/// bytes are never copied on this path, an invariant the transport's
/// `tx_copied_bytes` gauge asserts.
pub fn transmit_reply<T: Transport + ?Sized>(
    transport: &T,
    tx_queue: u16,
    src: Endpoint,
    req: &ServerRequest,
    status: ReplyStatus,
    value: Option<minos_kv::PoolBytes>,
    msg_id: u64,
) -> (u64, u64) {
    // `PoolBytes` is already refcounted mempool storage; wrapping it as
    // an owner-backed `Bytes` hands it to the wire layer without the
    // copy (and allocation) this path used to pay per GET reply.
    let value_bytes = value.map(bytes::Bytes::from_owner);
    let reply = req.msg.reply(status, value_bytes);
    transmit_message(transport, tx_queue, src, req.reply_to, &reply, msg_id)
}

/// Encodes, fragments and transmits one message to `dst` on `tx_queue`
/// — [`transmit_reply`] without needing the request `Message` in hand,
/// which the streamed-PUT path never materializes. Same scatter-gather
/// path, same `(packets, bytes)` accounting.
pub fn transmit_message<T: Transport + ?Sized>(
    transport: &T,
    tx_queue: u16,
    src: Endpoint,
    dst: Endpoint,
    msg: &Message,
    msg_id: u64,
) -> (u64, u64) {
    let frame = msg.encode_frame();
    let mut burst: Vec<TxPacket> = fragment_frame_with_id(msg_id, &frame)
        .into_iter()
        .map(|frag| synthesize_frame(src, dst, frag))
        .collect();
    if let [only] = burst.as_slice() {
        // Single-fragment replies (the overwhelming majority): no
        // per-fragment bookkeeping allocation on the latency path.
        let wire = only.wire_len() as u64;
        let sent = transport.tx_frames(tx_queue, &mut burst);
        return (sent as u64, if sent == 1 { wire } else { 0 });
    }
    let wire_lens: Vec<u64> = burst.iter().map(|p| p.wire_len() as u64).collect();
    let sent = transport.tx_frames(tx_queue, &mut burst);
    (sent as u64, wire_lens[..sent].iter().sum())
}
