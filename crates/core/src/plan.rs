//! The published sharding plan: the atomically-swapped combination of
//! threshold, core allocation and large-core size ranges.
//!
//! Core 0 recomputes the plan once per epoch and publishes it; every
//! core re-reads it at the top of its polling loop. The plan is
//! immutable once published (an `Arc` swap), so cores never observe a
//! half-updated decision.

use crate::allocation::{allocate, CoreAllocation};
use crate::cost::CostFn;
use crate::ranges::LargeRanges;
use crate::threshold::ThresholdDecision;

/// Where a classified request should be executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Destination {
    /// Small request: execute on the receiving (small) core.
    Local,
    /// Large request: hand off to the software queue of this core id.
    Handoff(usize),
}

/// An immutable sharding decision for one epoch.
#[derive(Clone, Debug)]
pub struct ShardingPlan {
    /// Monotonic epoch counter.
    pub epoch_id: u64,
    /// The threshold decision in force.
    pub decision: ThresholdDecision,
    /// The core split.
    pub allocation: CoreAllocation,
    /// Equal-cost size ranges over the handoff cores.
    pub ranges: LargeRanges,
}

impl ShardingPlan {
    /// The bootstrap plan before any statistics: all cores small, the
    /// last core on standby for large requests.
    pub fn bootstrap(n_cores: usize) -> Self {
        let decision = ThresholdDecision::bootstrap();
        ShardingPlan {
            epoch_id: 0,
            decision,
            allocation: allocate(n_cores, decision.small_cost_share),
            ranges: LargeRanges::single(),
        }
    }

    /// Builds the plan for a fresh decision using histogram `buckets`
    /// (pairs of size upper bound and smoothed weight).
    pub fn from_decision<I>(
        epoch_id: u64,
        n_cores: usize,
        decision: ThresholdDecision,
        buckets: I,
        cost_fn: CostFn,
    ) -> Self
    where
        I: IntoIterator<Item = (u64, f64)> + Clone,
    {
        let allocation = allocate(n_cores, decision.small_cost_share);
        let ranges =
            LargeRanges::build(buckets, decision.threshold, allocation.n_handoff(), cost_fn);
        ShardingPlan {
            epoch_id,
            decision,
            allocation,
            ranges,
        }
    }

    /// Classifies a request for an item of `size` bytes.
    #[inline]
    pub fn classify(&self, size: u64) -> Destination {
        if self.decision.is_small(size) {
            Destination::Local
        } else {
            let idx = self.ranges.core_for_size(size);
            let base = self.allocation.handoff_cores().start;
            Destination::Handoff(base + idx.min(self.allocation.n_handoff() - 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_plan_is_standby() {
        let p = ShardingPlan::bootstrap(8);
        assert!(p.allocation.standby);
        assert_eq!(p.classify(100), Destination::Local);
        assert_eq!(p.classify(500_000), Destination::Handoff(7));
    }

    fn bimodal_buckets() -> Vec<(u64, f64)> {
        let mut v = vec![(100u64, 99_875.0)];
        for i in 0..50 {
            v.push((1_500 + i * 10_000, 125.0 / 50.0));
        }
        v
    }

    #[test]
    fn plan_routes_by_size_ranges() {
        let decision = ThresholdDecision {
            threshold: 1_400,
            small_cost_share: 0.5, // forces several large cores
            epoch_requests: 100_000,
        };
        let p = ShardingPlan::from_decision(3, 8, decision, bimodal_buckets(), CostFn::Packets);
        assert_eq!(p.allocation.n_small, 4);
        assert_eq!(p.allocation.n_large, 4);
        assert_eq!(p.classify(100), Destination::Local);
        // Small large items to the first large core, big ones later.
        let Destination::Handoff(first) = p.classify(2_000) else {
            panic!("2 KB must be handed off")
        };
        let Destination::Handoff(last) = p.classify(490_000) else {
            panic!("490 KB must be handed off")
        };
        assert_eq!(first, 4, "smallest large sizes go to the first large core");
        assert!(last > first);
        assert!(last < 8);
    }

    #[test]
    fn single_large_core_takes_all_large() {
        let decision = ThresholdDecision {
            threshold: 1_400,
            small_cost_share: 0.875,
            epoch_requests: 1,
        };
        let p = ShardingPlan::from_decision(1, 8, decision, bimodal_buckets(), CostFn::Packets);
        assert_eq!(p.allocation.n_large, 1);
        assert_eq!(p.classify(2_000), Destination::Handoff(7));
        assert_eq!(p.classify(999_999), Destination::Handoff(7));
    }

    #[test]
    fn classification_is_total() {
        let p = ShardingPlan::bootstrap(4);
        for size in [0u64, 1, 13, 14, 1_400, 1_456, 1_500, 250_000, u64::MAX] {
            match p.classify(size) {
                Destination::Local => assert!(p.decision.is_small(size)),
                Destination::Handoff(c) => {
                    assert!(!p.decision.is_small(size));
                    assert!(c < 4);
                }
            }
        }
    }
}
