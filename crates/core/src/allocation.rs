//! Core allocation between small and large requests (paper §3).
//!
//! "The fraction of cores that serve as small cores is set to the
//! ceiling of the fraction of the total processing cost incurred by
//! small requests times the total number of cores. The remaining cores
//! are used as large cores. ... If all cores are deemed to be small
//! cores, then one core is designated a standby large core."
//!
//! Convention: cores `0..n_small` are small, cores `n_small..n` are
//! large. In standby mode all cores are small and the *last* core is
//! the standby large core (it serves small requests but also drains its
//! software queue, becoming a large core the moment a large request
//! arrives).

/// The division of cores between the two classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreAllocation {
    /// Total cores.
    pub n_cores: usize,
    /// Cores dedicated to small requests (`0..n_small`).
    pub n_small: usize,
    /// Dedicated large cores (`n_small..n_cores`); zero in standby mode.
    pub n_large: usize,
    /// True when all cores are small and the last one is the standby
    /// large core.
    pub standby: bool,
}

/// Computes the allocation from the small-request cost share.
pub fn allocate(n_cores: usize, small_cost_share: f64) -> CoreAllocation {
    assert!(n_cores > 0);
    let share = small_cost_share.clamp(0.0, 1.0);
    let mut n_small = (share * n_cores as f64).ceil() as usize;
    // At least one core must serve small requests (the small class is
    // never empty in practice: the threshold is the 99th percentile of
    // sizes, so ≥ 99 % of requests are small).
    n_small = n_small.clamp(1, n_cores);
    let n_large = n_cores - n_small;
    CoreAllocation {
        n_cores,
        n_small,
        n_large,
        standby: n_large == 0,
    }
}

impl CoreAllocation {
    /// Small-core ids.
    pub fn small_cores(&self) -> std::ops::Range<usize> {
        0..self.n_small
    }

    /// Dedicated large-core ids (empty in standby mode).
    pub fn large_cores(&self) -> std::ops::Range<usize> {
        self.n_small..self.n_cores
    }

    /// The cores whose software queues receive large requests: the
    /// dedicated large cores, or just the standby core.
    pub fn handoff_cores(&self) -> std::ops::Range<usize> {
        if self.standby {
            self.n_cores - 1..self.n_cores
        } else {
            self.large_cores()
        }
    }

    /// Number of handoff targets (≥ 1 by construction: "there is always
    /// at least one core available for handling large requests").
    pub fn n_handoff(&self) -> usize {
        self.handoff_cores().len()
    }

    /// True if `core` serves small requests (standby core included:
    /// it serves small requests until large ones show up).
    pub fn is_small_core(&self, core: usize) -> bool {
        core < self.n_small
    }

    /// True if `core`'s software queue receives large requests.
    pub fn is_handoff_core(&self, core: usize) -> bool {
        self.handoff_cores().contains(&core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_small_gives_standby() {
        let a = allocate(8, 1.0);
        assert_eq!(a.n_small, 8);
        assert_eq!(a.n_large, 0);
        assert!(a.standby);
        assert_eq!(a.handoff_cores(), 7..8);
        assert_eq!(a.n_handoff(), 1);
        assert!(a.is_small_core(7), "standby core still serves small");
        assert!(a.is_handoff_core(7));
        assert!(!a.is_handoff_core(0));
    }

    #[test]
    fn ceiling_rule() {
        // share 0.70 on 8 cores: ceil(5.6) = 6 small, 2 large.
        let a = allocate(8, 0.70);
        assert_eq!(a.n_small, 6);
        assert_eq!(a.n_large, 2);
        assert!(!a.standby);
        assert_eq!(a.small_cores(), 0..6);
        assert_eq!(a.large_cores(), 6..8);
        assert_eq!(a.handoff_cores(), 6..8);
    }

    #[test]
    fn exact_multiples_do_not_over_allocate() {
        // share 0.75 on 8 cores: ceil(6.0) = 6 small.
        let a = allocate(8, 0.75);
        assert_eq!(a.n_small, 6);
        assert_eq!(a.n_large, 2);
    }

    #[test]
    fn at_least_one_small_core() {
        let a = allocate(8, 0.0);
        assert_eq!(a.n_small, 1);
        assert_eq!(a.n_large, 7);
    }

    #[test]
    fn single_core_server() {
        let a = allocate(1, 0.5);
        assert_eq!(a.n_small, 1);
        assert!(a.standby);
        assert_eq!(a.handoff_cores(), 0..1);
    }

    #[test]
    fn share_monotonicity() {
        // More small cost share can never mean fewer small cores.
        let mut prev = 0;
        for i in 0..=100 {
            let share = i as f64 / 100.0;
            let a = allocate(8, share);
            assert!(a.n_small >= prev, "share {share}");
            prev = a.n_small;
            assert_eq!(a.n_small + a.n_large, 8);
            assert!(a.n_handoff() >= 1);
        }
    }

    #[test]
    fn paper_default_workload_allocation() {
        // Default workload: small cost share ≈ 0.70 (see the threshold
        // tests) — the paper observes Minos allocates one core to large
        // requests at pL = 0.125 %... with 8 cores and share ≈ 0.70 the
        // ceiling gives 6 small / 2 large; at share ≈ 0.9 it gives
        // 8 small (standby). The figure-9 bench exercises the actual
        // shares; here we pin the arithmetic.
        assert_eq!(allocate(8, 0.875).n_small, 7);
        assert_eq!(allocate(8, 0.875).n_large, 1);
    }
}
