//! Request dispatch: batch-draining quotas and pluggable queue
//! disciplines.
//!
//! The first half of this module is the paper's §3 drain schedule:
//!
//! "Each small core repeats the following sequence of actions w.r.t. the
//! RX queues: First, it reads a batch of B requests from its own RX
//! queue. Then it reads a batch of B/ns requests from the RX queue of
//! the large core. In this way, all RX queues are drained at
//! approximately the same rate. The reason a large core never reads
//! incoming requests from its RX queue is that, if it were to receive a
//! small request, this request could experience head-of-line blocking
//! behind large requests."
//!
//! The second half is the [`Discipline`] trait: the *placement* decision
//! — which core executes a decoded request — extracted behind a trait so
//! the same server core loop can run the paper's size-aware sharding or
//! any of the classical alternatives it is compared against (cFCFS,
//! dFCFS, JSQ, round-robin, random). This makes the paper's headline
//! claim falsifiable inside the reproduction itself: `minos-figures
//! --disciplines size-aware,cfcfs,...` sweeps the same workload over
//! every policy and the committed shoot-out figure shows where
//! size-aware wins.
//!
//! | kind         | placement rule                          | queue shape |
//! |--------------|------------------------------------------|-------------|
//! | `size-aware` | small → RX core, large → plan's range core | per-core soft queues (paper §3) |
//! | `cfcfs`      | everything → one shared queue, any core pulls | single M/G/k queue |
//! | `dfcfs`      | key-hash → fixed owner core              | partitioned nxM/G/1 |
//! | `jsq`        | shortest soft queue at decision time     | per-core soft queues |
//! | `round-robin`| strict rotation over cores               | per-core soft queues |
//! | `random`     | uniform random core                      | per-core soft queues |
//!
//! Only `size-aware` consults the [`ShardingPlan`] (and therefore needs
//! the item's size, [`Discipline::needs_size`]); only it drains RX
//! queues asymmetrically ([`Discipline::plan_drain`]). Every other
//! discipline has each core drain its own RX queue at the full batch —
//! the hardware-dispatch model the baselines assume.

use crate::plan::{Destination, ShardingPlan};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// How many packets one small core takes from one large core's RX queue
/// per polling round, given batch size `B` and `n_small` small cores.
///
/// Rounded up so the aggregate across small cores is ≥ `B`: large-core
/// RX queues are drained at least as fast as small ones, never slower.
#[inline]
pub fn large_rx_quota(batch: usize, n_small: usize) -> usize {
    debug_assert!(n_small > 0);
    batch.div_ceil(n_small)
}

/// The per-round RX draining schedule of one small core: its own queue
/// at full batch, then every handoff core's queue at the shared quota.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrainSchedule {
    /// The core's own RX queue and its batch size.
    pub own: (usize, usize),
    /// `(queue, quota)` for each large/standby core's RX queue.
    pub others: Vec<(usize, usize)>,
}

/// Builds the drain schedule for small core `core` under the allocation
/// described by `n_small`, `handoff_cores` and batch size `batch`.
pub fn drain_schedule(
    core: usize,
    batch: usize,
    n_small: usize,
    handoff_cores: std::ops::Range<usize>,
) -> DrainSchedule {
    let quota = large_rx_quota(batch, n_small);
    DrainSchedule {
        own: (core, batch),
        others: handoff_cores
            .filter(|&q| q != core) // standby core doesn't re-drain itself
            .map(|q| (q, quota))
            .collect(),
    }
}

/// The selectable queue disciplines. `name()`/`from_name()` use the
/// kebab-case spellings the CLIs (`minos-server --discipline`,
/// `minos-figures --disciplines`) and the committed figure JSON share.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DisciplineKind {
    /// The paper's size-aware sharding: the default and the only
    /// discipline that consults the epoch [`ShardingPlan`].
    SizeAware,
    /// Centralized FCFS (M/G/k): one shared queue, any core pulls.
    Cfcfs,
    /// Distributed FCFS (nxM/G/1): key-hash partitioned per core.
    Dfcfs,
    /// Join-shortest-queue over the live soft-queue depth gauges.
    Jsq,
    /// Strict rotation over cores.
    RoundRobin,
    /// Uniform random core.
    Random,
}

impl DisciplineKind {
    /// Every kind, in the order the shoot-out figure sweeps them.
    pub const ALL: [DisciplineKind; 6] = [
        DisciplineKind::SizeAware,
        DisciplineKind::Cfcfs,
        DisciplineKind::Dfcfs,
        DisciplineKind::Jsq,
        DisciplineKind::RoundRobin,
        DisciplineKind::Random,
    ];

    /// The CLI/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            DisciplineKind::SizeAware => "size-aware",
            DisciplineKind::Cfcfs => "cfcfs",
            DisciplineKind::Dfcfs => "dfcfs",
            DisciplineKind::Jsq => "jsq",
            DisciplineKind::RoundRobin => "round-robin",
            DisciplineKind::Random => "random",
        }
    }

    /// Inverse of [`DisciplineKind::name`].
    pub fn from_name(name: &str) -> Option<DisciplineKind> {
        DisciplineKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Builds the discipline's (possibly stateful) implementation.
    pub fn build(self) -> Box<dyn Discipline> {
        match self {
            DisciplineKind::SizeAware => Box::new(SizeAware),
            DisciplineKind::Cfcfs => Box::new(Cfcfs),
            DisciplineKind::Dfcfs => Box::new(Dfcfs),
            DisciplineKind::Jsq => Box::new(Jsq),
            DisciplineKind::RoundRobin => Box::new(RoundRobin::new()),
            DisciplineKind::Random => Box::new(Random::seeded(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

/// Where a placed request executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Execute inline on the core that drained the packet.
    Local,
    /// Push to core `i`'s software queue (pushing to one's own queue is
    /// legal and meaningful: the standby core under size-aware sharding
    /// serves its own large handoffs FIFO behind earlier ones).
    Core(usize),
    /// Push to the single shared queue — any core pulls (cFCFS).
    Shared,
}

/// Live per-core software-queue depths, supplied by the server at
/// decision time (JSQ reads these; everything else ignores them).
pub trait QueueDepths {
    /// Requests currently queued for core `core`.
    fn depth(&self, core: usize) -> usize;
}

/// Depths backed by an array — the test/sim harness view.
impl<const N: usize> QueueDepths for [usize; N] {
    fn depth(&self, core: usize) -> usize {
        self[core]
    }
}

/// Depths backed by a vector — the test/sim harness view.
impl QueueDepths for Vec<usize> {
    fn depth(&self, core: usize) -> usize {
        self[core]
    }
}

/// Everything a discipline may consult to place one request.
pub struct PlaceCtx<'a> {
    /// The core that drained and decoded the packet.
    pub rx_core: usize,
    /// Total server cores.
    pub n_cores: usize,
    /// The request's key (for fragments, a mix of the source endpoint
    /// and message id — the key itself only travels in fragment 0).
    pub key: u64,
    /// The item's size in bytes, when known without a lookup: PUT value
    /// length, or the fragment header's message length. `None` for GETs
    /// under disciplines that don't pay the classification lookup.
    pub size: Option<u64>,
    /// The sharding plan in force (only size-aware reads it).
    pub plan: &'a ShardingPlan,
    /// Live soft-queue depth gauges (only JSQ reads them).
    pub depths: &'a dyn QueueDepths,
}

impl PlaceCtx<'_> {
    /// The core with the shallowest soft queue, preferring the RX core
    /// on ties (no handoff hop when nothing is gained by one).
    fn shortest_queue(&self) -> usize {
        let mut best = self.rx_core;
        let mut best_depth = self.depths.depth(self.rx_core);
        for core in 0..self.n_cores {
            let d = self.depths.depth(core);
            if d < best_depth {
                best = core;
                best_depth = d;
            }
        }
        best
    }
}

/// A pluggable queue discipline: given a decoded request (its key, its
/// size class when known, the live queue depths), decide which core
/// executes it. Implementations must be cheap — `place` runs once per
/// request on the RX drain path — and lock-free (shared across all core
/// threads).
pub trait Discipline: Send + Sync {
    /// The kind this implementation was built from.
    fn kind(&self) -> DisciplineKind;

    /// The CLI/JSON name.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Whether placement needs the item's size. When true the server
    /// performs the size-aware classification lookup for GETs on the RX
    /// core (paper §3); when false GETs are placed by key alone and the
    /// executing core does the only lookup.
    fn needs_size(&self) -> bool {
        false
    }

    /// Whether cores must also poll the shared queue
    /// ([`Placement::Shared`] is only legal when this is true).
    fn uses_shared_queue(&self) -> bool {
        false
    }

    /// Whether RX draining follows the sharding plan (small cores drain
    /// the large cores' RX queues per [`drain_schedule`]; large cores
    /// never touch RX). When false, every core drains only its own RX
    /// queue at the full batch.
    fn plan_drain(&self) -> bool {
        false
    }

    /// Picks where the request executes.
    fn place(&self, ctx: &PlaceCtx) -> Placement;

    /// Picks the core that owns reassembly of a multi-fragment message.
    /// Fragments can never go to the shared queue — all fragments of one
    /// message must reach a single core's reassembler — so `Shared`
    /// placements fall back to the shortest soft queue.
    fn place_fragment(&self, ctx: &PlaceCtx) -> usize {
        match self.place(ctx) {
            Placement::Local => ctx.rx_core,
            Placement::Core(core) => core,
            Placement::Shared => ctx.shortest_queue(),
        }
    }
}

/// The paper's size-aware sharding, verbatim: the plan classifies by
/// size; small items execute where they landed, large items go to the
/// range-owning large core's software queue.
pub struct SizeAware;

impl Discipline for SizeAware {
    fn kind(&self) -> DisciplineKind {
        DisciplineKind::SizeAware
    }

    fn needs_size(&self) -> bool {
        true
    }

    fn plan_drain(&self) -> bool {
        true
    }

    fn place(&self, ctx: &PlaceCtx) -> Placement {
        // `needs_size` guarantees the server supplies the size; treat a
        // missing one as small rather than panicking on the hot path.
        let size = ctx.size.unwrap_or(0);
        match ctx.plan.classify(size) {
            Destination::Local => Placement::Local,
            Destination::Handoff(target) => Placement::Core(target),
        }
    }
}

/// Centralized FCFS: the single-queue M/G/k system the paper argues
/// suffers head-of-line blocking from large requests.
pub struct Cfcfs;

impl Discipline for Cfcfs {
    fn kind(&self) -> DisciplineKind {
        DisciplineKind::Cfcfs
    }

    fn uses_shared_queue(&self) -> bool {
        true
    }

    fn place(&self, _ctx: &PlaceCtx) -> Placement {
        Placement::Shared
    }
}

/// Distributed FCFS: the key-hash partitioned nxM/G/1 system — perfect
/// locality, no balancing, large keys hot-spot their owner core.
pub struct Dfcfs;

impl Dfcfs {
    /// The owner core of `key` among `n_cores`.
    pub fn owner(key: u64, n_cores: usize) -> usize {
        (minos_kv::keyhash(key) % n_cores as u64) as usize
    }
}

impl Discipline for Dfcfs {
    fn kind(&self) -> DisciplineKind {
        DisciplineKind::Dfcfs
    }

    fn place(&self, ctx: &PlaceCtx) -> Placement {
        let owner = Dfcfs::owner(ctx.key, ctx.n_cores);
        if owner == ctx.rx_core {
            Placement::Local
        } else {
            Placement::Core(owner)
        }
    }
}

/// Join-shortest-queue over the live depth gauges; ties prefer the RX
/// core (no pointless handoff hop).
pub struct Jsq;

impl Discipline for Jsq {
    fn kind(&self) -> DisciplineKind {
        DisciplineKind::Jsq
    }

    fn place(&self, ctx: &PlaceCtx) -> Placement {
        let pick = ctx.shortest_queue();
        if pick == ctx.rx_core {
            Placement::Local
        } else {
            Placement::Core(pick)
        }
    }
}

/// Strict rotation over cores via one shared atomic counter.
pub struct RoundRobin {
    next: AtomicUsize,
}

impl RoundRobin {
    fn new() -> Self {
        RoundRobin {
            next: AtomicUsize::new(0),
        }
    }
}

impl Discipline for RoundRobin {
    fn kind(&self) -> DisciplineKind {
        DisciplineKind::RoundRobin
    }

    fn place(&self, ctx: &PlaceCtx) -> Placement {
        let pick = self.next.fetch_add(1, Ordering::Relaxed) % ctx.n_cores;
        if pick == ctx.rx_core {
            Placement::Local
        } else {
            Placement::Core(pick)
        }
    }
}

/// Uniform random core from a lock-free splitmix64 stream.
pub struct Random {
    state: AtomicU64,
}

impl Random {
    fn seeded(seed: u64) -> Self {
        Random {
            state: AtomicU64::new(seed),
        }
    }

    fn next(&self) -> u64 {
        let x = self
            .state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Discipline for Random {
    fn kind(&self) -> DisciplineKind {
        DisciplineKind::Random
    }

    fn place(&self, ctx: &PlaceCtx) -> Placement {
        let pick = (self.next() % ctx.n_cores as u64) as usize;
        if pick == ctx.rx_core {
            Placement::Local
        } else {
            Placement::Core(pick)
        }
    }
}

/// Mixes a source endpoint and message id into the pseudo-key fragments
/// are placed by (the real key only travels in fragment 0, and placement
/// must agree across all fragments of one message).
#[inline]
pub fn fragment_key(src: u64, msg_id: u64) -> u64 {
    let mut z = src ^ msg_id.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::allocate;
    use crate::ranges::LargeRanges;
    use crate::threshold::ThresholdDecision;

    #[test]
    fn quota_rounds_up() {
        assert_eq!(large_rx_quota(32, 7), 5); // 32/7 = 4.57 -> 5
        assert_eq!(large_rx_quota(32, 8), 4);
        assert_eq!(large_rx_quota(32, 1), 32);
        assert_eq!(large_rx_quota(1, 8), 1);
    }

    #[test]
    fn aggregate_drain_rate_covers_large_queues() {
        // n_small small cores together must drain a large queue at >= B
        // per round.
        for n_small in 1..=16 {
            let q = large_rx_quota(32, n_small);
            assert!(q * n_small >= 32, "n_small {n_small}");
        }
    }

    #[test]
    fn schedule_for_dedicated_large_cores() {
        // 6 small cores, large cores 6 and 7.
        let s = drain_schedule(2, 32, 6, 6..8);
        assert_eq!(s.own, (2, 32));
        assert_eq!(s.others, vec![(6, 6), (7, 6)]);
    }

    #[test]
    fn standby_core_does_not_drain_itself_twice() {
        // Standby mode: 8 small cores, handoff core is 7. Core 7's
        // schedule must not list queue 7 twice.
        let s = drain_schedule(7, 32, 8, 7..8);
        assert_eq!(s.own, (7, 32));
        assert!(s.others.is_empty());
        // Other small cores do help drain queue 7.
        let s0 = drain_schedule(0, 32, 8, 7..8);
        assert_eq!(s0.others, vec![(7, 4)]);
    }

    fn test_plan(n_cores: usize, threshold: u64) -> ShardingPlan {
        let decision = ThresholdDecision {
            threshold,
            small_cost_share: 0.75,
            epoch_requests: 0,
        };
        ShardingPlan {
            epoch_id: 1,
            allocation: allocate(n_cores, decision.small_cost_share),
            ranges: LargeRanges::single(),
            decision,
        }
    }

    fn ctx<'a, const N: usize>(
        plan: &'a ShardingPlan,
        depths: &'a [usize; N],
        rx_core: usize,
        key: u64,
        size: Option<u64>,
    ) -> PlaceCtx<'a> {
        PlaceCtx {
            rx_core,
            n_cores: N,
            key,
            size,
            plan,
            depths,
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in DisciplineKind::ALL {
            assert_eq!(DisciplineKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.build().kind(), kind);
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(DisciplineKind::from_name("fifo"), None);
    }

    #[test]
    fn size_aware_mirrors_plan_classification() {
        let plan = test_plan(4, 1000);
        let depths = [0usize; 4];
        let d = DisciplineKind::SizeAware.build();
        assert!(d.needs_size() && d.plan_drain() && !d.uses_shared_queue());
        for size in [0u64, 1, 999, 1000, 1001, 1 << 20] {
            let c = ctx(&plan, &depths, 1, 7, Some(size));
            let expect = match plan.classify(size) {
                Destination::Local => Placement::Local,
                Destination::Handoff(t) => Placement::Core(t),
            };
            assert_eq!(d.place(&c), expect, "size {size}");
        }
    }

    #[test]
    fn cfcfs_always_shared() {
        let plan = test_plan(4, 1000);
        let depths = [3usize, 0, 5, 1];
        let d = DisciplineKind::Cfcfs.build();
        assert!(d.uses_shared_queue() && !d.needs_size() && !d.plan_drain());
        for key in 0..16 {
            let c = ctx(&plan, &depths, (key % 4) as usize, key, None);
            assert_eq!(d.place(&c), Placement::Shared);
        }
        // Fragments can't be shared: they fall back to the shortest
        // queue (core 1 here).
        let c = ctx(&plan, &depths, 0, 42, Some(1 << 20));
        assert_eq!(d.place_fragment(&c), 1);
    }

    #[test]
    fn dfcfs_is_key_stable_and_spreads() {
        let plan = test_plan(4, 1000);
        let depths = [0usize; 4];
        let d = DisciplineKind::Dfcfs.build();
        let mut hit = [false; 4];
        for key in 0..256u64 {
            let owner = Dfcfs::owner(key, 4);
            hit[owner] = true;
            for rx in 0..4 {
                let c = ctx(&plan, &depths, rx, key, None);
                let expect = if owner == rx {
                    Placement::Local
                } else {
                    Placement::Core(owner)
                };
                // Same key, any RX core, any queue state: same owner.
                assert_eq!(d.place(&c), expect);
            }
        }
        assert!(hit.iter().all(|&h| h), "256 keys must cover all 4 cores");
    }

    #[test]
    fn jsq_picks_shortest_preferring_local_on_ties() {
        let plan = test_plan(4, 1000);
        let d = DisciplineKind::Jsq.build();
        let depths = [5usize, 2, 9, 2];
        // Unique minimum wins ... (cores 1 and 3 tie; lowest index wins
        // among non-local ties).
        let c = ctx(&plan, &depths, 0, 7, None);
        assert_eq!(d.place(&c), Placement::Core(1));
        // ... but an equally short local queue means no handoff.
        let c = ctx(&plan, &depths, 3, 7, None);
        assert_eq!(d.place(&c), Placement::Local);
        let flat = [4usize; 4];
        let c = ctx(&plan, &flat, 2, 7, None);
        assert_eq!(d.place(&c), Placement::Local);
    }

    #[test]
    fn round_robin_cycles_every_core() {
        let plan = test_plan(4, 1000);
        let depths = [0usize; 4];
        let d = DisciplineKind::RoundRobin.build();
        let mut picks = Vec::new();
        for i in 0..8 {
            let c = ctx(&plan, &depths, 0, i, None);
            picks.push(match d.place(&c) {
                Placement::Local => 0,
                Placement::Core(t) => t,
                Placement::Shared => unreachable!(),
            });
        }
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn random_covers_all_cores() {
        let plan = test_plan(4, 1000);
        let depths = [0usize; 4];
        let d = DisciplineKind::Random.build();
        let mut hit = [0usize; 4];
        for i in 0..512 {
            let c = ctx(&plan, &depths, 0, i, None);
            match d.place(&c) {
                Placement::Local => hit[0] += 1,
                Placement::Core(t) => hit[t] += 1,
                Placement::Shared => unreachable!(),
            }
        }
        // Uniform enough: every core sees a healthy share of 512 picks.
        assert!(hit.iter().all(|&h| h > 64), "skewed picks: {hit:?}");
    }

    #[test]
    fn fragment_key_spreads_sources() {
        // Distinct (src, msg_id) pairs must not collapse onto a few
        // pseudo-keys (that would hot-spot dfcfs/random placement).
        let mut owners = [0usize; 4];
        for src in 0..16u64 {
            for msg in 0..16u64 {
                owners[(fragment_key(src, msg) % 4) as usize] += 1;
            }
        }
        assert!(owners.iter().all(|&h| h > 32), "skewed: {owners:?}");
    }
}
