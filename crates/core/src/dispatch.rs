//! Batch-draining quotas (paper §3).
//!
//! "Each small core repeats the following sequence of actions w.r.t. the
//! RX queues: First, it reads a batch of B requests from its own RX
//! queue. Then it reads a batch of B/ns requests from the RX queue of
//! the large core. In this way, all RX queues are drained at
//! approximately the same rate. The reason a large core never reads
//! incoming requests from its RX queue is that, if it were to receive a
//! small request, this request could experience head-of-line blocking
//! behind large requests."

/// How many packets one small core takes from one large core's RX queue
/// per polling round, given batch size `B` and `n_small` small cores.
///
/// Rounded up so the aggregate across small cores is ≥ `B`: large-core
/// RX queues are drained at least as fast as small ones, never slower.
#[inline]
pub fn large_rx_quota(batch: usize, n_small: usize) -> usize {
    debug_assert!(n_small > 0);
    batch.div_ceil(n_small)
}

/// The per-round RX draining schedule of one small core: its own queue
/// at full batch, then every handoff core's queue at the shared quota.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrainSchedule {
    /// The core's own RX queue and its batch size.
    pub own: (usize, usize),
    /// `(queue, quota)` for each large/standby core's RX queue.
    pub others: Vec<(usize, usize)>,
}

/// Builds the drain schedule for small core `core` under the allocation
/// described by `n_small`, `handoff_cores` and batch size `batch`.
pub fn drain_schedule(
    core: usize,
    batch: usize,
    n_small: usize,
    handoff_cores: std::ops::Range<usize>,
) -> DrainSchedule {
    let quota = large_rx_quota(batch, n_small);
    DrainSchedule {
        own: (core, batch),
        others: handoff_cores
            .filter(|&q| q != core) // standby core doesn't re-drain itself
            .map(|q| (q, quota))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_rounds_up() {
        assert_eq!(large_rx_quota(32, 7), 5); // 32/7 = 4.57 -> 5
        assert_eq!(large_rx_quota(32, 8), 4);
        assert_eq!(large_rx_quota(32, 1), 32);
        assert_eq!(large_rx_quota(1, 8), 1);
    }

    #[test]
    fn aggregate_drain_rate_covers_large_queues() {
        // n_small small cores together must drain a large queue at >= B
        // per round.
        for n_small in 1..=16 {
            let q = large_rx_quota(32, n_small);
            assert!(q * n_small >= 32, "n_small {n_small}");
        }
    }

    #[test]
    fn schedule_for_dedicated_large_cores() {
        // 6 small cores, large cores 6 and 7.
        let s = drain_schedule(2, 32, 6, 6..8);
        assert_eq!(s.own, (2, 32));
        assert_eq!(s.others, vec![(6, 6), (7, 6)]);
    }

    #[test]
    fn standby_core_does_not_drain_itself_twice() {
        // Standby mode: 8 small cores, handoff core is 7. Core 7's
        // schedule must not list queue 7 twice.
        let s = drain_schedule(7, 32, 8, 7..8);
        assert_eq!(s.own, (7, 32));
        assert!(s.others.is_empty());
        // Other small cores do help drain queue 7.
        let s0 = drain_schedule(0, 32, 8, 7..8);
        assert_eq!(s0.others, vec![(7, 4)]);
    }
}
