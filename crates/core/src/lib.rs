//! Minos: size-aware sharding for in-memory key-value stores.
//!
//! This crate is the reproduction of the paper's contribution (Sections 3
//! and 4): requests for small and large items are served by **disjoint
//! sets of cores**, eliminating head-of-line blocking of small requests
//! behind large ones; small requests keep pure *hardware* dispatch
//! (clients address RX queues directly), while the rare large requests
//! are handed off through lock-free software queues.
//!
//! The crate is split into pure policy logic — shared verbatim by the
//! threaded runtime here and the discrete-event simulator in
//! `minos-sim`, so the two can never drift — and the runtime itself:
//!
//! **Policy (pure, deterministic):**
//! * [`cost`] — the per-request cost function (packets by default).
//! * [`threshold`] — per-epoch aggregation of size histograms, EWMA
//!   smoothing, and the 99th-percentile size threshold.
//! * [`allocation`] — how many cores serve small vs large requests
//!   (`n_small = ceil(small cost share × n)`), including the standby
//!   large core when every core is deemed small.
//! * [`ranges`] — equal-cost contiguous size ranges over the large
//!   cores (size-aware sharding *within* the large class).
//! * [`plan`] — the combined, atomically-published [`plan::ShardingPlan`].
//! * [`dispatch`] — batch-draining quotas and request classification.
//!
//! **Runtime (threads, rings, the real store):**
//! * [`server`] — one busy-polling thread per simulated core; small
//!   cores drain their own RX queue plus their share of the large
//!   cores' RX queues; large cores drain only their software queues.
//! * [`ingest`] — the one-copy large-PUT ingest sink: fragments stream
//!   straight into their value's final store-mempool block.
//! * [`client`] — a load-generating client with the paper's measurement
//!   methodology (timestamps echoed by the server, zero-loss checks).
//! * [`engine`] — the small trait every engine (Minos and the three
//!   baselines) implements so harnesses can treat them uniformly.

#![warn(missing_docs)]

pub mod allocation;
pub mod client;
pub mod config;
pub mod cost;
pub mod dispatch;
pub mod engine;
pub mod ingest;
pub mod plan;
pub mod ranges;
pub mod server;
pub mod threshold;

pub use allocation::{allocate, CoreAllocation};
pub use config::{AllocationPolicy, MinosConfig, ThresholdMode};
pub use cost::CostFn;
pub use plan::ShardingPlan;
pub use ranges::LargeRanges;
pub use threshold::{ThresholdController, ThresholdDecision};
