//! Configuration of the Minos engine.

use crate::cost::CostFn;
use crate::dispatch::DisciplineKind;

/// How the size threshold between small and large is chosen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ThresholdMode {
    /// The paper's control loop: every epoch, core 0 aggregates the
    /// per-core size histograms, smooths them, and sets the threshold to
    /// the configured percentile of request sizes.
    Dynamic,
    /// A fixed threshold, for workloads profiled off-line (the variant
    /// §6.2 describes to reclaim the profiling overhead under
    /// write-intensive workloads).
    Static(u64),
}

/// How cores are allocated between small and large requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocationPolicy {
    /// The paper's default: `n_small = ceil(small-cost share × n)`;
    /// remaining cores are large; if none remain, one standby large
    /// core is designated.
    Standard,
    /// The §6.1 "alternative design": allocate one extra large core and
    /// let large cores steal small requests one at a time from small
    /// RX queues when their software queues are empty, reclaiming the
    /// capacity the ceiling over-allocates to small cores.
    LargeSteals,
}

/// Full engine configuration, defaults matching the paper (§5.2).
#[derive(Clone, Debug)]
pub struct MinosConfig {
    /// Server cores (and NIC queue pairs). The paper's testbed has 8.
    pub n_cores: usize,
    /// RX batch size `B` (32 in the paper; also used by the baselines).
    pub batch_size: usize,
    /// Statistics epoch in nanoseconds (1 s in the paper).
    pub epoch_ns: u64,
    /// EWMA discount factor for epoch smoothing (0.9 in the paper).
    pub alpha: f64,
    /// The percentile of request sizes that defines the threshold
    /// (99.0: "finds the size corresponding to the 99th percentile,
    /// declares that size to be the threshold").
    pub threshold_percentile: f64,
    /// Threshold selection mode.
    pub threshold_mode: ThresholdMode,
    /// The per-request cost function.
    pub cost_fn: CostFn,
    /// Core allocation policy.
    pub allocation_policy: AllocationPolicy,
    /// Capacity of each large core's software queue, in requests.
    pub soft_queue_capacity: usize,
    /// Length of one reassembly round in nanoseconds. A partially
    /// reassembled message that receives no fragment for two completed
    /// rounds is evicted and its mempool reservation released (the
    /// counterpart of client retransmission: a lost fragment means a
    /// lost request, and the server must not strand memory for it).
    pub reassembly_round_ns: u64,
    /// Maximum concurrent *discard-mode* ingests (large PUTs accepted
    /// without a mempool reservation, purely to answer `OutOfMemory`)
    /// one source endpoint may hold. Under memory pressure a malicious
    /// client could otherwise open unbounded partial-ingest state and
    /// monopolize the reassembler; over-quota opens are rejected with an
    /// immediate `OutOfMemory` and counted in
    /// `ingest.discard_quota_rejects`.
    pub discard_quota_per_source: u32,
    /// The queue discipline placing decoded requests onto cores. The
    /// default is the paper's size-aware sharding; the alternatives
    /// (cfcfs, dfcfs, jsq, round-robin, random) exist so the shoot-out
    /// figure can compare against them on identical plumbing.
    pub discipline: DisciplineKind,
    /// ZygOS-style work stealing: an idle core pops one request from
    /// the longest peer software queue. Off by default — enabling it on
    /// the size-aware discipline deliberately violates the paper's
    /// small/large isolation (that is the experiment).
    pub steal: bool,
    /// Overload shed watermark, in queued requests. When a placement
    /// targets a software queue already holding at least this many
    /// entries, *large* requests are shed with an immediate
    /// [`minos_wire::message::ReplyStatus::Overloaded`] reply instead
    /// of being enqueued — the size-aware insight inverted: under
    /// overload, protect the small-class tail first (one shed large
    /// request frees service time for thousands of small ones). `0`
    /// (the default) disables the valve. Sheds are counted in
    /// `dispatch.sheds`.
    pub shed_watermark: usize,
}

impl Default for MinosConfig {
    fn default() -> Self {
        MinosConfig {
            n_cores: 8,
            batch_size: 32,
            epoch_ns: 1_000_000_000,
            alpha: 0.9,
            threshold_percentile: 99.0,
            threshold_mode: ThresholdMode::Dynamic,
            cost_fn: CostFn::Packets,
            allocation_policy: AllocationPolicy::Standard,
            soft_queue_capacity: 4096,
            reassembly_round_ns: 1_000_000_000,
            discard_quota_per_source: 8,
            discipline: DisciplineKind::SizeAware,
            steal: false,
            shed_watermark: 0,
        }
    }
}

impl MinosConfig {
    /// Validates invariants; called by the server on startup.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_cores == 0 {
            return Err("n_cores must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err("alpha must be in [0, 1]".into());
        }
        if !(0.0..=100.0).contains(&self.threshold_percentile) {
            return Err("threshold_percentile must be in [0, 100]".into());
        }
        if self.epoch_ns == 0 {
            return Err("epoch_ns must be positive".into());
        }
        if self.soft_queue_capacity == 0 {
            return Err("soft_queue_capacity must be positive".into());
        }
        if self.reassembly_round_ns == 0 {
            return Err("reassembly_round_ns must be positive".into());
        }
        if self.discard_quota_per_source == 0 {
            return Err("discard_quota_per_source must be positive".into());
        }
        if self.shed_watermark > self.soft_queue_capacity {
            return Err("shed_watermark above soft_queue_capacity would never fire".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = MinosConfig::default();
        assert_eq!(c.n_cores, 8);
        assert_eq!(c.batch_size, 32);
        assert_eq!(c.epoch_ns, 1_000_000_000);
        assert_eq!(c.alpha, 0.9);
        assert_eq!(c.threshold_percentile, 99.0);
        assert_eq!(c.threshold_mode, ThresholdMode::Dynamic);
        assert_eq!(c.cost_fn, CostFn::Packets);
        assert_eq!(c.discipline, DisciplineKind::SizeAware);
        assert!(!c.steal);
        assert_eq!(c.shed_watermark, 0, "shedding is opt-in");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = MinosConfig {
            n_cores: 0,
            ..MinosConfig::default()
        };
        assert!(c.validate().is_err());
        let c = MinosConfig {
            alpha: 2.0,
            ..MinosConfig::default()
        };
        assert!(c.validate().is_err());
        let c = MinosConfig {
            batch_size: 0,
            ..MinosConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
