//! HKH + work stealing (HKH+WS) — the ZygOS-style design.
//!
//! "Each core has a software queue in which it places the requests taken
//! from its own RX queue. When a core is idle, it steals requests from
//! the software queues of other cores. If or when all software queues
//! are empty, an idle core steals requests from another RX core's queue.
//! Between stealing attempts, a core checks whether it has received any
//! new request. If it has, it stops stealing and processes its own
//! requests. Cores steal requests from the software queues of other
//! cores one at the time. Batching could introduce head-of-line blocking
//! ... However, packets are stolen from other RX queues in batches, to
//! increase resource efficiency. Requests stolen from another core's RX
//! queue are put in the stealing core's software queue, so they can be
//! stolen in turn" (§5.2).

use crate::common::{spawn_cores, BaseShared, BaselineConfig, QueueItem};
use minos_core::engine::KvEngine;
use minos_kv::Store;
use minos_net::Transport;
use minos_nic::VirtualNic;
use minos_stats::CoreStats;
use minos_wire::frag::Reassembler;
use minos_wire::packet::Packet;
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The running HKH+WS server.
pub struct HkhWsServer<T: Transport = VirtualNic> {
    shared: Arc<BaseShared<T>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl HkhWsServer {
    /// Builds and starts the server threads over a fresh virtual NIC.
    pub fn start(config: BaselineConfig) -> Self {
        Self::from_shared(BaseShared::new(&config), config.n_cores)
    }
}

impl<T: Transport + 'static> HkhWsServer<T> {
    /// Builds and starts the server threads over an externally
    /// constructed transport (one RX/TX queue pair per core).
    pub fn start_with_transport(config: BaselineConfig, transport: Arc<T>) -> Self {
        Self::from_shared(
            BaseShared::with_transport(&config, transport),
            config.n_cores,
        )
    }

    fn from_shared(shared: Arc<BaseShared<T>>, n_cores: usize) -> Self {
        // Fragment reassembly is engine-global under stealing (see
        // `packet_to_request_shared`).
        let reassembler = Arc::new(Mutex::new(Reassembler::new(4096)));
        let threads = {
            let shared = Arc::clone(&shared);
            spawn_cores(n_cores, "hkhws-core", move |core| {
                core_loop(&shared, &reassembler, core)
            })
        };
        HkhWsServer { shared, threads }
    }
}

impl<T: Transport> HkhWsServer<T> {
    /// The store.
    pub fn store(&self) -> Arc<Store> {
        Arc::clone(&self.shared.store)
    }

    /// Per-core statistics snapshots.
    pub fn core_stats(&self) -> Vec<CoreStats> {
        self.shared.stats_snapshot()
    }

    /// Stops the polling threads and joins them. Idempotent.
    pub fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn core_loop<T: Transport>(shared: &BaseShared<T>, reassembler: &Mutex<Reassembler>, core: usize) {
    let n = shared.n_cores;
    let mut rx_buf: Vec<Packet> = Vec::with_capacity(shared.batch_size);
    let mut idle_rounds = 0u32;

    while !shared.shutdown.load(Ordering::Relaxed) {
        let mut did_work = false;

        // 1. Move this core's RX arrivals into its software queue.
        rx_buf.clear();
        if shared
            .transport
            .rx_burst(core as u16, &mut rx_buf, shared.batch_size)
            > 0
        {
            for pkt in rx_buf.drain(..) {
                if let Some(req) = shared.packet_to_request_shared(core, reassembler, pkt) {
                    if shared.soft_queues[core]
                        .push(QueueItem::Request(req))
                        .is_err()
                    {
                        shared.soft_drops.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }

        // 2. Serve own software queue (run-to-completion, batched).
        for _ in 0..shared.batch_size {
            match shared.soft_queues[core].pop() {
                Some(QueueItem::Request(req)) => {
                    shared.execute_and_reply(core, req);
                    did_work = true;
                }
                None => break,
            }
        }
        if did_work {
            idle_rounds = 0;
            continue;
        }

        // 3. Idle: steal one queued request from another core.
        let mut stole = false;
        for d in 1..n {
            let victim = (core + d) % n;
            if let Some(QueueItem::Request(req)) = shared.soft_queues[victim].pop() {
                shared.stats[core].record_steal();
                shared.execute_and_reply(core, req);
                stole = true;
                break;
            }
        }
        if stole {
            idle_rounds = 0;
            continue;
        }

        // 4. All software queues empty: steal a packet batch from
        // another core's RX queue into our own software queue.
        for d in 1..n {
            let victim = (core + d) % n;
            rx_buf.clear();
            if shared
                .transport
                .rx_burst(victim as u16, &mut rx_buf, shared.batch_size)
                > 0
            {
                shared.stats[core].record_steal();
                for pkt in rx_buf.drain(..) {
                    if let Some(req) = shared.packet_to_request_shared(core, reassembler, pkt) {
                        if shared.soft_queues[core]
                            .push(QueueItem::Request(req))
                            .is_err()
                        {
                            shared.soft_drops.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                stole = true;
                break;
            }
        }
        if stole {
            idle_rounds = 0;
            continue;
        }

        idle_rounds = idle_rounds.saturating_add(1);
        if idle_rounds > 64 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

impl KvEngine for HkhWsServer {
    fn name(&self) -> &'static str {
        "HKH+WS"
    }

    fn nic(&self) -> Arc<VirtualNic> {
        Arc::clone(&self.shared.transport)
    }

    fn store(&self) -> Arc<Store> {
        HkhWsServer::store(self)
    }

    fn n_cores(&self) -> usize {
        self.shared.n_cores
    }

    fn core_stats(&self) -> Vec<CoreStats> {
        HkhWsServer::core_stats(self)
    }

    fn shutdown(&mut self) {
        self.stop();
    }
}

impl<T: Transport> Drop for HkhWsServer<T> {
    fn drop(&mut self) {
        self.stop();
    }
}
