//! Hardware Keyhash-based sharding (HKH) — the nxM/G/1 design, as MICA.
//!
//! "Requests are redirected in hardware to the target core, according to
//! the CREW policy" (§5.2). Each core busy-polls its own RX queue and
//! executes everything it receives run-to-completion. No software
//! dispatch, no stealing, no size awareness — a small request queued
//! behind a large one on the same core simply waits (head-of-line
//! blocking, the paper's Figure 2a/3).

use crate::common::{spawn_cores, BaseShared, BaselineConfig};
use minos_core::engine::KvEngine;
use minos_kv::Store;
use minos_net::Transport;
use minos_nic::VirtualNic;
use minos_stats::CoreStats;
use minos_wire::frag::Reassembler;
use minos_wire::packet::Packet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The running HKH server.
pub struct HkhServer<T: Transport = VirtualNic> {
    shared: Arc<BaseShared<T>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl HkhServer {
    /// Builds and starts the server threads over a fresh virtual NIC.
    pub fn start(config: BaselineConfig) -> Self {
        Self::from_shared(BaseShared::new(&config), config.n_cores)
    }
}

impl<T: Transport + 'static> HkhServer<T> {
    /// Builds and starts the server threads over an externally
    /// constructed transport (one RX/TX queue pair per core).
    pub fn start_with_transport(config: BaselineConfig, transport: Arc<T>) -> Self {
        Self::from_shared(
            BaseShared::with_transport(&config, transport),
            config.n_cores,
        )
    }

    fn from_shared(shared: Arc<BaseShared<T>>, n_cores: usize) -> Self {
        let threads = {
            let shared = Arc::clone(&shared);
            spawn_cores(n_cores, "hkh-core", move |core| core_loop(&shared, core))
        };
        HkhServer { shared, threads }
    }
}

impl<T: Transport> HkhServer<T> {
    /// The store.
    pub fn store(&self) -> Arc<Store> {
        Arc::clone(&self.shared.store)
    }

    /// Per-core statistics snapshots.
    pub fn core_stats(&self) -> Vec<CoreStats> {
        self.shared.stats_snapshot()
    }

    /// Stops the polling threads and joins them. Idempotent.
    pub fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn core_loop<T: Transport>(shared: &BaseShared<T>, core: usize) {
    let mut rx_buf: Vec<Packet> = Vec::with_capacity(shared.batch_size);
    let mut reassembler = Reassembler::new(1024);
    let mut idle_rounds = 0u32;
    while !shared.shutdown.load(Ordering::Relaxed) {
        rx_buf.clear();
        let n = shared
            .transport
            .rx_burst(core as u16, &mut rx_buf, shared.batch_size);
        if n == 0 {
            idle_rounds = idle_rounds.saturating_add(1);
            if idle_rounds > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
            continue;
        }
        idle_rounds = 0;
        for pkt in rx_buf.drain(..) {
            // Run-to-completion: a large request occupies this core for
            // its full service time while later arrivals wait in the RX
            // ring.
            if let Some(req) = shared.packet_to_request(core, &mut reassembler, pkt) {
                shared.execute_and_reply(core, req);
            }
        }
    }
}

impl KvEngine for HkhServer {
    fn name(&self) -> &'static str {
        "HKH"
    }

    fn nic(&self) -> Arc<VirtualNic> {
        Arc::clone(&self.shared.transport)
    }

    fn store(&self) -> Arc<Store> {
        HkhServer::store(self)
    }

    fn n_cores(&self) -> usize {
        self.shared.n_cores
    }

    fn core_stats(&self) -> Vec<CoreStats> {
        HkhServer::core_stats(self)
    }

    fn shutdown(&mut self) {
        self.stop();
    }
}

impl<T: Transport> Drop for HkhServer<T> {
    fn drop(&mut self) {
        self.stop();
    }
}
