//! Software hand-off (SHO) — the M/G/n design, as RAMCloud.
//!
//! "SHO uses disjoint sets of handoff and worker cores. Each handoff
//! core has a software queue, in which it deposits the requests taken
//! from its RX queue. Worker cores pull one request at a time from the
//! handoff queues (in round robin if there is more than one), process
//! the corresponding KV request, and reply to the client. ... The
//! throughput of SHO is bounded by the dispatch rate of handoff cores"
//! (§5.2).
//!
//! Clients must only target the handoff cores' RX queues (use
//! `Client::with_target_queues(0..n_handoff)`).

use crate::common::{spawn_cores, BaseShared, BaselineConfig, QueueItem};
use minos_core::engine::KvEngine;
use minos_kv::Store;
use minos_net::Transport;
use minos_nic::VirtualNic;
use minos_stats::CoreStats;
use minos_wire::frag::Reassembler;
use minos_wire::packet::Packet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The running SHO server.
pub struct ShoServer<T: Transport = VirtualNic> {
    shared: Arc<BaseShared<T>>,
    n_handoff: usize,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ShoServer {
    /// Builds and starts the server with `n_handoff` dispatch cores
    /// (the paper tried 1–3 and reports the best per workload) over a
    /// fresh virtual NIC.
    pub fn start(config: BaselineConfig, n_handoff: usize) -> Self {
        let shared = BaseShared::new(&config);
        Self::from_shared(shared, config.n_cores, n_handoff)
    }
}

impl<T: Transport + 'static> ShoServer<T> {
    /// Builds and starts the server over an externally constructed
    /// transport (one RX/TX queue pair per core). Clients must target
    /// only queues `0..n_handoff`.
    pub fn start_with_transport(
        config: BaselineConfig,
        n_handoff: usize,
        transport: Arc<T>,
    ) -> Self {
        let shared = BaseShared::with_transport(&config, transport);
        Self::from_shared(shared, config.n_cores, n_handoff)
    }

    fn from_shared(shared: Arc<BaseShared<T>>, n_cores: usize, n_handoff: usize) -> Self {
        assert!(
            n_handoff >= 1 && n_handoff < n_cores,
            "need at least one handoff core and one worker"
        );
        let threads = {
            let shared = Arc::clone(&shared);
            spawn_cores(n_cores, "sho-core", move |core| {
                if core < n_handoff {
                    handoff_loop(&shared, core, n_handoff)
                } else {
                    worker_loop(&shared, core, n_handoff)
                }
            })
        };
        ShoServer {
            shared,
            n_handoff,
            threads,
        }
    }
}

impl<T: Transport> ShoServer<T> {
    /// Number of handoff (dispatch) cores.
    pub fn n_handoff(&self) -> usize {
        self.n_handoff
    }

    /// The store.
    pub fn store(&self) -> Arc<Store> {
        Arc::clone(&self.shared.store)
    }

    /// Per-core statistics snapshots.
    pub fn core_stats(&self) -> Vec<CoreStats> {
        self.shared.stats_snapshot()
    }

    /// Stops the polling threads and joins them. Idempotent.
    pub fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// A handoff core: drains its RX queue, reassembles, deposits complete
/// requests into its software queue for late binding.
fn handoff_loop<T: Transport>(shared: &BaseShared<T>, core: usize, _n_handoff: usize) {
    let mut rx_buf: Vec<Packet> = Vec::with_capacity(shared.batch_size);
    let mut reassembler = Reassembler::new(1024);
    let mut idle_rounds = 0u32;
    while !shared.shutdown.load(Ordering::Relaxed) {
        rx_buf.clear();
        let n = shared
            .transport
            .rx_burst(core as u16, &mut rx_buf, shared.batch_size);
        if n == 0 {
            idle_rounds = idle_rounds.saturating_add(1);
            if idle_rounds > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
            continue;
        }
        idle_rounds = 0;
        for pkt in rx_buf.drain(..) {
            if let Some(req) = shared.packet_to_request(core, &mut reassembler, pkt) {
                shared.stats[core].record_handoff();
                if shared.soft_queues[core]
                    .push(QueueItem::Request(req))
                    .is_err()
                {
                    shared.soft_drops.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// A worker core: late binding — pull one request at a time from the
/// handoff queues, round-robin.
fn worker_loop<T: Transport>(shared: &BaseShared<T>, core: usize, n_handoff: usize) {
    let mut next = core % n_handoff; // stagger the starting queue
    let mut idle_rounds = 0u32;
    while !shared.shutdown.load(Ordering::Relaxed) {
        let mut served = false;
        for i in 0..n_handoff {
            let q = (next + i) % n_handoff;
            if let Some(QueueItem::Request(req)) = shared.soft_queues[q].pop() {
                shared.execute_and_reply(core, req);
                next = (q + 1) % n_handoff;
                served = true;
                break;
            }
        }
        if served {
            idle_rounds = 0;
        } else {
            idle_rounds = idle_rounds.saturating_add(1);
            if idle_rounds > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

impl KvEngine for ShoServer {
    fn name(&self) -> &'static str {
        "SHO"
    }

    fn nic(&self) -> Arc<VirtualNic> {
        Arc::clone(&self.shared.transport)
    }

    fn store(&self) -> Arc<Store> {
        ShoServer::store(self)
    }

    fn n_cores(&self) -> usize {
        self.shared.n_cores
    }

    fn core_stats(&self) -> Vec<CoreStats> {
        ShoServer::core_stats(self)
    }

    fn shutdown(&mut self) {
        self.stop();
    }
}

impl<T: Transport> Drop for ShoServer<T> {
    fn drop(&mut self) {
        self.stop();
    }
}
