//! The three size-unaware baseline engines the paper compares against
//! (§5.2), sharing the same store, NIC, wire protocol and request
//! execution code as Minos — "for a fair comparison, all the designs we
//! consider are implemented in the same codebase".
//!
//! * [`hkh`] — **Hardware Keyhash-based sharding** (nxM/G/1, as MICA):
//!   every core serves its own RX queue run-to-completion; steering is
//!   purely in (virtual) hardware.
//! * [`sho`] — **Software hand-off** (M/G/n, as RAMCloud): dedicated
//!   handoff cores move requests from their RX queues into software
//!   queues; worker cores pull one request at a time (late binding).
//! * [`hkh_ws`] — **HKH + work stealing** (as ZygOS): HKH plus idle
//!   cores stealing queued requests from other cores' software queues,
//!   one at a time, and packets from other RX queues in batches.
//!
//! None of these engines looks at item sizes — that is the point.

#![warn(missing_docs)]

pub mod common;
pub mod hkh;
pub mod hkh_ws;
pub mod sho;

pub use hkh::HkhServer;
pub use hkh_ws::HkhWsServer;
pub use sho::ShoServer;
