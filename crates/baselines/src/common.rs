//! Shared plumbing for the baseline engines.

use crossbeam::queue::ArrayQueue;
use minos_core::server::{execute, transmit_reply, ServerRequest};
use minos_kv::{Store, StoreConfig};
use minos_net::Transport;
use minos_nic::{NicConfig, VirtualNic};
use minos_stats::{CoreStats, SharedCoreStats};
use minos_wire::message::Message;
use minos_wire::packet::{Endpoint, Packet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration shared by all baseline engines.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Server cores.
    pub n_cores: usize,
    /// RX batch size (32, same as Minos).
    pub batch_size: usize,
    /// Store geometry.
    pub store: StoreConfig,
    /// NIC ring capacity.
    pub nic_queue_capacity: usize,
    /// Software queue capacity (SHO handoff queues / WS steal queues).
    pub soft_queue_capacity: usize,
}

impl BaselineConfig {
    /// A config sized for functional tests.
    pub fn for_test(n_cores: usize, n_items: usize) -> Self {
        BaselineConfig {
            n_cores,
            batch_size: 32,
            store: StoreConfig::for_items(n_cores * 4, n_items, 1 << 30),
            nic_queue_capacity: 65_536,
            soft_queue_capacity: 65_536,
        }
    }
}

/// State shared by the cores of one baseline engine.
///
/// Generic over the packet [`Transport`] so the same engines run both
/// over the in-process virtual NIC (functional tests, simulation) and
/// over real SO_REUSEPORT UDP sockets (the figures sweep). The default
/// keeps the historical constructor signature compiling unchanged.
pub struct BaseShared<T: Transport = VirtualNic> {
    /// The packet transport (one RX/TX queue pair per core).
    pub transport: Arc<T>,
    /// The store.
    pub store: Arc<Store>,
    /// Per-core counters.
    pub stats: Vec<SharedCoreStats>,
    /// Per-core software queues (usage depends on the engine).
    pub soft_queues: Vec<ArrayQueue<QueueItem>>,
    /// Shutdown flag.
    pub shutdown: AtomicBool,
    /// Malformed-input counter.
    pub malformed: AtomicU64,
    /// Software-queue overflow counter.
    pub soft_drops: AtomicU64,
    /// Per-core reply message ids.
    pub msg_ids: Vec<AtomicU64>,
    /// RX batch size.
    pub batch_size: usize,
    /// Core count.
    pub n_cores: usize,
}

/// Items in baseline software queues.
pub enum QueueItem {
    /// A complete request.
    Request(ServerRequest),
}

impl BaseShared {
    /// Builds the shared state over a fresh virtual NIC.
    pub fn new(config: &BaselineConfig) -> Arc<Self> {
        Self::with_transport(
            config,
            Arc::new(VirtualNic::new(
                NicConfig::new(config.n_cores as u16)
                    .with_queue_capacity(config.nic_queue_capacity),
            )),
        )
    }
}

impl<T: Transport> BaseShared<T> {
    /// Builds the shared state over an externally constructed transport.
    /// The transport must expose exactly one RX/TX queue pair per core.
    pub fn with_transport(config: &BaselineConfig, transport: Arc<T>) -> Arc<Self> {
        assert_eq!(
            transport.num_queues(),
            config.n_cores as u16,
            "transport must have one queue per core"
        );
        Arc::new(BaseShared {
            transport,
            store: Arc::new(Store::new(config.store.clone())),
            stats: (0..config.n_cores)
                .map(|_| SharedCoreStats::new())
                .collect(),
            soft_queues: (0..config.n_cores)
                .map(|_| ArrayQueue::new(config.soft_queue_capacity))
                .collect(),
            shutdown: AtomicBool::new(false),
            malformed: AtomicU64::new(0),
            soft_drops: AtomicU64::new(0),
            msg_ids: (0..config.n_cores).map(|_| AtomicU64::new(0)).collect(),
            batch_size: config.batch_size,
            n_cores: config.n_cores,
        })
    }

    /// The server endpoint answering on `core`'s TX queue.
    pub fn endpoint(&self, core: usize) -> Endpoint {
        self.transport.local_endpoint(core as u16)
    }

    /// The reply endpoint embedded in a request packet.
    pub fn endpoint_of(pkt: &Packet) -> Endpoint {
        Endpoint {
            mac: pkt.meta.eth.src,
            ip: pkt.meta.ip.src,
            port: pkt.meta.udp.src_port,
        }
    }

    /// Executes `req` on `core` and transmits the reply on `core`'s TX
    /// queue — the identical code path Minos uses.
    pub fn execute_and_reply(&self, core: usize, req: ServerRequest) {
        let Some((status, value, was_get, large)) = execute(&self.store, &req.msg) else {
            self.malformed.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if was_get {
            self.stats[core].record_get(large);
        } else {
            self.stats[core].record_put(large);
        }
        let msg_id = ((core as u64) << 48)
            | (self.msg_ids[core].fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF_FFFF);
        let (packets, bytes) = transmit_reply(
            &*self.transport,
            core as u16,
            self.endpoint(core),
            &req,
            status,
            value,
            msg_id,
        );
        self.stats[core].record_tx(packets, bytes);
    }

    /// Parses one RX packet into a complete request if possible, feeding
    /// `reassembler` with fragments. Returns `None` while a message is
    /// still incomplete (or on malformed input, which is counted).
    pub fn packet_to_request(
        &self,
        core: usize,
        reassembler: &mut minos_wire::frag::Reassembler,
        pkt: Packet,
    ) -> Option<ServerRequest> {
        use minos_wire::frag::Reassembly;
        self.stats[core].record_rx(1, pkt.wire_len() as u64);
        let reply_to = Self::endpoint_of(&pkt);
        match reassembler.push(pkt.source_endpoint(), pkt.payload) {
            Reassembly::Complete(bytes) => match Message::decode(bytes) {
                Some(msg) => Some(ServerRequest {
                    msg,
                    reply_to,
                    arrival_ns: 0,
                }),
                None => {
                    self.malformed.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
            Reassembly::Incomplete => None,
            _ => {
                self.malformed.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Like [`Self::packet_to_request`] but against an engine-global
    /// reassembler. Needed under work stealing: packet batches stolen
    /// from another core's RX queue can split one fragmented message
    /// across cores, so fragment state must be shared. Single-fragment
    /// packets (the overwhelming majority) take a lock-free fast path.
    pub fn packet_to_request_shared(
        &self,
        core: usize,
        reassembler: &parking_lot::Mutex<minos_wire::frag::Reassembler>,
        pkt: Packet,
    ) -> Option<ServerRequest> {
        use minos_wire::frag::{FragHeader, Reassembly};
        self.stats[core].record_rx(1, pkt.wire_len() as u64);
        let reply_to = Self::endpoint_of(&pkt);
        let mut rd = pkt.payload.clone();
        let Some(fh) = FragHeader::decode(&mut rd) else {
            self.malformed.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        if fh.count == 1 {
            // Complete in one packet: no shared state touched.
            return match Message::decode(rd) {
                Some(msg) => Some(ServerRequest {
                    msg,
                    reply_to,
                    arrival_ns: 0,
                }),
                None => {
                    self.malformed.fetch_add(1, Ordering::Relaxed);
                    None
                }
            };
        }
        match reassembler.lock().push(pkt.source_endpoint(), pkt.payload) {
            Reassembly::Complete(bytes) => match Message::decode(bytes) {
                Some(msg) => Some(ServerRequest {
                    msg,
                    reply_to,
                    arrival_ns: 0,
                }),
                None => {
                    self.malformed.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
            Reassembly::Incomplete => None,
            _ => {
                self.malformed.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Per-core statistics snapshots.
    pub fn stats_snapshot(&self) -> Vec<CoreStats> {
        self.stats.iter().map(|s| s.snapshot()).collect()
    }
}

/// Spawns one named polling thread per core.
pub fn spawn_cores<F>(n: usize, prefix: &str, f: F) -> Vec<std::thread::JoinHandle<()>>
where
    F: Fn(usize) + Send + Sync + Clone + 'static,
{
    (0..n)
        .map(|core| {
            let f = f.clone();
            std::thread::Builder::new()
                .name(format!("{prefix}-{core}"))
                .spawn(move || f(core))
                .expect("spawn core thread")
        })
        .collect()
}
