//! End-to-end tests: every baseline engine serves the same workload the
//! Minos server does, through the same client.

use minos_baselines::common::BaselineConfig;
use minos_baselines::{HkhServer, HkhWsServer, ShoServer};
use minos_core::client::Client;
use minos_core::engine::KvEngine;
use std::time::Duration;

fn exercise(engine: &mut dyn KvEngine, client: &mut Client) {
    // Small PUT/GET.
    client.send_put(7, b"small value", false);
    assert!(
        client.drain(Duration::from_secs(20)),
        "{} put",
        engine.name()
    );
    client.send_get(7, false);
    assert!(
        client.drain(Duration::from_secs(20)),
        "{} get",
        engine.name()
    );

    // Large (fragmented) PUT/GET.
    let value: Vec<u8> = (0..60_000).map(|i| (i % 251) as u8).collect();
    client.send_put(42, &value, true);
    assert!(
        client.drain(Duration::from_secs(30)),
        "{} large put",
        engine.name()
    );
    assert_eq!(engine.store().get(42).unwrap().len(), value.len());
    client.send_get(42, true);
    assert!(
        client.drain(Duration::from_secs(30)),
        "{} large get",
        engine.name()
    );

    // A burst of mixed operations.
    for i in 0..100u64 {
        client.send_put(
            100 + i,
            &vec![(i % 256) as u8; (i as usize % 1_000) + 1],
            false,
        );
    }
    assert!(
        client.drain(Duration::from_secs(30)),
        "{} burst",
        engine.name()
    );

    let totals = client.totals();
    assert_eq!(totals.errors, 0, "{}", engine.name());
    assert_eq!(totals.outstanding(), 0, "{} zero loss", engine.name());
    assert_eq!(totals.completed, 104);
}

#[test]
fn hkh_serves_the_workload() {
    let mut server = HkhServer::start(BaselineConfig::for_test(2, 10_000));
    let mut client = Client::new(&server, 1, 1);
    exercise(&mut server, &mut client);
    // HKH never hands off or steals.
    let stats = server.core_stats();
    assert_eq!(stats.iter().map(|s| s.handoffs).sum::<u64>(), 0);
    assert_eq!(stats.iter().map(|s| s.steals).sum::<u64>(), 0);
    server.shutdown();
}

#[test]
fn sho_serves_the_workload() {
    let mut server = ShoServer::start(BaselineConfig::for_test(3, 10_000), 1);
    // Clients only target the handoff cores' queues.
    let mut client = Client::new(&server, 1, 2).with_target_queues(0..1);
    exercise(&mut server, &mut client);
    // Every request went through a handoff queue.
    let stats = server.core_stats();
    assert!(stats[0].handoffs >= 104, "handoffs: {}", stats[0].handoffs);
    // Workers executed them (handoff core executes none).
    assert_eq!(stats[0].ops, 0, "handoff core does not execute");
    assert!(stats[1].ops + stats[2].ops >= 104);
    server.shutdown();
}

#[test]
fn hkh_ws_serves_the_workload() {
    let mut server = HkhWsServer::start(BaselineConfig::for_test(2, 10_000));
    let mut client = Client::new(&server, 1, 3);
    exercise(&mut server, &mut client);
    server.shutdown();
}

#[test]
fn hkh_ws_actually_steals() {
    // Deliver bursts to a single RX queue of a 4-core server: the other
    // cores' only way to work is stealing. On a single-CPU host the
    // owning core can occasionally drain a whole burst within its own
    // timeslice, so keep applying pressure until a steal is observed.
    let mut server = HkhWsServer::start(BaselineConfig::for_test(4, 10_000));
    let mut client = Client::new(&server, 1, 4).with_target_queues(0..1);
    let mut steals = 0u64;
    for round in 0..50u64 {
        for i in 0..400u64 {
            client.send_put(round * 400 + i, &[1u8; 200], false);
        }
        assert!(client.drain(Duration::from_secs(30)), "round {round}");
        steals = server.core_stats().iter().map(|s| s.steals).sum();
        if steals > 0 {
            break;
        }
    }
    assert!(
        steals > 0,
        "stealing must occur under sustained skewed delivery"
    );
    server.shutdown();
}

#[test]
#[should_panic(expected = "handoff")]
fn sho_rejects_all_handoff_configuration() {
    let _ = ShoServer::start(BaselineConfig::for_test(2, 100), 2);
}
