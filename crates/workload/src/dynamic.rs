//! Time-varying workload schedules (Figure 10).
//!
//! The paper's dynamic experiment changes `p_L` every 20 seconds: it
//! "first grows gradually from 0.125 to 0.75, and then shrinks back to
//! 0.125" while the arrival rate stays fixed at 2.25 Mops.

/// A piecewise-constant schedule of a workload parameter over time.
#[derive(Clone, Debug)]
pub struct PhaseSchedule {
    /// `(phase_duration_ns, value)` entries, in order.
    phases: Vec<(u64, f64)>,
    total_ns: u64,
}

impl PhaseSchedule {
    /// Builds a schedule from `(duration_ns, value)` phases.
    ///
    /// # Panics
    ///
    /// Panics on an empty phase list or zero-length phase.
    pub fn new(phases: Vec<(u64, f64)>) -> Self {
        assert!(!phases.is_empty());
        assert!(phases.iter().all(|&(d, _)| d > 0), "zero-length phase");
        let total_ns = phases.iter().map(|&(d, _)| d).sum();
        PhaseSchedule { phases, total_ns }
    }

    /// The paper's Figure 10 schedule: `p_L` stepping
    /// 0.125 → 0.25 → 0.5 → 0.75 → 0.5 → 0.25 → 0.125 (percent),
    /// 20 seconds per phase, 140 seconds total.
    pub fn figure10() -> Self {
        const PHASE_NS: u64 = 20_000_000_000;
        let steps_pct = [0.125, 0.25, 0.5, 0.75, 0.5, 0.25, 0.125];
        Self::new(steps_pct.iter().map(|&p| (PHASE_NS, p / 100.0)).collect())
    }

    /// The value in force at time `t_ns`. Times beyond the schedule
    /// return the last phase's value.
    pub fn value_at(&self, t_ns: u64) -> f64 {
        let mut acc = 0u64;
        for &(d, v) in &self.phases {
            acc += d;
            if t_ns < acc {
                return v;
            }
        }
        self.phases.last().expect("non-empty").1
    }

    /// Total schedule duration in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// The phase index at time `t_ns`.
    pub fn phase_at(&self, t_ns: u64) -> usize {
        let mut acc = 0u64;
        for (i, &(d, _)) in self.phases.iter().enumerate() {
            acc += d;
            if t_ns < acc {
                return i;
            }
        }
        self.phases.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_shape() {
        let s = PhaseSchedule::figure10();
        assert_eq!(s.total_ns(), 140_000_000_000);
        assert_eq!(s.value_at(0), 0.00125);
        assert_eq!(s.value_at(30_000_000_000), 0.0025);
        assert_eq!(s.value_at(70_000_000_000), 0.0075); // peak
        assert_eq!(s.value_at(139_000_000_000), 0.00125); // back down
        assert_eq!(s.value_at(999_000_000_000), 0.00125); // clamped
    }

    #[test]
    fn phase_boundaries() {
        let s = PhaseSchedule::new(vec![(10, 1.0), (20, 2.0)]);
        assert_eq!(s.value_at(0), 1.0);
        assert_eq!(s.value_at(9), 1.0);
        assert_eq!(s.value_at(10), 2.0);
        assert_eq!(s.value_at(29), 2.0);
        assert_eq!(s.value_at(30), 2.0, "clamped to last");
        assert_eq!(s.phase_at(0), 0);
        assert_eq!(s.phase_at(10), 1);
        assert_eq!(s.phase_at(1000), 1);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_phase_panics() {
        let _ = PhaseSchedule::new(vec![(0, 1.0)]);
    }
}
