//! The per-request access generator: key choice, op mix, sizes.
//!
//! Paper §5.3: a request targets a large item with probability `p_L`;
//! large keys are drawn uniformly (to avoid the hottest large key
//! skewing results), regular keys are drawn zipfian(0.99) by popularity
//! rank; GET vs PUT follows the configured ratio.

use crate::dataset::Dataset;
use crate::rng::Rng;
use crate::zipf::Zipf;

/// The operation of one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operation {
    /// Read the item.
    Get,
    /// Overwrite the item (same size: item sizes are a property of the
    /// key in this workload model).
    Put,
}

/// One generated request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpSpec {
    /// The target key id.
    pub key: u64,
    /// GET or PUT.
    pub op: Operation,
    /// The item's size in bytes (the stored size for GETs; the written
    /// size for PUTs).
    pub item_size: u64,
    /// Whether the key is in the large class.
    pub is_large: bool,
    /// Per-key TTL carried on PUTs, in milliseconds (`0` = never
    /// expires — the classic workloads; churn generators may set it).
    pub ttl_ms: u64,
}

/// Generates requests against a [`Dataset`].
#[derive(Clone, Debug)]
pub struct AccessGenerator {
    dataset: Dataset,
    zipf: Zipf,
    /// Probability that a request targets a large item.
    p_large: f64,
    /// Probability that a request is a GET.
    get_ratio: f64,
}

impl AccessGenerator {
    /// Creates a generator.
    ///
    /// * `p_large` — fraction of requests targeting large items (the
    ///   paper's `p_L`, e.g. 0.00125 for 0.125 %).
    /// * `get_ratio` — fraction of GETs (0.95 or 0.5 in the paper).
    /// * `zipf_s` — popularity skew over regular keys (0.99 default).
    pub fn new(dataset: Dataset, p_large: f64, get_ratio: f64, zipf_s: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_large));
        assert!((0.0..=1.0).contains(&get_ratio));
        let zipf = Zipf::new(dataset.num_regular(), zipf_s);
        AccessGenerator {
            dataset,
            zipf,
            p_large,
            get_ratio,
        }
    }

    /// The dataset this generator draws from.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Current probability of targeting a large item.
    pub fn p_large(&self) -> f64 {
        self.p_large
    }

    /// Updates `p_L` (used by the dynamic workload of Figure 10).
    pub fn set_p_large(&mut self, p_large: f64) {
        assert!((0.0..=1.0).contains(&p_large));
        self.p_large = p_large;
    }

    /// Draws the next request.
    pub fn next_op(&self, rng: &mut Rng) -> OpSpec {
        let (key, is_large) = if rng.chance(self.p_large) {
            (self.dataset.sample_large(rng), true)
        } else {
            let rank = self.zipf.sample(rng) - 1; // ranks are 1-based
            (self.dataset.regular_key(rank), false)
        };
        let op = if rng.chance(self.get_ratio) {
            Operation::Get
        } else {
            Operation::Put
        };
        OpSpec {
            key,
            op,
            item_size: self.dataset.size_of(key),
            is_large,
            ttl_ms: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(p_large: f64, get_ratio: f64) -> AccessGenerator {
        let dataset = Dataset::new(100_000, 100, 0.4, 500_000, 0);
        AccessGenerator::new(dataset, p_large, get_ratio, 0.99)
    }

    #[test]
    fn large_fraction_matches_p_large() {
        let g = generator(0.00125, 0.95);
        let mut rng = Rng::new(1);
        let n = 1_000_000;
        let large = (0..n).filter(|_| g.next_op(&mut rng).is_large).count();
        let frac = large as f64 / n as f64;
        assert!((frac - 0.00125).abs() < 0.0003, "large fraction {frac}");
    }

    #[test]
    fn get_ratio_matches() {
        let g = generator(0.00125, 0.95);
        let mut rng = Rng::new(2);
        let n = 200_000;
        let gets = (0..n)
            .filter(|_| g.next_op(&mut rng).op == Operation::Get)
            .count();
        let ratio = gets as f64 / n as f64;
        assert!((ratio - 0.95).abs() < 0.005, "get ratio {ratio}");
    }

    #[test]
    fn large_ops_have_large_sizes() {
        let g = generator(0.5, 0.95);
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let op = g.next_op(&mut rng);
            if op.is_large {
                assert!(op.item_size >= 1500);
                assert!(g.dataset().is_large_key(op.key));
            } else {
                assert!(op.item_size <= 1400);
            }
        }
    }

    #[test]
    fn regular_keys_are_skewed() {
        // The most popular regular key should appear far more often than
        // a uniform draw would allow.
        let g = generator(0.0, 1.0);
        let mut rng = Rng::new(4);
        let mut counts = std::collections::HashMap::new();
        let n = 200_000;
        for _ in 0..n {
            *counts.entry(g.next_op(&mut rng).key).or_insert(0u64) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        let uniform_expect = n as f64 / g.dataset().num_regular() as f64;
        assert!(
            max as f64 > uniform_expect * 100.0,
            "max count {max} vs uniform {uniform_expect}"
        );
    }

    #[test]
    fn large_keys_are_uniform() {
        let g = generator(1.0, 1.0); // all large
        let mut rng = Rng::new(5);
        let mut counts = std::collections::HashMap::new();
        let n = 100_000;
        for _ in 0..n {
            *counts.entry(g.next_op(&mut rng).key).or_insert(0u64) += 1;
        }
        assert_eq!(counts.len(), 100, "all large keys hit");
        let expect = n as f64 / 100.0;
        for (&k, &c) in &counts {
            assert!(
                (c as f64) > expect * 0.7 && (c as f64) < expect * 1.3,
                "key {k} count {c}"
            );
        }
    }

    #[test]
    fn set_p_large_shifts_mix() {
        let mut g = generator(0.0, 0.95);
        let mut rng = Rng::new(6);
        assert!(!g.next_op(&mut rng).is_large);
        g.set_p_large(1.0);
        assert!(g.next_op(&mut rng).is_large);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generator(0.1, 0.9);
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(g.next_op(&mut a), g.next_op(&mut b));
        }
    }
}
