//! The trimodal item-size model (paper §5.3).
//!
//! "We consider a trimodal item size distribution, according to which an
//! item can be tiny (1–13 bytes), small (14–1400 bytes) or large
//! (1500–maximum size). The size of a specific item within each class is
//! drawn uniformly at random."

/// Item size classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// 1–13 bytes.
    Tiny,
    /// 14–1400 bytes.
    Small,
    /// 1500–`s_L` bytes.
    Large,
}

/// Class boundaries plus the configurable maximum large size `s_L`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizeClasses {
    /// Maximum size of a large item (`s_L`), bytes. The paper sweeps
    /// this over 250 KB, 500 KB (default) and 1000 KB.
    pub large_max: u64,
}

/// Tiny class bounds (inclusive), bytes.
pub const TINY: (u64, u64) = (1, 13);
/// Small class bounds (inclusive), bytes.
pub const SMALL: (u64, u64) = (14, 1400);
/// Lower bound of the large class, bytes.
pub const LARGE_MIN: u64 = 1500;

impl SizeClasses {
    /// Classes with the given `s_L`.
    ///
    /// # Panics
    ///
    /// Panics if `large_max < LARGE_MIN`.
    pub fn new(large_max: u64) -> Self {
        assert!(large_max >= LARGE_MIN, "s_L below the large-class floor");
        SizeClasses { large_max }
    }

    /// Bounds (inclusive) of `class`.
    pub fn bounds(&self, class: Class) -> (u64, u64) {
        match class {
            Class::Tiny => TINY,
            Class::Small => SMALL,
            Class::Large => (LARGE_MIN, self.large_max),
        }
    }

    /// Mean size of `class` under the uniform within-class draw.
    pub fn mean(&self, class: Class) -> f64 {
        let (lo, hi) = self.bounds(class);
        (lo + hi) as f64 / 2.0
    }

    /// Classifies a size.
    pub fn classify(&self, size: u64) -> Class {
        if size <= TINY.1 {
            Class::Tiny
        } else if size <= SMALL.1 {
            Class::Small
        } else {
            Class::Large
        }
    }

    /// Expected size of a *regular* (non-large) item given the dataset's
    /// tiny fraction (the paper's 40 % tiny / 60 % small split).
    pub fn regular_mean(&self, tiny_frac: f64) -> f64 {
        tiny_frac * self.mean(Class::Tiny) + (1.0 - tiny_frac) * self.mean(Class::Small)
    }

    /// The fraction of transferred bytes attributable to large requests
    /// when a fraction `p_large` of requests targets large items — the
    /// quantity reported in the paper's Table 1 ("% data for large
    /// reqs").
    pub fn large_data_share(&self, p_large: f64, tiny_frac: f64) -> f64 {
        let large = p_large * self.mean(Class::Large);
        let regular = (1.0 - p_large) * self.regular_mean(tiny_frac);
        large / (large + regular)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_boundaries() {
        let c = SizeClasses::new(500_000);
        assert_eq!(c.classify(1), Class::Tiny);
        assert_eq!(c.classify(13), Class::Tiny);
        assert_eq!(c.classify(14), Class::Small);
        assert_eq!(c.classify(1400), Class::Small);
        assert_eq!(c.classify(1500), Class::Large);
        assert_eq!(c.classify(500_000), Class::Large);
    }

    #[test]
    fn means() {
        let c = SizeClasses::new(500_000);
        assert_eq!(c.mean(Class::Tiny), 7.0);
        assert_eq!(c.mean(Class::Small), 707.0);
        assert_eq!(c.mean(Class::Large), 250_750.0);
    }

    #[test]
    fn table1_data_shares_reproduced() {
        // The paper's Table 1 rows: (p_L %, s_L KB, expected % data).
        let rows = [
            (0.125, 250_000u64, 25.0),
            (0.125, 500_000, 40.0),
            (0.125, 1_000_000, 60.0),
            (0.0625, 500_000, 25.0),
            (0.25, 500_000, 60.0),
            (0.5, 500_000, 75.0),
            (0.75, 500_000, 80.0),
        ];
        for (pl_pct, sl, expect_pct) in rows {
            let c = SizeClasses::new(sl);
            let got = c.large_data_share(pl_pct / 100.0, 0.4) * 100.0;
            assert!(
                (got - expect_pct).abs() < 3.0,
                "pL={pl_pct}% sL={sl}: got {got:.1}%, table says {expect_pct}%"
            );
        }
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn too_small_large_max_panics() {
        let _ = SizeClasses::new(1000);
    }
}
