//! Deterministic pseudo-random generator: xoshiro256++ with SplitMix64
//! seeding.
//!
//! The whole evaluation pipeline — workload draws, simulator event times,
//! fault injection — must replay bit-for-bit from a seed so figures are
//! reproducible and failures shrinkable. xoshiro256++ passes BigCrush, is
//! four `u64`s of state, and costs a handful of ALU ops per draw.

/// A seedable xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed (any value, including 0).
    pub fn new(seed: u64) -> Self {
        // Expand the seed with SplitMix64, per the xoshiro authors'
        // recommendation.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent generator (for a sub-component) from this
    /// one without disturbing replay of the parent stream structure.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `u64` in `[lo, hi]` (inclusive), unbiased via rejection.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let n = span + 1;
        // Lemire-style rejection for unbiased sampling.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % n;
            }
        }
    }

    /// A uniform `usize` in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.range_u64(0, n as u64 - 1) as usize
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// An exponentially distributed value with the given `mean`
    /// (inter-arrival times of a Poisson process).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        // 1 - f64() is in (0, 1], so ln is finite.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = Rng::new(3);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn range_inclusive_covers_bounds() {
        let mut r = Rng::new(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range_u64(10, 13);
            assert!((10..=13).contains(&v));
            seen_lo |= v == 10;
            seen_hi |= v == 13;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn range_is_unbiased() {
        let mut r = Rng::new(5);
        let mut counts = [0u32; 5];
        for _ in 0..100_000 {
            counts[r.range_u64(0, 4) as usize] += 1;
        }
        for &c in &counts {
            let share = c as f64 / 100_000.0;
            assert!((share - 0.2).abs() < 0.01, "share {share}");
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::new(6);
        let mean = 250.0;
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let got = sum / n as f64;
        assert!((got - mean).abs() / mean < 0.02, "mean {got}");
    }

    #[test]
    fn chance_probability() {
        let mut r = Rng::new(8);
        let hits = (0..100_000).filter(|_| r.chance(0.00125)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.00125).abs() < 0.0005, "rate {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffled order");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(10);
        let mut a = parent.fork();
        let mut b = parent.fork();
        let xa: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_ne!(xa, xb);
    }
}
