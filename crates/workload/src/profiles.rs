//! The paper's parameter grid: the default workload and Table 1.

/// One workload profile: the knobs Section 5.3 varies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Profile {
    /// Fraction of requests targeting large items (`p_L`), e.g. 0.00125
    /// for the default 0.125 %.
    pub p_large: f64,
    /// Maximum large item size (`s_L`), bytes.
    pub large_max: u64,
    /// GET fraction of the operation mix.
    pub get_ratio: f64,
    /// Zipfian skew over regular keys.
    pub zipf_s: f64,
}

impl Profile {
    /// The paper's expected share of bytes moved by large requests
    /// (Table 1's right column) under this profile.
    pub fn large_data_share(&self) -> f64 {
        crate::sizes::SizeClasses::new(self.large_max)
            .large_data_share(self.p_large, crate::dataset::PAPER_TINY_FRAC)
    }

    /// `p_L` as the percentage the paper quotes.
    pub fn p_large_pct(&self) -> f64 {
        self.p_large * 100.0
    }
}

/// The default workload: skewed, 95:5 GET:PUT, `p_L` = 0.125 %,
/// `s_L` = 500 KB.
pub const DEFAULT_PROFILE: Profile = Profile {
    p_large: 0.00125,
    large_max: 500_000,
    get_ratio: 0.95,
    zipf_s: 0.99,
};

/// The write-intensive variant (§6.2): 50:50 GET:PUT.
pub const WRITE_INTENSIVE_PROFILE: Profile = Profile {
    get_ratio: 0.5,
    ..DEFAULT_PROFILE
};

/// Table 1's seven size-variability profiles, in row order:
/// `(p_L %, s_L)` = (0.125, 250 KB), (0.125, 500 KB), (0.125, 1000 KB),
/// (0.0625, 500 KB), (0.25, 500 KB), (0.5, 500 KB), (0.75, 500 KB).
pub const TABLE1_PROFILES: [Profile; 7] = [
    Profile {
        p_large: 0.00125,
        large_max: 250_000,
        ..DEFAULT_PROFILE
    },
    Profile {
        p_large: 0.00125,
        large_max: 500_000,
        ..DEFAULT_PROFILE
    },
    Profile {
        p_large: 0.00125,
        large_max: 1_000_000,
        ..DEFAULT_PROFILE
    },
    Profile {
        p_large: 0.000625,
        large_max: 500_000,
        ..DEFAULT_PROFILE
    },
    Profile {
        p_large: 0.0025,
        large_max: 500_000,
        ..DEFAULT_PROFILE
    },
    Profile {
        p_large: 0.005,
        large_max: 500_000,
        ..DEFAULT_PROFILE
    },
    Profile {
        p_large: 0.0075,
        large_max: 500_000,
        ..DEFAULT_PROFILE
    },
];

/// The `p_L` sweep of Figure 6 (percent values as the paper labels them).
pub const FIG6_PL_PCT: [f64; 5] = [0.0625, 0.125, 0.25, 0.5, 0.75];

/// The `s_L` sweep of Figure 7, bytes.
pub const FIG7_SL: [u64; 3] = [250_000, 500_000, 1_000_000];

/// Table 1's published "% data for large reqs" column, matching
/// [`TABLE1_PROFILES`] row for row.
pub const TABLE1_EXPECTED_DATA_PCT: [f64; 7] = [25.0, 40.0, 60.0, 25.0, 60.0, 75.0, 80.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_values() {
        assert_eq!(DEFAULT_PROFILE.p_large_pct(), 0.125);
        assert_eq!(DEFAULT_PROFILE.large_max, 500_000);
        assert_eq!(DEFAULT_PROFILE.get_ratio, 0.95);
    }

    #[test]
    fn table1_matches_published_column() {
        for (p, &expect) in TABLE1_PROFILES.iter().zip(&TABLE1_EXPECTED_DATA_PCT) {
            let got = p.large_data_share() * 100.0;
            assert!(
                (got - expect).abs() < 3.0,
                "profile {p:?}: got {got:.1}%, expected {expect}%"
            );
        }
    }

    #[test]
    fn write_intensive_only_changes_mix() {
        assert_eq!(WRITE_INTENSIVE_PROFILE.get_ratio, 0.5);
        assert_eq!(WRITE_INTENSIVE_PROFILE.p_large, DEFAULT_PROFILE.p_large);
    }
}
