//! The churn workload: a working set deliberately larger than the
//! server's mempool.
//!
//! The classic workloads ([`crate::access`]) model the paper's steady
//! state — a dataset that fits in memory, preloaded once. Churn models
//! the day the dataset *outgrows* the mempool: keys keep arriving, the
//! store must shed something, and the interesting question is what the
//! capacity-tiering subsystem does to tail latency while it sheds.
//!
//! The generator is deliberately simple and fully deterministic under a
//! seed:
//!
//! * **Population**: `num_keys` keys, each with a fixed per-key size
//!   drawn uniformly from `[value_min, value_max]` by a per-key hash
//!   (same device as [`crate::Dataset`]), so
//!   [`ChurnGenerator::working_set_bytes`] is an exact property of the
//!   config, not of a run.
//! * **Reuse**: key popularity is zipfian(`zipf_s`) with ranks
//!   scattered over the id space, so a hot set exists for eviction
//!   policies to protect — one-touch uniform churn would make every
//!   policy look the same.
//! * **Mix**: PUT-heavy by default (`get_ratio` 0.5): churn is about
//!   writes forcing occupancy, but the GETs are what re-reference the
//!   hot set and what the latency figures measure.
//! * **TTL**: `ttl_ms` is stamped on every PUT when non-zero, so the
//!   same generator drives pure-eviction runs (`ttl_ms = 0`) and
//!   expiry-assisted runs.

use crate::access::{OpSpec, Operation};
use crate::rng::Rng;
use crate::sizes::LARGE_MIN;
use crate::zipf::Zipf;

/// Configuration of the churn workload.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Key population. Key ids are `0..num_keys`.
    pub num_keys: u64,
    /// Smallest per-key value size in bytes.
    pub value_min: u64,
    /// Largest per-key value size in bytes (inclusive). Keep this below
    /// the server's admission cutoff if the run must stay reject-free.
    pub value_max: u64,
    /// Zipf exponent of key reuse (0.99 = YCSB default skew; 0 =
    /// uniform, i.e. no hot set).
    pub zipf_s: f64,
    /// Fraction of operations that are GETs.
    pub get_ratio: f64,
    /// TTL stamped on every PUT, in milliseconds (`0` = never expires).
    pub ttl_ms: u64,
    /// Salt mixed into the per-key size hash.
    pub salt: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            num_keys: 100_000,
            value_min: 64,
            value_max: 4096,
            zipf_s: 0.99,
            get_ratio: 0.5,
            ttl_ms: 0,
            salt: 0,
        }
    }
}

/// Generates churn requests.
#[derive(Clone, Debug)]
pub struct ChurnGenerator {
    cfg: ChurnConfig,
    zipf: Zipf,
}

impl ChurnGenerator {
    /// Creates a generator. Panics on an empty population, an inverted
    /// size range, or an out-of-range `get_ratio`.
    pub fn new(cfg: ChurnConfig) -> Self {
        assert!(cfg.num_keys > 0, "churn needs keys");
        assert!(cfg.value_min > 0 && cfg.value_min <= cfg.value_max);
        assert!((0.0..=1.0).contains(&cfg.get_ratio));
        let zipf = Zipf::new(cfg.num_keys, cfg.zipf_s);
        ChurnGenerator { cfg, zipf }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ChurnConfig {
        &self.cfg
    }

    /// The fixed size of `key`'s value: uniform in
    /// `[value_min, value_max]`, deterministic per key.
    pub fn size_of(&self, key: u64) -> u64 {
        debug_assert!(key < self.cfg.num_keys);
        let span = self.cfg.value_max - self.cfg.value_min + 1;
        // SplitMix64 over (key, salt); same device as `Dataset`.
        let mut z = key
            .wrapping_mul(0xA24BAED4963EE407)
            .wrapping_add(self.cfg.salt);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.cfg.value_min + (unit * span as f64) as u64
    }

    /// The exact working-set size in bytes: the sum of every key's
    /// value size. O(`num_keys`) — computed once when sizing a run
    /// against a mempool, not per operation.
    pub fn working_set_bytes(&self) -> u64 {
        (0..self.cfg.num_keys).map(|k| self.size_of(k)).sum()
    }

    /// Draws the next request. The zipf rank is scattered over the id
    /// space by the same bijective mix [`crate::Dataset`] uses, so hot
    /// keys land in different store partitions.
    pub fn next_op(&self, rng: &mut Rng) -> OpSpec {
        let rank = self.zipf.sample(rng) - 1; // ranks are 1-based
        let key = self.scatter(rank);
        let op = if rng.chance(self.cfg.get_ratio) {
            Operation::Get
        } else {
            Operation::Put
        };
        let item_size = self.size_of(key);
        OpSpec {
            key,
            op,
            item_size,
            is_large: item_size >= LARGE_MIN,
            ttl_ms: match op {
                Operation::Put => self.cfg.ttl_ms,
                Operation::Get => 0,
            },
        }
    }

    /// The id of the `rank`-th most popular key (bijective on
    /// `[0, num_keys)`).
    pub fn scatter(&self, rank: u64) -> u64 {
        debug_assert!(rank < self.cfg.num_keys);
        let span = self.cfg.num_keys;
        let m = span.next_power_of_two();
        let mut x = rank;
        loop {
            x = x.wrapping_mul(0x9E3779B97F4A7C15) & (m - 1);
            if x < span {
                return x;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> ChurnGenerator {
        ChurnGenerator::new(ChurnConfig {
            num_keys: 10_000,
            value_min: 64,
            value_max: 4096,
            ..ChurnConfig::default()
        })
    }

    #[test]
    fn working_set_is_exact_and_near_uniform_mean() {
        let g = generator();
        let total = g.working_set_bytes();
        assert_eq!(total, (0..10_000).map(|k| g.size_of(k)).sum::<u64>());
        let mean = total as f64 / 10_000.0;
        assert!((mean - 2080.0).abs() < 60.0, "uniform mean, got {mean}");
    }

    #[test]
    fn sizes_are_deterministic_and_bounded() {
        let g = generator();
        for key in 0..10_000 {
            let s = g.size_of(key);
            assert_eq!(s, g.size_of(key));
            assert!((64..=4096).contains(&s), "key {key} size {s}");
        }
    }

    #[test]
    fn scatter_is_bijective() {
        let g = generator();
        let mut seen = std::collections::HashSet::new();
        for rank in 0..10_000 {
            let k = g.scatter(rank);
            assert!(k < 10_000);
            assert!(seen.insert(k), "rank {rank} collided");
        }
    }

    #[test]
    fn reuse_is_skewed() {
        let g = generator();
        let mut rng = Rng::new(9);
        let mut counts = std::collections::HashMap::new();
        let n = 100_000;
        for _ in 0..n {
            *counts.entry(g.next_op(&mut rng).key).or_insert(0u64) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        let uniform = n as f64 / 10_000.0;
        assert!(max as f64 > uniform * 50.0, "hot key {max} vs {uniform}");
    }

    #[test]
    fn ttl_rides_only_on_puts() {
        let g = ChurnGenerator::new(ChurnConfig {
            num_keys: 100,
            ttl_ms: 250,
            ..ChurnConfig::default()
        });
        let mut rng = Rng::new(3);
        let (mut puts, mut gets) = (0, 0);
        for _ in 0..1000 {
            let op = g.next_op(&mut rng);
            match op.op {
                Operation::Put => {
                    assert_eq!(op.ttl_ms, 250);
                    puts += 1;
                }
                Operation::Get => {
                    assert_eq!(op.ttl_ms, 0);
                    gets += 1;
                }
            }
        }
        assert!(puts > 0 && gets > 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generator();
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(g.next_op(&mut a), g.next_op(&mut b));
        }
    }
}
