//! Zipfian sampling by rejection inversion (Hörmann & Derflinger 1996).
//!
//! The paper's key-popularity skew is "a zipfian distribution with
//! parameter 0.99 ... the default value in YCSB" over the tiny+small
//! portion of the dataset — ~16 M keys, far too many for alias tables or
//! per-rank CDFs. Rejection inversion samples in O(1) time and O(1)
//! memory at any population size: invert the integral of the smooth
//! majorizing function, round to the nearest rank, and accept/reject to
//! correct for the discretization.

use crate::rng::Rng;

/// A Zipf(N, s) sampler over ranks `1..=N` with `P(k) ∝ k^-s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    exponent: f64,
    h_integral_x1: f64,
    h_integral_n: f64,
    threshold: f64,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with the given exponent
    /// (`s > 0`; `s = 0.99` is the YCSB default used by the paper).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the exponent is not positive and finite.
    pub fn new(n: u64, exponent: f64) -> Self {
        assert!(n > 0, "population must be non-empty");
        assert!(
            exponent > 0.0 && exponent.is_finite(),
            "exponent must be positive"
        );
        let h_integral_x1 = h_integral(1.5, exponent) - 1.0;
        let h_integral_n = h_integral(n as f64 + 0.5, exponent);
        let threshold =
            2.0 - h_integral_inverse(h_integral(2.5, exponent) - h(2.0, exponent), exponent);
        Zipf {
            n,
            exponent,
            h_integral_x1,
            h_integral_n,
            threshold,
        }
    }

    /// Population size.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Draws a rank in `1..=n`.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        loop {
            let u = self.h_integral_n + rng.f64() * (self.h_integral_x1 - self.h_integral_n);
            // u is uniform in (h_integral_x1, h_integral_n].
            let x = h_integral_inverse(u, self.exponent);
            let k = (x + 0.5) as u64;
            let k = k.clamp(1, self.n);
            if (k as f64 - x) <= self.threshold
                || u >= h_integral(k as f64 + 0.5, self.exponent) - h(k as f64, self.exponent)
            {
                return k;
            }
        }
    }
}

/// The integral of the majorizing function:
/// `∫ t^-s dt = log(x)` for `s == 1`, `(x^(1-s) - 1)/(1-s)` otherwise,
/// computed via `expm1`/`log1p` helpers for stability near `s = 1`
/// (precisely the regime of the YCSB exponent 0.99).
fn h_integral(x: f64, exponent: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - exponent) * log_x) * log_x
}

/// The majorizing function `x^-s`.
fn h(x: f64, exponent: f64) -> f64 {
    (-exponent * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(x: f64, exponent: f64) -> f64 {
    let mut t = x * (1.0 - exponent);
    if t < -1.0 {
        // Numerical round-off: clamp to the domain boundary.
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `log1p(x) / x`, continuous at 0.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `expm1(x) / x`, continuous at 0.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + 0.5 * x * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=1000).contains(&k));
        }
    }

    #[test]
    fn rank_one_dominates_with_correct_ratio() {
        // P(1)/P(2) must be 2^s.
        let s = 0.99;
        let z = Zipf::new(10_000, s);
        let mut rng = Rng::new(2);
        let (mut c1, mut c2) = (0u64, 0u64);
        for _ in 0..2_000_000 {
            match z.sample(&mut rng) {
                1 => c1 += 1,
                2 => c2 += 1,
                _ => {}
            }
        }
        let ratio = c1 as f64 / c2 as f64;
        let expect = 2f64.powf(s);
        assert!(
            (ratio - expect).abs() / expect < 0.05,
            "ratio {ratio}, expected {expect}"
        );
    }

    #[test]
    fn matches_exact_pmf_for_small_population() {
        // Exact check against the normalized PMF for N = 8.
        let n = 8u64;
        let s = 0.99;
        let z = Zipf::new(n, s);
        let mut rng = Rng::new(3);
        let draws = 800_000;
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let norm: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        for k in 1..=n {
            let want = (k as f64).powf(-s) / norm;
            let got = counts[k as usize] as f64 / draws as f64;
            assert!(
                (got - want).abs() / want < 0.03,
                "rank {k}: got {got:.4}, want {want:.4}"
            );
        }
    }

    #[test]
    fn head_concentration_at_ycsb_skew() {
        // At s = 0.99 over 16 M keys the head is heavy: the top 1 % of
        // ranks should capture well over a third of the mass.
        let z = Zipf::new(16_000_000, 0.99);
        let mut rng = Rng::new(4);
        let draws = 200_000;
        let head = (0..draws).filter(|_| z.sample(&mut rng) <= 160_000).count();
        let share = head as f64 / draws as f64;
        assert!(share > 0.35, "head share {share}");
    }

    #[test]
    fn works_at_exponent_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Rng::new(5);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn population_of_one() {
        let z = Zipf::new(1, 0.99);
        let mut rng = Rng::new(6);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }
}
