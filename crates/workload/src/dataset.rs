//! The dataset: which keys exist and how big each item is.
//!
//! Paper §5.3: "We consider a dataset of 16M key-value pairs, out of
//! which 10K are large elements. Of the remaining key-value pairs, 40%
//! correspond to tiny items, and 60% to small ones."
//!
//! Item sizes are *deterministic functions of the key id* (a per-key hash
//! picks the class and the uniform draw within the class), so the dataset
//! occupies O(1) memory at any scale — the full 16M-key dataset and a
//! scaled-down 100K-key dataset for threaded runs use the same code.

use crate::rng::Rng;
use crate::sizes::{Class, SizeClasses, LARGE_MIN, SMALL, TINY};

/// A dataset description: key population and per-key sizes.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Total number of keys. Key ids are `0..num_keys`.
    num_keys: u64,
    /// Number of large keys; these are the ids `num_keys - num_large ..
    /// num_keys`.
    num_large: u64,
    /// Fraction of the regular (non-large) keys that are tiny.
    tiny_frac: f64,
    /// Size classes (carries `s_L`).
    classes: SizeClasses,
    /// Salt mixed into the per-key hashes so different datasets assign
    /// different sizes.
    salt: u64,
}

/// The paper's dataset population.
pub const PAPER_KEYS: u64 = 16_000_000;
/// The paper's large-key population.
pub const PAPER_LARGE_KEYS: u64 = 10_000;
/// The paper's tiny fraction of regular keys.
pub const PAPER_TINY_FRAC: f64 = 0.4;

impl Dataset {
    /// The paper's dataset at full scale with the given `s_L`.
    pub fn paper(large_max: u64) -> Self {
        Self::new(PAPER_KEYS, PAPER_LARGE_KEYS, PAPER_TINY_FRAC, large_max, 0)
    }

    /// The paper's dataset scaled by `1/scale` (population and large
    /// count divided), for memory-constrained threaded runs. Ratios are
    /// preserved.
    pub fn paper_scaled(scale: u64, large_max: u64) -> Self {
        assert!(scale > 0);
        Self::new(
            (PAPER_KEYS / scale).max(1000),
            (PAPER_LARGE_KEYS / scale).max(10),
            PAPER_TINY_FRAC,
            large_max,
            0,
        )
    }

    /// Fully custom dataset.
    pub fn new(num_keys: u64, num_large: u64, tiny_frac: f64, large_max: u64, salt: u64) -> Self {
        assert!(num_large < num_keys, "large keys must be a strict subset");
        assert!((0.0..=1.0).contains(&tiny_frac));
        Dataset {
            num_keys,
            num_large,
            tiny_frac,
            classes: SizeClasses::new(large_max),
            salt,
        }
    }

    /// Total key population.
    pub fn num_keys(&self) -> u64 {
        self.num_keys
    }

    /// Number of large keys.
    pub fn num_large(&self) -> u64 {
        self.num_large
    }

    /// Number of regular (tiny or small) keys.
    pub fn num_regular(&self) -> u64 {
        self.num_keys - self.num_large
    }

    /// The size classes in force.
    pub fn classes(&self) -> &SizeClasses {
        &self.classes
    }

    /// True if `key` is one of the large keys.
    pub fn is_large_key(&self, key: u64) -> bool {
        key >= self.num_regular() && key < self.num_keys
    }

    /// The id of the `rank`-th regular key (`rank` in `[0,
    /// num_regular)`); regular key ids are scattered over the id space by
    /// a bijective mix so that key id and popularity rank are
    /// uncorrelated — popular keys land in different partitions.
    pub fn regular_key(&self, rank: u64) -> u64 {
        debug_assert!(rank < self.num_regular());
        // Multiplication by an odd constant is a bijection modulo a
        // power of two >= num_regular; cycle-walk values that land
        // outside the span back through the permutation. The composition
        // stays bijective on [0, num_regular).
        let span = self.num_regular();
        let m = span.next_power_of_two();
        let mut x = rank;
        loop {
            x = x.wrapping_mul(0x9E3779B97F4A7C15) & (m - 1);
            if x < span {
                return x;
            }
        }
    }

    /// The id of the `idx`-th large key (`idx` in `[0, num_large)`).
    pub fn large_key(&self, idx: u64) -> u64 {
        debug_assert!(idx < self.num_large);
        self.num_regular() + idx
    }

    fn key_mix(&self, key: u64, stream: u64) -> u64 {
        // SplitMix64 over (key, salt, stream).
        let mut z = key
            .wrapping_mul(0xA24BAED4963EE407)
            .wrapping_add(self.salt)
            .wrapping_add(stream.wrapping_mul(0x9FB21C651E98DF25));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit(&self, key: u64, stream: u64) -> f64 {
        (self.key_mix(key, stream) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The class of `key`'s item.
    pub fn class_of(&self, key: u64) -> Class {
        if self.is_large_key(key) {
            Class::Large
        } else if self.unit(key, 1) < self.tiny_frac {
            Class::Tiny
        } else {
            Class::Small
        }
    }

    /// The fixed size in bytes of `key`'s item (uniform within its
    /// class, deterministic per key).
    pub fn size_of(&self, key: u64) -> u64 {
        let (lo, hi) = match self.class_of(key) {
            Class::Tiny => TINY,
            Class::Small => SMALL,
            Class::Large => (LARGE_MIN, self.classes.large_max),
        };
        lo + (self.unit(key, 2) * (hi - lo + 1) as f64) as u64
    }

    /// Draws a uniformly random large key.
    pub fn sample_large(&self, rng: &mut Rng) -> u64 {
        self.large_key(rng.range_u64(0, self.num_large - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        Dataset::new(10_000, 100, 0.4, 500_000, 7)
    }

    #[test]
    fn paper_dataset_population() {
        let d = Dataset::paper(500_000);
        assert_eq!(d.num_keys(), 16_000_000);
        assert_eq!(d.num_large(), 10_000);
        assert_eq!(d.num_regular(), 15_990_000);
    }

    #[test]
    fn scaled_preserves_ratio() {
        let d = Dataset::paper_scaled(100, 500_000);
        assert_eq!(d.num_keys(), 160_000);
        assert_eq!(d.num_large(), 100);
    }

    #[test]
    fn large_keys_are_the_tail_ids() {
        let d = tiny_dataset();
        assert!(!d.is_large_key(0));
        assert!(!d.is_large_key(9_899));
        assert!(d.is_large_key(9_900));
        assert!(d.is_large_key(9_999));
        assert!(!d.is_large_key(10_000), "out of population");
    }

    #[test]
    fn sizes_respect_class_bounds_and_are_deterministic() {
        let d = tiny_dataset();
        for key in 0..10_000u64 {
            let size = d.size_of(key);
            assert_eq!(size, d.size_of(key), "deterministic");
            match d.class_of(key) {
                Class::Tiny => assert!((1..=13).contains(&size)),
                Class::Small => assert!((14..=1400).contains(&size)),
                Class::Large => assert!((1500..=500_000).contains(&size)),
            }
            if d.is_large_key(key) {
                assert_eq!(d.class_of(key), Class::Large);
            }
        }
    }

    #[test]
    fn tiny_fraction_matches() {
        let d = Dataset::new(100_000, 100, 0.4, 500_000, 3);
        let tiny = (0..d.num_regular())
            .filter(|&k| d.class_of(k) == Class::Tiny)
            .count() as f64;
        let frac = tiny / d.num_regular() as f64;
        assert!((frac - 0.4).abs() < 0.01, "tiny fraction {frac}");
    }

    #[test]
    fn within_class_sizes_are_uniform() {
        let d = Dataset::new(200_000, 100, 0.0, 500_000, 11); // all small
        let mean: f64 = (0..50_000u64).map(|k| d.size_of(k) as f64).sum::<f64>() / 50_000.0;
        assert!((mean - 707.0).abs() < 10.0, "small mean {mean}");
    }

    #[test]
    fn regular_key_is_bijective_prefix() {
        let d = tiny_dataset();
        let mut seen = std::collections::HashSet::new();
        for rank in 0..d.num_regular() {
            let k = d.regular_key(rank);
            assert!(k < d.num_regular(), "regular keys stay regular");
            assert!(seen.insert(k), "rank {rank} collided");
        }
    }

    #[test]
    fn sample_large_returns_large_keys() {
        let d = tiny_dataset();
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let k = d.sample_large(&mut rng);
            assert!(d.is_large_key(k));
        }
    }

    #[test]
    fn salt_changes_assignment() {
        let a = Dataset::new(10_000, 10, 0.4, 500_000, 1);
        let b = Dataset::new(10_000, 10, 0.4, 500_000, 2);
        let differing = (0..1000u64)
            .filter(|&k| a.size_of(k) != b.size_of(k))
            .count();
        assert!(differing > 900, "salt must reshuffle sizes: {differing}");
    }
}
