//! Open-loop arrival process.
//!
//! Paper §5.4: "Client threads simulate an open system by generating
//! requests at a given rate ... The time between two consecutive requests
//! of a thread is exponentially distributed." An open loop is essential
//! for tail-latency measurement: a closed loop would throttle offered
//! load exactly when the server slows down, hiding queueing.

use crate::rng::Rng;

/// An open-loop (Poisson) arrival process in nanoseconds.
#[derive(Clone, Debug)]
pub struct OpenLoop {
    mean_gap_ns: f64,
    next_ns: u64,
}

impl OpenLoop {
    /// A process generating `rate` requests per second starting at time
    /// `start_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn new(rate: f64, start_ns: u64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        OpenLoop {
            mean_gap_ns: 1e9 / rate,
            next_ns: start_ns,
        }
    }

    /// The timestamp of the next arrival, advancing the process.
    pub fn next_arrival(&mut self, rng: &mut Rng) -> u64 {
        let t = self.next_ns;
        let gap = rng.exponential(self.mean_gap_ns);
        self.next_ns = t + gap.max(0.0) as u64;
        t
    }

    /// The timestamp the next call to [`Self::next_arrival`] will return.
    pub fn peek(&self) -> u64 {
        self.next_ns
    }

    /// Changes the rate from now on (used by load sweeps).
    pub fn set_rate(&mut self, rate: f64) {
        assert!(rate > 0.0);
        self.mean_gap_ns = 1e9 / rate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_arrival_at_start() {
        let mut a = OpenLoop::new(1000.0, 5000);
        let mut rng = Rng::new(1);
        assert_eq!(a.next_arrival(&mut rng), 5000);
    }

    #[test]
    fn arrivals_are_monotonic() {
        let mut a = OpenLoop::new(1_000_000.0, 0);
        let mut rng = Rng::new(2);
        let mut prev = 0;
        for _ in 0..10_000 {
            let t = a.next_arrival(&mut rng);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn rate_is_respected() {
        let rate = 2_000_000.0; // 2 Mops
        let mut a = OpenLoop::new(rate, 0);
        let mut rng = Rng::new(3);
        let n = 200_000;
        let mut last = 0;
        for _ in 0..n {
            last = a.next_arrival(&mut rng);
        }
        let measured = n as f64 / (last as f64 / 1e9);
        assert!(
            (measured - rate).abs() / rate < 0.02,
            "measured rate {measured}"
        );
    }

    #[test]
    fn gaps_look_exponential() {
        // Coefficient of variation of exponential gaps is 1.
        let mut a = OpenLoop::new(1_000_000.0, 0);
        let mut rng = Rng::new(4);
        let mut gaps = Vec::new();
        let mut prev = a.next_arrival(&mut rng);
        for _ in 0..100_000 {
            let t = a.next_arrival(&mut rng);
            gaps.push((t - prev) as f64);
            prev = t;
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn set_rate_changes_future_gaps() {
        let mut a = OpenLoop::new(1000.0, 0);
        let mut rng = Rng::new(5);
        a.set_rate(1_000_000_000.0); // 1 ns mean gap
        let t0 = a.next_arrival(&mut rng);
        let mut last = t0;
        for _ in 0..1000 {
            last = a.next_arrival(&mut rng);
        }
        assert!(last - t0 < 100_000, "gaps shrank after set_rate");
    }
}
