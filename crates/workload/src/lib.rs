//! Workload generation for the Minos evaluation (paper §5.3–5.4).
//!
//! The paper's workloads combine four stochastic processes, each
//! implemented here from scratch and fully deterministic under a seed:
//!
//! * **Key popularity** ([`zipf`]): a zipfian distribution with
//!   parameter 0.99 over the tiny+small keys (YCSB's default skew), and a
//!   *uniform* distribution over the few large keys — the paper does this
//!   to avoid pathological cases where the hottest large key happens to
//!   be the biggest one.
//! * **Item sizes** ([`sizes`], [`dataset`]): the trimodal ETC-like
//!   distribution — tiny (1–13 B), small (14–1400 B), large
//!   (1500 B–`s_L`), uniform within each class; 16 M keys of which 10 K
//!   are large, and 40 % / 60 % of the rest tiny / small.
//! * **Operation mix** ([`access`]): GET:PUT ratios of 95:5
//!   (read-dominated) and 50:50 (write-intensive).
//! * **Arrivals** ([`arrival`]): an open system with exponential
//!   inter-arrival times at a configurable rate.
//!
//! [`profiles`] pins the paper's parameter grid (Table 1 and the default
//! workload); [`dynamic`] builds the time-varying `p_L` schedule of
//! Figure 10. [`rng`] provides the deterministic generator (xoshiro256++
//! seeded via SplitMix64) everything runs on.
//!
//! [`churn`] is the odd one out: a working set deliberately larger than
//! the server's mempool (zipfian reuse, per-key sizes, optional TTLs),
//! built to exercise the capacity-tiering subsystem rather than the
//! paper's steady state.

#![warn(missing_docs)]

pub mod access;
pub mod arrival;
pub mod churn;
pub mod dataset;
pub mod dynamic;
pub mod profiles;
pub mod rng;
pub mod sizes;
pub mod zipf;

pub use access::{AccessGenerator, OpSpec, Operation};
pub use arrival::OpenLoop;
pub use churn::{ChurnConfig, ChurnGenerator};
pub use dataset::Dataset;
pub use dynamic::PhaseSchedule;
pub use profiles::{Profile, DEFAULT_PROFILE, TABLE1_PROFILES};
pub use rng::Rng;
pub use sizes::SizeClasses;
pub use zipf::Zipf;
