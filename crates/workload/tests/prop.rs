//! Property tests on the workload generators: distributions must stay
//! inside their documented supports for arbitrary parameters, and the
//! dataset's deterministic size assignment must respect its class
//! boundaries at any scale.

use minos_workload::{AccessGenerator, Dataset, OpenLoop, Rng, Zipf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn zipf_support(n in 1u64..1_000_000, s in 0.2f64..2.0, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let mut rng = Rng::new(seed);
        for _ in 0..200 {
            let k = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    #[test]
    fn dataset_sizes_in_class_bounds(
        num_keys in 100u64..50_000,
        large_frac in 0.001f64..0.2,
        tiny_frac in 0.0f64..1.0,
        large_max in 1_500u64..1_000_000,
        salt in any::<u64>(),
    ) {
        let num_large = ((num_keys as f64 * large_frac) as u64).clamp(1, num_keys - 1);
        let d = Dataset::new(num_keys, num_large, tiny_frac, large_max, salt);
        let mut rng = Rng::new(salt);
        for _ in 0..200 {
            let key = rng.range_u64(0, num_keys - 1);
            let size = d.size_of(key);
            if d.is_large_key(key) {
                prop_assert!((1_500..=large_max).contains(&size), "key {key} size {size}");
            } else {
                prop_assert!((1..=1_400).contains(&size), "key {key} size {size}");
            }
        }
    }

    #[test]
    fn generator_respects_parameters(
        p_large in 0.0f64..0.05,
        get_ratio in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let d = Dataset::new(10_000, 50, 0.4, 500_000, 1);
        let gen = AccessGenerator::new(d, p_large, get_ratio, 0.99);
        let mut rng = Rng::new(seed);
        for _ in 0..300 {
            let op = gen.next_op(&mut rng);
            prop_assert!(op.key < 10_000);
            prop_assert_eq!(op.is_large, gen.dataset().is_large_key(op.key));
            prop_assert_eq!(op.item_size, gen.dataset().size_of(op.key));
        }
    }

    #[test]
    fn open_loop_is_monotone_for_any_rate(
        rate in 1.0f64..1e8,
        start in 0u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let mut arr = OpenLoop::new(rate, start);
        let mut rng = Rng::new(seed);
        let mut prev = 0u64;
        for i in 0..500 {
            let t = arr.next_arrival(&mut rng);
            if i == 0 {
                prop_assert_eq!(t, start);
            }
            prop_assert!(t >= prev);
            prev = t;
        }
    }
}
