//! Property tests for the batched `sendmmsg` → `recvmmsg` path:
//! arbitrary payload sizes and counts move through [`UdpTransport`]
//! bursts with bytes preserved, per-queue FIFO order intact, and no
//! cross-queue leakage.

use bytes::Bytes;
use minos_net::{Transport, UdpConfig, UdpTransport};
use minos_wire::packet::{synthesize, Packet};
use minos_wire::MAX_UDP_PAYLOAD;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

const QUEUES: u16 = 2;

/// Disjoint, PID-salted port ranges per bound server: these are
/// `SO_REUSEPORT` sockets, so a bind over another live test server —
/// in this process or a concurrently running suite — would *succeed*
/// and split its traffic instead of failing the probe.
static PORTS: minos_net::testport::TestPorts = minos_net::testport::TestPorts::new(25_000, 32_000);

fn bind_pair(batch: usize) -> (UdpTransport, UdpTransport) {
    loop {
        let base = PORTS.alloc(8);
        let config = UdpConfig {
            batch,
            ..UdpConfig::loopback(base, QUEUES)
        };
        if let Ok(server) = UdpTransport::bind(config) {
            let client = UdpTransport::bind_client_with(UdpConfig {
                batch,
                ..UdpConfig::client(Ipv4Addr::LOCALHOST)
            })
            .expect("bind client");
            return (server, client);
        }
    }
}

/// Deterministic payload for message `i`: sized `size`, content derived
/// from `i` so both truncation and reordering are detectable.
fn payload(i: usize, size: usize) -> Bytes {
    let mut v = vec![(i % 251) as u8; size.max(4)];
    v[..4].copy_from_slice(&(i as u32).to_be_bytes());
    Bytes::from(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random (size, queue) schedules pushed as one client burst arrive
    /// byte-identical, in per-queue FIFO order, on exactly the queue
    /// they addressed.
    #[test]
    fn batched_bursts_preserve_bytes_order_and_isolation(
        schedule in prop::collection::vec(
            (4usize..MAX_UDP_PAYLOAD, 0u16..QUEUES),
            1..48,
        ),
    ) {
        let (server, client) = bind_pair(32);
        let src = client.local_endpoint(0);
        let mut burst: Vec<Packet> = schedule
            .iter()
            .enumerate()
            .map(|(i, &(size, q))| {
                synthesize(src, server.local_endpoint(q), payload(i, size))
            })
            .collect();
        let n = burst.len();
        prop_assert_eq!(client.tx_burst(0, &mut burst), n);

        // Collect each queue until its share arrived.
        let deadline = Instant::now() + Duration::from_secs(10);
        for q in 0..QUEUES {
            let expected: Vec<usize> = schedule
                .iter()
                .enumerate()
                .filter(|(_, &(_, sq))| sq == q)
                .map(|(i, _)| i)
                .collect();
            let mut got = Vec::new();
            while got.len() < expected.len() {
                prop_assert!(
                    Instant::now() < deadline,
                    "queue {} got {} of {}", q, got.len(), expected.len()
                );
                server.rx_burst(q, &mut got, 64);
            }
            prop_assert_eq!(got.len(), expected.len(), "no cross-queue leakage");
            for (pkt, &i) in got.iter().zip(&expected) {
                let (size, _) = schedule[i];
                prop_assert_eq!(
                    pkt.payload.clone(),
                    payload(i, size),
                    "queue {} message {} must arrive intact and in order", q, i
                );
            }
        }
    }

    /// The batched and one-datagram paths are observably equivalent:
    /// the same schedule through `batch=32` and `batch=1` transports
    /// yields identical per-queue byte streams — only the syscall count
    /// differs.
    #[test]
    fn batched_and_singly_paths_deliver_identically(
        sizes in prop::collection::vec(4usize..2_000, 1..32),
    ) {
        let mut per_path = Vec::new();
        for batch in [32usize, 1] {
            let (server, client) = bind_pair(batch);
            let src = client.local_endpoint(0);
            let mut burst: Vec<Packet> = sizes
                .iter()
                .enumerate()
                .map(|(i, &size)| {
                    // Queue by parity: a deterministic 2-queue spread.
                    let q = (i % QUEUES as usize) as u16;
                    synthesize(src, server.local_endpoint(q), payload(i, size.min(MAX_UDP_PAYLOAD)))
                })
                .collect();
            let n = burst.len();
            prop_assert_eq!(client.tx_burst(0, &mut burst), n);

            let deadline = Instant::now() + Duration::from_secs(10);
            let mut streams: Vec<Vec<Bytes>> = vec![Vec::new(); QUEUES as usize];
            for q in 0..QUEUES {
                let expected = sizes
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % QUEUES as usize == q as usize)
                    .count();
                let mut got = Vec::new();
                while got.len() < expected {
                    prop_assert!(Instant::now() < deadline, "queue {} on batch {}", q, batch);
                    server.rx_burst(q, &mut got, 16);
                }
                streams[q as usize] = got.into_iter().map(|p| p.payload).collect();
            }
            let io = server.io_stats();
            prop_assert_eq!(io.rx_packets, n as u64);
            per_path.push(streams);
        }
        prop_assert_eq!(&per_path[0], &per_path[1], "paths must deliver identical streams");
    }
}
