//! Backend-parametrized conformance suite for the [`Transport`]
//! contract: one generic harness run against the in-process
//! [`VirtualNic`] adapters and against real-UDP [`UdpTransport`] (both
//! the batched `recvmmsg`/`sendmmsg` path and the one-datagram
//! fallback), so the two backends can never drift apart behaviorally.
//!
//! Covered: rx/tx burst semantics, `max` truncation, empty-burst
//! behavior, per-queue isolation and FIFO order, stats monotonicity,
//! and large-message fragmentation round-trips.

use bytes::Bytes;
use minos_net::{
    Transport, TransportStats, UdpConfig, UdpTransport, VirtualClientTransport, VirtualTransport,
};
use minos_nic::{NicConfig, VirtualNic};
use minos_wire::frag::{
    fragment_frame_with_id, fragment_with_id, Fragmenter, Reassembler, Reassembly,
};
use minos_wire::message::{Body, Message, ReplyStatus};
use minos_wire::packet::{synthesize, synthesize_frame, Endpoint, Packet, TxPacket};
use minos_wire::MAX_FRAG_CHUNK;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One backend under test: a server-side transport plus a single-queue
/// client transport whose TX reaches the server's RX queues and whose RX
/// drains the server's replies.
struct Backend {
    name: &'static str,
    server: Arc<dyn Transport>,
    client: Arc<dyn Transport>,
    /// Real sockets deliver asynchronously; the harness then polls
    /// with a deadline instead of expecting synchronous delivery.
    asynchronous: bool,
}

/// Allocates disjoint, PID-salted port ranges for every UDP server
/// this binary binds. A "walk until bind fails" probe cannot work
/// here: these are `SO_REUSEPORT` sockets, so binding over another
/// test's live server — in this process or a concurrently running
/// suite — *succeeds* and the kernel then load-balances datagrams
/// between the two, silently stealing traffic.
static PORTS: minos_net::testport::TestPorts = minos_net::testport::TestPorts::new(45_000, 59_000);

fn bind_udp_server(num_queues: u16, batch: usize) -> UdpTransport {
    loop {
        let base = PORTS.alloc(num_queues.max(8));
        let config = UdpConfig {
            batch,
            ..UdpConfig::loopback(base, num_queues)
        };
        // A bind can still fail if an ephemeral client socket landed on
        // the range; the allocator just moves on.
        if let Ok(t) = UdpTransport::bind(config) {
            return t;
        }
    }
}

fn backends(num_queues: u16) -> Vec<Backend> {
    let mut out = Vec::new();

    let nic = Arc::new(VirtualNic::new(NicConfig::new(num_queues)));
    let client_ep = Endpoint::host(100, 20_000);
    out.push(Backend {
        name: "virtual",
        server: Arc::new(VirtualTransport::new(Arc::clone(&nic))),
        client: Arc::new(VirtualClientTransport::new(nic, client_ep)),
        asynchronous: false,
    });

    for (name, batch) in [("udp-batched", 32usize), ("udp-singly", 1usize)] {
        let server = bind_udp_server(num_queues, batch);
        let client = UdpTransport::bind_client_with(UdpConfig {
            batch,
            ..UdpConfig::client(Ipv4Addr::LOCALHOST)
        })
        .expect("bind client");
        out.push(Backend {
            name,
            server: Arc::new(server),
            client: Arc::new(client),
            asynchronous: true,
        });
    }
    out
}

/// Receives until `want` packets arrived (or a deadline), asserting the
/// per-call contract: at most `max` per burst, return value equal to
/// the number of packets appended.
fn rx_collect(
    t: &dyn Transport,
    queue: u16,
    want: usize,
    max_per_burst: usize,
    what: &str,
) -> Vec<Packet> {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut out = Vec::new();
    while out.len() < want {
        assert!(
            Instant::now() < deadline,
            "{what}: got {} of {want}",
            out.len()
        );
        let before = out.len();
        let moved = t.rx_burst(queue, &mut out, max_per_burst);
        assert!(
            moved <= max_per_burst,
            "{what}: burst of {moved} exceeds max {max_per_burst}"
        );
        assert_eq!(
            out.len(),
            before + moved,
            "{what}: return value must match appended packets"
        );
    }
    out
}

/// Waits until the backend has `n` datagrams queued on `queue` (real
/// sockets deliver asynchronously), by the only portable signal there
/// is: time.
fn settle(backend: &Backend) {
    if backend.asynchronous {
        std::thread::sleep(Duration::from_millis(200));
    }
}

fn send_to_queue(backend: &Backend, queue: u16, payload: Bytes) -> Packet {
    let pkt = synthesize(
        backend.client.local_endpoint(0),
        backend.server.local_endpoint(queue),
        payload,
    );
    assert!(
        backend.client.tx_push(0, pkt.clone()),
        "{}: client tx_push failed",
        backend.name
    );
    pkt
}

#[test]
fn empty_burst_returns_zero_and_leaves_out_untouched() {
    for backend in backends(2) {
        let mut out = Vec::new();
        for q in 0..2 {
            assert_eq!(
                backend.server.rx_burst(q, &mut out, 32),
                0,
                "{}: idle queue {q} must be empty",
                backend.name
            );
        }
        assert!(out.is_empty(), "{}: out must be untouched", backend.name);
        // max = 0 moves nothing even with traffic queued.
        send_to_queue(&backend, 0, Bytes::from_static(b"queued"));
        settle(&backend);
        assert_eq!(
            backend.server.rx_burst(0, &mut out, 0),
            0,
            "{}",
            backend.name
        );
        assert!(out.is_empty(), "{}: max=0 must not move", backend.name);
    }
}

#[test]
fn rx_burst_truncates_at_max_and_preserves_fifo_order() {
    const K: usize = 48;
    for backend in backends(1) {
        for i in 0..K {
            send_to_queue(&backend, 0, Bytes::from(vec![i as u8; 33]));
        }
        settle(&backend);

        // With K datagrams queued, a smaller max must truncate exactly.
        let mut out = Vec::new();
        let moved = backend.server.rx_burst(0, &mut out, K / 2);
        assert_eq!(moved, K / 2, "{}: exact truncation at max", backend.name);

        // The rest drains in order; bursts never exceed max.
        let rest = rx_collect(&*backend.server, 0, K - K / 2, 7, backend.name);
        out.extend(rest);
        assert_eq!(out.len(), K);
        for (i, pkt) in out.iter().enumerate() {
            assert_eq!(
                &pkt.payload[..],
                &[i as u8; 33][..],
                "{}: FIFO order within a queue",
                backend.name
            );
        }
    }
}

#[test]
fn queues_are_isolated() {
    const QUEUES: u16 = 4;
    for backend in backends(QUEUES) {
        for q in 0..QUEUES {
            for i in 0..3u8 {
                send_to_queue(&backend, q, Bytes::from(vec![q as u8 * 16 + i; 21]));
            }
        }
        settle(&backend);
        for q in 0..QUEUES {
            let got = rx_collect(&*backend.server, q, 3, 32, backend.name);
            for (i, pkt) in got.iter().enumerate() {
                assert_eq!(
                    &pkt.payload[..],
                    &[q as u8 * 16 + i as u8; 21][..],
                    "{}: queue {q} must only see its own traffic, in order",
                    backend.name
                );
                assert_eq!(
                    pkt.meta.udp.dst_port,
                    backend.server.local_endpoint(q).port,
                    "{}: destination port names the queue",
                    backend.name
                );
            }
            // And nothing further is left on the queue.
            let mut extra = Vec::new();
            assert_eq!(
                backend.server.rx_burst(q, &mut extra, 32),
                0,
                "{}",
                backend.name
            );
        }
    }
}

#[test]
fn rx_pop_one_steals_in_order() {
    for backend in backends(1) {
        for i in 0..4u8 {
            send_to_queue(&backend, 0, Bytes::from(vec![i; 9]));
        }
        settle(&backend);
        let deadline = Instant::now() + Duration::from_secs(10);
        for i in 0..4u8 {
            let pkt = loop {
                if let Some(p) = backend.server.rx_pop_one(0) {
                    break p;
                }
                assert!(Instant::now() < deadline, "{}: pop {i}", backend.name);
            };
            assert_eq!(&pkt.payload[..], &[i; 9][..], "{}", backend.name);
        }
    }
}

fn assert_monotonic(before: &TransportStats, after: &TransportStats, what: &str) {
    assert!(after.rx_packets >= before.rx_packets, "{what}: rx_packets");
    assert!(after.rx_bytes >= before.rx_bytes, "{what}: rx_bytes");
    assert!(after.tx_packets >= before.tx_packets, "{what}: tx_packets");
    assert!(after.tx_bytes >= before.tx_bytes, "{what}: tx_bytes");
    assert!(after.tx_dropped >= before.tx_dropped, "{what}: tx_dropped");
}

#[test]
fn stats_are_monotonic_and_count_traffic() {
    for backend in backends(2) {
        let s0 = backend.server.stats();
        let mut snapshots = vec![s0];
        for round in 0..3 {
            for q in 0..2 {
                send_to_queue(&backend, q, Bytes::from(vec![round as u8; 100]));
            }
            settle(&backend);
            let _ = rx_collect(&*backend.server, 0, 1, 32, backend.name);
            let _ = rx_collect(&*backend.server, 1, 1, 32, backend.name);
            snapshots.push(backend.server.stats());
        }
        for pair in snapshots.windows(2) {
            assert_monotonic(&pair[0], &pair[1], backend.name);
        }
        let last = snapshots.last().unwrap();
        assert_eq!(
            last.rx_packets - snapshots[0].rx_packets,
            6,
            "{}",
            backend.name
        );
        assert!(last.rx_bytes > snapshots[0].rx_bytes, "{}", backend.name);

        // TX side: replies from the server count on its stats once they
        // are on the wire. (The virtual NIC charges tx at drain time,
        // UDP at send time, so assert after the client received it.)
        let t0 = backend.server.stats();
        let reply = synthesize(
            backend.server.local_endpoint(0),
            backend.client.local_endpoint(0),
            Bytes::from_static(b"pong"),
        );
        assert!(backend.server.tx_push(0, reply), "{}", backend.name);
        let _ = rx_collect(&*backend.client, 0, 1, 32, backend.name);
        let t1 = backend.server.stats();
        assert_monotonic(&t0, &t1, backend.name);
        assert_eq!(t1.tx_packets - t0.tx_packets, 1, "{}", backend.name);
    }
}

#[test]
fn large_message_fragmentation_roundtrips_both_directions() {
    for backend in backends(2) {
        // Request direction: client fragments a large message, the
        // server reassembles it from RX bursts.
        let message: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let mut fragmenter = Fragmenter::new(7);
        let dst = backend.server.local_endpoint(1);
        let src = backend.client.local_endpoint(0);
        let mut burst: Vec<Packet> = fragmenter
            .fragment(&message)
            .into_iter()
            .map(|frag| synthesize(src, dst, frag))
            .collect();
        let n_frags = burst.len();
        assert!(n_frags > 100, "200 KB must fragment into many datagrams");
        assert_eq!(
            backend.client.tx_burst(0, &mut burst),
            n_frags,
            "{}: the whole fragment burst must be accepted",
            backend.name
        );
        assert!(burst.is_empty(), "{}: tx_burst drains", backend.name);

        let frags = rx_collect(&*backend.server, 1, n_frags, 32, backend.name);
        let mut reassembler = Reassembler::new(16);
        let mut complete = None;
        for pkt in frags {
            match reassembler.push(pkt.source_endpoint(), pkt.payload) {
                Reassembly::Complete(bytes) => complete = Some(bytes),
                Reassembly::Incomplete => {}
                other => panic!("{}: reassembly failed: {other:?}", backend.name),
            }
        }
        let complete = complete.unwrap_or_else(|| panic!("{}: never completed", backend.name));
        assert_eq!(
            &complete[..],
            &message[..],
            "{}: bytes survive",
            backend.name
        );

        // Reply direction: the server fragments back to the client.
        let reply_msg: Vec<u8> = (0..64_000u32).map(|i| (i % 13) as u8).collect();
        let mut burst: Vec<Packet> = fragmenter
            .fragment(&reply_msg)
            .into_iter()
            .map(|frag| synthesize(dst, src, frag))
            .collect();
        let n_frags = burst.len();
        assert_eq!(
            backend.server.tx_burst(1, &mut burst),
            n_frags,
            "{}",
            backend.name
        );
        let frags = rx_collect(&*backend.client, 0, n_frags, 32, backend.name);
        let mut reassembler = Reassembler::new(16);
        let mut complete = None;
        for pkt in frags {
            match reassembler.push(pkt.source_endpoint(), pkt.payload) {
                Reassembly::Complete(bytes) => complete = Some(bytes),
                Reassembly::Incomplete => {}
                other => panic!("{}: reply reassembly failed: {other:?}", backend.name),
            }
        }
        assert_eq!(
            &complete.expect("reply completes")[..],
            &reply_msg[..],
            "{}: reply bytes survive",
            backend.name
        );
    }
}

#[test]
fn held_payloads_survive_buffer_recycling() {
    // Received payloads are (on the UDP backends) windows into pooled
    // slots that recycle once dropped. A payload the application still
    // holds must never be clobbered by later receives — this is the
    // aliasing-safety contract of the zero-copy RX path, checked across
    // every backend so the pooled and unpooled worlds cannot drift.
    const WAVES: usize = 24;
    const PER_WAVE: usize = 32;
    for backend in backends(1) {
        for i in 0..PER_WAVE {
            send_to_queue(&backend, 0, Bytes::from(vec![i as u8; 64]));
        }
        settle(&backend);
        let held = rx_collect(&*backend.server, 0, PER_WAVE, 32, backend.name);

        // Churn far more traffic than any pool/arena holds slots,
        // dropping each wave immediately so slots recycle aggressively.
        for wave in 0..WAVES {
            for i in 0..PER_WAVE {
                send_to_queue(&backend, 0, Bytes::from(vec![(128 + wave + i) as u8; 64]));
            }
            settle(&backend);
            let churn = rx_collect(&*backend.server, 0, PER_WAVE, 32, backend.name);
            drop(churn);
        }

        for (i, pkt) in held.iter().enumerate() {
            assert_eq!(
                &pkt.payload[..],
                &[i as u8; 64][..],
                "{}: a held payload was clobbered by buffer recycling",
                backend.name
            );
        }
    }
}

#[test]
fn tx_frames_wire_equal_to_contiguous_encode_on_every_backend() {
    // The scatter-gather reply path must be invisible on the wire: for
    // every backend (virtual + both UDP syscall paths) and every reply
    // size class — empty, small, exactly one full chunk, barely two
    // fragments, many fragments — sending the reply as encode_frame →
    // fragment_frame → tx_frames must deliver byte-for-byte the
    // datagram payloads of the old contiguous encode → fragment path.
    let header_room = minos_wire::message::MSG_HEADER_LEN;
    let sizes = [
        0usize,
        17,
        MAX_FRAG_CHUNK - header_room, // largest single-fragment reply
        MAX_FRAG_CHUNK - header_room + 1, // smallest two-fragment reply
        3 * MAX_FRAG_CHUNK + 123,
    ];
    for backend in backends(1) {
        let src = backend.server.local_endpoint(0);
        let dst = backend.client.local_endpoint(0);
        for (i, &size) in sizes.iter().enumerate() {
            let msg = Message {
                client_id: 9,
                request_id: 1000 + i as u64,
                client_ts_ns: 424_242,
                body: Body::GetReply {
                    status: ReplyStatus::Ok,
                    key: i as u64,
                    value: Bytes::from((0..size).map(|b| (b % 251) as u8).collect::<Vec<u8>>()),
                },
            };
            let msg_id = 77_000 + i as u64;
            // Reference: the contiguous path's datagram payloads.
            let expected = fragment_with_id(msg_id, &msg.encode());
            // Under test: the scatter-gather path through the backend.
            let mut burst: Vec<TxPacket> = fragment_frame_with_id(msg_id, &msg.encode_frame())
                .into_iter()
                .map(|frag| synthesize_frame(src, dst, frag))
                .collect();
            assert_eq!(burst.len(), expected.len(), "{}", backend.name);
            assert_eq!(
                backend.server.tx_frames(0, &mut burst),
                expected.len(),
                "{}: the whole frame burst must be accepted",
                backend.name
            );
            let got = rx_collect(&*backend.client, 0, expected.len(), 32, backend.name);
            for (pkt, want) in got.iter().zip(&expected) {
                assert_eq!(
                    &pkt.payload[..],
                    &want[..],
                    "{}: size {size} must be wire-identical to the contiguous encode",
                    backend.name
                );
            }
            // And the payloads survive intact end to end: reassemble +
            // decode recovers the original reply.
            let mut reassembler = Reassembler::new(8);
            let mut complete = None;
            for pkt in got {
                if let Reassembly::Complete(bytes) =
                    reassembler.push(pkt.source_endpoint(), pkt.payload)
                {
                    complete = Some(bytes);
                }
            }
            let decoded =
                Message::decode(complete.expect("reply reassembles")).expect("reply decodes");
            assert_eq!(decoded, msg, "{}: payload integrity", backend.name);
        }
    }
}

#[test]
fn coalesced_multi_request_burst_fans_out_across_queues() {
    // The loadgen's coalesced send path pushes many *independent*
    // requests — addressed to different RX queues — through a single
    // tx_burst. Every backend must route each datagram by its own
    // destination metadata and deliver all of them, in per-queue order.
    const QUEUES: u16 = 4;
    const PER_QUEUE: usize = 8;
    for backend in backends(QUEUES) {
        let src = backend.client.local_endpoint(0);
        let mut burst: Vec<Packet> = (0..PER_QUEUE)
            .flat_map(|i| (0..QUEUES).map(move |q| (i, q)))
            .map(|(i, q)| {
                synthesize(
                    src,
                    backend.server.local_endpoint(q),
                    Bytes::from(vec![q as u8 * 32 + i as u8; 40]),
                )
            })
            .collect();
        let total = burst.len();
        assert_eq!(
            backend.client.tx_burst(0, &mut burst),
            total,
            "{}: the whole coalesced burst must be accepted",
            backend.name
        );
        settle(&backend);
        for q in 0..QUEUES {
            let got = rx_collect(&*backend.server, q, PER_QUEUE, 32, backend.name);
            for (i, pkt) in got.iter().enumerate() {
                assert_eq!(
                    &pkt.payload[..],
                    &[q as u8 * 32 + i as u8; 40][..],
                    "{}: queue {q} must receive its requests in order",
                    backend.name
                );
            }
        }
    }
}
