//! Loopback stress: socket-buffer pressure, honest loss accounting,
//! retry convergence, and the syscall economics of the batched path.
//!
//! The paper only reports zero-loss runs (§5.4) and leaves
//! retransmission to the client (§4.1). These tests pin down both
//! contracts against a real multi-queue UDP server: without retries a
//! lossy run must be reported as lossy; with timeout-and-retry enabled
//! the same pressure must converge to zero loss.

use minos_core::client::{Client, RetryPolicy};
use minos_core::server::{MinosServer, ServerConfig};
use minos_net::{Transport, UdpConfig, UdpTransport};
use minos_wire::packet::{synthesize, Packet};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const VALUE_LEN: usize = 1_200;

/// Disjoint, PID-salted port ranges per bound server: these are
/// `SO_REUSEPORT` sockets, so a bind over another live test server —
/// in this process or a concurrently running suite — would *succeed*
/// and split its traffic instead of failing the probe.
static PORTS: minos_net::testport::TestPorts = minos_net::testport::TestPorts::new(21_000, 24_900);

fn alloc_base(span: u16) -> u16 {
    PORTS.alloc(span)
}

fn bind_server(num_queues: u16) -> Arc<UdpTransport> {
    loop {
        let base = alloc_base(num_queues);
        if let Ok(t) = UdpTransport::bind(UdpConfig::loopback(base, num_queues)) {
            return Arc::new(t);
        }
    }
}

/// A client over its own UDP socket with `sockbuf` bytes of buffering.
fn udp_client(
    server: &UdpTransport,
    queues: u16,
    id: u16,
    sockbuf: usize,
    retry: Option<RetryPolicy>,
) -> Client {
    let transport = Arc::new(
        UdpTransport::bind_client_with(UdpConfig {
            socket_buffer_bytes: sockbuf,
            ..UdpConfig::client(Ipv4Addr::LOCALHOST)
        })
        .unwrap(),
    );
    let endpoint = transport.local_endpoint(0);
    let mut client = Client::with_transport(
        transport as Arc<dyn Transport>,
        endpoint,
        server.local_endpoint(0),
        queues,
        id,
        0xACE0 ^ u64::from(id),
    );
    if let Some(policy) = retry {
        client = client.with_retry(policy);
    }
    client
}

/// Preloads `keys` keys of `VALUE_LEN` bytes through a well-buffered
/// client so GET replies have real payloads to overflow buffers with.
fn preload(server: &Arc<UdpTransport>, queues: u16, keys: u64) {
    let mut loader = udp_client(server, queues, 90, 4 << 20, None);
    for key in 0..keys {
        loader.send_put(key, &vec![(key % 251) as u8; VALUE_LEN], false);
        while loader.totals().outstanding() > 64 {
            loader.poll();
        }
    }
    assert!(
        loader.drain(Duration::from_secs(30)),
        "preload must complete losslessly"
    );
}

/// Blasts `n` GETs without polling, then parks long enough for the
/// replies to flood the client's receive buffer. With a minimum-size
/// buffer (the kernel clamps `socket_buffer_bytes: 1` up to its floor,
/// a few KiB) the overwhelming majority of replies are dropped.
fn blast_unpolled(client: &mut Client, n: u64, keys: u64) {
    for i in 0..n {
        client.send_get(i % keys, false);
    }
    std::thread::sleep(Duration::from_secs(2));
}

#[test]
fn no_retry_mode_reports_loss_honestly() {
    const QUEUES: u16 = 2;
    const KEYS: u64 = 64;
    const N: u64 = 400;
    let transport = bind_server(QUEUES);
    let mut server = MinosServer::start_with_transport(
        ServerConfig::for_test(QUEUES as usize, 10_000),
        Arc::clone(&transport),
    );
    preload(&transport, QUEUES, KEYS);

    let mut client = udp_client(&transport, QUEUES, 1, 1, None);
    blast_unpolled(&mut client, N, KEYS);

    // Whatever survived in the tiny buffer completes; the rest is gone
    // and, without retries, must stay visibly outstanding.
    let drained = client.drain(Duration::from_secs(3));
    let totals = client.totals();
    assert_eq!(totals.sent, N);
    assert_eq!(
        totals.completed + totals.outstanding(),
        N,
        "accounting must balance"
    );
    assert!(
        !drained && totals.outstanding() > 0,
        "a minimum-size receive buffer cannot absorb {N} x {VALUE_LEN}B replies \
         (completed {}, outstanding {})",
        totals.completed,
        totals.outstanding()
    );
    assert_eq!(totals.retransmits, 0, "no-retry mode never resends");
    server.shutdown();
}

#[test]
fn retry_mode_converges_to_zero_loss_under_the_same_pressure() {
    const QUEUES: u16 = 2;
    const KEYS: u64 = 64;
    const N: u64 = 256;
    let transport = bind_server(QUEUES);
    let mut server = MinosServer::start_with_transport(
        ServerConfig::for_test(QUEUES as usize, 10_000),
        Arc::clone(&transport),
    );
    preload(&transport, QUEUES, KEYS);

    let policy = RetryPolicy::new(Duration::from_millis(50), 1_000);
    let mut client = udp_client(&transport, QUEUES, 2, 1, Some(policy));
    blast_unpolled(&mut client, N, KEYS);

    // Actively polling now keeps the tiny buffer drained, so each retry
    // round completes a slice of the outstanding set.
    let deadline = Instant::now() + Duration::from_secs(120);
    while client.totals().outstanding() > 0 {
        assert!(
            Instant::now() < deadline,
            "retries did not converge: {} outstanding after {} retransmits",
            client.totals().outstanding(),
            client.totals().retransmits
        );
        client.poll();
    }
    let totals = client.totals();
    assert_eq!(totals.completed, N, "every request eventually completed");
    assert!(
        totals.retransmits > 0,
        "the lossy burst must have forced retransmissions"
    );
    server.shutdown();
}

#[test]
fn many_client_threads_converge_against_a_multi_queue_server() {
    const QUEUES: u16 = 2;
    const CLIENTS: u16 = 4;
    const KEYS: u64 = 64;
    const OPS: u64 = 400;
    let transport = bind_server(QUEUES);
    let mut server = MinosServer::start_with_transport(
        ServerConfig::for_test(QUEUES as usize, 10_000),
        Arc::clone(&transport),
    );
    preload(&transport, QUEUES, KEYS);

    // Small client buffers + unpaced sending forces buffer pressure;
    // the retry policy must still converge every thread to zero loss.
    let policy = RetryPolicy::new(Duration::from_millis(100), 1_000);
    let reports: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let transport = &transport;
                scope.spawn(move || {
                    let mut client = udp_client(transport, QUEUES, 10 + c, 64 << 10, Some(policy));
                    for i in 0..OPS {
                        // 1:7 PUT:GET mix over the preloaded keys.
                        let key = (i * u64::from(c + 1)) % KEYS;
                        if i % 8 == 0 {
                            client.send_put(key, &vec![c as u8; VALUE_LEN], false);
                        } else {
                            client.send_get(key, false);
                        }
                        // Bursty but bounded: a shallow window keeps the
                        // run finite while still slamming the buffers.
                        while client.totals().outstanding() > 128 {
                            client.poll();
                        }
                    }
                    let deadline = Instant::now() + Duration::from_secs(120);
                    while client.totals().outstanding() > 0 && Instant::now() < deadline {
                        client.poll();
                    }
                    let t = client.totals();
                    (t.completed, t.outstanding(), t.retransmits)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (c, (completed, outstanding, retransmits)) in reports.iter().enumerate() {
        assert_eq!(
            *outstanding, 0,
            "client {c}: {outstanding} lost after {retransmits} retransmits"
        );
        assert_eq!(*completed, OPS, "client {c} completed everything");
    }
    let stats = transport.stats();
    assert!(stats.rx_packets >= u64::from(CLIENTS) * OPS);
    server.shutdown();
}

/// The acceptance demonstration: on loopback, the batched path moves
/// the same traffic in far fewer syscalls than the per-datagram path at
/// equal (zero) loss, and its throughput is printed for comparison.
#[test]
fn batched_path_cuts_syscalls_at_equal_loss() {
    const N: usize = 4_096;
    const CHUNK: usize = 256;
    let mut measured = Vec::new();
    for batch in [32usize, 1] {
        let server = loop {
            let config = UdpConfig {
                batch,
                ..UdpConfig::loopback(alloc_base(1), 1)
            };
            if let Ok(t) = UdpTransport::bind(config) {
                break t;
            }
        };
        let client = UdpTransport::bind_client_with(UdpConfig {
            batch,
            ..UdpConfig::client(Ipv4Addr::LOCALHOST)
        })
        .unwrap();

        let src = client.local_endpoint(0);
        let dst = server.local_endpoint(0);
        let start = Instant::now();
        let mut received = Vec::with_capacity(N);
        // Interleave sends and drains so the receive buffer never
        // overflows: equal loss (zero) on both paths by construction.
        for chunk_base in (0..N).step_by(CHUNK) {
            let mut burst: Vec<Packet> = (chunk_base..chunk_base + CHUNK)
                .map(|i| synthesize(src, dst, bytes::Bytes::from(vec![i as u8; 64])))
                .collect();
            assert_eq!(client.tx_burst(0, &mut burst), CHUNK, "no tx loss");
            let deadline = Instant::now() + Duration::from_secs(10);
            while received.len() < chunk_base + CHUNK {
                assert!(Instant::now() < deadline, "rx stalled");
                server.rx_burst(0, &mut received, CHUNK);
            }
        }
        let elapsed = start.elapsed();
        assert_eq!(received.len(), N, "zero loss");
        let io = server.io_stats();
        assert_eq!(io.rx_packets, N as u64);
        println!(
            "batch={batch:>2}: {N} datagrams in {:>9.3?} ({:>7.0} pkts/s), {} rx syscalls ({:.1} pkts/syscall)",
            elapsed,
            N as f64 / elapsed.as_secs_f64(),
            io.rx_syscalls,
            io.rx_packets as f64 / io.rx_syscalls as f64,
        );
        measured.push((batch, elapsed, io));
    }
    let (_, _, batched_io) = &measured[0];
    let (_, _, singly_io) = &measured[1];
    if batched_io.batched {
        assert!(
            batched_io.rx_syscalls * 4 <= batched_io.rx_packets,
            "recvmmsg must average >= 4 datagrams per syscall under backlog \
             ({} syscalls for {} packets)",
            batched_io.rx_syscalls,
            batched_io.rx_packets
        );
    }
    assert!(
        singly_io.rx_syscalls >= singly_io.rx_packets,
        "the per-datagram path pays at least one syscall per packet"
    );
}

/// The zero-allocation acceptance gate: under sustained backlog the RX
/// pool serves (essentially) every datagram from the slab — a hit rate
/// of at least 99% — and once every received payload is dropped the
/// outstanding gauge returns to zero: no slot leaks across heavy
/// churn, on both the batched and the per-datagram receive path.
#[test]
fn rx_pool_sustains_backlog_without_allocating() {
    const N: usize = 8_192;
    const CHUNK: usize = 256;
    for batch in [32usize, 1] {
        let server = loop {
            let config = UdpConfig {
                batch,
                ..UdpConfig::loopback(alloc_base(1), 1)
            };
            if let Ok(t) = UdpTransport::bind(config) {
                break t;
            }
        };
        let client = UdpTransport::bind_client_with(UdpConfig {
            batch,
            ..UdpConfig::client(Ipv4Addr::LOCALHOST)
        })
        .unwrap();

        let src = client.local_endpoint(0);
        let dst = server.local_endpoint(0);
        // Interleave sends and drains: the receiver always has a backlog
        // of a full chunk, and every received payload is dropped at the
        // end of its chunk — steady-state churn through the slab.
        for chunk_base in (0..N).step_by(CHUNK) {
            let mut burst: Vec<Packet> = (chunk_base..chunk_base + CHUNK)
                .map(|i| synthesize(src, dst, bytes::Bytes::from(vec![i as u8; 128])))
                .collect();
            assert_eq!(client.tx_burst(0, &mut burst), CHUNK, "no tx loss");
            let mut received = Vec::with_capacity(CHUNK);
            let deadline = Instant::now() + Duration::from_secs(10);
            while received.len() < CHUNK {
                assert!(Instant::now() < deadline, "rx stalled (batch {batch})");
                server.rx_burst(0, &mut received, CHUNK);
            }
            for (i, pkt) in received.iter().enumerate() {
                assert_eq!(&pkt.payload[..], &[(chunk_base + i) as u8; 128][..]);
            }
            // `received` drops here: all slots return to the slab.
        }

        let io = server.io_stats();
        assert_eq!(io.rx_packets, N as u64);
        assert!(
            io.pool_hit_rate() >= 0.99,
            "batch {batch}: steady-state RX must be allocation-free \
             ({} hits, {} misses = {:.4} hit rate)",
            io.pool_hits,
            io.pool_misses,
            io.pool_hit_rate()
        );
        assert_eq!(
            io.pool_outstanding, 0,
            "batch {batch}: every dropped payload must return its slot"
        );
    }
}

/// The scatter-gather acceptance gate: GET replies of every size class
/// — small single-datagram and large fragmented — reach the wire with
/// **zero value-byte copies** on both UDP syscall paths. A full Minos
/// server serves real GETs over loopback; afterwards the server
/// transport's `tx_copied_bytes` gauge (which counts every segment byte
/// the TX path had to gather) must still read zero: the value went from
/// the store's mempool into the kernel's iovec gather list untouched.
#[test]
fn get_replies_are_zero_copy_on_both_syscall_paths() {
    const QUEUES: u16 = 2;
    const SMALL_KEYS: u64 = 32;
    // Large values fragment into ~5 datagrams each, so the reply path
    // exercises multi-fragment frames with sliced value segments.
    const LARGE_LEN: usize = 7_000;
    const LARGE_KEYS: u64 = 8;
    for batch in [32usize, 1] {
        let transport = loop {
            let config = UdpConfig {
                batch,
                ..UdpConfig::loopback(alloc_base(QUEUES), QUEUES)
            };
            if let Ok(t) = UdpTransport::bind(config) {
                break Arc::new(t);
            }
        };
        let mut server = MinosServer::start_with_transport(
            ServerConfig::for_test(QUEUES as usize, 10_000),
            Arc::clone(&transport),
        );

        let mut client = udp_client(&transport, QUEUES, 42, 4 << 20, None);
        for key in 0..SMALL_KEYS {
            client.send_put(key, &vec![(key % 251) as u8; VALUE_LEN], false);
            while client.totals().outstanding() > 16 {
                client.poll();
            }
        }
        for key in 0..LARGE_KEYS {
            client.send_put(1_000 + key, &vec![(key % 251) as u8; LARGE_LEN], true);
            while client.totals().outstanding() > 4 {
                client.poll();
            }
        }
        assert!(
            client.drain(Duration::from_secs(30)),
            "preload lost replies"
        );

        // GET-heavy measured phase over both size classes.
        let mut completions = 0u64;
        for i in 0..400u64 {
            if i % 4 == 3 {
                client.send_get(1_000 + (i % LARGE_KEYS), true);
            } else {
                client.send_get(i % SMALL_KEYS, false);
            }
            while client.totals().outstanding() > 32 {
                completions += client.poll().len() as u64;
            }
        }
        assert!(
            client.drain(Duration::from_secs(30)),
            "batch {batch}: GET replies lost"
        );
        completions += client.poll().len() as u64;
        let _ = completions;

        let io = transport.io_stats();
        assert!(io.tx_packets > 400, "replies actually went out");
        if cfg!(target_os = "linux") {
            // Both syscall paths are scatter-gather on Linux (sendmmsg
            // batched, sendmsg singly): not one value byte may have
            // been copied by the transport.
            assert_eq!(
                io.tx_copied_bytes, 0,
                "batch {batch}: the reply path copied value bytes"
            );
            assert_eq!(transport.stats().tx_copied_bytes, 0);
        }
        server.shutdown();
    }
}

/// The streaming-ingest acceptance gate (the ROADMAP "RX-pool misses
/// under large-PUT reassembly" close-out): many concurrently
/// reassembling large PUTs must NOT accumulate pooled RX buffers. Each
/// fragment's slot is released the moment its chunk is streamed into
/// the store-mempool reservation, so with fragments arriving paced
/// (every in-flight message permanently open, none complete until the
/// very end) the server's `outstanding` gauge stays bounded by the
/// in-flight burst — while the old hold-until-complete reassembly
/// would retain every delivered fragment of every open partial
/// (~hundreds here). The steady-state hit rate stays ≥ 99 % and every
/// slot returns after the run. Exercised on both UDP syscall paths.
#[test]
fn fragmented_puts_keep_rx_pool_bounded() {
    use minos_wire::frag::fragment_with_id;
    use minos_wire::message::{Body, Message};

    const QUEUES: u16 = 2;
    const MESSAGES: u64 = 6;
    const LARGE_LEN: usize = 100_000; // 69 fragments per PUT
                                      // Fragments sent per message per pacing round. Peak pool occupancy
                                      // on the streaming path is O(one round) = 6 x 8 = 48 delivered
                                      // buffers (plus scheduling slack); the old reassembler would hold
                                      // all ~414 delivered fragments of the 6 open partials at once.
    const PACE: usize = 8;
    const OUTSTANDING_BOUND: u64 = 192;
    for batch in [32usize, 1] {
        let transport = loop {
            let config = UdpConfig {
                batch,
                ..UdpConfig::loopback(alloc_base(QUEUES), QUEUES)
            };
            if let Ok(t) = UdpTransport::bind(config) {
                break Arc::new(t);
            }
        };
        let mut server = MinosServer::start_with_transport(
            ServerConfig::for_test(QUEUES as usize, 10_000),
            Arc::clone(&transport),
        );
        let client = UdpTransport::bind_client(Ipv4Addr::LOCALHOST).unwrap();
        let src = client.local_endpoint(0);

        // Pre-fragment 6 large PUTs, one per key, distinct msg ids.
        let fragment_sets: Vec<Vec<bytes::Bytes>> = (0..MESSAGES)
            .map(|m| {
                let msg = Message {
                    client_id: 1,
                    request_id: m,
                    client_ts_ns: 0,
                    body: Body::Put {
                        key: 5_000 + m,
                        value: bytes::Bytes::from(vec![(5_000 + m) as u8 % 251; LARGE_LEN]),
                        ttl_ms: 0,
                    },
                };
                fragment_with_id(0xF00 + m, &msg.encode())
            })
            .collect();
        let per_message = fragment_sets[0].len();
        assert!(per_message * MESSAGES as usize > OUTSTANDING_BOUND as usize * 2);

        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let max_outstanding = std::thread::scope(|scope| {
            // Sampler: tracks the high-water mark of delivered pooled
            // buffers while the interleaved reassemblies are open.
            let sampler = {
                let transport = Arc::clone(&transport);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut max = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        max = max.max(transport.io_stats().pool_outstanding);
                        std::thread::sleep(Duration::from_micros(100));
                    }
                    max
                })
            };

            // Pace rounds: 8 fragments of EVERY message per round, so
            // all 6 reassemblies stay open until the last round.
            for round in 0..per_message.div_ceil(PACE) {
                let mut burst: Vec<Packet> = Vec::with_capacity(PACE * MESSAGES as usize);
                for (m, frags) in fragment_sets.iter().enumerate() {
                    let dst = transport.local_endpoint((m % QUEUES as usize) as u16);
                    let lo = round * PACE;
                    for frag in &frags[lo.min(frags.len())..(lo + PACE).min(frags.len())] {
                        burst.push(synthesize(src, dst, frag.clone()));
                    }
                }
                let n = burst.len();
                assert_eq!(client.tx_burst(0, &mut burst), n, "no tx loss");
                std::thread::sleep(Duration::from_millis(1));
            }

            // All fragments sent: every message must now commit.
            let store = server.store();
            let deadline = Instant::now() + Duration::from_secs(30);
            for m in 0..MESSAGES {
                while store.get(5_000 + m).is_none() {
                    assert!(
                        Instant::now() < deadline,
                        "batch {batch}: PUT {m} never committed"
                    );
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            sampler.join().unwrap()
        });

        let io = transport.io_stats();
        assert!(
            max_outstanding <= OUTSTANDING_BOUND,
            "batch {batch}: streaming reassembly must not hold fragments \
             (peak {max_outstanding} pooled buffers > {OUTSTANDING_BOUND} \
             for {} delivered fragments)",
            per_message * MESSAGES as usize,
        );
        assert!(
            io.pool_hit_rate() >= 0.99,
            "batch {batch}: fragmented-PUT ingest must stay allocation-free \
             ({} hits, {} misses = {:.4} hit rate)",
            io.pool_hits,
            io.pool_misses,
            io.pool_hit_rate()
        );
        // Values arrived intact through the streaming path, nothing was
        // evicted, and once the engine quiesces every slot is home.
        let store = server.store();
        for m in 0..MESSAGES {
            let v = store.get(5_000 + m).expect("stored");
            assert_eq!(v.len(), LARGE_LEN);
            assert!(v.iter().all(|&b| b == (5_000 + m) as u8 % 251));
        }
        assert_eq!(server.counters().reassembly_evictions, 0);
        server.drain(Duration::from_secs(10));
        assert_eq!(
            transport.io_stats().pool_outstanding,
            0,
            "batch {batch}: every fragment slot must be back in the slab"
        );
        server.shutdown();
    }
}

/// Pool exhaustion is graceful: with a deliberately tiny slab and every
/// payload held alive, overflow takes fall back to plain allocations
/// (counted as misses), the delivered bytes are identical either way,
/// and dropping the payloads brings the outstanding gauge back to zero.
#[test]
fn rx_pool_exhaustion_falls_back_and_recovers() {
    const SLOTS: usize = 8;
    const N: usize = 64;
    let server = loop {
        let config = UdpConfig {
            pool_slots: SLOTS,
            ..UdpConfig::loopback(alloc_base(1), 1)
        };
        if let Ok(t) = UdpTransport::bind(config) {
            break t;
        }
    };
    let client = UdpTransport::bind_client(Ipv4Addr::LOCALHOST).unwrap();
    let src = client.local_endpoint(0);
    let dst = server.local_endpoint(0);

    let mut burst: Vec<Packet> = (0..N)
        .map(|i| synthesize(src, dst, bytes::Bytes::from(vec![i as u8; 200])))
        .collect();
    assert_eq!(client.tx_burst(0, &mut burst), N, "no tx loss");

    // Hold every received packet so no slot can recycle.
    let mut held = Vec::with_capacity(N);
    let deadline = Instant::now() + Duration::from_secs(10);
    while held.len() < N {
        assert!(Instant::now() < deadline, "rx stalled");
        server.rx_burst(0, &mut held, N);
    }
    let io = server.io_stats();
    assert!(
        io.pool_misses > 0,
        "holding {N} payloads over a {SLOTS}-slot pool must exhaust it"
    );
    assert_eq!(io.pool_outstanding, N as u64);
    // Fallback-allocated payloads are byte-identical to pooled ones.
    for (i, pkt) in held.iter().enumerate() {
        assert_eq!(&pkt.payload[..], &[i as u8; 200][..]);
    }
    drop(held);
    assert_eq!(
        server.io_stats().pool_outstanding,
        0,
        "dropping the payloads must return every slot"
    );
}
