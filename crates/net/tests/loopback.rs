//! Loopback integration: the full Minos engine serving *real* UDP
//! traffic over 127.0.0.1 through [`UdpTransport`], driven by a
//! `minos-loadgen`-style client. Asserts the paper's zero-loss contract
//! plus GET/PUT round-trips for both small items and fragmented large
//! items.

use minos_core::client::Client;
use minos_core::server::{MinosServer, ServerConfig};
use minos_net::{Transport, UdpConfig, UdpTransport};
use minos_wire::message::{OpKind, ReplyStatus};
use minos_wire::MAX_FRAG_CHUNK;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

/// Binds a server transport on a disjoint, PID-salted port range.
/// Ranges are handed out by an allocator rather than probed: these are
/// `SO_REUSEPORT` sockets, so binding over another live test server —
/// in this process or a concurrently running suite — would *succeed*
/// and split its traffic instead of failing.
fn bind_server(num_queues: u16) -> Arc<UdpTransport> {
    static PORTS: minos_net::testport::TestPorts =
        minos_net::testport::TestPorts::new(42_000, 44_900);
    loop {
        let base = PORTS.alloc(num_queues.max(8));
        if let Ok(t) = UdpTransport::bind(UdpConfig::loopback(base, num_queues)) {
            return Arc::new(t);
        }
    }
}

fn udp_client(server: &UdpTransport, queues: u16, id: u16, seed: u64) -> Client {
    let transport = Arc::new(UdpTransport::bind_client(Ipv4Addr::LOCALHOST).unwrap());
    let endpoint = transport.local_endpoint(0);
    Client::with_transport(
        transport as Arc<dyn Transport>,
        endpoint,
        server.local_endpoint(0),
        queues,
        id,
        seed,
    )
}

#[test]
fn small_item_roundtrip_over_real_udp() {
    const CORES: u16 = 2;
    let transport = bind_server(CORES);
    let mut server = MinosServer::start_with_transport(
        ServerConfig::for_test(CORES as usize, 10_000),
        Arc::clone(&transport),
    );
    let mut client = udp_client(&transport, CORES, 1, 7);

    client.send_put(42, b"hello over the real wire", false);
    assert!(client.drain(Duration::from_secs(10)), "PUT reply lost");

    client.send_get(42, false);
    let completions = {
        assert!(client.drain(Duration::from_secs(10)), "GET reply lost");
        client.poll(); // flush any stragglers (there must be none)
        client.totals()
    };
    assert_eq!(completions.completed, 2);
    assert_eq!(completions.errors, 0, "both replies must be Ok");
    assert_eq!(completions.outstanding(), 0, "zero loss");

    // The value really is in the store at full fidelity.
    let stored = server.store().get(42).expect("item stored");
    assert_eq!(&stored[..], b"hello over the real wire");
    server.shutdown();
}

#[test]
fn fragmented_large_items_roundtrip_over_real_udp() {
    const CORES: u16 = 4;
    let transport = bind_server(CORES);
    let mut server = MinosServer::start_with_transport(
        ServerConfig::for_test(CORES as usize, 10_000),
        Arc::clone(&transport),
    );
    let mut client = udp_client(&transport, CORES, 2, 11);

    // Large enough to fragment into dozens of real datagrams each.
    let sizes = [MAX_FRAG_CHUNK + 1, 50_000, 200_000];
    for (i, &size) in sizes.iter().enumerate() {
        let value = vec![(i as u8).wrapping_add(7); size];
        client.send_put(1000 + i as u64, &value, true);
    }
    assert!(
        client.drain(Duration::from_secs(30)),
        "large PUT replies lost ({} outstanding)",
        client.totals().outstanding()
    );

    for (i, _) in sizes.iter().enumerate() {
        client.send_get(1000 + i as u64, true);
    }
    let mut ok_get_replies = 0;
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while ok_get_replies < sizes.len() {
        assert!(
            std::time::Instant::now() < deadline,
            "large GET replies lost ({} outstanding)",
            client.totals().outstanding()
        );
        for c in client.poll() {
            assert_eq!(c.kind, OpKind::GetReply);
            assert_eq!(c.status, ReplyStatus::Ok);
            assert!(c.large);
            ok_get_replies += 1;
        }
    }

    let totals = client.totals();
    assert_eq!(totals.completed, 2 * sizes.len() as u64);
    assert_eq!(totals.errors, 0);
    assert_eq!(totals.outstanding(), 0, "zero loss");

    // Byte-for-byte fidelity through fragmentation + reassembly, twice
    // (request path into the store, reply path back out was length- and
    // status-checked above).
    for (i, &size) in sizes.iter().enumerate() {
        let stored = server.store().get(1000 + i as u64).expect("stored");
        assert_eq!(stored.len(), size);
        assert!(stored.iter().all(|&b| b == (i as u8).wrapping_add(7)));
    }
    server.shutdown();
}

#[test]
fn mixed_burst_completes_with_zero_loss() {
    const CORES: u16 = 4;
    let transport = bind_server(CORES);
    let mut server = MinosServer::start_with_transport(
        ServerConfig::for_test(CORES as usize, 50_000),
        Arc::clone(&transport),
    );
    let mut client = udp_client(&transport, CORES, 3, 23);

    // A loadgen-style mixed phase: mostly-small PUT/GET traffic with
    // periodic large items sprinkled in, paced by periodic polls.
    let n_keys = 400u64;
    for key in 0..n_keys {
        let size = if key % 50 == 0 {
            20_000
        } else {
            64 + (key as usize % 900)
        };
        let value = vec![(key % 251) as u8; size];
        client.send_put(key, &value, size > MAX_FRAG_CHUNK);
        if key % 16 == 0 {
            while client.totals().outstanding() > 64 {
                client.poll();
            }
        }
    }
    assert!(
        client.drain(Duration::from_secs(30)),
        "PUT phase lost replies"
    );

    for key in 0..n_keys {
        client.send_get(key, false);
        if key % 16 == 0 {
            while client.totals().outstanding() > 64 {
                client.poll();
            }
        }
    }
    assert!(
        client.drain(Duration::from_secs(30)),
        "GET phase lost replies"
    );

    let totals = client.totals();
    assert_eq!(totals.sent, 2 * n_keys);
    assert_eq!(totals.completed, 2 * n_keys);
    assert_eq!(totals.errors, 0);
    assert_eq!(totals.outstanding(), 0, "zero loss across the whole run");
    assert!(client.latency().quantiles().is_some());

    // The server observed real datagrams, not virtual ones.
    let stats = transport.stats();
    assert!(stats.rx_packets >= 2 * n_keys);
    assert!(stats.tx_packets >= 2 * n_keys);
    server.shutdown();
}
