//! Property tests for [`FaultTransport`] determinism: the same seed and
//! the same per-queue packet schedule must produce the same fault
//! decisions — delivered packets, delivered order, and fault counters —
//! regardless of batch geometry. This is the contract that makes a
//! chaos CI failure seen on the `recvmmsg`/`sendmmsg` path reproduce
//! under `--batch 1` (and vice versa): both syscall paths present
//! packets in arrival order, and arrival order is the only input the
//! fault pipeline reads.

use bytes::Bytes;
use minos_net::{FaultProfile, FaultTransport, Transport, TransportStats};
use minos_wire::packet::{synthesize, synthesize_frame, Endpoint, Packet, TxPacket};
use minos_wire::TxFrame;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

const QUEUES: u16 = 2;

/// An in-memory inner transport with a scripted RX ring per queue and a
/// capture buffer for everything forwarded on TX — so the proptest
/// controls the exact packet schedule the fault pipeline sees.
struct Scripted {
    rx: Vec<Mutex<VecDeque<Packet>>>,
    tx: Vec<Mutex<Vec<Bytes>>>,
}

impl Scripted {
    fn new() -> Self {
        Scripted {
            rx: (0..QUEUES).map(|_| Mutex::new(VecDeque::new())).collect(),
            tx: (0..QUEUES).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    fn endpoint(queue: u16) -> Endpoint {
        Endpoint {
            mac: minos_wire::MacAddr([2, 0, 0, 0, 0, queue as u8]),
            ip: u32::from_be_bytes([127, 0, 0, 1]),
            port: 7000 + queue,
        }
    }

    fn load(&self, queue: u16, pkts: Vec<Packet>) {
        self.rx[queue as usize].lock().unwrap().extend(pkts);
    }

    fn forwarded(&self, queue: u16) -> Vec<Bytes> {
        self.tx[queue as usize].lock().unwrap().clone()
    }

    fn rx_remaining(&self, queue: u16) -> usize {
        self.rx[queue as usize].lock().unwrap().len()
    }
}

impl Transport for Scripted {
    fn num_queues(&self) -> u16 {
        QUEUES
    }

    fn rx_burst(&self, queue: u16, out: &mut Vec<Packet>, max: usize) -> usize {
        let mut ring = self.rx[queue as usize].lock().unwrap();
        let n = max.min(ring.len());
        out.extend(ring.drain(..n));
        n
    }

    fn tx_frames(&self, queue: u16, frames: &mut Vec<TxPacket>) -> usize {
        let mut sink = self.tx[queue as usize].lock().unwrap();
        let n = frames.len();
        for f in frames.drain(..) {
            sink.push(f.frame.to_contiguous().0);
        }
        n
    }

    fn local_endpoint(&self, queue: u16) -> Endpoint {
        Scripted::endpoint(queue)
    }

    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }
}

/// Payload for message `i` on queue `q`: unique, so drops/dups/reorder
/// are all detectable in the delivered stream.
fn payload(q: u16, i: usize) -> Bytes {
    let mut v = vec![0u8; 8];
    v[..2].copy_from_slice(&q.to_be_bytes());
    v[2..6].copy_from_slice(&(i as u32).to_be_bytes());
    Bytes::from(v)
}

/// A profile with every count-domain fault dialed up and the quiescence
/// grace pushed far out, so release decisions are purely count-based
/// within the test run.
fn chaos_profile(seed: u64, drop: f64, dup: f64, reorder: u32, burst: u32) -> FaultProfile {
    let mut p = FaultProfile::parse(&format!(
        "drop={drop},dup={dup},reorder={reorder},burst={burst},seed={seed},reorder_hold_us=60000000",
    ))
    .expect("valid profile");
    p.rx.delay_us = 0;
    p.tx.delay_us = 0;
    p
}

/// Runs `schedule` through a fresh FaultTransport, pulling RX in chunks
/// of `rx_max` — the batch-geometry knob. Returns the delivered
/// per-queue payload streams plus the fault counters.
fn run_rx(
    profile: FaultProfile,
    schedule: &[(u16, usize)],
    feed_chunk: usize,
    rx_max: usize,
) -> (Vec<Vec<Bytes>>, minos_net::FaultStats) {
    let inner = Arc::new(Scripted::new());
    let ft = FaultTransport::new(Arc::clone(&inner), profile);
    let src = Scripted::endpoint(9);
    let mut delivered: Vec<Vec<Bytes>> = vec![Vec::new(); QUEUES as usize];
    // Drains queue `q` until a poll both finds the scripted ring empty
    // and releases nothing — a zero-return alone is not quiescence,
    // since a poll may admit packets into the hold buffer yet find none
    // eligible yet.
    let drain = |q: u16, delivered: &mut Vec<Bytes>| loop {
        let mut out = Vec::new();
        let released = ft.rx_burst(q, &mut out, rx_max);
        delivered.extend(out.into_iter().map(|p| p.payload));
        if released == 0 && inner.rx_remaining(q) == 0 {
            break;
        }
    };
    // Feed the scripted ring in slices and poll between slices, so the
    // pipeline sees packets arrive over multiple bursts.
    for chunk in schedule.chunks(feed_chunk.max(1)) {
        for &(q, i) in chunk {
            inner.load(
                q,
                vec![synthesize(src, Scripted::endpoint(q), payload(q, i))],
            );
        }
        for q in 0..QUEUES {
            drain(q, &mut delivered[q as usize]);
        }
    }
    // Final pass for anything released by the last admissions
    // (count-based releases only; the grace is parked a minute out).
    for q in 0..QUEUES {
        drain(q, &mut delivered[q as usize]);
    }
    (delivered, ft.fault_stats())
}

/// Same shape for the TX direction: push the schedule through
/// `tx_frames` in bursts of `tx_chunk` and capture what reaches the
/// inner transport.
fn run_tx(
    profile: FaultProfile,
    schedule: &[(u16, usize)],
    tx_chunk: usize,
) -> (Vec<Vec<Bytes>>, minos_net::FaultStats) {
    let inner = Arc::new(Scripted::new());
    let ft = FaultTransport::new(Arc::clone(&inner), profile);
    let src = Scripted::endpoint(9);
    let mut per_queue: Vec<Vec<TxPacket>> = vec![Vec::new(); QUEUES as usize];
    for &(q, i) in schedule {
        per_queue[q as usize].push(synthesize_frame(
            src,
            Scripted::endpoint(q),
            TxFrame::from_payload(payload(q, i)),
        ));
    }
    for (q, pkts) in per_queue.into_iter().enumerate() {
        for chunk in pkts.chunks(tx_chunk.max(1)) {
            let mut burst = chunk.to_vec();
            ft.tx_frames(q as u16, &mut burst);
        }
    }
    (
        (0..QUEUES).map(|q| inner.forwarded(q)).collect(),
        ft.fault_stats(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// RX: identical schedule + identical seed ⇒ identical delivered
    /// streams and fault counters across every batch geometry
    /// (one-datagram pulls, mmsg-sized pulls, and different feed
    /// slicings).
    #[test]
    fn rx_decisions_ignore_batch_geometry(
        schedule in prop::collection::vec((0u16..QUEUES, 0usize..10_000), 1..120),
        seed in 0u64..1_000,
        drop in 0.0f64..0.4,
        dup in 0.0f64..0.3,
        reorder in 0u32..6,
        burst in 0u32..3,
    ) {
        let profile = chaos_profile(seed, drop, dup, reorder, burst);
        let baseline = run_rx(profile, &schedule, 7, 1);
        for (feed, max) in [(1, 1), (32, 32), (5, 3), (schedule.len(), 4096)] {
            let other = run_rx(profile, &schedule, feed, max);
            prop_assert_eq!(&baseline.0, &other.0,
                "delivered streams diverged at feed={} max={}", feed, max);
            prop_assert_eq!(baseline.1, other.1,
                "fault counters diverged at feed={} max={}", feed, max);
        }
    }

    /// TX: identical schedule + identical seed ⇒ identical forwarded
    /// streams regardless of how the sends were sliced into bursts.
    #[test]
    fn tx_decisions_ignore_burst_slicing(
        schedule in prop::collection::vec((0u16..QUEUES, 0usize..10_000), 1..120),
        seed in 0u64..1_000,
        drop in 0.0f64..0.4,
        dup in 0.0f64..0.3,
        reorder in 0u32..6,
        burst in 0u32..3,
    ) {
        let profile = chaos_profile(seed, drop, dup, reorder, burst);
        let baseline = run_tx(profile, &schedule, 1);
        for chunk in [2usize, 13, schedule.len()] {
            let other = run_tx(profile, &schedule, chunk);
            prop_assert_eq!(&baseline.0, &other.0,
                "forwarded streams diverged at chunk={}", chunk);
            prop_assert_eq!(baseline.1, other.1,
                "fault counters diverged at chunk={}", chunk);
        }
    }

    /// A noop profile is a true passthrough: everything delivered, in
    /// order, zero fault counters.
    #[test]
    fn noop_profile_is_transparent(
        schedule in prop::collection::vec((0u16..QUEUES, 0usize..10_000), 1..60),
    ) {
        let profile = FaultProfile::default();
        prop_assert!(profile.is_noop());
        let (delivered, stats) = run_rx(profile, &schedule, 16, 32);
        for q in 0..QUEUES {
            let expected: Vec<Bytes> = schedule.iter()
                .filter(|&&(sq, _)| sq == q)
                .map(|&(sq, i)| payload(sq, i))
                .collect();
            prop_assert_eq!(&delivered[q as usize], &expected);
        }
        prop_assert_eq!(stats, minos_net::FaultStats::default());
    }
}

/// The blackhole queue swallows everything addressed to it; other
/// queues are untouched.
#[test]
fn blackhole_swallows_one_queue() {
    let profile = FaultProfile::parse("blackhole=1,seed=3").expect("profile");
    let inner = Arc::new(Scripted::new());
    let ft = FaultTransport::new(Arc::clone(&inner), profile);
    let src = Scripted::endpoint(9);
    for q in 0..QUEUES {
        inner.load(
            q,
            (0..10)
                .map(|i| synthesize(src, Scripted::endpoint(q), payload(q, i)))
                .collect(),
        );
    }
    let mut out = Vec::new();
    while ft.rx_burst(0, &mut out, 64) > 0 {}
    assert_eq!(out.len(), 10, "queue 0 unaffected");
    let mut dead = Vec::new();
    while ft.rx_burst(1, &mut dead, 64) > 0 {}
    assert!(dead.is_empty(), "queue 1 is a dead core");
    assert_eq!(ft.fault_stats().rx_blackholed, 10);
}
