//! Slab-backed receive-buffer pool: the allocation-free RX hot path.
//!
//! Every datagram the UDP backend receives needs a refcounted payload
//! buffer that can outlive the syscall arena (reassembly may hold
//! fragments across bursts, the engine may hold packets across plan
//! changes). Before this module existed, that buffer was a fresh
//! heap allocation per datagram (`Bytes::copy_from_slice`); now the
//! kernel writes straight into a pooled slot and the slot travels as a
//! [`Bytes`] — zero copies and, in steady state, zero allocations per
//! datagram.
//!
//! Design:
//!
//! * [`BufferPool::new`] allocates `slots` fixed-size boxed buffers up
//!   front (the slab) and keeps them on a freelist.
//! * [`BufferPool::take`] pops a slot ([`PooledBuf`], mutably
//!   accessible — the syscall target). An empty freelist falls back to
//!   a fresh allocation and counts a *miss*; the hot path never fails.
//! * [`PooledBuf::freeze`] turns the filled slot into an immutable,
//!   refcounted [`Bytes`] (via `Bytes::from_owner`, no copy). When the
//!   last clone/slice of that `Bytes` drops, the slot returns to the
//!   freelist — from anywhere, on any thread.
//! * [`BufferPool::stats`] exposes hit/miss counters and an
//!   outstanding-buffers gauge, surfaced through
//!   [`crate::UdpIoStats`] so CI can assert the steady-state hit rate.
//!
//! The freelist is bounded by the initial slab size: fallback-allocated
//! buffers are released to the allocator instead of growing the pool,
//! so a transient burst cannot permanently inflate memory.

use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Pool observability counters. `hits / (hits + misses)` is the
/// fraction of datagrams served without touching the allocator;
/// `outstanding` counts *delivered* payloads (frozen buffers) whose
/// last reference has not dropped yet — it returns to zero once the
/// application has released every received datagram, so a non-zero
/// steady-state value is a payload leak. Writable slots staged inside
/// syscall arenas (checked out but not yet filled by the kernel) are
/// deliberately excluded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Takes served from the preallocated freelist.
    pub hits: u64,
    /// Takes that fell back to a fresh heap allocation.
    pub misses: u64,
    /// Delivered (frozen) buffers not yet returned by drop.
    pub outstanding: u64,
    /// Slab capacity the pool was created with.
    pub capacity: u64,
}

impl PoolStats {
    /// Fraction of takes served from the slab, in `[0, 1]`; 1.0 when
    /// the pool has never been used.
    pub fn hit_rate(&self) -> f64 {
        hit_rate(self.hits, self.misses)
    }
}

/// The one definition of "hit rate" every report derives from:
/// `hits / (hits + misses)`, or 1.0 before any traffic.
pub fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        1.0
    } else {
        hits as f64 / total as f64
    }
}

struct Shared {
    slot_len: usize,
    capacity: usize,
    free: Mutex<Vec<Box<[u8]>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    outstanding: AtomicU64,
}

impl Shared {
    /// Returns a buffer to the freelist — unless the freelist is
    /// already at capacity (the buffer was a fallback allocation), in
    /// which case it goes back to the allocator.
    fn recycle(&self, buf: Box<[u8]>) {
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        if free.len() < self.capacity {
            free.push(buf);
        }
    }
}

/// A slab of fixed-size receive buffers recycled through a freelist.
/// Cloning is cheap (`Arc`); all clones share the one slab.
#[derive(Clone)]
pub struct BufferPool {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "BufferPool(cap {}, {} out, {} hits / {} misses)",
            s.capacity, s.outstanding, s.hits, s.misses
        )
    }
}

impl BufferPool {
    /// A pool of `slots` buffers of `slot_len` bytes each, all
    /// allocated now so the hot path never has to.
    pub fn new(slots: usize, slot_len: usize) -> Self {
        let slots = slots.max(1);
        assert!(slot_len > 0, "slots must hold at least one byte");
        let free = (0..slots)
            .map(|_| vec![0u8; slot_len].into_boxed_slice())
            .collect();
        BufferPool {
            shared: Arc::new(Shared {
                slot_len,
                capacity: slots,
                free: Mutex::new(free),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                outstanding: AtomicU64::new(0),
            }),
        }
    }

    /// Checks a writable buffer out of the pool. Falls back to a fresh
    /// allocation (counted as a miss) when the slab is exhausted —
    /// callers never see failure, only the miss counter moves.
    pub fn take(&self) -> PooledBuf {
        let recycled = {
            let mut free = self.shared.free.lock().unwrap_or_else(|e| e.into_inner());
            free.pop()
        };
        let buf = match recycled {
            Some(buf) => {
                self.shared.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.shared.misses.fetch_add(1, Ordering::Relaxed);
                vec![0u8; self.shared.slot_len].into_boxed_slice()
            }
        };
        PooledBuf {
            buf: Some(buf),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Bytes per slot.
    pub fn slot_len(&self) -> usize {
        self.shared.slot_len
    }

    /// Counters snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            outstanding: self.shared.outstanding.load(Ordering::Relaxed),
            capacity: self.shared.capacity as u64,
        }
    }
}

/// A checked-out, writable pool slot: the target the kernel writes a
/// datagram into. Either [`PooledBuf::freeze`] it into an immutable
/// [`Bytes`] or drop it unused — both return the slot eventually.
pub struct PooledBuf {
    /// Always `Some` until `freeze`/`Drop` takes it.
    buf: Option<Box<[u8]>>,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PooledBuf({} bytes)", self.shared.slot_len)
    }
}

impl PooledBuf {
    /// The whole writable slot.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        self.buf.as_mut().expect("buffer present until consumed")
    }

    /// Base pointer of the slot (for iovec construction). Stable for
    /// the life of this `PooledBuf` *and* across `freeze` — the boxed
    /// buffer itself never moves on the heap.
    pub fn as_mut_ptr(&mut self) -> *mut u8 {
        self.as_mut_slice().as_mut_ptr()
    }

    /// Slot length in bytes.
    pub fn len(&self) -> usize {
        self.buf
            .as_ref()
            .expect("buffer present until consumed")
            .len()
    }

    /// True only for a zero-length slot (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the slot into an immutable, refcounted [`Bytes`] over
    /// its first `len` bytes — no copy. The slot returns to the pool
    /// (and leaves the `outstanding` gauge) when the last clone/slice
    /// of the returned `Bytes` drops.
    pub fn freeze(mut self, len: usize) -> Bytes {
        let buf = self.buf.take().expect("buffer present until consumed");
        let len = len.min(buf.len());
        self.shared.outstanding.fetch_add(1, Ordering::Relaxed);
        Bytes::from_owner(PooledBytes {
            buf,
            len,
            shared: Arc::clone(&self.shared),
        })
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        // A slot dropped unfrozen was never delivered: it returns to
        // the freelist without ever counting as outstanding.
        if let Some(buf) = self.buf.take() {
            self.shared.recycle(buf);
        }
    }
}

/// The owner behind a frozen pooled [`Bytes`]: keeps the slot alive
/// while any clone/slice exists, returns it to the pool on drop.
struct PooledBytes {
    buf: Box<[u8]>,
    len: usize,
    shared: Arc<Shared>,
}

impl AsRef<[u8]> for PooledBytes {
    fn as_ref(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

impl Drop for PooledBytes {
    fn drop(&mut self) {
        self.shared.outstanding.fetch_sub(1, Ordering::Relaxed);
        self.shared.recycle(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_freeze_drop_recycles_the_slot() {
        let pool = BufferPool::new(2, 16);
        let mut a = pool.take();
        a.as_mut_slice()[..3].copy_from_slice(b"abc");
        let frozen = a.freeze(3);
        assert_eq!(&frozen[..], b"abc");
        assert_eq!(pool.stats().outstanding, 1);
        let copy = frozen.clone();
        drop(frozen);
        assert_eq!(
            pool.stats().outstanding,
            1,
            "a live clone must keep the slot checked out"
        );
        drop(copy);
        let s = pool.stats();
        assert_eq!(s.outstanding, 0);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn churn_returns_every_slot() {
        let pool = BufferPool::new(8, 32);
        for round in 0..100 {
            let held: Vec<Bytes> = (0..8)
                .map(|i| {
                    let mut buf = pool.take();
                    buf.as_mut_slice()[0] = (round + i) as u8;
                    buf.freeze(1)
                })
                .collect();
            for (i, b) in held.iter().enumerate() {
                assert_eq!(b[0], (round + i) as u8);
            }
        }
        let s = pool.stats();
        assert_eq!(s.outstanding, 0, "churn must not leak slots");
        assert_eq!(s.misses, 0, "a fully drained pool never misses");
        assert_eq!(s.hits, 800);
    }

    #[test]
    fn exhaustion_falls_back_and_counts_misses() {
        let pool = BufferPool::new(2, 8);
        let mut held = Vec::new();
        for i in 0..5u8 {
            let mut buf = pool.take();
            buf.as_mut_slice().fill(i);
            held.push(buf.freeze(8));
        }
        let s = pool.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 3, "takes beyond the slab must fall back");
        assert_eq!(s.outstanding, 5);
        // Fallback buffers deliver bytes exactly like pooled ones.
        for (i, b) in held.iter().enumerate() {
            assert_eq!(&b[..], &[i as u8; 8][..]);
        }
        drop(held);
        let s = pool.stats();
        assert_eq!(s.outstanding, 0);
        // The freelist stays bounded by the slab size: the 3 fallback
        // buffers were released to the allocator, so only 2 more takes
        // can be hits.
        let _a = pool.take();
        let _b = pool.take();
        let _c = pool.take();
        let s2 = pool.stats();
        assert_eq!(s2.hits, s.hits + 2);
        assert_eq!(s2.misses, s.misses + 1);
    }

    #[test]
    fn unused_checkout_returns_on_drop() {
        let pool = BufferPool::new(1, 8);
        let buf = pool.take();
        assert_eq!(
            pool.stats().outstanding,
            0,
            "staged (unfrozen) slots are not delivered payloads"
        );
        drop(buf);
        // And the slot really is back: the next take is a hit.
        let _again = pool.take();
        assert_eq!(pool.stats().hits, 2);
        assert_eq!(pool.stats().misses, 0);
    }
}
