//! Slab-backed, shard-per-queue buffer pool: the allocation-free RX
//! hot path (and the virtual backend's TX gather slots).
//!
//! Every datagram the UDP backend receives needs a refcounted payload
//! buffer that can outlive the syscall arena (reassembly may hold
//! fragments across bursts, the engine may hold packets across plan
//! changes). Before this module existed, that buffer was a fresh
//! heap allocation per datagram (`Bytes::copy_from_slice`); now the
//! kernel writes straight into a pooled slot and the slot travels as a
//! [`Bytes`] — zero copies and, in steady state, zero allocations per
//! datagram.
//!
//! Design:
//!
//! * [`BufferPool::new`] / [`BufferPool::sharded`] allocate `slots`
//!   fixed-size boxed buffers up front (the slab) and distribute them
//!   over per-shard freelists — one shard per RX queue on the UDP
//!   backend, so concurrently polling cores stop bouncing one shared
//!   mutex cache line on every take.
//! * [`BufferPool::take_on`] pops a slot from the caller's shard
//!   ([`PooledBuf`], mutably accessible — the syscall target). An empty
//!   shard *steals* from its neighbors (counted in
//!   [`PoolStats::steals`]) before falling back to a fresh allocation
//!   (a *miss*); the hot path never fails.
//! * [`PooledBuf::freeze`] turns the filled slot into an immutable,
//!   refcounted [`Bytes`] (via `Bytes::from_owner`, no copy). When the
//!   last clone/slice of that `Bytes` drops, the slot returns to the
//!   freelist of the shard it was taken from — from anywhere, on any
//!   thread — so buffers follow the traffic to hot shards.
//! * [`BufferPool::stats`] exposes hit/miss/steal counters and an
//!   outstanding-buffers gauge, surfaced through
//!   [`crate::UdpIoStats`] so CI can assert the steady-state hit rate.
//!
//! The pool is bounded by the initial slab size: each shard's freelist
//! is capped at its share of the slab (recycles spill to sibling
//! shards when the home shard is full), so fallback-allocated buffers
//! from a transient burst are released to the allocator instead of
//! permanently inflating memory — and a slab buffer is never released,
//! so the pool cannot shrink either.

use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Pool observability counters. `hits / (hits + misses)` is the
/// fraction of takes served without touching the allocator;
/// `outstanding` counts *delivered* payloads (frozen buffers) whose
/// last reference has not dropped yet — it returns to zero once the
/// application has released every received datagram, so a non-zero
/// steady-state value is a payload leak. Writable slots staged inside
/// syscall arenas (checked out but not yet filled by the kernel) are
/// deliberately excluded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Takes served from a preallocated freelist (own shard or stolen).
    pub hits: u64,
    /// Takes that fell back to a fresh heap allocation.
    pub misses: u64,
    /// Hits that had to steal from another shard's freelist because the
    /// caller's shard was empty. Persistent steals mean the traffic
    /// distribution across queues has shifted; the pool rebalances
    /// itself because slots recycle to the shard that took them.
    pub steals: u64,
    /// Delivered (frozen) buffers not yet returned by drop.
    pub outstanding: u64,
    /// Slab capacity the pool was created with.
    pub capacity: u64,
}

impl PoolStats {
    /// Fraction of takes served from the slab, in `[0, 1]`; 1.0 when
    /// the pool has never been used.
    pub fn hit_rate(&self) -> f64 {
        hit_rate(self.hits, self.misses)
    }
}

/// The one definition of "hit rate" every report derives from:
/// `hits / (hits + misses)`, or 1.0 before any traffic.
pub fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        1.0
    } else {
        hits as f64 / total as f64
    }
}

struct Shard {
    free: Mutex<Vec<Box<[u8]>>>,
    /// Buffers this shard's freelist may hold; the caps sum to the
    /// pool's slab size, so the pool as a whole stays bounded without
    /// any cross-shard counter (a global atomic would either race with
    /// the per-shard lists — leaking slab buffers to the allocator —
    /// or reintroduce the shared cache line the shards exist to kill).
    cap: usize,
}

struct Shared {
    slot_len: usize,
    capacity: usize,
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
    steals: AtomicU64,
    outstanding: AtomicU64,
}

impl Shared {
    /// Returns a buffer to `home`'s freelist, spilling to the other
    /// shards when it is at capacity — only a buffer no shard has room
    /// for (a fallback allocation from a burst) goes back to the
    /// allocator, so the pool never shrinks below its slab.
    fn recycle(&self, home: usize, buf: Box<[u8]>) {
        let n = self.shards.len();
        for i in 0..n {
            let shard = &self.shards[(home + i) % n];
            let mut free = shard.free.lock().unwrap_or_else(|e| e.into_inner());
            if free.len() < shard.cap {
                free.push(buf);
                return;
            }
        }
    }

    fn pop(&self, shard: usize) -> Option<Box<[u8]>> {
        self.shards[shard]
            .free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
    }

    #[cfg(test)]
    fn free_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.free.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }
}

/// A slab of fixed-size buffers recycled through per-shard freelists.
/// Cloning is cheap (`Arc`); all clones share the one slab.
#[derive(Clone)]
pub struct BufferPool {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "BufferPool(cap {} x{} shards, {} out, {} hits / {} misses / {} steals)",
            s.capacity,
            self.shared.shards.len(),
            s.outstanding,
            s.hits,
            s.misses,
            s.steals,
        )
    }
}

impl BufferPool {
    /// A single-shard pool of `slots` buffers of `slot_len` bytes each,
    /// all allocated now so the hot path never has to.
    pub fn new(slots: usize, slot_len: usize) -> Self {
        Self::sharded(slots, slot_len, 1)
    }

    /// A pool of `slots` buffers distributed over `shards` freelists.
    /// Give each RX queue its own shard ([`BufferPool::take_on`]) and
    /// concurrent pollers stop contending on one freelist mutex; an
    /// empty shard steals from its neighbors before allocating.
    pub fn sharded(slots: usize, slot_len: usize, shards: usize) -> Self {
        let slots = slots.max(1);
        let shards = shards.clamp(1, slots);
        assert!(slot_len > 0, "slots must hold at least one byte");
        let lists: Vec<Shard> = (0..shards)
            .map(|s| {
                // Distribute the slab evenly: shard s gets the base
                // share plus one of the remainder slots; its freelist
                // cap equals its share so the caps sum to `slots`.
                let share = slots / shards + usize::from(s < slots % shards);
                Shard {
                    free: Mutex::new(
                        (0..share)
                            .map(|_| vec![0u8; slot_len].into_boxed_slice())
                            .collect(),
                    ),
                    cap: share,
                }
            })
            .collect();
        BufferPool {
            shared: Arc::new(Shared {
                slot_len,
                capacity: slots,
                shards: lists,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                steals: AtomicU64::new(0),
                outstanding: AtomicU64::new(0),
            }),
        }
    }

    /// Checks a writable buffer out of shard 0; see
    /// [`BufferPool::take_on`].
    pub fn take(&self) -> PooledBuf {
        self.take_on(0)
    }

    /// Checks a writable buffer out of the pool, preferring `shard`'s
    /// freelist (callers pass their queue index; out-of-range values
    /// wrap). An empty shard steals from the others; only when every
    /// freelist is empty does the take fall back to a fresh allocation
    /// (counted as a miss) — callers never see failure, only the miss
    /// counter moves. The slot recycles to `shard` when released, so
    /// buffers migrate toward the queues that actually take them.
    pub fn take_on(&self, shard: usize) -> PooledBuf {
        let n = self.shared.shards.len();
        let home = shard % n;
        let mut recycled = self.shared.pop(home);
        if recycled.is_none() {
            for i in 1..n {
                recycled = self.shared.pop((home + i) % n);
                if recycled.is_some() {
                    self.shared.steals.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        let buf = match recycled {
            Some(buf) => {
                self.shared.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.shared.misses.fetch_add(1, Ordering::Relaxed);
                vec![0u8; self.shared.slot_len].into_boxed_slice()
            }
        };
        PooledBuf {
            buf: Some(buf),
            home,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Bytes per slot.
    pub fn slot_len(&self) -> usize {
        self.shared.slot_len
    }

    /// Number of freelist shards.
    pub fn shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Counters snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            outstanding: self.shared.outstanding.load(Ordering::Relaxed),
            capacity: self.shared.capacity as u64,
        }
    }
}

/// A checked-out, writable pool slot: the target the kernel writes a
/// datagram into. Either [`PooledBuf::freeze`] it into an immutable
/// [`Bytes`] or drop it unused — both return the slot eventually.
pub struct PooledBuf {
    /// Always `Some` until `freeze`/`Drop` takes it.
    buf: Option<Box<[u8]>>,
    /// Shard the slot recycles to.
    home: usize,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PooledBuf({} bytes)", self.shared.slot_len)
    }
}

impl PooledBuf {
    /// The whole writable slot.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        self.buf.as_mut().expect("buffer present until consumed")
    }

    /// Base pointer of the slot (for iovec construction). Stable for
    /// the life of this `PooledBuf` *and* across `freeze` — the boxed
    /// buffer itself never moves on the heap.
    pub fn as_mut_ptr(&mut self) -> *mut u8 {
        self.as_mut_slice().as_mut_ptr()
    }

    /// Slot length in bytes.
    pub fn len(&self) -> usize {
        self.buf
            .as_ref()
            .expect("buffer present until consumed")
            .len()
    }

    /// True only for a zero-length slot (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the slot into an immutable, refcounted [`Bytes`] over
    /// its first `len` bytes — no copy. The slot returns to the pool
    /// (and leaves the `outstanding` gauge) when the last clone/slice
    /// of the returned `Bytes` drops.
    pub fn freeze(mut self, len: usize) -> Bytes {
        let buf = self.buf.take().expect("buffer present until consumed");
        let len = len.min(buf.len());
        self.shared.outstanding.fetch_add(1, Ordering::Relaxed);
        Bytes::from_owner(PooledBytes {
            buf,
            len,
            home: self.home,
            shared: Arc::clone(&self.shared),
        })
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        // A slot dropped unfrozen was never delivered: it returns to
        // the freelist without ever counting as outstanding.
        if let Some(buf) = self.buf.take() {
            self.shared.recycle(self.home, buf);
        }
    }
}

/// The owner behind a frozen pooled [`Bytes`]: keeps the slot alive
/// while any clone/slice exists, returns it to its shard on drop.
struct PooledBytes {
    buf: Box<[u8]>,
    len: usize,
    home: usize,
    shared: Arc<Shared>,
}

impl AsRef<[u8]> for PooledBytes {
    fn as_ref(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

impl Drop for PooledBytes {
    fn drop(&mut self) {
        self.shared.outstanding.fetch_sub(1, Ordering::Relaxed);
        self.shared
            .recycle(self.home, std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_freeze_drop_recycles_the_slot() {
        let pool = BufferPool::new(2, 16);
        let mut a = pool.take();
        a.as_mut_slice()[..3].copy_from_slice(b"abc");
        let frozen = a.freeze(3);
        assert_eq!(&frozen[..], b"abc");
        assert_eq!(pool.stats().outstanding, 1);
        let copy = frozen.clone();
        drop(frozen);
        assert_eq!(
            pool.stats().outstanding,
            1,
            "a live clone must keep the slot checked out"
        );
        drop(copy);
        let s = pool.stats();
        assert_eq!(s.outstanding, 0);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn churn_returns_every_slot() {
        let pool = BufferPool::new(8, 32);
        for round in 0..100 {
            let held: Vec<Bytes> = (0..8)
                .map(|i| {
                    let mut buf = pool.take();
                    buf.as_mut_slice()[0] = (round + i) as u8;
                    buf.freeze(1)
                })
                .collect();
            for (i, b) in held.iter().enumerate() {
                assert_eq!(b[0], (round + i) as u8);
            }
        }
        let s = pool.stats();
        assert_eq!(s.outstanding, 0, "churn must not leak slots");
        assert_eq!(s.misses, 0, "a fully drained pool never misses");
        assert_eq!(s.hits, 800);
    }

    #[test]
    fn exhaustion_falls_back_and_counts_misses() {
        let pool = BufferPool::new(2, 8);
        let mut held = Vec::new();
        for i in 0..5u8 {
            let mut buf = pool.take();
            buf.as_mut_slice().fill(i);
            held.push(buf.freeze(8));
        }
        let s = pool.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 3, "takes beyond the slab must fall back");
        assert_eq!(s.outstanding, 5);
        // Fallback buffers deliver bytes exactly like pooled ones.
        for (i, b) in held.iter().enumerate() {
            assert_eq!(&b[..], &[i as u8; 8][..]);
        }
        drop(held);
        let s = pool.stats();
        assert_eq!(s.outstanding, 0);
        // The freelist stays bounded by the slab size: the 3 fallback
        // buffers were released to the allocator, so only 2 more takes
        // can be hits.
        let _a = pool.take();
        let _b = pool.take();
        let _c = pool.take();
        let s2 = pool.stats();
        assert_eq!(s2.hits, s.hits + 2);
        assert_eq!(s2.misses, s.misses + 1);
    }

    #[test]
    fn unused_checkout_returns_on_drop() {
        let pool = BufferPool::new(1, 8);
        let buf = pool.take();
        assert_eq!(
            pool.stats().outstanding,
            0,
            "staged (unfrozen) slots are not delivered payloads"
        );
        drop(buf);
        // And the slot really is back: the next take is a hit.
        let _again = pool.take();
        assert_eq!(pool.stats().hits, 2);
        assert_eq!(pool.stats().misses, 0);
    }

    #[test]
    fn empty_shard_steals_before_allocating() {
        // 4 slots over 2 shards: draining shard 0 must pull shard 1's
        // slots (steals, still hits) before any take misses.
        let pool = BufferPool::sharded(4, 8, 2);
        let held: Vec<Bytes> = (0..4).map(|_| pool.take_on(0).freeze(1)).collect();
        let s = pool.stats();
        assert_eq!(s.hits, 4, "every slab slot must be reachable from shard 0");
        assert_eq!(s.misses, 0);
        assert_eq!(
            s.steals, 2,
            "shard 0 held 2 of 4 slots; the rest are steals"
        );
        // Only now does the pool allocate.
        let _extra = pool.take_on(0).freeze(1);
        assert_eq!(pool.stats().misses, 1);
        drop(held);
        assert_eq!(pool.stats().outstanding, 1);
    }

    #[test]
    fn hot_shard_keeps_its_share_and_steals_the_spill() {
        let pool = BufferPool::sharded(4, 8, 2);
        // Pull everything through shard 1, drop it all, then pull
        // again: recycles refill shard 1 to its cap (2 slots) and spill
        // the rest to shard 0, so the second round is 2 local hits plus
        // 2 steals — and the pool never misses, in either round.
        let first: Vec<Bytes> = (0..4).map(|_| pool.take_on(1).freeze(1)).collect();
        assert_eq!(pool.stats().steals, 2);
        drop(first);
        let _second: Vec<Bytes> = (0..4).map(|_| pool.take_on(1).freeze(1)).collect();
        let s = pool.stats();
        assert_eq!(s.steals, 4, "the spilled half is stolen back");
        assert_eq!(s.misses, 0);
        assert_eq!(s.hits, 8, "every take in both rounds came from the slab");
    }

    #[test]
    fn sharded_pool_stays_bounded_under_fallback_churn() {
        let pool = BufferPool::sharded(2, 8, 2);
        // Hold the whole slab plus fallbacks, drop everything, repeat:
        // the freelists may never hold more than the slab.
        for _ in 0..10 {
            let held: Vec<Bytes> = (0..6).map(|i| pool.take_on(i).freeze(1)).collect();
            drop(held);
            assert_eq!(
                pool.shared.free_len(),
                2,
                "the slab must neither grow nor shrink under churn"
            );
        }
        assert_eq!(pool.stats().outstanding, 0);
    }

    #[test]
    fn shard_count_is_clamped_to_slots() {
        let pool = BufferPool::sharded(2, 8, 16);
        assert_eq!(pool.shards(), 2);
        // And every shard index wraps rather than panicking.
        let _ = pool.take_on(1337);
    }
}
