//! Preallocated syscall-batching arenas for [`crate::UdpTransport`].
//!
//! One `recvmmsg`/`sendmmsg` call moves a whole burst of datagrams, but
//! each call needs an array of `mmsghdr`/`iovec`/address/buffer storage.
//! These arenas allocate that storage once per queue at bind time and
//! reuse it for every burst.
//!
//! The receive arena's iovecs point straight at slots checked out of a
//! [`crate::pool::BufferPool`]: the kernel writes each datagram into a
//! pooled buffer, which [`RxArena::recv_batch`] freezes into a
//! refcounted [`bytes::Bytes`] (no copy) and replaces with a fresh
//! slot. Payloads therefore travel
//! through the engine without a single per-datagram allocation or copy;
//! the slot returns to the pool when the last reference to the payload
//! drops.
//!
//! The raw pointers inside the headers are rebuilt from the owned
//! buffers immediately before every syscall, so moving an arena between
//! bursts is harmless and the kernel-mutated state (`msg_namelen`,
//! `msg_len`) is reset for free.

#[cfg(target_os = "linux")]
pub use linux::{RxArena, TxArena};

#[cfg(not(target_os = "linux"))]
pub use portable::{RxArena, TxArena};

/// Bytes of receive buffer per pool slot: an MTU-sized datagram plus
/// slack, matching the one-datagram path's buffer.
pub const RX_SLOT_LEN: usize = minos_wire::MTU + 64;

/// iovec slots reserved per transmitted frame: one for the inline
/// header region plus one per payload segment.
pub const TX_IOVECS_PER_FRAME: usize = 1 + minos_wire::MAX_TX_SEGMENTS;

#[cfg(target_os = "linux")]
pub use linux::send_frame_singly;

#[cfg(not(target_os = "linux"))]
pub use portable::send_frame_singly;

#[cfg(target_os = "linux")]
mod linux {
    use super::TX_IOVECS_PER_FRAME;
    use crate::pool::{BufferPool, PooledBuf};
    use crate::sys::{IoVec, MMsgHdr, MsgHdr, SockaddrIn};
    use bytes::Bytes;
    use minos_wire::packet::TxPacket;
    use std::io;
    use std::net::{Ipv4Addr, SocketAddrV4};
    use std::os::fd::RawFd;

    /// Receive-side arena: `cap` reusable slots for one `recvmmsg` call,
    /// each backed by a pooled buffer the kernel writes into directly.
    pub struct RxArena {
        cap: usize,
        /// Checked-out pool slots; consumed entries are refilled lazily
        /// at the start of the next call.
        slots: Vec<Option<PooledBuf>>,
        pool: BufferPool,
        /// Pool shard this arena draws from (its queue index), so
        /// concurrently polling queues never contend on one freelist.
        shard: usize,
        addrs: Vec<SockaddrIn>,
        iovecs: Vec<IoVec>,
        hdrs: Vec<MMsgHdr>,
    }

    // SAFETY: the raw pointers inside `iovecs`/`hdrs` are scratch state,
    // rebuilt from the owned buffers at the start of every call; between
    // calls they are never dereferenced, so the arena may move between
    // threads freely (access is serialized by a Mutex in the transport).
    unsafe impl Send for RxArena {}

    impl RxArena {
        /// An arena able to receive up to `cap` datagrams per syscall,
        /// drawing its buffers from `pool`'s shard `shard` (the owning
        /// queue's index).
        pub fn new(cap: usize, pool: BufferPool, shard: usize) -> Self {
            let cap = cap.max(1);
            RxArena {
                cap,
                slots: (0..cap).map(|_| None).collect(),
                pool,
                shard,
                addrs: vec![SockaddrIn::ZERO; cap],
                iovecs: vec![
                    IoVec {
                        iov_base: std::ptr::null_mut(),
                        iov_len: 0,
                    };
                    cap
                ],
                hdrs: vec![
                    MMsgHdr {
                        msg_hdr: MsgHdr {
                            msg_name: std::ptr::null_mut(),
                            msg_namelen: 0,
                            msg_iov: std::ptr::null_mut(),
                            msg_iovlen: 0,
                            msg_control: std::ptr::null_mut(),
                            msg_controllen: 0,
                            msg_flags: 0,
                        },
                        msg_len: 0,
                    };
                    cap
                ],
            }
        }

        /// One non-blocking `recvmmsg` moving up to `max` datagrams.
        ///
        /// Invokes `sink(peer, payload)` for every received IPv4
        /// datagram (other address families are counted but not sunk)
        /// and returns the raw count the kernel delivered — `sink` may
        /// thus run fewer times than the return value. `payload` is the
        /// pooled buffer the kernel wrote into, frozen; no copy happens
        /// on this path.
        pub fn recv_batch(
            &mut self,
            fd: RawFd,
            max: usize,
            mut sink: impl FnMut(SocketAddrV4, Bytes),
        ) -> io::Result<usize> {
            let want = max.min(self.cap).max(1);
            for i in 0..want {
                let slot = self.slots[i].get_or_insert_with(|| self.pool.take_on(self.shard));
                self.iovecs[i] = IoVec {
                    iov_base: slot.as_mut_ptr(),
                    iov_len: slot.len(),
                };
                self.hdrs[i] = MMsgHdr {
                    msg_hdr: MsgHdr {
                        msg_name: &mut self.addrs[i],
                        msg_namelen: std::mem::size_of::<SockaddrIn>() as u32,
                        msg_iov: &mut self.iovecs[i],
                        msg_iovlen: 1,
                        msg_control: std::ptr::null_mut(),
                        msg_controllen: 0,
                        msg_flags: 0,
                    },
                    msg_len: 0,
                };
            }
            // SAFETY: all headers point into storage owned by `self`
            // (the pooled buffers live in `self.slots`), alive across
            // the call.
            let got = unsafe { crate::sys::recv_mmsg(fd, &mut self.hdrs[..want])? };
            for i in 0..got {
                let len = self.hdrs[i].msg_len as usize;
                if let Some(peer) = self.addrs[i].to_v4() {
                    let slot = self.slots[i].take().expect("filled above");
                    sink(peer, slot.freeze(len));
                }
                // Non-IPv4 datagrams leave their slot in place; the next
                // call reuses it.
            }
            Ok(got)
        }
    }

    /// Transmit-side arena: `cap` reusable header slots for one
    /// `sendmmsg` call. Payloads are *not* copied — each frame's inline
    /// header region and refcounted value segments become one iovec
    /// each ([`TX_IOVECS_PER_FRAME`] slots per message), pointing
    /// straight at the caller's storage for the duration of the call.
    /// One syscall thus carries header-iovec + value-iovec pairs for a
    /// whole burst: scatter-gather TX end to end.
    pub struct TxArena {
        cap: usize,
        addrs: Vec<SockaddrIn>,
        iovecs: Vec<IoVec>,
        hdrs: Vec<MMsgHdr>,
    }

    // SAFETY: as for RxArena — pointer state is rebuilt every call.
    unsafe impl Send for TxArena {}

    impl TxArena {
        /// An arena able to send up to `cap` datagrams per syscall.
        pub fn new(cap: usize) -> Self {
            let cap = cap.max(1);
            TxArena {
                cap,
                addrs: vec![SockaddrIn::ZERO; cap],
                iovecs: vec![
                    IoVec {
                        iov_base: std::ptr::null_mut(),
                        iov_len: 0,
                    };
                    cap * TX_IOVECS_PER_FRAME
                ],
                hdrs: vec![
                    MMsgHdr {
                        msg_hdr: MsgHdr {
                            msg_name: std::ptr::null_mut(),
                            msg_namelen: 0,
                            msg_iov: std::ptr::null_mut(),
                            msg_iovlen: 0,
                            msg_control: std::ptr::null_mut(),
                            msg_controllen: 0,
                            msg_flags: 0,
                        },
                        msg_len: 0,
                    };
                    cap
                ],
            }
        }

        /// One non-blocking `sendmmsg` over `pkts` (at most `cap` of
        /// them), each addressed by its destination metadata and carried
        /// as a multi-iovec gather list (no segment bytes copied);
        /// returns how many leading frames the kernel accepted.
        pub fn send_frames(&mut self, fd: RawFd, pkts: &[TxPacket]) -> io::Result<usize> {
            let n = pkts.len().min(self.cap);
            if n == 0 {
                return Ok(0);
            }
            for (i, pkt) in pkts.iter().take(n).enumerate() {
                let dst = SocketAddrV4::new(Ipv4Addr::from(pkt.meta.ip.dst), pkt.meta.udp.dst_port);
                self.addrs[i] = SockaddrIn::from_v4(dst);
                let base = i * TX_IOVECS_PER_FRAME;
                let niov = fill_iovecs(
                    &pkt.frame,
                    &mut self.iovecs[base..base + TX_IOVECS_PER_FRAME],
                );
                self.hdrs[i] = MMsgHdr {
                    msg_hdr: MsgHdr {
                        msg_name: &mut self.addrs[i],
                        msg_namelen: std::mem::size_of::<SockaddrIn>() as u32,
                        msg_iov: &mut self.iovecs[base],
                        msg_iovlen: niov,
                        msg_control: std::ptr::null_mut(),
                        msg_controllen: 0,
                        msg_flags: 0,
                    },
                    msg_len: 0,
                };
            }
            // SAFETY: headers point into `self`-owned storage and the
            // caller's frame regions, all alive across the call.
            unsafe { crate::sys::send_mmsg(fd, &mut self.hdrs[..n]) }
        }
    }

    /// Writes one iovec per non-empty frame region into `iovecs`,
    /// returning how many were filled.
    fn fill_iovecs(frame: &minos_wire::TxFrame, iovecs: &mut [IoVec]) -> usize {
        let mut niov = 0;
        let inline = frame.inline();
        if !inline.is_empty() {
            iovecs[niov] = IoVec {
                // The kernel only reads through send iovecs; the *mut
                // is an FFI-signature artifact.
                iov_base: inline.as_ptr() as *mut u8,
                iov_len: inline.len(),
            };
            niov += 1;
        }
        for seg in frame.segments() {
            iovecs[niov] = IoVec {
                iov_base: seg.as_ptr() as *mut u8,
                iov_len: seg.len(),
            };
            niov += 1;
        }
        niov
    }

    /// One non-blocking `sendmsg` carrying a single frame as a gather
    /// list — the scatter-gather flavor of `send_to`, used by the
    /// one-datagram-per-syscall TX path so even `batch <= 1` transports
    /// never copy segment bytes. Returns the bytes sent.
    pub fn send_frame_singly(
        fd: RawFd,
        dst: SocketAddrV4,
        frame: &minos_wire::TxFrame,
    ) -> io::Result<usize> {
        let mut addr = SockaddrIn::from_v4(dst);
        let mut iovecs = [IoVec {
            iov_base: std::ptr::null_mut(),
            iov_len: 0,
        }; TX_IOVECS_PER_FRAME];
        let niov = fill_iovecs(frame, &mut iovecs);
        let hdr = MsgHdr {
            msg_name: &mut addr,
            msg_namelen: std::mem::size_of::<SockaddrIn>() as u32,
            msg_iov: iovecs.as_mut_ptr(),
            msg_iovlen: niov,
            msg_control: std::ptr::null_mut(),
            msg_controllen: 0,
            msg_flags: 0,
        };
        // SAFETY: the header points at stack-owned address/iovec storage
        // and the caller's frame regions, all alive across the call.
        unsafe { crate::sys::send_msg(fd, &hdr) }
    }
}

/// Stub arenas for non-Linux targets. [`crate::UdpTransport`] never
/// calls them because `sys::mmsg_available()` is `false` there; they
/// exist so the types stay nameable cross-platform.
#[cfg(not(target_os = "linux"))]
mod portable {
    use crate::pool::BufferPool;
    use bytes::Bytes;
    use std::io;
    use std::net::SocketAddrV4;

    /// Receive-side arena stub.
    pub struct RxArena;

    impl RxArena {
        /// See the Linux arena; capacity, pool and shard are ignored here.
        pub fn new(_cap: usize, _pool: BufferPool, _shard: usize) -> Self {
            RxArena
        }

        /// Always unsupported off Linux.
        pub fn recv_batch(
            &mut self,
            _fd: i32,
            _max: usize,
            _sink: impl FnMut(SocketAddrV4, Bytes),
        ) -> io::Result<usize> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "recvmmsg requires Linux",
            ))
        }
    }

    /// Transmit-side arena stub.
    pub struct TxArena;

    impl TxArena {
        /// See the Linux arena; capacity is ignored here.
        pub fn new(_cap: usize) -> Self {
            TxArena
        }

        /// Always unsupported off Linux.
        pub fn send_frames(
            &mut self,
            _fd: i32,
            _pkts: &[minos_wire::packet::TxPacket],
        ) -> io::Result<usize> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "sendmmsg requires Linux",
            ))
        }
    }

    /// Always unsupported off Linux; callers gather into a contiguous
    /// buffer and use `send_to` instead.
    pub fn send_frame_singly(
        _fd: i32,
        _dst: SocketAddrV4,
        _frame: &minos_wire::TxFrame,
    ) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "sendmsg requires Linux",
        ))
    }
}
