//! Raw kernel plumbing for the UDP backend: socket creation with
//! `SO_REUSEPORT` (which `std` cannot express) and the batched
//! `recvmmsg`/`sendmmsg` syscalls (the kernel-sockets analog of DPDK RX/TX
//! bursts, paper §4.1 "requests are moved in batches to further limit
//! overhead").
//!
//! Everything speaks to the C library directly — the toolchain links libc
//! anyway, so no external crate is needed in this offline build
//! environment. Non-Linux targets get a portable `std`-only fallback with
//! batching reported unavailable; callers then stay on the one-datagram
//! syscall path.

#[cfg(target_os = "linux")]
pub use linux::*;

#[cfg(not(target_os = "linux"))]
pub use portable::*;

#[cfg(target_os = "linux")]
mod linux {
    use std::io;
    use std::net::{Ipv4Addr, SocketAddrV4, UdpSocket};
    use std::os::fd::FromRawFd;
    use std::sync::atomic::{AtomicBool, Ordering};

    const AF_INET: i32 = 2;
    const SOCK_DGRAM: i32 = 2;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const SO_SNDBUF: i32 = 7;
    const SO_RCVBUF: i32 = 8;
    const SO_REUSEPORT: i32 = 15;

    /// Non-blocking flag for one `recvmmsg`/`sendmmsg` call.
    pub const MSG_DONTWAIT: i32 = 0x40;

    const ENOSYS: i32 = 38;
    const EOPNOTSUPP: i32 = 95;

    /// IPv4 socket address in kernel layout (`struct sockaddr_in`).
    #[derive(Clone, Copy, Debug)]
    #[repr(C)]
    pub struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    impl SockaddrIn {
        /// The all-zero address (used to pre-fill receive arenas).
        pub const ZERO: SockaddrIn = SockaddrIn {
            sin_family: 0,
            sin_port: 0,
            sin_addr: 0,
            sin_zero: [0; 8],
        };

        /// Kernel-layout encoding of `addr`.
        pub fn from_v4(addr: SocketAddrV4) -> Self {
            SockaddrIn {
                sin_family: AF_INET as u16,
                sin_port: addr.port().to_be(),
                sin_addr: u32::from(*addr.ip()).to_be(),
                sin_zero: [0; 8],
            }
        }

        /// Decodes back to a socket address; `None` unless `AF_INET`.
        pub fn to_v4(self) -> Option<SocketAddrV4> {
            if self.sin_family != AF_INET as u16 {
                return None;
            }
            Some(SocketAddrV4::new(
                Ipv4Addr::from(u32::from_be(self.sin_addr)),
                u16::from_be(self.sin_port),
            ))
        }
    }

    /// `struct iovec`.
    #[derive(Clone, Copy)]
    #[repr(C)]
    pub struct IoVec {
        /// Buffer base address.
        pub iov_base: *mut u8,
        /// Buffer length in bytes.
        pub iov_len: usize,
    }

    /// `struct msghdr`.
    #[derive(Clone, Copy)]
    #[repr(C)]
    pub struct MsgHdr {
        /// Peer address in/out slot.
        pub msg_name: *mut SockaddrIn,
        /// Size of the address slot (updated by the kernel on receive).
        pub msg_namelen: u32,
        /// Scatter/gather array.
        pub msg_iov: *mut IoVec,
        /// Number of iovec entries.
        pub msg_iovlen: usize,
        /// Ancillary data (unused: null).
        pub msg_control: *mut u8,
        /// Ancillary data length.
        pub msg_controllen: usize,
        /// Flags on the received message.
        pub msg_flags: i32,
    }

    /// `struct mmsghdr`: one slot of a `recvmmsg`/`sendmmsg` vector.
    #[derive(Clone, Copy)]
    #[repr(C)]
    pub struct MMsgHdr {
        /// The per-message header.
        pub msg_hdr: MsgHdr,
        /// Bytes received/sent for this slot (kernel out-param).
        pub msg_len: u32,
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, addrlen: u32) -> i32;
        fn close(fd: i32) -> i32;
        fn recvmmsg(
            fd: i32,
            msgvec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut u8, // struct timespec*; always null here
        ) -> i32;
        fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        fn sendmsg(fd: i32, msg: *const MsgHdr, flags: i32) -> isize;
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    /// Set once a batched syscall comes back `ENOSYS`/`EOPNOTSUPP`
    /// (pre-2.6.33 kernels, some sandboxes/seccomp filters): every
    /// transport then stays on the portable one-datagram path.
    static MMSG_UNAVAILABLE: AtomicBool = AtomicBool::new(false);

    /// Whether the batched syscalls are believed available. Optimistic
    /// until proven otherwise at runtime.
    pub fn mmsg_available() -> bool {
        !MMSG_UNAVAILABLE.load(Ordering::Relaxed)
    }

    /// Classifies an error from a batched syscall: `true` means the
    /// syscall itself is unsupported here (now remembered globally), not
    /// that this particular call failed.
    pub fn note_mmsg_error(err: &io::Error) -> bool {
        if matches!(err.raw_os_error(), Some(ENOSYS) | Some(EOPNOTSUPP)) {
            MMSG_UNAVAILABLE.store(true, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// One non-blocking `recvmmsg` call over `hdrs`.
    ///
    /// # Safety
    ///
    /// Every `msg_hdr` in `hdrs` must point at live, writable name/iovec
    /// storage for the duration of the call.
    pub unsafe fn recv_mmsg(fd: i32, hdrs: &mut [MMsgHdr]) -> io::Result<usize> {
        let rc = recvmmsg(
            fd,
            hdrs.as_mut_ptr(),
            hdrs.len() as u32,
            MSG_DONTWAIT,
            std::ptr::null_mut(),
        );
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }

    /// One non-blocking `sendmmsg` call over `hdrs`; returns how many
    /// messages the kernel accepted (an error is returned only when the
    /// *first* message fails).
    ///
    /// # Safety
    ///
    /// Every `msg_hdr` in `hdrs` must point at live name/iovec storage
    /// for the duration of the call.
    pub unsafe fn send_mmsg(fd: i32, hdrs: &mut [MMsgHdr]) -> io::Result<usize> {
        let rc = sendmmsg(fd, hdrs.as_mut_ptr(), hdrs.len() as u32, MSG_DONTWAIT);
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }

    /// Set once plain `sendmsg` comes back `ENOSYS`/`EOPNOTSUPP`
    /// (exotic sandboxes only — the syscall predates Linux itself):
    /// single-datagram sends then fall back to gather + `send_to`.
    static SENDMSG_UNAVAILABLE: AtomicBool = AtomicBool::new(false);

    /// Whether single-datagram scatter-gather sends (`sendmsg`) are
    /// believed available. Optimistic until proven otherwise at runtime.
    pub fn sendmsg_available() -> bool {
        !SENDMSG_UNAVAILABLE.load(Ordering::Relaxed)
    }

    /// Classifies an error from `sendmsg`: `true` means the syscall
    /// itself is unsupported here (now remembered globally), not that
    /// this particular call failed.
    pub fn note_sendmsg_error(err: &io::Error) -> bool {
        if matches!(err.raw_os_error(), Some(ENOSYS) | Some(EOPNOTSUPP)) {
            SENDMSG_UNAVAILABLE.store(true, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// One non-blocking `sendmsg` call; returns the bytes sent.
    ///
    /// # Safety
    ///
    /// `hdr` must point at live name/iovec storage for the duration of
    /// the call.
    pub unsafe fn send_msg(fd: i32, hdr: &MsgHdr) -> io::Result<usize> {
        let rc = sendmsg(fd, hdr, MSG_DONTWAIT);
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }

    /// Pins the calling thread to `cpu` via `sched_setaffinity` (the
    /// paper pins one polling thread per physical core).
    pub fn pin_current_thread(cpu: usize) -> io::Result<()> {
        const CPU_SETSIZE: usize = 1024;
        if cpu >= CPU_SETSIZE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("cpu {cpu} outside the {CPU_SETSIZE}-cpu affinity mask"),
            ));
        }
        let mut mask = [0u64; CPU_SETSIZE / 64];
        mask[cpu / 64] |= 1u64 << (cpu % 64);
        // pid 0 = the calling thread.
        let rc = unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    fn set_opt(fd: i32, opt: i32, value: i32) -> io::Result<()> {
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                opt,
                &value,
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    /// Creates, configures and binds a `SO_REUSEPORT` UDP socket.
    pub fn bind_reuseport_udp(addr: SocketAddrV4, buffer_bytes: usize) -> io::Result<UdpSocket> {
        let fd = unsafe { socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let result = (|| {
            set_opt(fd, SO_REUSEADDR, 1)?;
            set_opt(fd, SO_REUSEPORT, 1)?;
            // Best-effort buffer sizing: the kernel clamps to
            // net.core.{r,w}mem_max, which is fine.
            let _ = set_opt(fd, SO_SNDBUF, buffer_bytes.min(i32::MAX as usize) as i32);
            let _ = set_opt(fd, SO_RCVBUF, buffer_bytes.min(i32::MAX as usize) as i32);
            let raw = SockaddrIn::from_v4(addr);
            let rc = unsafe { bind(fd, &raw, std::mem::size_of::<SockaddrIn>() as u32) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        })();
        match result {
            Ok(()) => Ok(unsafe { UdpSocket::from_raw_fd(fd) }),
            Err(e) => {
                unsafe { close(fd) };
                Err(e)
            }
        }
    }
}

/// Portable fallback: plain `std` bind (no `SO_REUSEPORT`, no batched
/// syscalls). Distinct per-queue ports make `SO_REUSEPORT` optional for
/// correctness, and transports fall back to one syscall per datagram.
#[cfg(not(target_os = "linux"))]
mod portable {
    use std::io;
    use std::net::{SocketAddrV4, UdpSocket};

    /// Binds a plain UDP socket; `buffer_bytes` is advisory only here.
    pub fn bind_reuseport_udp(addr: SocketAddrV4, _buffer_bytes: usize) -> io::Result<UdpSocket> {
        UdpSocket::bind(addr)
    }

    /// Batched syscalls are never available off Linux.
    pub fn mmsg_available() -> bool {
        false
    }

    /// Off Linux every batched-syscall error means "unsupported".
    pub fn note_mmsg_error(_err: &io::Error) -> bool {
        true
    }

    /// Scatter-gather `sendmsg` is never available off Linux; senders
    /// gather into a contiguous buffer and use `send_to`.
    pub fn sendmsg_available() -> bool {
        false
    }

    /// Off Linux the one-datagram sender is already the `send_to`
    /// fallback, so its errors are real send failures, never a missing
    /// syscall: always `false` (returning `true` would make the caller
    /// retry the same failing send forever).
    pub fn note_sendmsg_error(_err: &io::Error) -> bool {
        false
    }

    /// Thread pinning is unsupported off Linux.
    pub fn pin_current_thread(_cpu: usize) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "thread pinning requires Linux sched_setaffinity",
        ))
    }
}
