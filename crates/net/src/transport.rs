//! The [`Transport`] trait: the multi-queue packet I/O contract.

use minos_wire::packet::{Endpoint, Packet};

/// Aggregate transport statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Packets received across all queues.
    pub rx_packets: u64,
    /// Payload + header bytes received.
    pub rx_bytes: u64,
    /// Packets transmitted across all queues.
    pub tx_packets: u64,
    /// Payload + header bytes transmitted.
    pub tx_bytes: u64,
    /// Packets dropped on transmit (full ring / full socket buffer).
    pub tx_dropped: u64,
}

/// Multi-queue packet I/O.
///
/// The contract mirrors the paper's NIC model and the DPDK ring API the
/// virtual NIC exposes:
///
/// * A transport owns `num_queues` RX/TX queue pairs. Queue `q` is the
///   target clients select by sending to destination port
///   `base_port + q`.
/// * Each RX queue has one *primary* consumer (its owning core), but
///   concurrent readers must be safe — Minos small cores also drain the
///   RX queues of large cores (§3).
/// * Packets move in batches ([`Transport::rx_burst`] /
///   [`Transport::tx_burst`], §4.1: "Requests are moved in batches to
///   further limit overhead").
/// * [`Transport::tx_push`] routes by the packet's *destination*
///   metadata ([`Packet::meta`]); `queue` names the local TX queue the
///   send is charged to.
///
/// The trait is object-safe: engines that don't want a generic
/// parameter can hold an `Arc<dyn Transport>`.
pub trait Transport: Send + Sync {
    /// Number of RX/TX queue pairs.
    fn num_queues(&self) -> u16;

    /// Dequeues up to `max` packets from RX queue `queue` into `out`,
    /// returning how many were moved.
    fn rx_burst(&self, queue: u16, out: &mut Vec<Packet>, max: usize) -> usize;

    /// Dequeues a single packet from RX queue `queue` (the one-at-a-time
    /// steal path, where batching would re-introduce head-of-line
    /// blocking — paper §5.2).
    fn rx_pop_one(&self, queue: u16) -> Option<Packet> {
        let mut out = Vec::with_capacity(1);
        if self.rx_burst(queue, &mut out, 1) == 1 {
            out.pop()
        } else {
            None
        }
    }

    /// Current depth of RX queue `queue`, or 0 where unknowable (kernel
    /// sockets don't expose their backlog).
    fn rx_len(&self, queue: u16) -> usize {
        let _ = queue;
        0
    }

    /// Enqueues one packet for transmission on TX queue `queue`,
    /// addressed by the packet's destination metadata. Returns `false`
    /// on tail drop (full ring, full socket buffer), as NIC hardware
    /// drops on a full TX ring.
    fn tx_push(&self, queue: u16, packet: Packet) -> bool;

    /// Transmits a batch, draining `packets`; returns how many were
    /// accepted. Stops at the first tail drop (the remaining packets
    /// are dropped too, preserving per-queue FIFO order on the wire).
    fn tx_burst(&self, queue: u16, packets: &mut Vec<Packet>) -> usize {
        let mut sent = 0;
        for pkt in packets.drain(..) {
            if !self.tx_push(queue, pkt) {
                break;
            }
            sent += 1;
        }
        sent
    }

    /// The endpoint identity of local queue `queue` — what the transport
    /// writes as the source of packets it synthesizes, and what peers
    /// should address to reach this queue.
    fn local_endpoint(&self, queue: u16) -> Endpoint;

    /// Statistics snapshot.
    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }
}
