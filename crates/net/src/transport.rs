//! The [`Transport`] trait: the multi-queue packet I/O contract.

use minos_wire::packet::{Endpoint, Packet, TxPacket};

/// Aggregate transport statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Packets received across all queues.
    pub rx_packets: u64,
    /// Payload + header bytes received.
    pub rx_bytes: u64,
    /// Packets transmitted across all queues.
    pub tx_packets: u64,
    /// Payload + header bytes transmitted.
    pub tx_bytes: u64,
    /// Packets dropped on transmit (full ring / full socket buffer).
    pub tx_dropped: u64,
    /// Payload *segment* bytes the transport had to copy to put frames
    /// on the wire. The UDP backend hands segment iovecs straight to
    /// the kernel, so this stays 0 there — the asserted "zero value-byte
    /// copies on the send path" invariant. The in-process virtual wire
    /// must materialize contiguous frames (its stand-in for DMA) and
    /// counts every gathered segment byte here honestly.
    pub tx_copied_bytes: u64,
}

/// Multi-queue packet I/O.
///
/// The contract mirrors the paper's NIC model and the DPDK ring API the
/// virtual NIC exposes:
///
/// * A transport owns `num_queues` RX/TX queue pairs. Queue `q` is the
///   target clients select by sending to destination port
///   `base_port + q`.
/// * Each RX queue has one *primary* consumer (its owning core), but
///   concurrent readers must be safe — Minos small cores also drain the
///   RX queues of large cores (§3).
/// * Packets move in batches ([`Transport::rx_burst`] /
///   [`Transport::tx_frames`], §4.1: "Requests are moved in batches to
///   further limit overhead").
/// * The primary send path is [`Transport::tx_frames`]: scatter-gather
///   [`TxPacket`]s whose value segments the backend forwards without
///   copying wherever the underlying I/O allows (`sendmsg`/`sendmmsg`
///   iovecs on the UDP backend). [`Transport::tx_push`] and
///   [`Transport::tx_burst`] are compatibility shims layered on top:
///   they wrap contiguous payloads as single-segment frames (an `O(1)`
///   refcount bump, no copy) and forward to `tx_frames`.
/// * Sends route by each packet's *destination* metadata
///   ([`TxPacket::meta`]); `queue` names the local TX queue the send is
///   charged to.
///
/// The trait is object-safe: engines that don't want a generic
/// parameter can hold an `Arc<dyn Transport>`.
pub trait Transport: Send + Sync {
    /// Number of RX/TX queue pairs.
    fn num_queues(&self) -> u16;

    /// Dequeues up to `max` packets from RX queue `queue` into `out`,
    /// returning how many were moved.
    fn rx_burst(&self, queue: u16, out: &mut Vec<Packet>, max: usize) -> usize;

    /// Dequeues a single packet from RX queue `queue` (the one-at-a-time
    /// steal path, where batching would re-introduce head-of-line
    /// blocking — paper §5.2).
    fn rx_pop_one(&self, queue: u16) -> Option<Packet> {
        let mut out = Vec::with_capacity(1);
        if self.rx_burst(queue, &mut out, 1) == 1 {
            out.pop()
        } else {
            None
        }
    }

    /// Current depth of RX queue `queue`, or 0 where unknowable (kernel
    /// sockets don't expose their backlog).
    fn rx_len(&self, queue: u16) -> usize {
        let _ = queue;
        0
    }

    /// Transmits a batch of scatter-gather frames on TX queue `queue`,
    /// draining `frames`; returns how many were accepted. This is the
    /// *primary* send method: each [`TxPacket`] is addressed by its own
    /// destination metadata, its inline header region and refcounted
    /// value segments reach the wire without the transport copying
    /// segment bytes wherever the backend supports gather I/O (see
    /// [`TransportStats::tx_copied_bytes`]). Stops at the first tail
    /// drop (the remaining frames are dropped too, preserving per-queue
    /// FIFO order on the wire).
    fn tx_frames(&self, queue: u16, frames: &mut Vec<TxPacket>) -> usize;

    /// Enqueues one contiguous packet for transmission on TX queue
    /// `queue`, addressed by the packet's destination metadata. Returns
    /// `false` on tail drop (full ring, full socket buffer), as NIC
    /// hardware drops on a full TX ring. A shim over
    /// [`Transport::tx_frames`]: the payload becomes a single-segment
    /// frame without copying.
    fn tx_push(&self, queue: u16, packet: Packet) -> bool {
        let mut frames = vec![TxPacket::from_packet(packet)];
        self.tx_frames(queue, &mut frames) == 1
    }

    /// Transmits a batch of contiguous packets, draining `packets`;
    /// returns how many were accepted. A shim over
    /// [`Transport::tx_frames`] with the same FIFO tail-drop contract;
    /// each payload rides as a single-segment frame, uncopied.
    fn tx_burst(&self, queue: u16, packets: &mut Vec<Packet>) -> usize {
        let mut frames: Vec<TxPacket> = packets.drain(..).map(TxPacket::from_packet).collect();
        self.tx_frames(queue, &mut frames)
    }

    /// The endpoint identity of local queue `queue` — what the transport
    /// writes as the source of packets it synthesizes, and what peers
    /// should address to reach this queue.
    fn local_endpoint(&self, queue: u16) -> Endpoint;

    /// Statistics snapshot.
    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }

    /// Contributes this backend's metrics under canonical dotted names
    /// (`transport.*`, plus backend-specific families like `pool.*`) —
    /// the [`minos_obs::Collector`] hook every backend shares, so the
    /// server registers whatever transport it was started with without
    /// knowing the concrete type. The default renders
    /// [`Transport::stats`]; backends with richer counters override and
    /// extend.
    fn collect_metrics(&self, out: &mut Vec<(String, minos_obs::MetricValue)>) {
        crate::metrics::push_transport_stats(out, &self.stats());
    }
}
