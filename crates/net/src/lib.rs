//! # minos-net: packet I/O behind a multi-queue [`Transport`] trait
//!
//! The Minos datapath (paper §3) is built around *hardware dispatch*: a
//! multi-queue NIC steers each request packet to the RX queue named by
//! its UDP destination port, and each core owns one RX/TX queue pair.
//! The seed reproduction hard-coded that contract to the in-process
//! [`minos_nic::VirtualNic`]; this crate abstracts it so the same engine
//! code drives either simulated or real packets:
//!
//! * [`Transport`] — the queue-pair contract: batch [`Transport::rx_burst`]
//!   / [`Transport::tx_burst`], one primary consumer per RX queue,
//!   mirroring the DPDK-style ring API of the virtual NIC.
//! * [`VirtualTransport`] / [`VirtualClientTransport`] — adapters over
//!   [`minos_nic::VirtualNic`] (the trait is also implemented directly
//!   for [`minos_nic::VirtualNic`], which the server uses by default).
//! * [`UdpTransport`] — real `SO_REUSEPORT` UDP sockets, one per RX
//!   queue: queue `q` listens on `base_port + q`, so the kernel's port
//!   demultiplexing plays the role of the NIC's Flow Director and
//!   clients still address a specific RX queue by destination port,
//!   preserving the paper's client-addresses-queue model. Bursts move
//!   through batched `recvmmsg`/`sendmmsg` syscalls ([`batch`]) — the
//!   kernel-sockets analog of the paper's §4.1 DPDK bursts — with a
//!   runtime-detected one-datagram fallback.
//! * [`pool`] — the slab-backed RX buffer pool: `recvmmsg`/`recv_from`
//!   land datagrams directly in pooled, refcounted buffers that return
//!   to the slab when the engine drops the payload, making the
//!   steady-state receive path allocation-free end to end.
//! * [`affinity`] — thread→core pinning (`sched_setaffinity`), used by
//!   the `minos-server` polling threads and `minos-loadgen` clients.
//! * [`testport`] — PID-salted port-range allocation for test suites
//!   binding `SO_REUSEPORT` sockets, so concurrent test processes on
//!   one machine cannot cross-deliver through shared ports.
//! * [`FaultTransport`] — a chaos wrapper over any backend injecting
//!   deterministic, seeded faults (drop, burst loss, duplication,
//!   reordering, delay, queue blackhole) per [`FaultProfile`], with
//!   `fault.*` metrics; drives the chaos e2e suite and the
//!   `--fault-profile` flag of every binary.
//!
//! The primary send method is [`Transport::tx_frames`]: scatter-gather
//! [`minos_wire::TxPacket`]s whose header regions and refcounted value
//! segments reach the kernel as iovecs (`sendmsg`/`sendmmsg`), so value
//! bytes are never copied between the store and the wire — the
//! `tx_copied_bytes` gauges ([`TransportStats`], [`UdpIoStats`]) assert
//! the invariant at runtime.

#![warn(missing_docs)]

pub mod affinity;
pub mod batch;
mod fault;
pub mod metrics;
pub mod pool;
mod sys;
pub mod testport;
mod transport;
mod udp;
mod virt;

pub use fault::{DirectionFaults, FaultProfile, FaultStats, FaultTransport};
pub use pool::{BufferPool, PoolStats, PooledBuf};
pub use transport::{Transport, TransportStats};
pub use udp::{endpoint_for, UdpConfig, UdpIoStats, UdpTransport, DEFAULT_SYSCALL_BATCH};
pub use virt::{VirtualClientTransport, VirtualTransport};
