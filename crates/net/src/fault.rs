//! [`FaultTransport`]: a deterministic chaos wrapper over any
//! [`Transport`].
//!
//! The wrapper injects seeded faults on both directions of the packet
//! flow — drop probability, burst loss, duplication, a reordering
//! window, a per-packet delay distribution, and a queue blackhole (a
//! dead core whose RX ring is drained into the void) — so the zero-loss
//! methodology, the client's retry/hedging machinery and the server's
//! overload valve can be exercised over the *real* UDP datapath without
//! a real bad network.
//!
//! Every fault decision is a pure function of `(seed, direction, queue,
//! packet sequence number)`. The sequence number counts packets in
//! arrival order, which both UDP syscall paths
//! (`recvmmsg`/`sendmmsg` and the one-datagram fallback) preserve, so
//! **the same seed and the same packet schedule produce the same fault
//! decisions regardless of batch geometry** — a chaos CI failure seen
//! on the batched path reproduces under `--batch 1` and vice versa
//! (property-tested in `tests/fault_determinism.rs`).
//!
//! Reordering is likewise count-based, not time-based: a packet
//! displaced by `d` is held until `d` later packets have passed it (or
//! until a short quiescence grace expires, so tails flush when traffic
//! stops). Counters for every injected fault are exported under
//! `fault.*` through the standard [`Transport::collect_metrics`] hook.

use crate::transport::{Transport, TransportStats};
use minos_wire::packet::{Endpoint, Packet, TxPacket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Hard cap on packets held per lane (reorder/delay buffers), beyond
/// which the oldest are force-released — bounds memory under any
/// profile.
const MAX_HELD_PER_LANE: usize = 4096;

/// Faults applied to one direction of the packet flow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DirectionFaults {
    /// Per-packet drop probability in `[0, 1]`.
    pub drop: f64,
    /// Extra consecutive packets lost after each probability-triggered
    /// drop (correlated/burst loss; `0` = independent drops).
    pub burst: u32,
    /// Per-packet duplication probability in `[0, 1]` (the duplicate
    /// arrives immediately behind the original).
    pub dup: f64,
    /// Reordering window in packets: each packet is displaced by a
    /// seeded `0..=reorder` later arrivals (`0` = in order).
    pub reorder: u32,
    /// Upper bound of the seeded uniform per-packet delay, in
    /// microseconds (`0` = no added delay).
    pub delay_us: u64,
}

impl DirectionFaults {
    /// No faults in this direction.
    pub const NONE: DirectionFaults = DirectionFaults {
        drop: 0.0,
        burst: 0,
        dup: 0.0,
        reorder: 0,
        delay_us: 0,
    };

    fn is_noop(&self) -> bool {
        self.drop == 0.0 && self.dup == 0.0 && self.reorder == 0 && self.delay_us == 0
    }
}

/// A complete fault profile: per-direction faults, an optional RX queue
/// blackhole, the quiescence grace for reordered packets, and the seed
/// every decision derives from.
///
/// Parsed from the `--fault-profile` grammar shared by `minos-server`,
/// `minos-loadgen` and `minos-figures`:
///
/// ```text
/// drop=0.01,dup=0.001,reorder=8,seed=42
/// ```
///
/// Keys: `drop`, `burst`, `dup`, `reorder`, `delay_us` (each optionally
/// prefixed `rx.` or `tx.` to scope one direction; bare keys set both),
/// plus `blackhole=<queue>`, `reorder_hold_us=<us>` and `seed=<n>`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultProfile {
    /// Faults on the receive direction.
    pub rx: DirectionFaults,
    /// Faults on the transmit direction.
    pub tx: DirectionFaults,
    /// RX queue whose packets are swallowed entirely — the dead core.
    pub blackhole: Option<u16>,
    /// How long a reorder-displaced packet may wait for overtakers
    /// before the quiescence flush releases it anyway (µs).
    pub reorder_hold_us: u64,
    /// Seed every fault decision derives from.
    pub seed: u64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            rx: DirectionFaults::NONE,
            tx: DirectionFaults::NONE,
            blackhole: None,
            reorder_hold_us: 2_000,
            seed: 42,
        }
    }
}

impl FaultProfile {
    /// Parses the `--fault-profile` grammar (see the type docs).
    pub fn parse(s: &str) -> Result<FaultProfile, String> {
        let mut p = FaultProfile::default();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault profile: `{part}` is not key=value"))?;
            let (dirs, leaf): (&mut [&mut DirectionFaults], &str) = match key.split_once('.') {
                Some(("rx", leaf)) => (&mut [&mut p.rx], leaf),
                Some(("tx", leaf)) => (&mut [&mut p.tx], leaf),
                Some((other, _)) => {
                    return Err(format!("fault profile: unknown direction `{other}`"))
                }
                None => (&mut [&mut p.rx, &mut p.tx], key),
            };
            let prob = |what: &str| -> Result<f64, String> {
                let v: f64 = value
                    .parse()
                    .map_err(|e| format!("fault profile: {what}: {e}"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("fault profile: {what} must be in [0, 1], got {v}"));
                }
                Ok(v)
            };
            let int = |what: &str| -> Result<u64, String> {
                value
                    .parse()
                    .map_err(|e| format!("fault profile: {what}: {e}"))
            };
            match leaf {
                "drop" => {
                    let v = prob("drop")?;
                    dirs.iter_mut().for_each(|d| d.drop = v);
                }
                "dup" => {
                    let v = prob("dup")?;
                    dirs.iter_mut().for_each(|d| d.dup = v);
                }
                "burst" => {
                    let v = int("burst")? as u32;
                    dirs.iter_mut().for_each(|d| d.burst = v);
                }
                "reorder" => {
                    let v = int("reorder")?;
                    if v as usize > MAX_HELD_PER_LANE / 2 {
                        return Err(format!("fault profile: reorder window {v} too large"));
                    }
                    dirs.iter_mut().for_each(|d| d.reorder = v as u32);
                }
                "delay_us" => {
                    let v = int("delay_us")?;
                    dirs.iter_mut().for_each(|d| d.delay_us = v);
                }
                "blackhole" if key == leaf => p.blackhole = Some(int("blackhole")? as u16),
                "reorder_hold_us" if key == leaf => p.reorder_hold_us = int("reorder_hold_us")?,
                "seed" if key == leaf => p.seed = int("seed")?,
                other => return Err(format!("fault profile: unknown key `{other}`")),
            }
        }
        Ok(p)
    }

    /// True when the profile injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.rx.is_noop() && self.tx.is_noop() && self.blackhole.is_none()
    }
}

/// Counters of injected faults (all monotonic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// RX packets dropped (probability + burst).
    pub rx_dropped: u64,
    /// RX packets duplicated.
    pub rx_duplicated: u64,
    /// RX packets assigned a non-zero reorder displacement.
    pub rx_reordered: u64,
    /// RX packets assigned a non-zero delay.
    pub rx_delayed: u64,
    /// RX packets swallowed by the queue blackhole.
    pub rx_blackholed: u64,
    /// TX packets dropped (probability + burst).
    pub tx_dropped: u64,
    /// TX packets duplicated.
    pub tx_duplicated: u64,
    /// TX packets assigned a non-zero reorder displacement.
    pub tx_reordered: u64,
    /// TX packets assigned a non-zero delay.
    pub tx_delayed: u64,
}

impl FaultStats {
    /// Adds `other` field-by-field — merging per-thread injector stats
    /// into one report, the way the loadgen merges its client threads.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.rx_dropped += other.rx_dropped;
        self.rx_duplicated += other.rx_duplicated;
        self.rx_reordered += other.rx_reordered;
        self.rx_delayed += other.rx_delayed;
        self.rx_blackholed += other.rx_blackholed;
        self.tx_dropped += other.tx_dropped;
        self.tx_duplicated += other.tx_duplicated;
        self.tx_reordered += other.tx_reordered;
        self.tx_delayed += other.tx_delayed;
    }

    /// Total injected events across both directions.
    pub fn total(&self) -> u64 {
        self.rx_dropped
            + self.rx_duplicated
            + self.rx_reordered
            + self.rx_delayed
            + self.rx_blackholed
            + self.tx_dropped
            + self.tx_duplicated
            + self.tx_reordered
            + self.tx_delayed
    }
}

#[derive(Default)]
struct AtomicFaultStats {
    rx_dropped: AtomicU64,
    rx_duplicated: AtomicU64,
    rx_reordered: AtomicU64,
    rx_delayed: AtomicU64,
    rx_blackholed: AtomicU64,
    tx_dropped: AtomicU64,
    tx_duplicated: AtomicU64,
    tx_reordered: AtomicU64,
    tx_delayed: AtomicU64,
    rx_held: AtomicU64,
    tx_held: AtomicU64,
}

/// A packet held back for reordering or delay.
struct Held<P> {
    /// The packet may be overtaken until the lane's arrival sequence
    /// reaches this rank (its own sequence number + displacement).
    rank: u64,
    /// Arrival sequence: the stable tie-break between equal ranks, so
    /// release order never depends on hold-buffer bookkeeping.
    seq: u64,
    /// Earliest wall-clock release (the delay fault; 0 = immediately).
    release_at_ns: u64,
    /// Quiescence flush deadline: past this instant the packet goes out
    /// even if fewer than `displacement` overtakers ever arrived.
    grace_ns: u64,
    pkt: P,
}

/// Per-direction, per-queue fault pipeline state. All decisions are
/// derived from `seq`, never from batch sizes or wall clock, so both
/// syscall paths decide identically.
struct Lane<P> {
    /// Packets seen on this lane, in arrival order.
    seq: u64,
    /// Remaining packets of a triggered loss burst.
    burst_left: u32,
    hold: Vec<Held<P>>,
}

impl<P> Default for Lane<P> {
    fn default() -> Self {
        Lane {
            seq: 0,
            burst_left: 0,
            hold: Vec::new(),
        }
    }
}

const DIR_RX: u64 = 0x52;
const DIR_TX: u64 = 0x54;
const KIND_DROP: u64 = 1;
const KIND_DUP: u64 = 2;
const KIND_REORDER: u64 = 3;
const KIND_DELAY: u64 = 4;

fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seeded decision word for packet `seq` on `(direction, queue)`.
fn decision(seed: u64, dir: u64, queue: u16, seq: u64, kind: u64) -> u64 {
    mix64(
        mix64(seed ^ (dir << 56) ^ (u64::from(queue) << 40) ^ kind)
            .wrapping_add(mix64(seq.wrapping_mul(0x2545_f491_4f6c_dd1d))),
    )
}

/// Maps a decision word onto `[0, 1)`.
fn unit(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// A [`Transport`] wrapper injecting the deterministic, seeded faults of
/// a [`FaultProfile`] on both directions. See the module docs for the
/// determinism contract. Holds the inner transport by `Arc`, so callers
/// keep a typed handle to backend-specific extras
/// (`UdpTransport::io_stats` and friends) while the engine polls the
/// wrapper.
pub struct FaultTransport<T: Transport> {
    inner: Arc<T>,
    profile: FaultProfile,
    clock: Instant,
    rx_lanes: Vec<Mutex<Lane<Packet>>>,
    tx_lanes: Vec<Mutex<Lane<TxPacket>>>,
    stats: AtomicFaultStats,
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner` with `profile`.
    pub fn new(inner: Arc<T>, profile: FaultProfile) -> Self {
        let queues = inner.num_queues() as usize;
        FaultTransport {
            profile,
            clock: Instant::now(),
            rx_lanes: (0..queues).map(|_| Mutex::new(Lane::default())).collect(),
            tx_lanes: (0..queues).map(|_| Mutex::new(Lane::default())).collect(),
            stats: AtomicFaultStats::default(),
            inner,
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &Arc<T> {
        &self.inner
    }

    /// The profile in force.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Snapshot of the injected-fault counters.
    pub fn fault_stats(&self) -> FaultStats {
        let s = &self.stats;
        FaultStats {
            rx_dropped: s.rx_dropped.load(Ordering::Relaxed),
            rx_duplicated: s.rx_duplicated.load(Ordering::Relaxed),
            rx_reordered: s.rx_reordered.load(Ordering::Relaxed),
            rx_delayed: s.rx_delayed.load(Ordering::Relaxed),
            rx_blackholed: s.rx_blackholed.load(Ordering::Relaxed),
            tx_dropped: s.tx_dropped.load(Ordering::Relaxed),
            tx_duplicated: s.tx_duplicated.load(Ordering::Relaxed),
            tx_reordered: s.tx_reordered.load(Ordering::Relaxed),
            tx_delayed: s.tx_delayed.load(Ordering::Relaxed),
        }
    }

    fn now_ns(&self) -> u64 {
        self.clock.elapsed().as_nanos() as u64
    }

    /// Runs one packet through a direction's fault pipeline: decide
    /// drop/burst, duplication, displacement and delay from its lane
    /// sequence number, and park survivors in the hold buffer.
    #[allow(clippy::too_many_arguments)]
    fn admit<P: Clone>(
        &self,
        lane: &mut Lane<P>,
        d: &DirectionFaults,
        dir: u64,
        queue: u16,
        now: u64,
        counters: &DirCounters<'_>,
        pkt: P,
    ) {
        let seq = lane.seq;
        lane.seq += 1;
        if lane.burst_left > 0 {
            lane.burst_left -= 1;
            counters.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let seed = self.profile.seed;
        if d.drop > 0.0 && unit(decision(seed, dir, queue, seq, KIND_DROP)) < d.drop {
            lane.burst_left = d.burst;
            counters.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let displacement = if d.reorder > 0 {
            decision(seed, dir, queue, seq, KIND_REORDER) % (u64::from(d.reorder) + 1)
        } else {
            0
        };
        if displacement > 0 {
            counters.reordered.fetch_add(1, Ordering::Relaxed);
        }
        let delay_ns = if d.delay_us > 0 {
            (unit(decision(seed, dir, queue, seq, KIND_DELAY)) * d.delay_us as f64 * 1_000.0) as u64
        } else {
            0
        };
        if delay_ns > 0 {
            counters.delayed.fetch_add(1, Ordering::Relaxed);
        }
        let copies = if d.dup > 0.0 && unit(decision(seed, dir, queue, seq, KIND_DUP)) < d.dup {
            counters.duplicated.fetch_add(1, Ordering::Relaxed);
            2
        } else {
            1
        };
        let grace_ns = now + self.profile.reorder_hold_us * 1_000;
        for _ in 0..copies {
            lane.hold.push(Held {
                rank: seq + displacement,
                seq,
                release_at_ns: now + delay_ns,
                grace_ns,
                pkt: pkt.clone(),
            });
            counters.held.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Releases every eligible held packet (in rank order, up to `max`)
    /// into `emit`. A packet is eligible once its delay deadline has
    /// passed and either all its potential overtakers have arrived
    /// (`rank <= seq`, the count-based deterministic rule) or the
    /// quiescence grace expired. Overflow past [`MAX_HELD_PER_LANE`]
    /// force-releases oldest-rank first.
    fn release<P>(
        &self,
        lane: &mut Lane<P>,
        now: u64,
        max: usize,
        held_gauge: &AtomicU64,
        mut emit: impl FnMut(P),
    ) -> usize {
        let mut released = 0;
        while released < max && !lane.hold.is_empty() {
            let overflow = lane.hold.len() > MAX_HELD_PER_LANE;
            let mut best: Option<usize> = None;
            for (i, h) in lane.hold.iter().enumerate() {
                let eligible = overflow
                    || (h.release_at_ns <= now && (h.rank <= lane.seq || h.grace_ns <= now));
                if eligible
                    && best.is_none_or(|b| (h.rank, h.seq) < (lane.hold[b].rank, lane.hold[b].seq))
                {
                    best = Some(i);
                }
            }
            let Some(i) = best else { break };
            emit(lane.hold.swap_remove(i).pkt);
            held_gauge.fetch_sub(1, Ordering::Relaxed);
            released += 1;
        }
        released
    }
}

/// The per-direction counter handles [`FaultTransport::admit`] writes
/// into, so RX and TX share one pipeline implementation.
struct DirCounters<'a> {
    dropped: &'a AtomicU64,
    duplicated: &'a AtomicU64,
    reordered: &'a AtomicU64,
    delayed: &'a AtomicU64,
    held: &'a AtomicU64,
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn num_queues(&self) -> u16 {
        self.inner.num_queues()
    }

    fn rx_burst(&self, queue: u16, out: &mut Vec<Packet>, max: usize) -> usize {
        if self.profile.blackhole == Some(queue) {
            // The dead core: drain its ring into the void so the kernel
            // buffer doesn't just defer the loss, and count every
            // swallowed packet.
            let mut void = Vec::new();
            let eaten = self.inner.rx_burst(queue, &mut void, max.max(64));
            if eaten > 0 {
                self.stats
                    .rx_blackholed
                    .fetch_add(eaten as u64, Ordering::Relaxed);
            }
            return 0;
        }
        if self.profile.rx.is_noop() {
            return self.inner.rx_burst(queue, out, max);
        }
        let mut staged = Vec::new();
        self.inner.rx_burst(queue, &mut staged, max);
        let now = self.now_ns();
        let counters = DirCounters {
            dropped: &self.stats.rx_dropped,
            duplicated: &self.stats.rx_duplicated,
            reordered: &self.stats.rx_reordered,
            delayed: &self.stats.rx_delayed,
            held: &self.stats.rx_held,
        };
        let mut lane = self.rx_lanes[queue as usize].lock().expect("rx lane");
        for pkt in staged.drain(..) {
            self.admit(
                &mut lane,
                &self.profile.rx,
                DIR_RX,
                queue,
                now,
                &counters,
                pkt,
            );
        }
        self.release(&mut lane, now, max, &self.stats.rx_held, |pkt| {
            out.push(pkt)
        })
    }

    fn rx_len(&self, queue: u16) -> usize {
        self.inner.rx_len(queue)
    }

    fn tx_frames(&self, queue: u16, frames: &mut Vec<TxPacket>) -> usize {
        if self.profile.tx.is_noop() {
            return self.inner.tx_frames(queue, frames);
        }
        let accepted = frames.len();
        let now = self.now_ns();
        let counters = DirCounters {
            dropped: &self.stats.tx_dropped,
            duplicated: &self.stats.tx_duplicated,
            reordered: &self.stats.tx_reordered,
            delayed: &self.stats.tx_delayed,
            held: &self.stats.tx_held,
        };
        let mut forward: Vec<TxPacket> = Vec::new();
        {
            let mut lane = self.tx_lanes[queue as usize].lock().expect("tx lane");
            for pkt in frames.drain(..) {
                self.admit(
                    &mut lane,
                    &self.profile.tx,
                    DIR_TX,
                    queue,
                    now,
                    &counters,
                    pkt,
                );
            }
            self.release(&mut lane, now, usize::MAX, &self.stats.tx_held, |pkt| {
                forward.push(pkt)
            });
        }
        if !forward.is_empty() {
            let _ = self.inner.tx_frames(queue, &mut forward);
        }
        // The fault layer consumed the whole burst; what it did to the
        // packets afterwards is the simulated network's business (the
        // caller's loss accounting notices, exactly as with real loss).
        accepted
    }

    fn local_endpoint(&self, queue: u16) -> Endpoint {
        self.inner.local_endpoint(queue)
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }

    fn collect_metrics(&self, out: &mut Vec<(String, minos_obs::MetricValue)>) {
        self.inner.collect_metrics(out);
        let s = self.fault_stats();
        let c = |name: &str, v: u64| (format!("fault.{name}"), minos_obs::MetricValue::Counter(v));
        out.push(c("rx_dropped", s.rx_dropped));
        out.push(c("rx_duplicated", s.rx_duplicated));
        out.push(c("rx_reordered", s.rx_reordered));
        out.push(c("rx_delayed", s.rx_delayed));
        out.push(c("rx_blackholed", s.rx_blackholed));
        out.push(c("tx_dropped", s.tx_dropped));
        out.push(c("tx_duplicated", s.tx_duplicated));
        out.push(c("tx_reordered", s.tx_reordered));
        out.push(c("tx_delayed", s.tx_delayed));
        out.push((
            "fault.held".to_string(),
            minos_obs::MetricValue::Gauge(
                (self.stats.rx_held.load(Ordering::Relaxed)
                    + self.stats.tx_held.load(Ordering::Relaxed)) as f64,
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_canonical_grammar() {
        let p = FaultProfile::parse("drop=0.01,dup=0.001,reorder=8,seed=42").unwrap();
        assert_eq!(p.rx.drop, 0.01);
        assert_eq!(p.tx.drop, 0.01);
        assert_eq!(p.rx.dup, 0.001);
        assert_eq!(p.rx.reorder, 8);
        assert_eq!(p.seed, 42);
        assert!(!p.is_noop());
    }

    #[test]
    fn parse_direction_scoping_and_extras() {
        let p = FaultProfile::parse(
            "rx.drop=0.5,tx.dup=0.25,burst=3,blackhole=2,delay_us=100,reorder_hold_us=9,seed=7",
        )
        .unwrap();
        assert_eq!(p.rx.drop, 0.5);
        assert_eq!(p.tx.drop, 0.0);
        assert_eq!(p.tx.dup, 0.25);
        assert_eq!(p.rx.dup, 0.0);
        assert_eq!(p.rx.burst, 3);
        assert_eq!(p.tx.burst, 3);
        assert_eq!(p.blackhole, Some(2));
        assert_eq!(p.rx.delay_us, 100);
        assert_eq!(p.reorder_hold_us, 9);
        assert_eq!(p.seed, 7);
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert!(FaultProfile::parse("drop=1.5").is_err());
        assert!(FaultProfile::parse("drop").is_err());
        assert!(FaultProfile::parse("zz=1").is_err());
        assert!(FaultProfile::parse("mid.drop=0.1").is_err());
        assert!(FaultProfile::parse("rx.seed=3").is_err());
        assert!(FaultProfile::parse("")
            .map(|p| p.is_noop())
            .unwrap_or(false));
    }

    #[test]
    fn decisions_depend_on_seed_and_seq() {
        let a = decision(1, DIR_RX, 0, 10, KIND_DROP);
        assert_eq!(a, decision(1, DIR_RX, 0, 10, KIND_DROP));
        assert_ne!(a, decision(2, DIR_RX, 0, 10, KIND_DROP));
        assert_ne!(a, decision(1, DIR_RX, 0, 11, KIND_DROP));
        assert_ne!(a, decision(1, DIR_TX, 0, 10, KIND_DROP));
        assert_ne!(a, decision(1, DIR_RX, 1, 10, KIND_DROP));
        assert_ne!(a, decision(1, DIR_RX, 0, 10, KIND_DUP));
    }

    #[test]
    fn unit_is_a_probability() {
        for seq in 0..1000 {
            let u = unit(decision(99, DIR_RX, 0, seq, KIND_DROP));
            assert!((0.0..1.0).contains(&u));
        }
    }
}
