//! PID-salted UDP test-port allocation.
//!
//! Test suites that bind real `SO_REUSEPORT` sockets cannot probe for
//! free ports: binding over another live test server *succeeds*, and
//! the kernel then load-balances datagrams between the two sockets,
//! silently stealing traffic. Within one process, a static allocator
//! handing out disjoint ranges solves this — but two test *processes*
//! running concurrently on one machine (debug + release suites, two CI
//! jobs, a developer's editor running tests next to a terminal) would
//! start from the same base and cross-deliver.
//!
//! [`TestPorts`] closes that hole: each suite declares a port range,
//! the range is divided into [`PID_BUCKETS`] buckets, and every
//! process allocates only inside the bucket selected by a hash of its
//! PID. Concurrent processes land in different buckets (up to hash
//! collisions, which are 16× less likely than the guaranteed collision
//! the static base produced), while allocations within one process
//! stay disjoint via an atomic cursor.
//!
//! This module is part of the public API so every test binary in the
//! workspace (and downstream users writing their own socket tests) can
//! share one implementation.

use std::sync::atomic::{AtomicU16, Ordering};

/// Number of per-process buckets a [`TestPorts`] range is divided into.
pub const PID_BUCKETS: u16 = 16;

/// A PID-salted port-range allocator for `SO_REUSEPORT` test sockets.
///
/// ```
/// static PORTS: minos_net::testport::TestPorts =
///     minos_net::testport::TestPorts::new(21_000, 25_000);
/// let base = PORTS.alloc(4); // first port of a 4-port block
/// assert!((21_000..25_000).contains(&base));
/// ```
#[derive(Debug)]
pub struct TestPorts {
    start: u16,
    end: u16,
    /// Offset of the next free port inside this process's bucket.
    next: AtomicU16,
}

impl TestPorts {
    /// An allocator handing out ports from `[start, end)`.
    pub const fn new(start: u16, end: u16) -> Self {
        assert!(start < end, "empty test-port range");
        TestPorts {
            start,
            end,
            next: AtomicU16::new(0),
        }
    }

    /// Reserves a block of `span` consecutive ports (at least 8, so
    /// neighboring allocations never abut) inside this process's
    /// PID-selected bucket and returns its first port.
    ///
    /// # Panics
    ///
    /// Panics when the bucket is exhausted — the suite should widen its
    /// range rather than risk silent `SO_REUSEPORT` cross-delivery.
    pub fn alloc(&self, span: u16) -> u16 {
        let span = span.max(8);
        let bucket_len = (self.end - self.start) / PID_BUCKETS;
        assert!(
            span <= bucket_len,
            "span {span} exceeds the {bucket_len}-port per-process bucket"
        );
        let off = self.next.fetch_add(span, Ordering::Relaxed);
        assert!(
            off.checked_add(span).is_some_and(|end| end <= bucket_len),
            "test-port bucket exhausted ({bucket_len} ports); widen the range"
        );
        self.start + pid_bucket() * bucket_len + off
    }
}

/// The bucket index this process allocates from: a mixed hash of the
/// PID, so consecutive PIDs (parallel `cargo test` spawns) spread
/// across buckets instead of clustering.
fn pid_bucket() -> u16 {
    let mut h = u64::from(std::process::id()).wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (h ^ (h >> 31)) as u16 % PID_BUCKETS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_in_range() {
        let ports = TestPorts::new(40_000, 41_600);
        let bucket_len = 1_600 / PID_BUCKETS; // 100 ports
        let a = ports.alloc(8);
        let b = ports.alloc(10);
        let c = ports.alloc(1); // clamped to 8
        assert!((40_000..41_600).contains(&a));
        assert_eq!(b, a + 8);
        assert_eq!(c, b + 10);
        // All allocations stay inside one bucket.
        let bucket_base = a - (a - 40_000) % bucket_len;
        assert!(c + 8 <= bucket_base + bucket_len);
    }

    #[test]
    #[should_panic(expected = "bucket exhausted")]
    fn exhaustion_panics_instead_of_colliding() {
        let ports = TestPorts::new(50_000, 50_160); // 10-port buckets
        let _ = ports.alloc(8);
        let _ = ports.alloc(8);
    }
}
