//! Thread-to-core pinning.
//!
//! The paper's deployment pins one busy-polling thread per physical core
//! (§5.1); without pinning, the scheduler migrates pollers between cores
//! and the per-core cache/queue affinity the dispatch model assumes is
//! lost. `minos-server --pin` and `minos-loadgen --pin` both route here.

use std::io;

/// Pins the calling thread to `cpu` (Linux `sched_setaffinity`; an
/// `Unsupported` error elsewhere). Callers treat failure as best-effort:
/// an unpinned poller is slower, not wrong.
pub fn pin_current_thread(cpu: usize) -> io::Result<()> {
    crate::sys::pin_current_thread(cpu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn pin_to_cpu0_succeeds() {
        // CPU 0 exists on every machine.
        pin_current_thread(0).expect("pin to cpu 0");
    }

    #[test]
    fn pin_out_of_range_fails() {
        assert!(pin_current_thread(1 << 20).is_err());
    }
}
