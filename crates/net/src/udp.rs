//! [`UdpTransport`]: real kernel UDP sockets behind the [`Transport`]
//! contract.
//!
//! One `SO_REUSEPORT` UDP socket per simulated RX queue: queue `q` is
//! bound to `base_port + q`, so the kernel's port demultiplexing plays
//! the role of the NIC's Flow-Director dispatch and clients address a
//! specific RX queue by destination port — exactly the paper's §3
//! client-addresses-RX-queue model, with the UDP port plane standing in
//! for queue ids. `SO_REUSEPORT` is set on every socket so multiple
//! server processes (or a restarting one) can share the port plane; with
//! one process per port the option is inert but harmless.
//!
//! On the wire each datagram carries exactly the UDP payload of the
//! virtual world (fragment header + message chunk); Ethernet/IP framing
//! is the kernel's business here. Received datagrams are re-synthesized
//! into [`Packet`]s (real peer address → [`Endpoint`]) so everything
//! above the transport — reassembly, classification, handoff — is
//! byte-identical across backends.
//!
//! # Syscall batching
//!
//! The paper's prototype moves requests in DPDK bursts (§4.1); the
//! kernel-sockets analog is `recvmmsg`/`sendmmsg`, which move up to
//! [`UdpConfig::batch`] datagrams per syscall through preallocated
//! per-queue arenas ([`crate::batch`]). Batching is on by default, falls
//! back to one-datagram syscalls at runtime where the batched calls are
//! unavailable (non-Linux, seccomp), and can be disabled with
//! `batch <= 1`. [`UdpTransport::io_stats`] reports syscall counts so
//! the savings are observable.
//!
//! # Scatter-gather TX
//!
//! The primary send method is [`Transport::tx_frames`]: each
//! [`TxPacket`] reaches the kernel as a multi-iovec gather list (inline
//! header iovec + one iovec per refcounted value segment), through
//! `sendmmsg` on the batched path and `sendmsg` on the one-datagram
//! path — so value bytes flow from the store's mempool to the wire with
//! zero copies in this layer, an invariant the
//! [`UdpIoStats::tx_copied_bytes`] gauge asserts (it moves only on the
//! no-scatter-gather fallback, i.e. off Linux).

use crate::batch::{RxArena, TxArena, RX_SLOT_LEN};
use crate::pool::{BufferPool, PoolStats, PooledBuf};
use crate::sys;
use crate::transport::{Transport, TransportStats};
use minos_wire::frame::MacAddr;
use minos_wire::packet::{synthesize, Endpoint, Packet, TxPacket};
use std::io::ErrorKind;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default maximum datagrams moved per batched syscall — the paper's RX
/// batch size `B` (§4.1).
pub const DEFAULT_SYSCALL_BATCH: usize = 32;

/// Configuration for [`UdpTransport::bind`].
#[derive(Clone, Debug)]
pub struct UdpConfig {
    /// Address to bind (the server's IP; `127.0.0.1` for loopback runs).
    pub ip: Ipv4Addr,
    /// Port of queue 0; queue `q` binds `base_port + q`.
    pub base_port: u16,
    /// Number of RX/TX queue pairs (sockets).
    pub num_queues: u16,
    /// Socket send/receive buffer size, bytes. Large fragmented replies
    /// burst hundreds of datagrams; defaults to 4 MiB.
    pub socket_buffer_bytes: usize,
    /// How long `tx_push` may retry a send that hits a full socket
    /// buffer before tail-dropping. Mirrors a NIC TX ring absorbing a
    /// burst; 0 drops immediately.
    pub tx_backoff: Duration,
    /// Maximum datagrams moved per `recvmmsg`/`sendmmsg` syscall; values
    /// `<= 1` disable batching (one `recv_from`/`send_to` per datagram).
    pub batch: usize,
    /// Slots in the RX buffer pool shared by all queues (each slot holds
    /// one MTU-sized datagram). `0` auto-sizes to
    /// `num_queues * batch * 16`, floored at 256 — enough for the
    /// in-flight bursts plus payloads the engine briefly holds. An
    /// exhausted pool falls back to per-datagram allocation and counts a
    /// miss ([`UdpIoStats::pool_misses`]); it never fails.
    pub pool_slots: usize,
}

impl UdpConfig {
    /// A loopback server config: `127.0.0.1`, `num_queues` sockets from
    /// `base_port`.
    pub fn loopback(base_port: u16, num_queues: u16) -> Self {
        UdpConfig {
            ip: Ipv4Addr::LOCALHOST,
            base_port,
            num_queues,
            socket_buffer_bytes: 4 << 20,
            tx_backoff: Duration::from_millis(20),
            batch: DEFAULT_SYSCALL_BATCH,
            pool_slots: 0,
        }
    }

    /// A single-queue client config on an ephemeral port: what
    /// [`UdpTransport::bind_client`] uses, exposed so callers can adjust
    /// the socket buffer, batch size, or backoff first.
    pub fn client(ip: Ipv4Addr) -> Self {
        UdpConfig {
            ip,
            base_port: 0, // ephemeral
            num_queues: 1,
            socket_buffer_bytes: 4 << 20,
            tx_backoff: Duration::from_millis(20),
            batch: DEFAULT_SYSCALL_BATCH,
            pool_slots: 0,
        }
    }

    /// The pool size [`UdpConfig::pool_slots`] of `0` resolves to.
    fn effective_pool_slots(&self) -> usize {
        if self.pool_slots > 0 {
            self.pool_slots
        } else {
            (self.num_queues as usize * self.batch.max(1) * 16).max(256)
        }
    }
}

/// Syscall-level I/O statistics of a [`UdpTransport`]: how many batched
/// or singleton syscalls moved how many datagrams. `rx_packets /
/// rx_syscalls` is the achieved RX batching factor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UdpIoStats {
    /// Receive syscalls issued (`recvmmsg` or `recv_from`).
    pub rx_syscalls: u64,
    /// Transmit syscalls issued (`sendmmsg` or `send_to`).
    pub tx_syscalls: u64,
    /// Datagrams received (mirror of [`TransportStats::rx_packets`]).
    pub rx_packets: u64,
    /// Datagrams transmitted (mirror of [`TransportStats::tx_packets`]).
    pub tx_packets: u64,
    /// Whether the batched syscall path is in use.
    pub batched: bool,
    /// RX buffer-pool takes served from the preallocated slab.
    pub pool_hits: u64,
    /// RX buffer-pool takes that fell back to a heap allocation.
    pub pool_misses: u64,
    /// Pooled RX buffers currently checked out (returns to zero once
    /// every received payload has been dropped).
    pub pool_outstanding: u64,
    /// Payload *segment* bytes the TX path had to copy to reach the
    /// wire. Both syscall paths hand segment iovecs straight to the
    /// kernel (`sendmmsg` batched, `sendmsg` singly), so on Linux this
    /// stays 0 — the asserted "GET replies reach the wire with zero
    /// value-byte copies" invariant. Only the no-scatter-gather
    /// fallback (non-Linux, exotic sandboxes) gathers, and counts here.
    pub tx_copied_bytes: u64,
}

impl UdpIoStats {
    /// Fraction of RX buffers served without an allocation, in
    /// `[0, 1]`; 1.0 before any traffic.
    pub fn pool_hit_rate(&self) -> f64 {
        crate::pool::hit_rate(self.pool_hits, self.pool_misses)
    }
}

/// A multi-queue transport over real UDP sockets.
#[derive(Debug)]
pub struct UdpTransport {
    sockets: Vec<UdpSocket>,
    rx_arenas: Vec<Mutex<RxArena>>,
    tx_arenas: Vec<Mutex<TxArena>>,
    /// Slab of RX payload buffers shared by all queues; both receive
    /// paths draw from it, so the hot path allocates nothing.
    pool: BufferPool,
    /// The per-datagram path's staged slot, one per queue: kept across
    /// calls (like the batched arena's slots) so an idle poll neither
    /// touches the pool freelist nor inflates the hit gauge.
    singly_staged: Vec<Mutex<Option<PooledBuf>>>,
    batch: usize,
    ip: Ipv4Addr,
    base_port: u16,
    tx_backoff: Duration,
    rx_packets: AtomicU64,
    rx_bytes: AtomicU64,
    tx_packets: AtomicU64,
    tx_bytes: AtomicU64,
    tx_dropped: AtomicU64,
    rx_syscalls: AtomicU64,
    tx_syscalls: AtomicU64,
    tx_copied_bytes: AtomicU64,
}

impl std::fmt::Debug for RxArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RxArena")
    }
}

impl std::fmt::Debug for TxArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TxArena")
    }
}

impl UdpTransport {
    /// Binds `config.num_queues` `SO_REUSEPORT` sockets on consecutive
    /// ports starting at `config.base_port`.
    ///
    /// Fails with `InvalidInput` if the port range would overflow the
    /// u16 port space.
    pub fn bind(config: UdpConfig) -> std::io::Result<Self> {
        assert!(config.num_queues > 0, "at least one queue");
        if config
            .base_port
            .checked_add(config.num_queues - 1)
            .is_none()
        {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "port range {}+{} queues exceeds 65535",
                    config.base_port, config.num_queues
                ),
            ));
        }
        let mut sockets = Vec::with_capacity(config.num_queues as usize);
        for q in 0..config.num_queues {
            let addr = SocketAddrV4::new(config.ip, config.base_port + q);
            let socket = sys::bind_reuseport_udp(addr, config.socket_buffer_bytes)?;
            socket.set_nonblocking(true)?;
            sockets.push(socket);
        }
        Ok(Self::from_sockets(
            sockets,
            config.ip,
            config.base_port,
            &config,
        ))
    }

    /// Binds a single-queue client transport on an ephemeral port with
    /// default buffering; see [`UdpTransport::bind_client_with`] to
    /// control the socket buffer size and batching.
    pub fn bind_client(ip: Ipv4Addr) -> std::io::Result<Self> {
        Self::bind_client_with(UdpConfig::client(ip))
    }

    /// Binds a single-queue client transport honoring `config`'s socket
    /// buffer size, syscall batch, TX backoff, and bind address
    /// (`config.base_port` of 0 picks an ephemeral port;
    /// `config.num_queues` must be 1).
    pub fn bind_client_with(config: UdpConfig) -> std::io::Result<Self> {
        assert_eq!(config.num_queues, 1, "client transports are single-queue");
        let socket = sys::bind_reuseport_udp(
            SocketAddrV4::new(config.ip, config.base_port),
            config.socket_buffer_bytes,
        )?;
        socket.set_nonblocking(true)?;
        let local = match socket.local_addr()? {
            SocketAddr::V4(a) => a,
            SocketAddr::V6(_) => unreachable!("bound v4"),
        };
        let (ip, port) = (*local.ip(), local.port());
        Ok(Self::from_sockets(vec![socket], ip, port, &config))
    }

    fn from_sockets(
        sockets: Vec<UdpSocket>,
        ip: Ipv4Addr,
        base_port: u16,
        config: &UdpConfig,
    ) -> Self {
        let batch = config.batch.max(1);
        // One freelist shard per queue: concurrently polling cores take
        // from (and recycle to) their own shard, stealing on empty.
        let pool = BufferPool::sharded(config.effective_pool_slots(), RX_SLOT_LEN, sockets.len());
        UdpTransport {
            rx_arenas: sockets
                .iter()
                .enumerate()
                .map(|(q, _)| Mutex::new(RxArena::new(batch, pool.clone(), q)))
                .collect(),
            tx_arenas: sockets
                .iter()
                .map(|_| Mutex::new(TxArena::new(batch)))
                .collect(),
            singly_staged: sockets.iter().map(|_| Mutex::new(None)).collect(),
            pool,
            sockets,
            batch,
            ip,
            base_port,
            tx_backoff: config.tx_backoff,
            rx_packets: AtomicU64::new(0),
            rx_bytes: AtomicU64::new(0),
            tx_packets: AtomicU64::new(0),
            tx_bytes: AtomicU64::new(0),
            tx_dropped: AtomicU64::new(0),
            rx_syscalls: AtomicU64::new(0),
            tx_syscalls: AtomicU64::new(0),
            tx_copied_bytes: AtomicU64::new(0),
        }
    }

    /// Port of queue 0.
    pub fn base_port(&self) -> u16 {
        self.base_port
    }

    /// The bound IP.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// Syscall-level I/O statistics.
    pub fn io_stats(&self) -> UdpIoStats {
        let pool = self.pool.stats();
        UdpIoStats {
            rx_syscalls: self.rx_syscalls.load(Ordering::Relaxed),
            tx_syscalls: self.tx_syscalls.load(Ordering::Relaxed),
            rx_packets: self.rx_packets.load(Ordering::Relaxed),
            tx_packets: self.tx_packets.load(Ordering::Relaxed),
            batched: self.batch > 1 && sys::mmsg_available(),
            pool_hits: pool.hits,
            pool_misses: pool.misses,
            pool_outstanding: pool.outstanding,
            tx_copied_bytes: self.tx_copied_bytes.load(Ordering::Relaxed),
        }
    }

    /// RX buffer-pool counters (the gauge source behind
    /// [`UdpIoStats::pool_hits`] and friends).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Batched receive: one `recvmmsg` per up-to-`batch` datagrams.
    /// `None` means the syscall is unsupported here and nothing was
    /// moved — the caller falls back to the one-datagram path.
    fn rx_burst_mmsg(&self, queue: u16, out: &mut Vec<Packet>, max: usize) -> Option<usize> {
        let fd = self.sockets[queue as usize].as_raw_fd();
        let local = self.local_endpoint(queue);
        let mut arena = self.rx_arenas[queue as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut moved = 0usize;
        let mut bytes = 0u64;
        // Bound non-datagram outcomes so a persistently erroring socket
        // cannot wedge the polling core inside one burst.
        let mut error_rounds = 0usize;
        while moved < max {
            let want = (max - moved).min(self.batch);
            let before = out.len();
            self.rx_syscalls.fetch_add(1, Ordering::Relaxed);
            let result = arena.recv_batch(fd, want, |peer, payload| {
                // `payload` is the pooled buffer the kernel filled,
                // frozen — no copy, no allocation on this path.
                let src = endpoint_for(*peer.ip(), peer.port());
                let pkt = synthesize(src, local, payload);
                bytes += pkt.wire_len() as u64;
                out.push(pkt);
            });
            match result {
                Ok(got) => {
                    moved += out.len() - before;
                    if got < want {
                        break; // socket drained
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    if sys::note_mmsg_error(&e) {
                        if moved == 0 {
                            return None;
                        }
                        break;
                    }
                    // Transient ICMP-driven errors (connection refused on
                    // a prior send) surface on recv; skip them, bounded.
                    error_rounds += 1;
                    if error_rounds >= max {
                        break;
                    }
                }
            }
        }
        if moved > 0 {
            self.rx_packets.fetch_add(moved as u64, Ordering::Relaxed);
            self.rx_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        Some(moved)
    }

    /// Portable receive: one `recv_from` syscall per datagram, still
    /// landing in a pooled buffer (no per-datagram allocation).
    fn rx_burst_singly(&self, queue: u16, out: &mut Vec<Packet>, max: usize) -> usize {
        let socket = &self.sockets[queue as usize];
        let local = self.local_endpoint(queue);
        let mut moved = 0;
        let mut bytes = 0u64;
        // Bound non-datagram outcomes too, so a persistently erroring
        // socket cannot wedge the polling core inside one burst.
        let mut skips = 0;
        // The staged slot persists across calls, so an empty poll costs
        // no pool traffic at all; it is only replaced once the kernel
        // has actually filled it.
        let mut staged_cell = self.singly_staged[queue as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut staged: Option<PooledBuf> = staged_cell.take();
        while moved < max && skips < max {
            let buf = staged.get_or_insert_with(|| self.pool.take_on(queue as usize));
            self.rx_syscalls.fetch_add(1, Ordering::Relaxed);
            match socket.recv_from(buf.as_mut_slice()) {
                Ok((len, SocketAddr::V4(peer))) => {
                    let payload = staged.take().expect("staged above").freeze(len);
                    let src = endpoint_for(*peer.ip(), peer.port());
                    let pkt = synthesize(src, local, payload);
                    bytes += pkt.wire_len() as u64;
                    out.push(pkt);
                    moved += 1;
                }
                Ok((_, SocketAddr::V6(_))) => skips += 1,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => skips += 1,
                // Transient ICMP-driven errors (connection refused on a
                // prior send) surface on recv; skip them, bounded.
                Err(_) => skips += 1,
            }
        }
        *staged_cell = staged;
        if moved > 0 {
            self.rx_packets.fetch_add(moved as u64, Ordering::Relaxed);
            self.rx_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        moved
    }

    /// Batched transmit of `frames[..]`: one `sendmmsg` per
    /// up-to-`batch` datagrams, each carried as a multi-iovec gather
    /// list (header iovec + value iovecs; zero segment-byte copies),
    /// with a brief full-buffer backoff. Returns `None` (nothing sent)
    /// when the syscall is unsupported here; accounting is then left to
    /// the caller's fallback.
    fn tx_frames_mmsg(&self, queue: u16, frames: &[TxPacket]) -> Option<usize> {
        let fd = self.sockets[queue as usize].as_raw_fd();
        let mut arena = self.tx_arenas[queue as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let total = frames.len();
        let mut sent = 0usize;
        let mut bytes = 0u64;
        let deadline = Instant::now() + self.tx_backoff;
        while sent < total {
            let want = (total - sent).min(self.batch);
            self.tx_syscalls.fetch_add(1, Ordering::Relaxed);
            match arena.send_frames(fd, &frames[sent..sent + want]) {
                Ok(n) => {
                    for pkt in &frames[sent..sent + n] {
                        bytes += pkt.wire_len() as u64;
                    }
                    sent += n;
                    if n < want {
                        // Full socket buffer: the kernel-side analog of a
                        // full TX ring. Back off briefly, then tail-drop.
                        if Instant::now() >= deadline {
                            break;
                        }
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    if sys::note_mmsg_error(&e) && sent == 0 {
                        return None;
                    }
                    // Hard error on the head datagram: tail-drop the
                    // rest, preserving FIFO order on the wire.
                    break;
                }
            }
        }
        if sent > 0 {
            self.tx_packets.fetch_add(sent as u64, Ordering::Relaxed);
            self.tx_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        if sent < total {
            self.tx_dropped
                .fetch_add((total - sent) as u64, Ordering::Relaxed);
        }
        Some(sent)
    }

    /// One-datagram-per-syscall transmit of `frames[..]`: `sendmsg`
    /// with a per-frame gather list where available (still zero
    /// segment-byte copies), gather + `send_to` where not (counted in
    /// [`UdpIoStats::tx_copied_bytes`]). Same FIFO tail-drop and
    /// backoff contract as the batched path.
    fn tx_frames_singly(&self, queue: u16, frames: &[TxPacket]) -> usize {
        let socket = &self.sockets[queue as usize];
        let fd = socket.as_raw_fd();
        let total = frames.len();
        let mut sent = 0usize;
        let mut bytes = 0u64;
        let deadline = Instant::now() + self.tx_backoff;
        'frames: while sent < total {
            let pkt = &frames[sent];
            let dst = SocketAddrV4::new(Ipv4Addr::from(pkt.meta.ip.dst), pkt.meta.udp.dst_port);
            loop {
                self.tx_syscalls.fetch_add(1, Ordering::Relaxed);
                let result = if sys::sendmsg_available() {
                    crate::batch::send_frame_singly(fd, dst, &pkt.frame)
                } else {
                    // No scatter-gather syscall on this platform:
                    // materialize the datagram and account every copied
                    // segment byte honestly.
                    let (payload, copied) = pkt.frame.to_contiguous();
                    self.tx_copied_bytes
                        .fetch_add(copied as u64, Ordering::Relaxed);
                    socket.send_to(&payload, dst)
                };
                match result {
                    Ok(_) => {
                        sent += 1;
                        bytes += pkt.wire_len() as u64;
                        continue 'frames;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        // Full socket buffer: back off briefly, then
                        // tail-drop the rest of the burst.
                        if Instant::now() >= deadline {
                            break 'frames;
                        }
                        std::thread::sleep(Duration::from_micros(50));
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => {
                        if sys::note_sendmsg_error(&e) {
                            // sendmsg itself is unsupported here; retry
                            // this frame on the gather fallback.
                            continue;
                        }
                        break 'frames;
                    }
                }
            }
        }
        if sent > 0 {
            self.tx_packets.fetch_add(sent as u64, Ordering::Relaxed);
            self.tx_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        if sent < total {
            self.tx_dropped
                .fetch_add((total - sent) as u64, Ordering::Relaxed);
        }
        sent
    }
}

/// Maps a real IPv4 address + port into the wire stack's [`Endpoint`]
/// plane: the IP becomes both the `Endpoint::ip` and the host id the
/// synthetic MAC derives from. The single source of truth for how real
/// peers appear to the engine — `minos-loadgen` uses it to address a
/// remote server.
pub fn endpoint_for(ip: Ipv4Addr, port: u16) -> Endpoint {
    let ip_u32 = u32::from(ip);
    Endpoint {
        mac: MacAddr::from_host_id(ip_u32),
        ip: ip_u32,
        port,
    }
}

impl Transport for UdpTransport {
    fn num_queues(&self) -> u16 {
        self.sockets.len() as u16
    }

    fn rx_burst(&self, queue: u16, out: &mut Vec<Packet>, max: usize) -> usize {
        if self.batch > 1 && sys::mmsg_available() {
            if let Some(moved) = self.rx_burst_mmsg(queue, out, max) {
                return moved;
            }
        }
        self.rx_burst_singly(queue, out, max)
    }

    fn tx_frames(&self, queue: u16, frames: &mut Vec<TxPacket>) -> usize {
        if frames.is_empty() {
            return 0;
        }
        let sent = if self.batch > 1 && sys::mmsg_available() {
            match self.tx_frames_mmsg(queue, frames) {
                Some(sent) => sent,
                // sendmmsg unsupported here (nothing was sent or
                // accounted): fall through to one syscall per datagram.
                None => self.tx_frames_singly(queue, frames),
            }
        } else {
            self.tx_frames_singly(queue, frames)
        };
        frames.clear();
        sent
    }

    fn local_endpoint(&self, queue: u16) -> Endpoint {
        endpoint_for(self.ip, self.base_port + queue)
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            rx_packets: self.rx_packets.load(Ordering::Relaxed),
            rx_bytes: self.rx_bytes.load(Ordering::Relaxed),
            tx_packets: self.tx_packets.load(Ordering::Relaxed),
            tx_bytes: self.tx_bytes.load(Ordering::Relaxed),
            tx_dropped: self.tx_dropped.load(Ordering::Relaxed),
            tx_copied_bytes: self.tx_copied_bytes.load(Ordering::Relaxed),
        }
    }

    fn collect_metrics(&self, out: &mut Vec<(String, minos_obs::MetricValue)>) {
        crate::metrics::push_transport_stats(out, &self.stats());
        crate::metrics::push_pool_stats(out, &self.pool.stats());
        let io = self.io_stats();
        out.push((
            "transport.rx_syscalls".to_string(),
            minos_obs::MetricValue::Counter(io.rx_syscalls),
        ));
        out.push((
            "transport.tx_syscalls".to_string(),
            minos_obs::MetricValue::Counter(io.tx_syscalls),
        ));
        out.push((
            "transport.batched".to_string(),
            minos_obs::MetricValue::Gauge(if io.batched { 1.0 } else { 0.0 }),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    /// Disjoint, PID-salted port ranges per bound server: these are
    /// `SO_REUSEPORT` sockets, so a bind over another live test server
    /// — in this process or a concurrently running suite — would
    /// *succeed* and split its traffic instead of failing the probe.
    static PORTS: crate::testport::TestPorts = crate::testport::TestPorts::new(60_000, 65_000);

    fn bind_free(num_queues: u16) -> UdpTransport {
        bind_free_with(num_queues, DEFAULT_SYSCALL_BATCH)
    }

    fn bind_free_with(num_queues: u16, batch: usize) -> UdpTransport {
        loop {
            let base = PORTS.alloc(num_queues.max(8));
            let config = UdpConfig {
                batch,
                ..UdpConfig::loopback(base, num_queues)
            };
            if let Ok(t) = UdpTransport::bind(config) {
                return t;
            }
        }
    }

    #[test]
    fn datagram_roundtrip_addresses_queue_by_port() {
        let server = bind_free(4);
        let client = UdpTransport::bind_client(Ipv4Addr::LOCALHOST).unwrap();

        for q in 0..4u16 {
            let pkt = synthesize(
                client.local_endpoint(0),
                server.local_endpoint(q),
                Bytes::from(vec![q as u8; 11]),
            );
            assert!(client.tx_push(0, pkt));
        }

        let deadline = Instant::now() + Duration::from_secs(5);
        for q in 0..4u16 {
            let mut out = Vec::new();
            while out.is_empty() {
                assert!(
                    Instant::now() < deadline,
                    "queue {q} never got its datagram"
                );
                server.rx_burst(q, &mut out, 32);
            }
            assert_eq!(out.len(), 1, "port demux must isolate queues");
            assert_eq!(&out[0].payload[..], &[q as u8; 11][..]);
            // The synthesized metadata carries the real peer address.
            assert_eq!(out[0].meta.udp.src_port, client.base_port());
            assert_eq!(out[0].meta.udp.dst_port, server.base_port() + q);
        }
    }

    #[test]
    fn reply_reaches_client_socket() {
        let server = bind_free(2);
        let client = UdpTransport::bind_client(Ipv4Addr::LOCALHOST).unwrap();

        let req = synthesize(
            client.local_endpoint(0),
            server.local_endpoint(1),
            Bytes::from_static(b"req"),
        );
        assert!(client.tx_push(0, req));

        let deadline = Instant::now() + Duration::from_secs(5);
        let mut inbound = Vec::new();
        while inbound.is_empty() {
            assert!(Instant::now() < deadline);
            server.rx_burst(1, &mut inbound, 32);
        }
        let peer = Endpoint {
            mac: inbound[0].meta.eth.src,
            ip: inbound[0].meta.ip.src,
            port: inbound[0].meta.udp.src_port,
        };
        let reply = synthesize(server.local_endpoint(1), peer, Bytes::from_static(b"rep"));
        assert!(server.tx_push(1, reply));

        let mut back = Vec::new();
        while back.is_empty() {
            assert!(Instant::now() < deadline);
            client.rx_burst(0, &mut back, 32);
        }
        assert_eq!(&back[0].payload[..], b"rep");
        assert_eq!(back[0].meta.udp.src_port, server.base_port() + 1);
    }

    #[test]
    fn stats_count_traffic() {
        let server = bind_free(1);
        let client = UdpTransport::bind_client(Ipv4Addr::LOCALHOST).unwrap();
        let pkt = synthesize(
            client.local_endpoint(0),
            server.local_endpoint(0),
            Bytes::from_static(b"x"),
        );
        assert!(client.tx_push(0, pkt));
        assert_eq!(client.stats().tx_packets, 1);
        let mut out = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while out.is_empty() {
            assert!(Instant::now() < deadline);
            server.rx_burst(0, &mut out, 8);
        }
        let s = server.stats();
        assert_eq!(s.rx_packets, 1);
        assert!(s.rx_bytes > 0);
    }

    #[test]
    fn tx_burst_moves_whole_batch_and_counts_syscalls() {
        let server = bind_free(1);
        let client = UdpTransport::bind_client(Ipv4Addr::LOCALHOST).unwrap();

        const N: usize = 128;
        let mut batch: Vec<Packet> = (0..N)
            .map(|i| {
                synthesize(
                    client.local_endpoint(0),
                    server.local_endpoint(0),
                    Bytes::from(vec![i as u8; 32]),
                )
            })
            .collect();
        assert_eq!(client.tx_burst(0, &mut batch), N);
        assert!(batch.is_empty());
        assert_eq!(client.stats().tx_packets, N as u64);

        // Everything queued before the first rx_burst, so batched
        // receive must move multiple datagrams per syscall.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut out = Vec::new();
        while out.len() < N {
            assert!(Instant::now() < deadline, "got {} of {N}", out.len());
            server.rx_burst(0, &mut out, N);
        }
        // FIFO order per queue survives batching.
        for (i, pkt) in out.iter().enumerate() {
            assert_eq!(&pkt.payload[..], &[i as u8; 32][..]);
        }
        let io = server.io_stats();
        assert_eq!(io.rx_packets, N as u64);
        if io.batched {
            assert!(
                io.rx_syscalls < N as u64,
                "batched path must use fewer syscalls than packets ({} vs {N})",
                io.rx_syscalls
            );
            let tx = client.io_stats();
            assert!(tx.tx_syscalls < N as u64, "{} tx syscalls", tx.tx_syscalls);
        }
    }

    #[test]
    fn batch_of_one_uses_portable_path() {
        let server = bind_free_with(1, 1);
        let client_cfg = UdpConfig {
            batch: 1,
            ..UdpConfig::client(Ipv4Addr::LOCALHOST)
        };
        let client = UdpTransport::bind_client_with(client_cfg).unwrap();
        assert!(!client.io_stats().batched);
        assert!(!server.io_stats().batched);

        let mut batch: Vec<Packet> = (0..8)
            .map(|i| {
                synthesize(
                    client.local_endpoint(0),
                    server.local_endpoint(0),
                    Bytes::from(vec![i as u8; 16]),
                )
            })
            .collect();
        assert_eq!(client.tx_burst(0, &mut batch), 8);
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut out = Vec::new();
        while out.len() < 8 {
            assert!(Instant::now() < deadline);
            server.rx_burst(0, &mut out, 32);
        }
        // One syscall per datagram (plus the final empty poll).
        assert!(server.io_stats().rx_syscalls >= 8);
    }

    #[test]
    fn client_socket_buffer_is_configurable() {
        // A tiny buffer must be honored (the kernel clamps to its
        // minimum, far below the old hardcoded 4 MiB): blast enough
        // traffic at an unpolled tiny-buffer socket and the overflow
        // must be visible as loss, which a 4 MiB buffer would absorb.
        let tiny = UdpTransport::bind_client_with(UdpConfig {
            socket_buffer_bytes: 1,
            ..UdpConfig::client(Ipv4Addr::LOCALHOST)
        })
        .unwrap();
        let sender = UdpTransport::bind_client(Ipv4Addr::LOCALHOST).unwrap();
        let dst = tiny.local_endpoint(0);
        const N: usize = 512;
        for _ in 0..N {
            let pkt = synthesize(sender.local_endpoint(0), dst, Bytes::from(vec![0u8; 1200]));
            sender.tx_push(0, pkt);
        }
        // Give loopback delivery a moment, then drain whatever fit.
        std::thread::sleep(Duration::from_millis(100));
        let mut out = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let before = out.len();
            tiny.rx_burst(0, &mut out, N);
            if tiny.rx_burst(0, &mut out, N) == 0 && out.len() == before {
                break;
            }
            if Instant::now() > deadline {
                break;
            }
        }
        assert!(
            out.len() < N,
            "a ~2 KiB receive buffer cannot hold {N} x 1200B datagrams (got {})",
            out.len()
        );
    }
}
