//! [`UdpTransport`]: real kernel UDP sockets behind the [`Transport`]
//! contract.
//!
//! One `SO_REUSEPORT` UDP socket per simulated RX queue: queue `q` is
//! bound to `base_port + q`, so the kernel's port demultiplexing plays
//! the role of the NIC's Flow-Director dispatch and clients address a
//! specific RX queue by destination port — exactly the paper's §3
//! client-addresses-RX-queue model, with the UDP port plane standing in
//! for queue ids. `SO_REUSEPORT` is set on every socket so multiple
//! server processes (or a restarting one) can share the port plane; with
//! one process per port the option is inert but harmless.
//!
//! On the wire each datagram carries exactly the UDP payload of the
//! virtual world (fragment header + message chunk); Ethernet/IP framing
//! is the kernel's business here. Received datagrams are re-synthesized
//! into [`Packet`]s (real peer address → [`Endpoint`]) so everything
//! above the transport — reassembly, classification, handoff — is
//! byte-identical across backends.

use crate::transport::{Transport, TransportStats};
use bytes::Bytes;
use minos_wire::frame::MacAddr;
use minos_wire::packet::{synthesize, Endpoint, Packet};
use minos_wire::MTU;
use std::io::ErrorKind;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Configuration for [`UdpTransport::bind`].
#[derive(Clone, Debug)]
pub struct UdpConfig {
    /// Address to bind (the server's IP; `127.0.0.1` for loopback runs).
    pub ip: Ipv4Addr,
    /// Port of queue 0; queue `q` binds `base_port + q`.
    pub base_port: u16,
    /// Number of RX/TX queue pairs (sockets).
    pub num_queues: u16,
    /// Socket send/receive buffer size, bytes. Large fragmented replies
    /// burst hundreds of datagrams; defaults to 4 MiB.
    pub socket_buffer_bytes: usize,
    /// How long `tx_push` may retry a send that hits a full socket
    /// buffer before tail-dropping. Mirrors a NIC TX ring absorbing a
    /// burst; 0 drops immediately.
    pub tx_backoff: Duration,
}

impl UdpConfig {
    /// A loopback server config: `127.0.0.1`, `num_queues` sockets from
    /// `base_port`.
    pub fn loopback(base_port: u16, num_queues: u16) -> Self {
        UdpConfig {
            ip: Ipv4Addr::LOCALHOST,
            base_port,
            num_queues,
            socket_buffer_bytes: 4 << 20,
            tx_backoff: Duration::from_millis(20),
        }
    }
}

/// A multi-queue transport over real UDP sockets.
#[derive(Debug)]
pub struct UdpTransport {
    sockets: Vec<UdpSocket>,
    ip: Ipv4Addr,
    base_port: u16,
    tx_backoff: Duration,
    rx_packets: AtomicU64,
    rx_bytes: AtomicU64,
    tx_packets: AtomicU64,
    tx_bytes: AtomicU64,
    tx_dropped: AtomicU64,
}

impl UdpTransport {
    /// Binds `config.num_queues` `SO_REUSEPORT` sockets on consecutive
    /// ports starting at `config.base_port`.
    ///
    /// Fails with `InvalidInput` if the port range would overflow the
    /// u16 port space.
    pub fn bind(config: UdpConfig) -> std::io::Result<Self> {
        assert!(config.num_queues > 0, "at least one queue");
        if config
            .base_port
            .checked_add(config.num_queues - 1)
            .is_none()
        {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "port range {}+{} queues exceeds 65535",
                    config.base_port, config.num_queues
                ),
            ));
        }
        let mut sockets = Vec::with_capacity(config.num_queues as usize);
        for q in 0..config.num_queues {
            let addr = SocketAddrV4::new(config.ip, config.base_port + q);
            let socket = sys::bind_reuseport_udp(addr, config.socket_buffer_bytes)?;
            socket.set_nonblocking(true)?;
            sockets.push(socket);
        }
        Ok(UdpTransport {
            sockets,
            ip: config.ip,
            base_port: config.base_port,
            tx_backoff: config.tx_backoff,
            rx_packets: AtomicU64::new(0),
            rx_bytes: AtomicU64::new(0),
            tx_packets: AtomicU64::new(0),
            tx_bytes: AtomicU64::new(0),
            tx_dropped: AtomicU64::new(0),
        })
    }

    /// Binds a single-queue client transport on an ephemeral port.
    pub fn bind_client(ip: Ipv4Addr) -> std::io::Result<Self> {
        let socket = sys::bind_reuseport_udp(SocketAddrV4::new(ip, 0), 4 << 20)?;
        socket.set_nonblocking(true)?;
        let local = match socket.local_addr()? {
            SocketAddr::V4(a) => a,
            SocketAddr::V6(_) => unreachable!("bound v4"),
        };
        Ok(UdpTransport {
            sockets: vec![socket],
            ip: *local.ip(),
            base_port: local.port(),
            tx_backoff: Duration::from_millis(20),
            rx_packets: AtomicU64::new(0),
            rx_bytes: AtomicU64::new(0),
            tx_packets: AtomicU64::new(0),
            tx_bytes: AtomicU64::new(0),
            tx_dropped: AtomicU64::new(0),
        })
    }

    /// Port of queue 0.
    pub fn base_port(&self) -> u16 {
        self.base_port
    }

    /// The bound IP.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }
}

/// Maps a real IPv4 address + port into the wire stack's [`Endpoint`]
/// plane: the IP becomes both the `Endpoint::ip` and the host id the
/// synthetic MAC derives from. The single source of truth for how real
/// peers appear to the engine — `minos-loadgen` uses it to address a
/// remote server.
pub fn endpoint_for(ip: Ipv4Addr, port: u16) -> Endpoint {
    let ip_u32 = u32::from(ip);
    Endpoint {
        mac: MacAddr::from_host_id(ip_u32),
        ip: ip_u32,
        port,
    }
}

impl Transport for UdpTransport {
    fn num_queues(&self) -> u16 {
        self.sockets.len() as u16
    }

    fn rx_burst(&self, queue: u16, out: &mut Vec<Packet>, max: usize) -> usize {
        let socket = &self.sockets[queue as usize];
        let local = self.local_endpoint(queue);
        let mut buf = [0u8; MTU + 64];
        let mut moved = 0;
        let mut bytes = 0u64;
        // Bound non-datagram outcomes too, so a persistently erroring
        // socket cannot wedge the polling core inside one burst.
        let mut skips = 0;
        while moved < max && skips < max {
            match socket.recv_from(&mut buf) {
                Ok((len, SocketAddr::V4(peer))) => {
                    let payload = Bytes::copy_from_slice(&buf[..len]);
                    let src = endpoint_for(*peer.ip(), peer.port());
                    let pkt = synthesize(src, local, payload);
                    bytes += pkt.wire_len() as u64;
                    out.push(pkt);
                    moved += 1;
                }
                Ok((_, SocketAddr::V6(_))) => skips += 1,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => skips += 1,
                // Transient ICMP-driven errors (connection refused on a
                // prior send) surface on recv; skip them, bounded.
                Err(_) => skips += 1,
            }
        }
        if moved > 0 {
            self.rx_packets.fetch_add(moved as u64, Ordering::Relaxed);
            self.rx_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        moved
    }

    fn tx_push(&self, queue: u16, packet: Packet) -> bool {
        let socket = &self.sockets[queue as usize];
        let dst = SocketAddrV4::new(Ipv4Addr::from(packet.meta.ip.dst), packet.meta.udp.dst_port);
        let deadline = Instant::now() + self.tx_backoff;
        loop {
            match socket.send_to(&packet.payload, dst) {
                Ok(_) => {
                    self.tx_packets.fetch_add(1, Ordering::Relaxed);
                    self.tx_bytes
                        .fetch_add(packet.wire_len() as u64, Ordering::Relaxed);
                    return true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    // Full socket buffer: the kernel-side analog of a
                    // full TX ring. Back off briefly, then tail-drop.
                    // Sleep rather than spin — the buffer drains at the
                    // receiver's pace, so burning the core here only
                    // starves the RX path and distorts caller pacing.
                    if Instant::now() >= deadline {
                        self.tx_dropped.fetch_add(1, Ordering::Relaxed);
                        return false;
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.tx_dropped.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
    }

    fn local_endpoint(&self, queue: u16) -> Endpoint {
        endpoint_for(self.ip, self.base_port + queue)
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            rx_packets: self.rx_packets.load(Ordering::Relaxed),
            rx_bytes: self.rx_bytes.load(Ordering::Relaxed),
            tx_packets: self.tx_packets.load(Ordering::Relaxed),
            tx_bytes: self.tx_bytes.load(Ordering::Relaxed),
            tx_dropped: self.tx_dropped.load(Ordering::Relaxed),
        }
    }
}

/// Raw-socket plumbing: create a UDP socket with `SO_REUSEPORT` set
/// *before* bind, which `std` cannot express. Uses the C library
/// directly (the toolchain links libc anyway) so no external crate is
/// needed in this offline build environment.
#[cfg(target_os = "linux")]
mod sys {
    use std::io;
    use std::net::{SocketAddrV4, UdpSocket};
    use std::os::fd::FromRawFd;

    const AF_INET: i32 = 2;
    const SOCK_DGRAM: i32 = 2;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const SO_SNDBUF: i32 = 7;
    const SO_RCVBUF: i32 = 8;
    const SO_REUSEPORT: i32 = 15;

    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, addrlen: u32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn set_opt(fd: i32, opt: i32, value: i32) -> io::Result<()> {
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                opt,
                &value,
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    /// Creates, configures and binds a `SO_REUSEPORT` UDP socket.
    pub fn bind_reuseport_udp(addr: SocketAddrV4, buffer_bytes: usize) -> io::Result<UdpSocket> {
        let fd = unsafe { socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let result = (|| {
            set_opt(fd, SO_REUSEADDR, 1)?;
            set_opt(fd, SO_REUSEPORT, 1)?;
            // Best-effort buffer sizing: the kernel clamps to
            // net.core.{r,w}mem_max, which is fine.
            let _ = set_opt(fd, SO_SNDBUF, buffer_bytes.min(i32::MAX as usize) as i32);
            let _ = set_opt(fd, SO_RCVBUF, buffer_bytes.min(i32::MAX as usize) as i32);
            let raw = SockaddrIn {
                sin_family: AF_INET as u16,
                sin_port: addr.port().to_be(),
                sin_addr: u32::from(*addr.ip()).to_be(),
                sin_zero: [0; 8],
            };
            let rc = unsafe { bind(fd, &raw, std::mem::size_of::<SockaddrIn>() as u32) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        })();
        match result {
            Ok(()) => Ok(unsafe { UdpSocket::from_raw_fd(fd) }),
            Err(e) => {
                unsafe { close(fd) };
                Err(e)
            }
        }
    }
}

/// Portable fallback: plain `std` bind (no `SO_REUSEPORT`). Distinct
/// per-queue ports make the option optional for correctness.
#[cfg(not(target_os = "linux"))]
mod sys {
    use std::io;
    use std::net::{SocketAddrV4, UdpSocket};

    pub fn bind_reuseport_udp(addr: SocketAddrV4, _buffer_bytes: usize) -> io::Result<UdpSocket> {
        UdpSocket::bind(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind_free(num_queues: u16) -> UdpTransport {
        // Walk the dynamic-port space until a contiguous run is free.
        for base in (40_000..60_000).step_by(37) {
            if let Ok(t) = UdpTransport::bind(UdpConfig::loopback(base, num_queues)) {
                return t;
            }
        }
        panic!("no free contiguous port range found");
    }

    #[test]
    fn datagram_roundtrip_addresses_queue_by_port() {
        let server = bind_free(4);
        let client = UdpTransport::bind_client(Ipv4Addr::LOCALHOST).unwrap();

        for q in 0..4u16 {
            let pkt = synthesize(
                client.local_endpoint(0),
                server.local_endpoint(q),
                Bytes::from(vec![q as u8; 11]),
            );
            assert!(client.tx_push(0, pkt));
        }

        let deadline = Instant::now() + Duration::from_secs(5);
        for q in 0..4u16 {
            let mut out = Vec::new();
            while out.is_empty() {
                assert!(
                    Instant::now() < deadline,
                    "queue {q} never got its datagram"
                );
                server.rx_burst(q, &mut out, 32);
            }
            assert_eq!(out.len(), 1, "port demux must isolate queues");
            assert_eq!(&out[0].payload[..], &[q as u8; 11][..]);
            // The synthesized metadata carries the real peer address.
            assert_eq!(out[0].meta.udp.src_port, client.base_port());
            assert_eq!(out[0].meta.udp.dst_port, server.base_port() + q);
        }
    }

    #[test]
    fn reply_reaches_client_socket() {
        let server = bind_free(2);
        let client = UdpTransport::bind_client(Ipv4Addr::LOCALHOST).unwrap();

        let req = synthesize(
            client.local_endpoint(0),
            server.local_endpoint(1),
            Bytes::from_static(b"req"),
        );
        assert!(client.tx_push(0, req));

        let deadline = Instant::now() + Duration::from_secs(5);
        let mut inbound = Vec::new();
        while inbound.is_empty() {
            assert!(Instant::now() < deadline);
            server.rx_burst(1, &mut inbound, 32);
        }
        let peer = Endpoint {
            mac: inbound[0].meta.eth.src,
            ip: inbound[0].meta.ip.src,
            port: inbound[0].meta.udp.src_port,
        };
        let reply = synthesize(server.local_endpoint(1), peer, Bytes::from_static(b"rep"));
        assert!(server.tx_push(1, reply));

        let mut back = Vec::new();
        while back.is_empty() {
            assert!(Instant::now() < deadline);
            client.rx_burst(0, &mut back, 32);
        }
        assert_eq!(&back[0].payload[..], b"rep");
        assert_eq!(back[0].meta.udp.src_port, server.base_port() + 1);
    }

    #[test]
    fn stats_count_traffic() {
        let server = bind_free(1);
        let client = UdpTransport::bind_client(Ipv4Addr::LOCALHOST).unwrap();
        let pkt = synthesize(
            client.local_endpoint(0),
            server.local_endpoint(0),
            Bytes::from_static(b"x"),
        );
        assert!(client.tx_push(0, pkt));
        assert_eq!(client.stats().tx_packets, 1);
        let mut out = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while out.is_empty() {
            assert!(Instant::now() < deadline);
            server.rx_burst(0, &mut out, 8);
        }
        let s = server.stats();
        assert_eq!(s.rx_packets, 1);
        assert!(s.rx_bytes > 0);
    }
}
