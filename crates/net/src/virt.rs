//! [`Transport`] adapters over the in-process [`VirtualNic`].

use crate::pool::{BufferPool, PoolStats};
use crate::transport::{Transport, TransportStats};
use minos_nic::{Delivery, VirtualNic};
use minos_wire::packet::{build_frame, build_frame_into, Endpoint, Packet};
use minos_wire::udp::UdpHeader;
use std::sync::Arc;

/// Bytes per pooled frame slot: a full MTU-sized frame with Ethernet
/// framing and the FCS trailer.
const FRAME_SLOT_LEN: usize =
    minos_wire::ETH_HEADER_LEN + minos_wire::MTU + minos_wire::ETH_FCS_LEN;

/// Frame slots in a [`VirtualClientTransport`]'s pool — sized like a
/// client-side UDP transport's RX pool.
const CLIENT_FRAME_SLOTS: usize = 512;

/// Host id servers use in the virtual world (clients must differ).
pub(crate) const VIRTUAL_SERVER_HOST: u32 = 1;

impl Transport for VirtualNic {
    fn num_queues(&self) -> u16 {
        VirtualNic::num_queues(self)
    }

    fn rx_burst(&self, queue: u16, out: &mut Vec<Packet>, max: usize) -> usize {
        VirtualNic::rx_burst(self, queue, out, max)
    }

    fn rx_pop_one(&self, queue: u16) -> Option<Packet> {
        VirtualNic::rx_pop_one(self, queue)
    }

    fn rx_len(&self, queue: u16) -> usize {
        VirtualNic::rx_len(self, queue)
    }

    fn tx_push(&self, queue: u16, packet: Packet) -> bool {
        VirtualNic::tx_push(self, queue, packet)
    }

    fn local_endpoint(&self, queue: u16) -> Endpoint {
        Endpoint::host(VIRTUAL_SERVER_HOST, UdpHeader::port_for_queue(queue))
    }

    fn stats(&self) -> TransportStats {
        let s = VirtualNic::stats(self);
        TransportStats {
            rx_packets: s.rx_delivered,
            rx_bytes: s.rx_bytes,
            tx_packets: s.tx_sent,
            tx_bytes: s.tx_bytes,
            tx_dropped: 0,
        }
    }
}

/// The server-side adapter over a shared [`VirtualNic`]: RX queues are
/// the NIC's RX rings, TX pushes onto the NIC's TX rings (from which an
/// in-process client drains replies).
#[derive(Clone, Debug)]
pub struct VirtualTransport {
    nic: Arc<VirtualNic>,
}

impl VirtualTransport {
    /// Wraps `nic`.
    pub fn new(nic: Arc<VirtualNic>) -> Self {
        VirtualTransport { nic }
    }

    /// The underlying NIC.
    pub fn nic(&self) -> &Arc<VirtualNic> {
        &self.nic
    }
}

impl Transport for VirtualTransport {
    fn num_queues(&self) -> u16 {
        Transport::num_queues(&*self.nic)
    }

    fn rx_burst(&self, queue: u16, out: &mut Vec<Packet>, max: usize) -> usize {
        Transport::rx_burst(&*self.nic, queue, out, max)
    }

    fn rx_pop_one(&self, queue: u16) -> Option<Packet> {
        Transport::rx_pop_one(&*self.nic, queue)
    }

    fn rx_len(&self, queue: u16) -> usize {
        Transport::rx_len(&*self.nic, queue)
    }

    fn tx_push(&self, queue: u16, packet: Packet) -> bool {
        Transport::tx_push(&*self.nic, queue, packet)
    }

    fn local_endpoint(&self, queue: u16) -> Endpoint {
        Transport::local_endpoint(&*self.nic, queue)
    }

    fn stats(&self) -> TransportStats {
        Transport::stats(&*self.nic)
    }
}

/// The client-side adapter over a server's [`VirtualNic`]: a
/// single-queue transport whose TX encodes full frames and delivers
/// them through the NIC's receive path (checksums, fault injection,
/// steering — the whole wire), and whose RX drains the server's TX
/// rings, which is where replies appear in the in-process world.
#[derive(Clone, Debug)]
pub struct VirtualClientTransport {
    nic: Arc<VirtualNic>,
    /// The endpoint this client claims (replies are addressed to it).
    endpoint: Endpoint,
    /// Pooled frame buffers for TX encoding: the virtual wire's analog
    /// of the UDP backend's RX pool, so the per-packet frame
    /// serialization recycles slots instead of allocating.
    pool: BufferPool,
}

impl VirtualClientTransport {
    /// Creates a client transport speaking to `nic` as `endpoint`.
    pub fn new(nic: Arc<VirtualNic>, endpoint: Endpoint) -> Self {
        VirtualClientTransport {
            nic,
            endpoint,
            pool: BufferPool::new(CLIENT_FRAME_SLOTS, FRAME_SLOT_LEN),
        }
    }

    /// Frame-pool counters (mirrors `UdpTransport::pool_stats`, so the
    /// conformance suite can observe pooling on both backends).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }
}

impl Transport for VirtualClientTransport {
    fn num_queues(&self) -> u16 {
        1
    }

    fn rx_burst(&self, _queue: u16, out: &mut Vec<Packet>, max: usize) -> usize {
        let mut moved = 0;
        for q in 0..VirtualNic::num_queues(&self.nic) {
            moved += self.nic.tx_drain(q, out, max.saturating_sub(moved));
        }
        moved
    }

    fn tx_push(&self, _queue: u16, packet: Packet) -> bool {
        let src = Endpoint {
            mac: packet.meta.eth.src,
            ip: packet.meta.ip.src,
            port: packet.meta.udp.src_port,
        };
        let dst = Endpoint {
            mac: packet.meta.eth.dst,
            ip: packet.meta.ip.dst,
            port: packet.meta.udp.dst_port,
        };
        // Encode into a pooled slot (no allocation); only a payload too
        // large for one MTU-sized slot — impossible for fragmenter
        // output — falls back to the allocating encoder.
        let mut slot = self.pool.take();
        let frame = match build_frame_into(src, dst, &packet.payload, slot.as_mut_slice()) {
            Some(len) => slot.freeze(len),
            None => build_frame(src, dst, &packet.payload),
        };
        matches!(self.nic.deliver_frame(frame), Delivery::Queued(_))
    }

    fn local_endpoint(&self, _queue: u16) -> Endpoint {
        self.endpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use minos_nic::NicConfig;
    use minos_wire::packet::synthesize;

    #[test]
    fn client_tx_lands_in_server_rx() {
        let nic = Arc::new(VirtualNic::new(NicConfig::new(4)));
        let client_ep = Endpoint::host(100, 20_000);
        let client = VirtualClientTransport::new(Arc::clone(&nic), client_ep);
        let server = VirtualTransport::new(Arc::clone(&nic));

        let dst = Transport::local_endpoint(&server, 2);
        let pkt = synthesize(client_ep, dst, Bytes::from_static(b"ping"));
        assert!(Transport::tx_push(&client, 0, pkt));

        let mut out = Vec::new();
        assert_eq!(Transport::rx_burst(&server, 2, &mut out, 32), 1);
        assert_eq!(&out[0].payload[..], b"ping");
        assert_eq!(out[0].meta.udp.src_port, 20_000);
    }

    #[test]
    fn server_tx_drains_to_client() {
        let nic = Arc::new(VirtualNic::new(NicConfig::new(2)));
        let client_ep = Endpoint::host(101, 21_000);
        let client = VirtualClientTransport::new(Arc::clone(&nic), client_ep);
        let server = VirtualTransport::new(Arc::clone(&nic));

        let reply = synthesize(
            Transport::local_endpoint(&server, 1),
            client_ep,
            Bytes::from_static(b"pong"),
        );
        assert!(Transport::tx_push(&server, 1, reply));

        let mut out = Vec::new();
        assert_eq!(Transport::rx_burst(&client, 0, &mut out, 32), 1);
        assert_eq!(&out[0].payload[..], b"pong");
        assert_eq!(out[0].meta.udp.dst_port, client_ep.port);
    }

    #[test]
    fn tx_burst_default_drains_batch() {
        let nic = Arc::new(VirtualNic::new(NicConfig::new(1)));
        let server = VirtualTransport::new(Arc::clone(&nic));
        let dst = Endpoint::host(100, 20_000);
        let mut batch: Vec<Packet> = (0..5)
            .map(|i| {
                synthesize(
                    Transport::local_endpoint(&server, 0),
                    dst,
                    Bytes::from(vec![i as u8]),
                )
            })
            .collect();
        assert_eq!(Transport::tx_burst(&server, 0, &mut batch), 5);
        assert!(batch.is_empty());
    }
}
