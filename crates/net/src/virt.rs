//! [`Transport`] adapters over the in-process [`VirtualNic`].
//!
//! The virtual wire is the one backend that must *materialize*
//! contiguous frames: the NIC's rings and checksum/fault machinery
//! operate on serialized packets, exactly as hardware DMA engines
//! consume contiguous descriptors. Scatter-gather [`TxPacket`]s are
//! therefore *gathered* here — into pooled slots, so the gather
//! allocates nothing in steady state — and every gathered segment byte
//! is counted ([`minos_nic::NicStats::tx_gathered_bytes`], surfaced as
//! [`TransportStats::tx_copied_bytes`]), keeping the zero-copy
//! accounting honest across backends.

use crate::pool::{BufferPool, PoolStats};
use crate::transport::{Transport, TransportStats};
use minos_nic::{Delivery, VirtualNic};
use minos_wire::packet::{build_frame, build_frame_into_frame, Endpoint, Packet, TxPacket};
use minos_wire::udp::UdpHeader;
use std::sync::Arc;

/// Bytes per pooled frame slot: a full MTU-sized frame with Ethernet
/// framing and the FCS trailer.
const FRAME_SLOT_LEN: usize =
    minos_wire::ETH_HEADER_LEN + minos_wire::MTU + minos_wire::ETH_FCS_LEN;

/// Frame slots in a [`VirtualClientTransport`]'s pool — sized like a
/// client-side UDP transport's RX pool.
const CLIENT_FRAME_SLOTS: usize = 512;

/// Payload-gather slots per queue in a [`VirtualTransport`]'s pool.
const SERVER_GATHER_SLOTS_PER_QUEUE: usize = 64;

/// Host id servers use in the virtual world (clients must differ).
pub(crate) const VIRTUAL_SERVER_HOST: u32 = 1;

/// Gathers one frame into a contiguous payload, preferring a pooled
/// slot from `shard` (the sending queue, so concurrent queues use
/// their own freelists; allocation-free in steady state, an exhausted
/// pool falls back to the allocating gather). Returns the payload and
/// the number of segment bytes copied.
fn gather_payload(pool: &BufferPool, shard: usize, pkt: &TxPacket) -> (bytes::Bytes, u64) {
    // A frame that is already one contiguous segment needs no gather at
    // all — the compatibility shims (`tx_push`/`tx_burst`) stay
    // zero-copy on the virtual backend too.
    if pkt.frame.inline().is_empty() && pkt.frame.segments().len() == 1 {
        return (pkt.frame.segments()[0].clone(), 0);
    }
    let copied = pkt.frame.segment_len() as u64;
    let mut slot = pool.take_on(shard);
    match pkt.frame.gather_into(slot.as_mut_slice()) {
        Some(len) => {
            let payload = slot.freeze(len);
            (payload, copied)
        }
        None => {
            let (payload, copied) = pkt.frame.to_contiguous();
            (payload, copied as u64)
        }
    }
}

impl Transport for VirtualNic {
    fn num_queues(&self) -> u16 {
        VirtualNic::num_queues(self)
    }

    fn rx_burst(&self, queue: u16, out: &mut Vec<Packet>, max: usize) -> usize {
        VirtualNic::rx_burst(self, queue, out, max)
    }

    fn rx_pop_one(&self, queue: u16) -> Option<Packet> {
        VirtualNic::rx_pop_one(self, queue)
    }

    fn rx_len(&self, queue: u16) -> usize {
        VirtualNic::rx_len(self, queue)
    }

    fn tx_frames(&self, queue: u16, frames: &mut Vec<TxPacket>) -> usize {
        let mut sent = 0;
        for pkt in frames.drain(..) {
            // The NIC rings hold contiguous packets; gather (counted)
            // unless the frame already is one segment.
            let (payload, copied) = pkt.frame.to_contiguous();
            self.record_tx_gather(copied as u64);
            if !VirtualNic::tx_push(
                self,
                queue,
                Packet {
                    meta: pkt.meta,
                    payload,
                },
            ) {
                break;
            }
            sent += 1;
        }
        sent
    }

    fn local_endpoint(&self, queue: u16) -> Endpoint {
        Endpoint::host(VIRTUAL_SERVER_HOST, UdpHeader::port_for_queue(queue))
    }

    fn stats(&self) -> TransportStats {
        let s = VirtualNic::stats(self);
        TransportStats {
            rx_packets: s.rx_delivered,
            rx_bytes: s.rx_bytes,
            tx_packets: s.tx_sent,
            tx_bytes: s.tx_bytes,
            tx_dropped: 0,
            tx_copied_bytes: s.tx_gathered_bytes,
        }
    }
}

/// The server-side adapter over a shared [`VirtualNic`]: RX queues are
/// the NIC's RX rings, TX gathers scatter-gather frames into pooled
/// slots and pushes them onto the NIC's TX rings (from which an
/// in-process client drains replies).
#[derive(Clone, Debug)]
pub struct VirtualTransport {
    nic: Arc<VirtualNic>,
    /// Pooled payload buffers for TX gathers, so serializing a reply
    /// burst recycles slots instead of allocating.
    pool: BufferPool,
}

impl VirtualTransport {
    /// Wraps `nic`.
    pub fn new(nic: Arc<VirtualNic>) -> Self {
        let slots = VirtualNic::num_queues(&nic) as usize * SERVER_GATHER_SLOTS_PER_QUEUE;
        VirtualTransport {
            pool: BufferPool::sharded(slots, FRAME_SLOT_LEN, VirtualNic::num_queues(&nic) as usize),
            nic,
        }
    }

    /// The underlying NIC.
    pub fn nic(&self) -> &Arc<VirtualNic> {
        &self.nic
    }

    /// TX gather-pool counters (mirrors `UdpTransport::pool_stats`).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }
}

impl Transport for VirtualTransport {
    fn num_queues(&self) -> u16 {
        Transport::num_queues(&*self.nic)
    }

    fn rx_burst(&self, queue: u16, out: &mut Vec<Packet>, max: usize) -> usize {
        Transport::rx_burst(&*self.nic, queue, out, max)
    }

    fn rx_pop_one(&self, queue: u16) -> Option<Packet> {
        Transport::rx_pop_one(&*self.nic, queue)
    }

    fn rx_len(&self, queue: u16) -> usize {
        Transport::rx_len(&*self.nic, queue)
    }

    fn tx_frames(&self, queue: u16, frames: &mut Vec<TxPacket>) -> usize {
        let mut sent = 0;
        for pkt in frames.drain(..) {
            let (payload, copied) = gather_payload(&self.pool, queue as usize, &pkt);
            self.nic.record_tx_gather(copied);
            if !VirtualNic::tx_push(
                &self.nic,
                queue,
                Packet {
                    meta: pkt.meta,
                    payload,
                },
            ) {
                break;
            }
            sent += 1;
        }
        sent
    }

    fn local_endpoint(&self, queue: u16) -> Endpoint {
        Transport::local_endpoint(&*self.nic, queue)
    }

    fn stats(&self) -> TransportStats {
        Transport::stats(&*self.nic)
    }

    fn collect_metrics(&self, out: &mut Vec<(String, minos_obs::MetricValue)>) {
        crate::metrics::push_transport_stats(out, &self.stats());
        crate::metrics::push_pool_stats(out, &self.pool.stats());
        let nic = VirtualNic::stats(&self.nic);
        let c = |name: &str, v: u64| (format!("nic.{name}"), minos_obs::MetricValue::Counter(v));
        out.push(c("rx_malformed", nic.rx_malformed));
        out.push(c("rx_faulted", nic.rx_faulted));
        out.push(c("rx_ring_full", nic.rx_ring_full));
        out.push(c("tx_gathered_bytes", nic.tx_gathered_bytes));
    }
}

/// The client-side adapter over a server's [`VirtualNic`]: a
/// single-queue transport whose TX encodes full frames and delivers
/// them through the NIC's receive path (checksums, fault injection,
/// steering — the whole wire), and whose RX drains the server's TX
/// rings, which is where replies appear in the in-process world.
#[derive(Clone, Debug)]
pub struct VirtualClientTransport {
    nic: Arc<VirtualNic>,
    /// The endpoint this client claims (replies are addressed to it).
    endpoint: Endpoint,
    /// Pooled frame buffers for TX encoding: the virtual wire's analog
    /// of the UDP backend's RX pool, so the per-packet frame
    /// serialization recycles slots instead of allocating.
    pool: BufferPool,
}

impl VirtualClientTransport {
    /// Creates a client transport speaking to `nic` as `endpoint`.
    pub fn new(nic: Arc<VirtualNic>, endpoint: Endpoint) -> Self {
        VirtualClientTransport {
            nic,
            endpoint,
            pool: BufferPool::new(CLIENT_FRAME_SLOTS, FRAME_SLOT_LEN),
        }
    }

    /// Frame-pool counters (mirrors `UdpTransport::pool_stats`, so the
    /// conformance suite can observe pooling on both backends).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }
}

impl Transport for VirtualClientTransport {
    fn num_queues(&self) -> u16 {
        1
    }

    fn rx_burst(&self, _queue: u16, out: &mut Vec<Packet>, max: usize) -> usize {
        let mut moved = 0;
        for q in 0..VirtualNic::num_queues(&self.nic) {
            moved += self.nic.tx_drain(q, out, max.saturating_sub(moved));
        }
        moved
    }

    fn tx_frames(&self, _queue: u16, frames: &mut Vec<TxPacket>) -> usize {
        let mut sent = 0;
        for pkt in frames.drain(..) {
            let src = Endpoint {
                mac: pkt.meta.eth.src,
                ip: pkt.meta.ip.src,
                port: pkt.meta.udp.src_port,
            };
            let dst = Endpoint {
                mac: pkt.meta.eth.dst,
                ip: pkt.meta.ip.dst,
                port: pkt.meta.udp.dst_port,
            };
            // Serialize the full Ethernet frame into a pooled slot,
            // gathering the payload regions exactly once (counted);
            // only a payload too large for one MTU-sized slot —
            // impossible for fragmenter output — falls back to the
            // allocating encoders.
            self.nic.record_tx_gather(pkt.frame.segment_len() as u64);
            let mut slot = self.pool.take();
            let frame = match build_frame_into_frame(src, dst, &pkt.frame, slot.as_mut_slice()) {
                Some(len) => slot.freeze(len),
                None => build_frame(src, dst, &pkt.frame.to_contiguous().0),
            };
            if !matches!(self.nic.deliver_frame(frame), Delivery::Queued(_)) {
                break;
            }
            sent += 1;
        }
        sent
    }

    fn local_endpoint(&self, _queue: u16) -> Endpoint {
        self.endpoint
    }

    fn collect_metrics(&self, out: &mut Vec<(String, minos_obs::MetricValue)>) {
        crate::metrics::push_transport_stats(out, &self.stats());
        crate::metrics::push_pool_stats(out, &self.pool.stats());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use minos_nic::NicConfig;
    use minos_wire::packet::{synthesize, synthesize_frame};
    use minos_wire::TxFrame;

    #[test]
    fn client_tx_lands_in_server_rx() {
        let nic = Arc::new(VirtualNic::new(NicConfig::new(4)));
        let client_ep = Endpoint::host(100, 20_000);
        let client = VirtualClientTransport::new(Arc::clone(&nic), client_ep);
        let server = VirtualTransport::new(Arc::clone(&nic));

        let dst = Transport::local_endpoint(&server, 2);
        let pkt = synthesize(client_ep, dst, Bytes::from_static(b"ping"));
        assert!(Transport::tx_push(&client, 0, pkt));

        let mut out = Vec::new();
        assert_eq!(Transport::rx_burst(&server, 2, &mut out, 32), 1);
        assert_eq!(&out[0].payload[..], b"ping");
        assert_eq!(out[0].meta.udp.src_port, 20_000);
    }

    #[test]
    fn server_tx_drains_to_client() {
        let nic = Arc::new(VirtualNic::new(NicConfig::new(2)));
        let client_ep = Endpoint::host(101, 21_000);
        let client = VirtualClientTransport::new(Arc::clone(&nic), client_ep);
        let server = VirtualTransport::new(Arc::clone(&nic));

        let reply = synthesize(
            Transport::local_endpoint(&server, 1),
            client_ep,
            Bytes::from_static(b"pong"),
        );
        assert!(Transport::tx_push(&server, 1, reply));

        let mut out = Vec::new();
        assert_eq!(Transport::rx_burst(&client, 0, &mut out, 32), 1);
        assert_eq!(&out[0].payload[..], b"pong");
        assert_eq!(out[0].meta.udp.dst_port, client_ep.port);
    }

    #[test]
    fn tx_burst_default_drains_batch() {
        let nic = Arc::new(VirtualNic::new(NicConfig::new(1)));
        let server = VirtualTransport::new(Arc::clone(&nic));
        let dst = Endpoint::host(100, 20_000);
        let mut batch: Vec<Packet> = (0..5)
            .map(|i| {
                synthesize(
                    Transport::local_endpoint(&server, 0),
                    dst,
                    Bytes::from(vec![i as u8]),
                )
            })
            .collect();
        assert_eq!(Transport::tx_burst(&server, 0, &mut batch), 5);
        assert!(batch.is_empty());
    }

    #[test]
    fn multi_segment_frames_gather_and_are_counted() {
        let nic = Arc::new(VirtualNic::new(NicConfig::new(1)));
        let client_ep = Endpoint::host(102, 22_000);
        let client = VirtualClientTransport::new(Arc::clone(&nic), client_ep);
        let server = VirtualTransport::new(Arc::clone(&nic));

        // A header + value scatter-gather reply from the server side.
        let mut frame = TxFrame::new();
        bytes::BufMut::put_slice(&mut frame, b"hdr:");
        frame.push_segment(Bytes::from_static(b"segmented value"));
        let reply = synthesize_frame(Transport::local_endpoint(&server, 0), client_ep, frame);
        let mut burst = vec![reply];
        assert_eq!(Transport::tx_frames(&server, 0, &mut burst), 1);

        let mut out = Vec::new();
        assert_eq!(Transport::rx_burst(&client, 0, &mut out, 32), 1);
        assert_eq!(&out[0].payload[..], b"hdr:segmented value");
        // The gather was honest: segment bytes counted, pooled slot used.
        let stats = Transport::stats(&server);
        assert_eq!(stats.tx_copied_bytes, b"segmented value".len() as u64);
        assert!(server.pool_stats().hits >= 1);
    }

    #[test]
    fn single_segment_shim_frames_gather_nothing() {
        let nic = Arc::new(VirtualNic::new(NicConfig::new(1)));
        let server = VirtualTransport::new(Arc::clone(&nic));
        let dst = Endpoint::host(100, 20_000);
        let pkt = synthesize(
            Transport::local_endpoint(&server, 0),
            dst,
            Bytes::from_static(b"contiguous already"),
        );
        assert!(Transport::tx_push(&server, 0, pkt));
        assert_eq!(
            Transport::stats(&server).tx_copied_bytes,
            0,
            "a single-segment frame must ride the pool-free fast path"
        );
    }
}
