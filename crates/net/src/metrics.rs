//! Canonical metric names for transport-owned telemetry.
//!
//! Every [`crate::Transport`] backend contributes the same dotted
//! `transport.*` family (via the trait's default
//! [`crate::Transport::collect_metrics`]); backends with buffer pools
//! add the `pool.*` family, and the virtual backend exposes the NIC's
//! wire-level drop counters under `nic.*`. `docs/METRICS.md` is the
//! authoritative list.

use crate::pool::PoolStats;
use crate::transport::TransportStats;
use minos_obs::MetricValue;

/// Appends the `transport.*` metrics shared by every backend.
pub fn push_transport_stats(out: &mut Vec<(String, MetricValue)>, s: &TransportStats) {
    let c = |name: &str, v: u64| (format!("transport.{name}"), MetricValue::Counter(v));
    out.push(c("rx_packets", s.rx_packets));
    out.push(c("rx_bytes", s.rx_bytes));
    out.push(c("tx_packets", s.tx_packets));
    out.push(c("tx_bytes", s.tx_bytes));
    out.push(c("tx_dropped", s.tx_dropped));
    out.push(c("tx_copied_bytes", s.tx_copied_bytes));
}

/// Appends the `pool.*` metrics of a buffer pool.
pub fn push_pool_stats(out: &mut Vec<(String, MetricValue)>, s: &PoolStats) {
    out.push(("pool.hits".to_string(), MetricValue::Counter(s.hits)));
    out.push(("pool.misses".to_string(), MetricValue::Counter(s.misses)));
    out.push(("pool.steals".to_string(), MetricValue::Counter(s.steals)));
    out.push((
        "pool.outstanding".to_string(),
        MetricValue::Gauge(s.outstanding as f64),
    ));
    out.push((
        "pool.capacity".to_string(),
        MetricValue::Gauge(s.capacity as f64),
    ));
    out.push((
        "pool.hit_rate".to_string(),
        MetricValue::Gauge(s.hit_rate()),
    ));
}
