//! Exact percentile computation (nearest-rank) and a quantile summary.
//!
//! The histograms in [`crate::hist`] answer percentile queries with
//! bounded relative error; these exact helpers are the reference
//! implementation used in tests and in harness code paths where the full
//! sample is available anyway.

/// The nearest-rank percentile of a **sorted** slice of `u64` values.
///
/// `p` is in `[0, 100]`. For `p = 0` the minimum is returned; otherwise the
/// `ceil(p/100 * n)`-th smallest element. Returns `None` on an empty slice.
///
/// # Panics
///
/// Debug-asserts that the slice is sorted.
pub fn exact_percentile(sorted: &[u64], p: f64) -> Option<u64> {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    if sorted.is_empty() {
        return None;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    Some(sorted[rank.min(sorted.len()) - 1])
}

/// The nearest-rank percentile of a **sorted** slice of `f64` values.
///
/// Same semantics as [`exact_percentile`].
pub fn exact_percentile_f64(sorted: &[f64], p: f64) -> Option<f64> {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    if sorted.is_empty() {
        return None;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    Some(sorted[rank.min(sorted.len()) - 1])
}

/// A summary of a latency distribution in microseconds.
///
/// Produced by [`crate::LatencyHistogram::quantiles`] and printed by the
/// benchmark harness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quantiles {
    /// Number of observations.
    pub count: u64,
    /// Mean, µs.
    pub mean_us: f64,
    /// Median, µs.
    pub p50_us: f64,
    /// 90th percentile, µs.
    pub p90_us: f64,
    /// 95th percentile, µs.
    pub p95_us: f64,
    /// 99th percentile, µs (the paper's headline metric).
    pub p99_us: f64,
    /// 99.9th percentile, µs.
    pub p999_us: f64,
    /// 99.99th percentile, µs (the deep-tail point rate sweeps report;
    /// meaningful once `count` reaches ~10⁴ observations).
    pub p9999_us: f64,
    /// Maximum, µs.
    pub max_us: f64,
}

impl std::fmt::Display for Quantiles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1}us p50={:.1}us p95={:.1}us p99={:.1}us p99.9={:.1}us p99.99={:.1}us max={:.1}us",
            self.count,
            self.mean_us,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.p999_us,
            self.p9999_us,
            self.max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert_eq!(exact_percentile(&[], 50.0), None);
        assert_eq!(exact_percentile_f64(&[], 50.0), None);
    }

    #[test]
    fn single_element() {
        assert_eq!(exact_percentile(&[7], 0.0), Some(7));
        assert_eq!(exact_percentile(&[7], 50.0), Some(7));
        assert_eq!(exact_percentile(&[7], 100.0), Some(7));
    }

    #[test]
    fn nearest_rank_matches_definition() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(exact_percentile(&v, 99.0), Some(99));
        assert_eq!(exact_percentile(&v, 99.1), Some(100));
        assert_eq!(exact_percentile(&v, 50.0), Some(50));
        assert_eq!(exact_percentile(&v, 1.0), Some(1));
        assert_eq!(exact_percentile(&v, 100.0), Some(100));
    }

    #[test]
    fn f64_variant_agrees() {
        let v: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        assert_eq!(exact_percentile_f64(&v, 90.0), Some(9.0));
        assert_eq!(exact_percentile_f64(&v, 91.0), Some(10.0));
    }

    #[test]
    fn clamps_out_of_range_p() {
        let v: Vec<u64> = (1..=10).collect();
        assert_eq!(exact_percentile(&v, -5.0), Some(1));
        assert_eq!(exact_percentile(&v, 500.0), Some(10));
    }

    #[test]
    fn display_formats() {
        let q = Quantiles {
            count: 10,
            mean_us: 1.0,
            p50_us: 1.0,
            p90_us: 2.0,
            p95_us: 2.5,
            p99_us: 3.0,
            p999_us: 4.0,
            p9999_us: 4.5,
            max_us: 5.0,
        };
        let s = q.to_string();
        assert!(s.contains("p99=3.0us"), "{s}");
        assert!(s.contains("p99.99=4.5us"), "{s}");
    }
}
