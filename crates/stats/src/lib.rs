//! Statistics substrate for the Minos key-value store reproduction.
//!
//! The paper's control loop (Section 3, *"How to find the threshold between
//! large and small"*) is built on three statistical primitives, all provided
//! by this crate:
//!
//! 1. **Per-core request-size histograms** ([`SizeHistogram`]) that every
//!    core updates on each request it serves. They are cheap to record into
//!    (a handful of integer operations), mergeable, and support percentile
//!    queries with bounded relative error.
//! 2. **Epoch smoothing** ([`SmoothedHistogram`]): core 0 periodically
//!    aggregates the per-core histograms and folds them into a moving
//!    average `H_curr = (1 - alpha) * H_curr + alpha * H` with
//!    `alpha = 0.9`, making the size threshold resilient to transient
//!    workload oscillations.
//! 3. **Latency histograms** ([`LatencyHistogram`]) used by the measurement
//!    harness to report the 99th percentile of end-to-end response times,
//!    the paper's headline metric.
//!
//! The histograms are HDR-style log-linear histograms implemented from
//! scratch (no external dependencies): values are bucketed by octave
//! (power of two) and linearly within each octave, giving a configurable
//! worst-case relative error per recorded value.

#![warn(missing_docs)]

pub mod counters;
pub mod ewma;
pub mod hist;
pub mod percentile;
pub mod running;

pub use counters::{CoreStats, SharedCoreStats};
pub use ewma::Ewma;
pub use hist::{
    AtomicLogHistogram, AtomicSizeHistogram, LatencyHistogram, LogHistogram, SizeHistogram,
    SmoothedHistogram,
};
pub use percentile::{exact_percentile, exact_percentile_f64, Quantiles};
pub use running::Running;
