//! Scalar exponentially-weighted moving average.

/// An exponentially-weighted moving average over scalar observations.
///
/// `update` folds a new observation `x` in as
/// `v = (1 - alpha) * v + alpha * x`; the first observation bootstraps the
/// average. This mirrors the per-bucket smoothing the Minos controller
/// applies to epoch histograms (see
/// [`crate::SmoothedHistogram`]), and is used on its own for smoothing
/// scalar load statistics.
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with discount factor `alpha` in `[0, 1]`.
    /// Higher `alpha` weighs fresh observations more.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        Self { alpha, value: None }
    }

    /// Folds a new observation into the average and returns the updated
    /// value.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(v) => (1.0 - self.alpha) * v + self.alpha * x,
        };
        self.value = Some(v);
        v
    }

    /// The current average, or `None` before the first observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Discards history.
    pub fn reset(&mut self) {
        self.value = None;
    }

    /// The discount factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_takes_first_value() {
        let mut e = Ewma::new(0.9);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(10.0), 10.0);
    }

    #[test]
    fn high_alpha_tracks_fast() {
        let mut e = Ewma::new(0.9);
        e.update(0.0);
        let v = e.update(100.0);
        assert!((v - 90.0).abs() < 1e-9);
    }

    #[test]
    fn low_alpha_tracks_slow() {
        let mut e = Ewma::new(0.1);
        e.update(0.0);
        let v = e.update(100.0);
        assert!((v - 10.0).abs() < 1e-9);
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.5);
        for _ in 0..64 {
            e.update(42.0);
        }
        assert!((e.value().unwrap() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let mut e = Ewma::new(0.5);
        e.update(1.0);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = Ewma::new(1.5);
    }
}
