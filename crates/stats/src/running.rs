//! Streaming mean/variance (Welford) with min/max tracking.

/// Online mean, variance, min and max over a stream of `f64` observations
/// using Welford's numerically-stable recurrence.
#[derive(Clone, Copy, Debug, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Population standard deviation, or `None` if empty.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (Chan et al. parallel
    /// variance combination).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reports_none() {
        let r = Running::new();
        assert_eq!(r.mean(), None);
        assert_eq!(r.variance(), None);
        assert_eq!(r.min(), None);
    }

    #[test]
    fn matches_naive_mean_and_variance() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut r = Running::new();
        for &x in &data {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((r.stddev().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(r.min(), Some(2.0));
        assert_eq!(r.max(), Some(9.0));
    }

    #[test]
    fn merge_matches_sequential() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut a = Running::new();
        let mut b = Running::new();
        let mut all = Running::new();
        for &x in &a_data {
            a.push(x);
            all.push(x);
        }
        for &x in &b_data {
            b.push(x);
            all.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean().unwrap() - all.mean().unwrap()).abs() < 1e-12);
        assert!((a.variance().unwrap() - all.variance().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Running::new();
        a.push(5.0);
        let before = a.mean();
        a.merge(&Running::new());
        assert_eq!(a.mean(), before);

        let mut e = Running::new();
        e.merge(&a);
        assert_eq!(e.mean(), a.mean());
    }
}
