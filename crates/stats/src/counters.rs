//! Per-core operation/packet counters.
//!
//! The paper's Figure 9 breaks server load down per core in two ways —
//! operations per second and packets per second. [`SharedCoreStats`] is
//! the datapath-friendly accumulator (relaxed atomics, written by the
//! owning core, snapshotted by the harness) and [`CoreStats`] the plain
//! snapshot the harness consumes.

use std::sync::atomic::{AtomicU64, Ordering};

/// A plain snapshot of one core's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// KV operations completed (GET + PUT).
    pub ops: u64,
    /// GET operations completed.
    pub get_ops: u64,
    /// PUT operations completed.
    pub put_ops: u64,
    /// Operations on large items completed.
    pub large_ops: u64,
    /// Network packets received by this core (from any RX queue).
    pub packets_rx: u64,
    /// Network packets transmitted by this core.
    pub packets_tx: u64,
    /// Payload bytes received.
    pub bytes_rx: u64,
    /// Payload bytes transmitted.
    pub bytes_tx: u64,
    /// Requests this core handed off to a large core's software queue.
    pub handoffs: u64,
    /// Requests this core stole from another core (HKH+WS only).
    pub steals: u64,
}

impl CoreStats {
    /// Packets processed in total (rx + tx), the cost measure used by the
    /// paper's load-balance analysis.
    pub fn packets(&self) -> u64 {
        self.packets_rx + self.packets_tx
    }

    /// Element-wise sum.
    pub fn merged(mut self, other: &CoreStats) -> CoreStats {
        self.ops += other.ops;
        self.get_ops += other.get_ops;
        self.put_ops += other.put_ops;
        self.large_ops += other.large_ops;
        self.packets_rx += other.packets_rx;
        self.packets_tx += other.packets_tx;
        self.bytes_rx += other.bytes_rx;
        self.bytes_tx += other.bytes_tx;
        self.handoffs += other.handoffs;
        self.steals += other.steals;
        self
    }

    /// Element-wise difference (`self - earlier`), for windowed rates.
    pub fn delta(&self, earlier: &CoreStats) -> CoreStats {
        CoreStats {
            ops: self.ops - earlier.ops,
            get_ops: self.get_ops - earlier.get_ops,
            put_ops: self.put_ops - earlier.put_ops,
            large_ops: self.large_ops - earlier.large_ops,
            packets_rx: self.packets_rx - earlier.packets_rx,
            packets_tx: self.packets_tx - earlier.packets_tx,
            bytes_rx: self.bytes_rx - earlier.bytes_rx,
            bytes_tx: self.bytes_tx - earlier.bytes_tx,
            handoffs: self.handoffs - earlier.handoffs,
            steals: self.steals - earlier.steals,
        }
    }
}

/// Atomic counters owned by one core, snapshot-readable by the harness.
///
/// All updates use `Ordering::Relaxed`: the counters are monotonic and
/// only read for statistics, never for synchronization.
#[derive(Debug, Default)]
pub struct SharedCoreStats {
    ops: AtomicU64,
    get_ops: AtomicU64,
    put_ops: AtomicU64,
    large_ops: AtomicU64,
    packets_rx: AtomicU64,
    packets_tx: AtomicU64,
    bytes_rx: AtomicU64,
    bytes_tx: AtomicU64,
    handoffs: AtomicU64,
    steals: AtomicU64,
}

impl SharedCoreStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed GET (`large` marks a large item).
    #[inline]
    pub fn record_get(&self, large: bool) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.get_ops.fetch_add(1, Ordering::Relaxed);
        if large {
            self.large_ops.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one completed PUT (`large` marks a large item).
    #[inline]
    pub fn record_put(&self, large: bool) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.put_ops.fetch_add(1, Ordering::Relaxed);
        if large {
            self.large_ops.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records packets/bytes received.
    #[inline]
    pub fn record_rx(&self, packets: u64, bytes: u64) {
        self.packets_rx.fetch_add(packets, Ordering::Relaxed);
        self.bytes_rx.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records packets/bytes transmitted.
    #[inline]
    pub fn record_tx(&self, packets: u64, bytes: u64) {
        self.packets_tx.fetch_add(packets, Ordering::Relaxed);
        self.bytes_tx.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a handoff to a large core's software queue.
    #[inline]
    pub fn record_handoff(&self) {
        self.handoffs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successful steal.
    #[inline]
    pub fn record_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for statistics purposes.
    pub fn snapshot(&self) -> CoreStats {
        CoreStats {
            ops: self.ops.load(Ordering::Relaxed),
            get_ops: self.get_ops.load(Ordering::Relaxed),
            put_ops: self.put_ops.load(Ordering::Relaxed),
            large_ops: self.large_ops.load(Ordering::Relaxed),
            packets_rx: self.packets_rx.load(Ordering::Relaxed),
            packets_tx: self.packets_tx.load(Ordering::Relaxed),
            bytes_rx: self.bytes_rx.load(Ordering::Relaxed),
            bytes_tx: self.bytes_tx.load(Ordering::Relaxed),
            handoffs: self.handoffs.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_records() {
        let s = SharedCoreStats::new();
        s.record_get(false);
        s.record_get(true);
        s.record_put(false);
        s.record_rx(3, 4096);
        s.record_tx(2, 1500);
        s.record_handoff();
        s.record_steal();
        let snap = s.snapshot();
        assert_eq!(snap.ops, 3);
        assert_eq!(snap.get_ops, 2);
        assert_eq!(snap.put_ops, 1);
        assert_eq!(snap.large_ops, 1);
        assert_eq!(snap.packets_rx, 3);
        assert_eq!(snap.packets_tx, 2);
        assert_eq!(snap.bytes_rx, 4096);
        assert_eq!(snap.bytes_tx, 1500);
        assert_eq!(snap.handoffs, 1);
        assert_eq!(snap.steals, 1);
        assert_eq!(snap.packets(), 5);
    }

    #[test]
    fn delta_and_merge() {
        let a = CoreStats {
            ops: 10,
            packets_rx: 5,
            ..Default::default()
        };
        let b = CoreStats {
            ops: 4,
            packets_rx: 2,
            ..Default::default()
        };
        let d = a.delta(&b);
        assert_eq!(d.ops, 6);
        assert_eq!(d.packets_rx, 3);
        let m = b.merged(&d);
        assert_eq!(m.ops, a.ops);
        assert_eq!(m.packets_rx, a.packets_rx);
    }

    #[test]
    fn concurrent_updates_accumulate() {
        use std::sync::Arc;
        let s = Arc::new(SharedCoreStats::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record_get(false);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().ops, 4000);
    }
}
