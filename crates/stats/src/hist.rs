//! Log-linear (HDR-style) histograms.
//!
//! A [`LogHistogram`] buckets non-negative integer values by *octave*
//! (power of two) and linearly within each octave. With `2^sub_bits`
//! sub-buckets per octave, the worst-case relative error of any percentile
//! query is `2^-sub_bits` of the value, which is plenty for both request
//! sizes (bytes) and latencies (nanoseconds).
//!
//! Two configurations are exported:
//!
//! * [`SizeHistogram`]: 32 sub-buckets per octave, values up to 2^30
//!   (1 GiB). Used by every server core to profile request sizes.
//! * [`LatencyHistogram`]: 64 sub-buckets per octave, values up to 2^40
//!   nanoseconds (~18 minutes). Used by the measurement harness.
//!
//! [`SmoothedHistogram`] implements the paper's epoch smoothing: the
//! per-epoch aggregate histogram `H` is folded into the current smoothed
//! histogram as `H_curr[i] = (1 - alpha) * H_curr[i] + alpha * H[i]`.

/// A mergeable log-linear histogram over `u64` values.
///
/// Values below `2^sub_bits` are recorded in exact (width-1) linear
/// buckets; larger values are recorded log-linearly. Values above the
/// configured maximum saturate into the top bucket.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    /// Number of low-order bits giving the linear resolution within an
    /// octave (`2^sub_bits` sub-buckets per octave).
    sub_bits: u32,
    /// Highest representable octave; values `>= 2^(max_octave + 1)`
    /// saturate.
    max_octave: u32,
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl LogHistogram {
    /// Creates a histogram covering `[0, 2^(max_octave + 1))` with
    /// `2^sub_bits` sub-buckets per octave.
    ///
    /// # Panics
    ///
    /// Panics if `sub_bits` is zero or `max_octave` is not in
    /// `(sub_bits, 63)`.
    pub fn new(sub_bits: u32, max_octave: u32) -> Self {
        assert!(sub_bits > 0, "sub_bits must be positive");
        assert!(
            max_octave > sub_bits && max_octave < 63,
            "max_octave must lie in (sub_bits, 63)"
        );
        let sub = 1usize << sub_bits;
        // Linear region: indices [0, 2^sub_bits) for values [0, 2^sub_bits).
        // Log-linear region: one group of `sub` buckets per octave in
        // [sub_bits, max_octave].
        let octaves = (max_octave - sub_bits + 1) as usize;
        let len = sub + octaves * sub + 1; // +1 saturation bucket
        Self {
            sub_bits,
            max_octave,
            counts: vec![0; len],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// The bucket index for `value`.
    #[inline]
    fn index_of(&self, value: u64) -> usize {
        let sub = 1u64 << self.sub_bits;
        if value < sub {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros(); // floor(log2(value)) >= sub_bits
        if octave > self.max_octave {
            return self.counts.len() - 1; // saturation bucket
        }
        let within = ((value - (1u64 << octave)) >> (octave - self.sub_bits)) as usize;
        let group = (octave - self.sub_bits) as usize;
        (sub as usize) + group * (sub as usize) + within
    }

    /// The *inclusive upper bound* of bucket `index` (the largest value
    /// that maps to it). Percentile queries report this bound, so they
    /// never under-estimate the requested quantile.
    fn upper_bound(&self, index: usize) -> u64 {
        let sub = 1usize << self.sub_bits;
        if index < sub {
            return index as u64;
        }
        if index == self.counts.len() - 1 {
            return u64::MAX;
        }
        let rel = index - sub;
        let group = (rel / sub) as u32;
        let within = (rel % sub) as u64;
        let octave = group + self.sub_bits;
        let base = 1u64 << octave;
        let width = 1u64 << (octave - self.sub_bits);
        base + (within + 1) * width - 1
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value`.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.index_of(value);
        self.counts[idx] += n;
        self.total += n;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value as u128 * n as u128;
    }

    /// Number of recorded observations.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True if no observations have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Mean of recorded values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (!self.is_empty()).then(|| self.sum as f64 / self.total as f64)
    }

    /// The value at percentile `p` (in `[0, 100]`), computed by
    /// cumulative-count walk; returns the inclusive upper bound of the
    /// bucket containing the `ceil(p/100 * total)`-th observation
    /// (nearest-rank definition). Returns `None` if the histogram is empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report a bound above the recorded maximum.
                return Some(self.upper_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Count of observations with value `<= bound`.
    pub fn count_at_or_below(&self, bound: u64) -> u64 {
        let idx = self.index_of(bound);
        self.counts[..=idx].iter().sum()
    }

    /// Merges `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different geometry.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.sub_bits, other.sub_bits, "geometry mismatch");
        assert_eq!(self.max_octave, other.max_octave, "geometry mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Clears all counts (geometry is retained).
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.sum = 0;
    }

    /// Takes the current contents, leaving `self` empty. Used by the
    /// epoch aggregation path to harvest per-core histograms.
    pub fn take(&mut self) -> LogHistogram {
        let out = self.clone();
        self.reset();
        out
    }

    /// Raw bucket counts (used by [`SmoothedHistogram`] and tests).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Iterator over `(upper_bound, count)` pairs of non-empty buckets.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.upper_bound(i), c))
    }
}

/// Request-size histogram: 32 sub-buckets per octave (≤ 3.2 % relative
/// error), values up to 2 GiB. This is what each Minos core updates on
/// every request (Section 3 of the paper).
#[derive(Clone, Debug)]
pub struct SizeHistogram(LogHistogram);

impl SizeHistogram {
    /// Creates an empty size histogram.
    pub fn new() -> Self {
        SizeHistogram(LogHistogram::new(5, 30))
    }

    /// Records a request for an item of `bytes` bytes.
    #[inline]
    pub fn record(&mut self, bytes: u64) {
        self.0.record(bytes);
    }

    /// See [`LogHistogram::percentile`].
    pub fn percentile(&self, p: f64) -> Option<u64> {
        self.0.percentile(p)
    }

    /// See [`LogHistogram::merge`].
    pub fn merge(&mut self, other: &SizeHistogram) {
        self.0.merge(&other.0);
    }

    /// See [`LogHistogram::take`].
    pub fn take(&mut self) -> SizeHistogram {
        SizeHistogram(self.0.take())
    }

    /// See [`LogHistogram::reset`].
    pub fn reset(&mut self) {
        self.0.reset();
    }

    /// See [`LogHistogram::total`].
    pub fn total(&self) -> u64 {
        self.0.total()
    }

    /// Access to the underlying log histogram.
    pub fn inner(&self) -> &LogHistogram {
        &self.0
    }
}

impl Default for SizeHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A lock-free, core-owned request-size histogram with the exact
/// [`SizeHistogram`] geometry, recorded with one relaxed `fetch_add` and
/// harvested by the epoch controller with [`AtomicSizeHistogram::drain`].
///
/// This replaces the per-request `Mutex<SizeHistogram>` the server cores
/// used to take on every classification: the mutex was the last
/// per-request lock on the small-core fast path, and under cross-core
/// snapshotting (core 0 aggregates all histograms each epoch) it could
/// stall a polling core behind the controller. Recording is now a single
/// uncontended atomic increment; the drain path swaps each bucket to
/// zero, so concurrent records are never lost — they land in either the
/// current or the next epoch, which is all the smoothed controller needs.
///
/// The drained histogram re-records each bucket at its upper bound, the
/// same value [`LogHistogram::percentile`] would report for it, so
/// bucket placement is bit-identical to the locked implementation and
/// threshold decisions agree to within the histogram's intrinsic
/// ≤ 3.2 % relative error.
#[derive(Debug)]
pub struct AtomicSizeHistogram(AtomicLogHistogram);

impl AtomicSizeHistogram {
    /// Creates an empty atomic size histogram.
    pub fn new() -> Self {
        AtomicSizeHistogram(AtomicLogHistogram::size())
    }

    /// Records a request for an item of `bytes` bytes: one relaxed
    /// `fetch_add`, no lock.
    #[inline]
    pub fn record(&self, bytes: u64) {
        self.0.record(bytes);
    }

    /// Takes the current contents as a [`SizeHistogram`], leaving the
    /// buckets at zero (the epoch-harvest analog of
    /// [`SizeHistogram::take`]). Each non-empty bucket is re-recorded at
    /// its inclusive upper bound.
    pub fn drain(&self) -> SizeHistogram {
        SizeHistogram(self.0.drain())
    }

    /// Sum of bucket counts right now (tests/observability; racy by
    /// nature, exact once writers are quiescent).
    pub fn total(&self) -> u64 {
        self.0.total()
    }
}

/// The lock-free histogram mechanism behind [`AtomicSizeHistogram`],
/// generalized over geometry so it also serves nanosecond-scale latency
/// decomposition (queue wait, service time) in the telemetry registry.
///
/// Recording is a single relaxed `fetch_add` into a pre-sized bucket
/// array: no locks, no allocation, safe on the per-request hot path.
/// Readers either [`AtomicLogHistogram::drain`] (swap buckets to zero,
/// epoch-harvest semantics) or take a non-destructive
/// [`AtomicLogHistogram::load`] (cumulative snapshot; concurrent records
/// land in either this snapshot or the next). Both re-record each bucket
/// at its inclusive upper bound, the value percentile queries would
/// report for it.
#[derive(Debug)]
pub struct AtomicLogHistogram {
    /// Geometry donor (never recorded into).
    template: LogHistogram,
    counts: Vec<std::sync::atomic::AtomicU64>,
}

impl AtomicLogHistogram {
    /// Creates an empty atomic histogram with the given geometry (see
    /// [`LogHistogram::new`] for the parameters and panics).
    pub fn new(sub_bits: u32, max_octave: u32) -> Self {
        let template = LogHistogram::new(sub_bits, max_octave);
        let len = template.counts().len();
        AtomicLogHistogram {
            template,
            counts: (0..len)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect(),
        }
    }

    /// The [`SizeHistogram`] geometry: 32 sub-buckets per octave, values
    /// up to 2^30 (1 GiB).
    pub fn size() -> Self {
        Self::new(5, 30)
    }

    /// The [`LatencyHistogram`] geometry: 64 sub-buckets per octave,
    /// values up to 2^40 ns (~18 minutes).
    pub fn latency() -> Self {
        Self::new(6, 40)
    }

    /// Records one observation: one relaxed `fetch_add`, no lock.
    #[inline]
    pub fn record(&self, value: u64) {
        let idx = self.template.index_of(value);
        self.counts[idx].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Takes the current contents as a [`LogHistogram`], leaving the
    /// buckets at zero. Concurrent records are never lost — they land in
    /// either this drain or the next.
    pub fn drain(&self) -> LogHistogram {
        let mut out = self.template.clone();
        for (i, c) in self.counts.iter().enumerate() {
            let n = c.swap(0, std::sync::atomic::Ordering::Relaxed);
            if n > 0 {
                out.record_n(self.template.upper_bound(i), n);
            }
        }
        out
    }

    /// Non-destructive cumulative snapshot as a [`LogHistogram`]. Racy
    /// by nature: a record concurrent with the load lands in either this
    /// snapshot or the next, so successive snapshot totals never
    /// decrease.
    pub fn load(&self) -> LogHistogram {
        let mut out = self.template.clone();
        for (i, c) in self.counts.iter().enumerate() {
            let n = c.load(std::sync::atomic::Ordering::Relaxed);
            if n > 0 {
                out.record_n(self.template.upper_bound(i), n);
            }
        }
        out
    }

    /// Sum of bucket counts right now (tests/observability; racy by
    /// nature, exact once writers are quiescent).
    pub fn total(&self) -> u64 {
        self.counts
            .iter()
            .map(|c| c.load(std::sync::atomic::Ordering::Relaxed))
            .sum()
    }
}

impl Default for AtomicSizeHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Latency histogram: 64 sub-buckets per octave (≤ 1.6 % relative error),
/// values up to 2^40 ns. Records nanoseconds.
#[derive(Clone, Debug)]
pub struct LatencyHistogram(LogHistogram);

impl LatencyHistogram {
    /// Creates an empty latency histogram.
    pub fn new() -> Self {
        LatencyHistogram(LogHistogram::new(6, 40))
    }

    /// Records one latency observation in nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.0.record(ns);
    }

    /// The latency (ns) at percentile `p`, or `None` if empty.
    pub fn percentile_ns(&self, p: f64) -> Option<u64> {
        self.0.percentile(p)
    }

    /// The latency in *microseconds* at percentile `p`, or `None` if empty.
    pub fn percentile_us(&self, p: f64) -> Option<f64> {
        self.0.percentile(p).map(|ns| ns as f64 / 1_000.0)
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> Option<f64> {
        self.0.mean().map(|ns| ns / 1_000.0)
    }

    /// Number of recorded observations.
    pub fn total(&self) -> u64 {
        self.0.total()
    }

    /// See [`LogHistogram::merge`].
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.0.merge(&other.0);
    }

    /// See [`LogHistogram::reset`].
    pub fn reset(&mut self) {
        self.0.reset();
    }

    /// Access to the underlying log histogram.
    pub fn inner(&self) -> &LogHistogram {
        &self.0
    }

    /// Convenience summary of the distribution.
    pub fn quantiles(&self) -> Option<crate::percentile::Quantiles> {
        if self.0.is_empty() {
            return None;
        }
        Some(crate::percentile::Quantiles {
            count: self.0.total(),
            mean_us: self.mean_us().unwrap_or(0.0),
            p50_us: self.percentile_us(50.0).unwrap_or(0.0),
            p90_us: self.percentile_us(90.0).unwrap_or(0.0),
            p95_us: self.percentile_us(95.0).unwrap_or(0.0),
            p99_us: self.percentile_us(99.0).unwrap_or(0.0),
            p999_us: self.percentile_us(99.9).unwrap_or(0.0),
            p9999_us: self.percentile_us(99.99).unwrap_or(0.0),
            max_us: self.0.max().unwrap_or(0) as f64 / 1_000.0,
        })
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The paper's epoch-smoothed histogram.
///
/// Every epoch (1 s by default), core 0 aggregates the per-core
/// [`SizeHistogram`]s into `H` and updates the smoothed histogram as
/// `H_curr[i] = (1 - alpha) * H_curr[i] + alpha * H[i]`, then queries the
/// smoothed histogram for the size threshold (the 99th percentile of
/// request sizes). `alpha = 0.9` weights fresh measurements heavily, as
/// the paper argues is appropriate for high-throughput workloads where an
/// epoch samples many requests.
#[derive(Clone, Debug)]
pub struct SmoothedHistogram {
    alpha: f64,
    template: LogHistogram,
    weights: Vec<f64>,
    initialized: bool,
}

impl SmoothedHistogram {
    /// Creates a smoothed histogram with the given discount factor
    /// `alpha` in `[0, 1]` using the size-histogram geometry.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        let template = SizeHistogram::new().0;
        let len = template.counts().len();
        Self {
            alpha,
            template,
            weights: vec![0.0; len],
            initialized: false,
        }
    }

    /// Creates a smoothed histogram with the paper's default `alpha = 0.9`.
    pub fn with_default_alpha() -> Self {
        Self::new(0.9)
    }

    /// Folds the new epoch aggregate `h` into the moving average.
    ///
    /// The first update bootstraps the average with `h` directly, so the
    /// controller does not start from an all-zero histogram.
    pub fn update(&mut self, h: &SizeHistogram) {
        let counts = h.inner().counts();
        assert_eq!(counts.len(), self.weights.len(), "geometry mismatch");
        if !self.initialized {
            for (w, &c) in self.weights.iter_mut().zip(counts) {
                *w = c as f64;
            }
            self.initialized = true;
            return;
        }
        let a = self.alpha;
        for (w, &c) in self.weights.iter_mut().zip(counts) {
            *w = (1.0 - a) * *w + a * c as f64;
        }
    }

    /// The value at percentile `p` of the smoothed distribution, or
    /// `None` if no updates have happened yet.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if !self.initialized {
            return None;
        }
        let total: f64 = self.weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = (p / 100.0) * total;
        let mut seen = 0.0;
        for (i, &w) in self.weights.iter().enumerate() {
            seen += w;
            if seen >= rank && w > 0.0 {
                return Some(self.template.upper_bound(i));
            }
        }
        // Fall back to the highest non-empty bucket.
        self.weights
            .iter()
            .rposition(|&w| w > 0.0)
            .map(|i| self.template.upper_bound(i))
    }

    /// The discount factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Whether at least one epoch has been folded in.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Iterator over `(bucket_upper_bound, smoothed_weight)` pairs of
    /// non-empty buckets — consumed by the Minos controller to split
    /// cost mass between small and large cores.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0.0)
            .map(|(i, &w)| (self.template.upper_bound(i), w))
    }

    /// Total smoothed weight (≈ requests per epoch).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_none() {
        let h = LogHistogram::new(5, 30);
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn linear_region_is_exact() {
        let mut h = LogHistogram::new(5, 30);
        for v in 0..32u64 {
            h.record(v);
        }
        // In the linear region every value has its own bucket.
        assert_eq!(h.percentile(100.0), Some(31));
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.count_at_or_below(15), 16);
    }

    #[test]
    fn percentile_upper_bound_never_underestimates() {
        let mut h = LogHistogram::new(5, 30);
        let values = [1u64, 100, 1_000, 10_000, 100_000, 1_000_000];
        for &v in &values {
            h.record(v);
        }
        for &v in &values {
            let count_below = values.iter().filter(|&&x| x <= v).count() as f64;
            // Stay strictly inside the rank boundary so float rounding in
            // the nearest-rank ceil cannot bump us into the next bucket.
            let p = (count_below - 0.5) / values.len() as f64 * 100.0;
            let got = h.percentile(p).unwrap();
            assert!(got >= v, "p{p}: got {got} < {v}");
            // ...and within the histogram's relative error (1/32).
            assert!(got as f64 <= v as f64 * (1.0 + 1.0 / 32.0) + 1.0);
        }
    }

    #[test]
    fn saturation_bucket_catches_huge_values() {
        let mut h = LogHistogram::new(5, 10);
        h.record(u64::MAX / 2);
        assert_eq!(h.total(), 1);
        assert_eq!(h.percentile(100.0), Some(u64::MAX / 2));
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new(5, 30);
        let mut b = LogHistogram::new(5, 30);
        let mut c = LogHistogram::new(5, 30);
        for v in [3u64, 50, 700, 9_000] {
            a.record(v);
            c.record(v);
        }
        for v in [10u64, 10_000, 500_000] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.total(), c.total());
        assert_eq!(a.counts(), c.counts());
        assert_eq!(a.percentile(99.0), c.percentile(99.0));
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn take_empties_source() {
        let mut h = LogHistogram::new(5, 30);
        h.record(42);
        let taken = h.take();
        assert_eq!(taken.total(), 1);
        assert!(h.is_empty());
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LogHistogram::new(5, 30);
        h.record(10);
        h.record(20);
        h.record(60);
        assert_eq!(h.mean(), Some(30.0));
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LogHistogram::new(5, 30);
        let mut b = LogHistogram::new(5, 30);
        a.record_n(1234, 7);
        for _ in 0..7 {
            b.record(1234);
        }
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.total(), b.total());
    }

    #[test]
    fn size_histogram_p99_tracks_bimodal_mix() {
        // 99.875 % small (100 B), 0.125 % large (500 000 B): the 99th
        // percentile must be in the small class.
        let mut h = SizeHistogram::new();
        for _ in 0..99_875 {
            h.record(100);
        }
        for _ in 0..125 {
            h.record(500_000);
        }
        let p99 = h.percentile(99.0).unwrap();
        assert!(p99 < 1_500, "p99 {p99} should be a small size");
        let p9999 = h.percentile(99.95).unwrap();
        assert!(p9999 >= 400_000, "p99.95 {p9999} should be large");
    }

    #[test]
    fn latency_histogram_quantiles() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record_ns(i * 1_000); // 1..=1000 us
        }
        let q = h.quantiles().unwrap();
        assert_eq!(q.count, 1000);
        assert!((q.p50_us - 500.0).abs() / 500.0 < 0.05, "p50 {}", q.p50_us);
        assert!((q.p99_us - 990.0).abs() / 990.0 < 0.05, "p99 {}", q.p99_us);
        assert!((q.mean_us - 500.5).abs() < 1.0);
    }

    #[test]
    fn smoothed_histogram_bootstraps_then_damps() {
        let mut s = SmoothedHistogram::new(0.9);
        assert_eq!(s.percentile(99.0), None);

        let mut h1 = SizeHistogram::new();
        for _ in 0..1000 {
            h1.record(100);
        }
        s.update(&h1);
        let t1 = s.percentile(99.0).unwrap();
        assert!(t1 < 200, "after bootstrap threshold tracks 100 B: {t1}");

        // A new epoch dominated by 1 MB items pulls the p99 up, heavily
        // weighted (alpha = 0.9) toward the fresh measurement.
        let mut h2 = SizeHistogram::new();
        for _ in 0..1000 {
            h2.record(1_000_000);
        }
        s.update(&h2);
        let t2 = s.percentile(99.0).unwrap();
        assert!(t2 >= 900_000, "fresh epoch dominates: {t2}");
    }

    #[test]
    fn smoothed_histogram_resists_transient() {
        // With alpha = 0.9 a one-epoch 50/50 blip moves p99 but a
        // low-alpha controller barely moves. Verifies the knob works.
        let mut steady = SizeHistogram::new();
        for _ in 0..10_000 {
            steady.record(100);
        }
        let mut blip = SizeHistogram::new();
        for _ in 0..5_000 {
            blip.record(100);
        }
        for _ in 0..5_000 {
            blip.record(1_000_000);
        }

        let mut sluggish = SmoothedHistogram::new(0.1);
        sluggish.update(&steady);
        sluggish.update(&blip);
        // 10 % weight on the blip: large share = 500/10450 < 5 % => p99
        // still large-free? 0.05*10000=500 large vs 9500+... Let's just
        // assert it stays below the large class.
        let t = sluggish.percentile(94.0).unwrap();
        assert!(t < 1_500, "sluggish controller ignores blip: {t}");

        let mut eager = SmoothedHistogram::new(0.9);
        eager.update(&steady);
        eager.update(&blip);
        let t = eager.percentile(99.0).unwrap();
        assert!(t >= 900_000, "eager controller follows blip: {t}");
    }

    #[test]
    fn atomic_histogram_matches_locked_recording() {
        let atomic = AtomicSizeHistogram::new();
        let mut locked = SizeHistogram::new();
        for v in [0u64, 1, 31, 32, 100, 1_456, 9_000, 123_456, 1 << 20] {
            atomic.record(v);
            locked.record(v);
        }
        let drained = atomic.drain();
        assert_eq!(drained.total(), locked.total());
        assert_eq!(
            drained.inner().counts(),
            locked.inner().counts(),
            "bucket placement identical to the locked path"
        );
        // Percentiles agree to within the histogram's intrinsic 1/32
        // relative error (drained observations sit at bucket upper
        // bounds, so only the max-clamp of the top bucket can differ).
        let (d99, l99) = (
            drained.percentile(99.0).unwrap() as f64,
            locked.percentile(99.0).unwrap() as f64,
        );
        assert!((d99 - l99).abs() <= l99 / 32.0 + 1.0, "{d99} vs {l99}");
        // Drain empties the source.
        assert_eq!(atomic.total(), 0);
        assert!(atomic.drain().is_empty());
    }

    #[test]
    fn atomic_histogram_concurrent_records_all_land() {
        use std::sync::Arc;
        let h = Arc::new(AtomicSizeHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record((t * 10_000 + i) % 100_000);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.drain().total(), 40_000);
    }

    impl SizeHistogram {
        fn is_empty(&self) -> bool {
            self.0.is_empty()
        }
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn merge_geometry_mismatch_panics() {
        let mut a = LogHistogram::new(5, 30);
        let b = LogHistogram::new(6, 30);
        a.merge(&b);
    }

    #[test]
    fn upper_bounds_are_monotonic() {
        let h = LogHistogram::new(5, 30);
        let mut prev = 0;
        for i in 0..h.counts().len() - 1 {
            let ub = h.upper_bound(i);
            assert!(ub >= prev, "bucket {i}: {ub} < {prev}");
            prev = ub;
        }
    }

    #[test]
    fn index_of_is_consistent_with_upper_bound() {
        let h = LogHistogram::new(5, 30);
        for &v in &[
            0u64,
            1,
            31,
            32,
            33,
            100,
            1_023,
            1_024,
            1_025,
            123_456,
            1 << 30,
        ] {
            let i = h.index_of(v);
            assert!(h.upper_bound(i) >= v, "value {v} bucket {i}");
            if i > 0 {
                assert!(h.upper_bound(i - 1) < v, "value {v} bucket {i}");
            }
        }
    }
}
