//! Property-based tests: the log-linear histogram must agree with exact
//! (nearest-rank) percentiles up to its documented relative error, and
//! merging must be equivalent to concatenated recording.

use minos_stats::{exact_percentile, LogHistogram, SizeHistogram};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Histogram percentile is always >= the exact percentile and within
    /// the documented relative error (1/32 for SizeHistogram geometry).
    #[test]
    fn percentile_bounds_exact(
        mut values in prop::collection::vec(0u64..2_000_000, 1..400),
        p in 0.0f64..100.0,
    ) {
        let mut h = SizeHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let exact = exact_percentile(&values, p).unwrap();
        let approx = h.percentile(p).unwrap();
        prop_assert!(approx >= exact, "approx {approx} < exact {exact}");
        // Upper bound: at most one bucket above the exact value.
        let bound = exact as f64 * (1.0 + 1.0 / 32.0) + 1.0;
        prop_assert!(
            (approx as f64) <= bound,
            "approx {approx} > bound {bound} (exact {exact})"
        );
    }

    /// merge(a, b) has the same counts as recording all values into one
    /// histogram.
    #[test]
    fn merge_is_concat(
        a in prop::collection::vec(0u64..10_000_000, 0..200),
        b in prop::collection::vec(0u64..10_000_000, 0..200),
    ) {
        let mut ha = LogHistogram::new(5, 30);
        let mut hb = LogHistogram::new(5, 30);
        let mut hc = LogHistogram::new(5, 30);
        for &v in &a {
            ha.record(v);
            hc.record(v);
        }
        for &v in &b {
            hb.record(v);
            hc.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.counts(), hc.counts());
        prop_assert_eq!(ha.total(), hc.total());
        prop_assert_eq!(ha.min(), hc.min());
        prop_assert_eq!(ha.max(), hc.max());
    }

    /// Percentile is monotonic in p.
    #[test]
    fn percentile_monotonic(
        values in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut h = LogHistogram::new(5, 30);
        for &v in &values {
            h.record(v);
        }
        let mut prev = 0u64;
        for i in 0..=100 {
            let p = i as f64;
            let v = h.percentile(p).unwrap();
            prop_assert!(v >= prev, "p{p}: {v} < {prev}");
            prev = v;
        }
    }

    /// count_at_or_below is consistent with the recorded multiset up to
    /// bucket granularity: it never undercounts values <= bound.
    #[test]
    fn count_at_or_below_never_undercounts(
        values in prop::collection::vec(0u64..1_000_000, 0..200),
        bound in 0u64..1_000_000,
    ) {
        let mut h = LogHistogram::new(5, 30);
        for &v in &values {
            h.record(v);
        }
        let exact = values.iter().filter(|&&v| v <= bound).count() as u64;
        prop_assert!(h.count_at_or_below(bound) >= exact);
    }

    /// The histogram mean is exact (it is tracked outside the buckets).
    #[test]
    fn mean_is_exact(values in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = LogHistogram::new(5, 30);
        let mut sum = 0u128;
        for &v in &values {
            h.record(v);
            sum += v as u128;
        }
        let exact = sum as f64 / values.len() as f64;
        let got = h.mean().unwrap();
        prop_assert!((got - exact).abs() < 1e-6 * exact.max(1.0));
    }
}
