//! Property tests on the NIC: steering must be deterministic, total
//! and respectful of Flow-Director rules; fault-free delivery must
//! conserve packets.

use minos_nic::{Delivery, NicConfig, VirtualNic};
use minos_wire::packet::{build_frame, Endpoint};
use minos_wire::udp::UdpHeader;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any well-formed frame is delivered to a valid queue, and the same
    /// frame always lands in the same queue.
    #[test]
    fn steering_is_total_and_deterministic(
        n_queues in 1u16..16,
        host in 1u32..1000,
        src_port in 1u16..u16::MAX,
        dst_port in 1u16..u16::MAX,
        payload in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let nic = VirtualNic::new(NicConfig::new(n_queues));
        let src = Endpoint::host(100 + host, src_port);
        let dst = Endpoint::host(1, dst_port);
        let frame = build_frame(src, dst, &payload);
        let d1 = nic.deliver_frame(frame.clone());
        match d1 {
            Delivery::Queued(q) => {
                prop_assert!(q < n_queues);
                // Again: same queue.
                match nic.deliver_frame(frame) {
                    Delivery::Queued(q2) => prop_assert_eq!(q, q2),
                    other => prop_assert!(false, "second delivery {:?}", other),
                }
                // Flow-Director contract: ports in the queue range map
                // to exactly that queue.
                if let Some(expected) = dst_port.checked_sub(UdpHeader::port_for_queue(0)) {
                    if expected < n_queues {
                        prop_assert_eq!(q, expected);
                    }
                }
            }
            other => prop_assert!(false, "delivery {:?}", other),
        }
    }

    /// Fault-free delivery conserves packets: delivered + ring-full
    /// drops == sent; bursts drain exactly what was queued, in order
    /// per queue.
    #[test]
    fn conservation_under_bursts(
        frames in prop::collection::vec((0u16..4, 0u8..255), 1..100),
    ) {
        let nic = VirtualNic::new(NicConfig::new(4).with_queue_capacity(64));
        let mut sent_per_queue = [0usize; 4];
        for &(q, tag) in &frames {
            let src = Endpoint::host(100, 5000 + tag as u16);
            let dst = Endpoint::host(1, UdpHeader::port_for_queue(q));
            match nic.deliver_frame(build_frame(src, dst, &[tag])) {
                Delivery::Queued(qq) => {
                    prop_assert_eq!(qq, q);
                    sent_per_queue[q as usize] += 1;
                }
                Delivery::DroppedFull(_) => {}
                other => prop_assert!(false, "{:?}", other),
            }
        }
        let stats = nic.stats();
        prop_assert_eq!(
            stats.rx_delivered + stats.rx_ring_full,
            frames.len() as u64
        );
        for q in 0..4u16 {
            let mut out = Vec::new();
            let n = nic.rx_burst(q, &mut out, 1000);
            prop_assert_eq!(n, sent_per_queue[q as usize]);
        }
    }
}
