//! The virtual NIC device: steering + queues + statistics.

use crate::faults::{FaultDecision, FaultInjector};
use crate::flow_director::FlowDirector;
use crate::queue::{PacketQueue, QueueStats};
use crate::rss::RssHasher;
use bytes::Bytes;
use minos_wire::packet::{parse_frame, Packet, PacketMeta};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Configuration of a [`VirtualNic`].
#[derive(Clone, Debug)]
pub struct NicConfig {
    /// Number of RX (and TX) queues; the paper configures one per core.
    pub num_queues: u16,
    /// Per-queue ring capacity in packets.
    pub queue_capacity: usize,
    /// Install Flow-Director rules mapping port `9000 + q` to queue `q`.
    /// When `false` every packet is steered by RSS, as on the paper's
    /// testbed NIC ("Our NIC supports only RSS", §5.1).
    pub flow_director: bool,
    /// Optional fault injection on the receive path.
    pub faults: Option<FaultInjector>,
}

impl NicConfig {
    /// A NIC with `num_queues` queues and defaults matching the paper's
    /// setup (Flow-Director steering, 4096-packet rings, no faults).
    pub fn new(num_queues: u16) -> Self {
        Self {
            num_queues,
            queue_capacity: 4096,
            flow_director: true,
            faults: None,
        }
    }

    /// Overrides the ring capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Enables fault injection.
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Disables Flow Director, forcing RSS-only steering.
    pub fn rss_only(mut self) -> Self {
        self.flow_director = false;
        self
    }
}

/// Outcome of delivering one frame to the NIC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// Enqueued on the given RX queue.
    Queued(u16),
    /// Dropped: frame failed parsing or checksum verification.
    DroppedMalformed,
    /// Dropped by the fault injector.
    DroppedFault,
    /// Dropped: the target RX ring was full.
    DroppedFull(u16),
}

/// Device-level statistics (per-queue stats live on the queues).
#[derive(Clone, Copy, Debug, Default)]
pub struct NicStats {
    /// Frames delivered to an RX ring.
    pub rx_delivered: u64,
    /// Frames dropped as malformed.
    pub rx_malformed: u64,
    /// Frames dropped by fault injection.
    pub rx_faulted: u64,
    /// Frames dropped on full rings.
    pub rx_ring_full: u64,
    /// Frames transmitted (drained from TX rings).
    pub tx_sent: u64,
    /// Bytes received (wire bytes of delivered frames).
    pub rx_bytes: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Payload segment bytes gathered (copied) to materialize
    /// contiguous frames on the transmit path. The virtual wire is the
    /// one backend that *must* serialize frames — its stand-in for DMA
    /// — so honest accounting lives here; the real-UDP backend keeps
    /// its analogous gauge at zero via scatter-gather syscalls.
    pub tx_gathered_bytes: u64,
}

/// An in-process multi-queue NIC.
///
/// `deliver_frame` runs on the *sender's* context — steering costs the
/// receiving cores nothing, the defining property of hardware dispatch.
#[derive(Debug)]
pub struct VirtualNic {
    num_queues: u16,
    rss: RssHasher,
    fd: Option<FlowDirector>,
    rx: Vec<PacketQueue>,
    tx: Vec<PacketQueue>,
    faults: Option<Mutex<FaultInjector>>,
    rx_delivered: AtomicU64,
    rx_malformed: AtomicU64,
    rx_faulted: AtomicU64,
    rx_ring_full: AtomicU64,
    tx_sent: AtomicU64,
    rx_bytes: AtomicU64,
    tx_bytes: AtomicU64,
    tx_gathered_bytes: AtomicU64,
}

impl VirtualNic {
    /// Creates a NIC from `config`.
    pub fn new(config: NicConfig) -> Self {
        assert!(config.num_queues > 0);
        let mk = |_| PacketQueue::new(config.queue_capacity);
        Self {
            num_queues: config.num_queues,
            rss: RssHasher::new(config.num_queues),
            fd: config
                .flow_director
                .then(|| FlowDirector::with_queue_ports(config.num_queues)),
            rx: (0..config.num_queues).map(mk).collect(),
            tx: (0..config.num_queues).map(mk).collect(),
            faults: config.faults.filter(|f| !f.is_noop()).map(Mutex::new),
            rx_delivered: AtomicU64::new(0),
            rx_malformed: AtomicU64::new(0),
            rx_faulted: AtomicU64::new(0),
            rx_ring_full: AtomicU64::new(0),
            tx_sent: AtomicU64::new(0),
            rx_bytes: AtomicU64::new(0),
            tx_bytes: AtomicU64::new(0),
            tx_gathered_bytes: AtomicU64::new(0),
        }
    }

    /// Number of RX/TX queue pairs.
    pub fn num_queues(&self) -> u16 {
        self.num_queues
    }

    /// The RX queue the steering logic selects for `meta`:
    /// Flow Director first (if enabled and a rule matches), then RSS.
    pub fn steer(&self, meta: &PacketMeta) -> u16 {
        if let Some(fd) = &self.fd {
            if let Some(q) = fd.lookup(meta.udp.dst_port) {
                return q;
            }
        }
        self.rss.queue_for(&meta.five_tuple())
    }

    /// Delivers one raw frame: fault injection, parse + checksum
    /// verification, steering, RX enqueue.
    pub fn deliver_frame(&self, frame: Bytes) -> Delivery {
        let frame = match &self.faults {
            None => frame,
            Some(f) => match f.lock().unwrap().decide(frame.len()) {
                FaultDecision::Deliver => frame,
                FaultDecision::Drop => {
                    self.rx_faulted.fetch_add(1, Ordering::Relaxed);
                    return Delivery::DroppedFault;
                }
                FaultDecision::Corrupt { offset, mask } => {
                    let mut raw = frame.to_vec();
                    raw[offset] ^= mask;
                    Bytes::from(raw)
                }
            },
        };
        match parse_frame(frame) {
            None => {
                self.rx_malformed.fetch_add(1, Ordering::Relaxed);
                Delivery::DroppedMalformed
            }
            Some(packet) => self.deliver_packet(packet),
        }
    }

    /// Delivers an already-parsed packet (checksums assumed verified).
    pub fn deliver_packet(&self, packet: Packet) -> Delivery {
        let q = self.steer(&packet.meta);
        let bytes = packet.wire_len() as u64;
        if self.rx[q as usize].push(packet) {
            self.rx_delivered.fetch_add(1, Ordering::Relaxed);
            self.rx_bytes.fetch_add(bytes, Ordering::Relaxed);
            Delivery::Queued(q)
        } else {
            self.rx_ring_full.fetch_add(1, Ordering::Relaxed);
            Delivery::DroppedFull(q)
        }
    }

    /// Burst-dequeues up to `max` packets from RX queue `queue`.
    pub fn rx_burst(&self, queue: u16, out: &mut Vec<Packet>, max: usize) -> usize {
        self.rx[queue as usize].rx_burst(out, max)
    }

    /// Dequeues one packet from RX queue `queue` (steal path).
    pub fn rx_pop_one(&self, queue: u16) -> Option<Packet> {
        self.rx[queue as usize].pop_one()
    }

    /// Current depth of RX queue `queue`.
    pub fn rx_len(&self, queue: u16) -> usize {
        self.rx[queue as usize].len()
    }

    /// Enqueues a packet for transmission on TX queue `queue`.
    pub fn tx_push(&self, queue: u16, packet: Packet) -> bool {
        self.tx[queue as usize].push(packet)
    }

    /// Records `bytes` of payload segments gathered (copied) by a
    /// transmit adapter to materialize a contiguous frame for this NIC;
    /// see [`NicStats::tx_gathered_bytes`].
    pub fn record_tx_gather(&self, bytes: u64) {
        if bytes > 0 {
            self.tx_gathered_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Drains up to `max` packets from TX queue `queue` (the "wire" side;
    /// in tests and examples this is what carries replies back to the
    /// client).
    pub fn tx_drain(&self, queue: u16, out: &mut Vec<Packet>, max: usize) -> usize {
        let n = self.tx[queue as usize].rx_burst(out, max);
        if n > 0 {
            self.tx_sent.fetch_add(n as u64, Ordering::Relaxed);
            let bytes: u64 = out[out.len() - n..]
                .iter()
                .map(|p| p.wire_len() as u64)
                .sum();
            self.tx_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        n
    }

    /// Per-queue RX statistics.
    pub fn rx_queue_stats(&self, queue: u16) -> QueueStats {
        self.rx[queue as usize].stats()
    }

    /// Per-queue TX statistics.
    pub fn tx_queue_stats(&self, queue: u16) -> QueueStats {
        self.tx[queue as usize].stats()
    }

    /// Device-level statistics snapshot.
    pub fn stats(&self) -> NicStats {
        NicStats {
            rx_delivered: self.rx_delivered.load(Ordering::Relaxed),
            rx_malformed: self.rx_malformed.load(Ordering::Relaxed),
            rx_faulted: self.rx_faulted.load(Ordering::Relaxed),
            rx_ring_full: self.rx_ring_full.load(Ordering::Relaxed),
            tx_sent: self.tx_sent.load(Ordering::Relaxed),
            rx_bytes: self.rx_bytes.load(Ordering::Relaxed),
            tx_bytes: self.tx_bytes.load(Ordering::Relaxed),
            tx_gathered_bytes: self.tx_gathered_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_wire::packet::{build_frame, Endpoint};
    use minos_wire::udp::UdpHeader;

    fn frame_to_queue(q: u16) -> Bytes {
        build_frame(
            Endpoint::host(1, 1000),
            Endpoint::host(2, UdpHeader::port_for_queue(q)),
            b"hello",
        )
    }

    #[test]
    fn flow_director_steers_to_requested_queue() {
        let nic = VirtualNic::new(NicConfig::new(8));
        for q in 0..8u16 {
            assert_eq!(nic.deliver_frame(frame_to_queue(q)), Delivery::Queued(q));
            assert_eq!(nic.rx_len(q), 1);
        }
        assert_eq!(nic.stats().rx_delivered, 8);
    }

    #[test]
    fn rss_fallback_for_unmapped_port() {
        let nic = VirtualNic::new(NicConfig::new(8));
        let frame = build_frame(Endpoint::host(1, 1234), Endpoint::host(2, 80), b"x");
        match nic.deliver_frame(frame) {
            Delivery::Queued(q) => assert!(q < 8),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rss_only_mode_ignores_port_convention() {
        let nic = VirtualNic::new(NicConfig::new(8).rss_only());
        // With RSS-only steering, the port->queue identity no longer
        // holds for every queue (it may coincide for some).
        let mut mismatch = false;
        for q in 0..8u16 {
            if let Delivery::Queued(actual) = nic.deliver_frame(frame_to_queue(q)) {
                if actual != q {
                    mismatch = true;
                }
            }
        }
        assert!(mismatch, "RSS should not replicate the identity mapping");
    }

    #[test]
    fn malformed_frame_dropped() {
        let nic = VirtualNic::new(NicConfig::new(2));
        assert_eq!(
            nic.deliver_frame(Bytes::from_static(&[0u8; 30])),
            Delivery::DroppedMalformed
        );
        assert_eq!(nic.stats().rx_malformed, 1);
    }

    #[test]
    fn corruption_is_caught_by_checksums() {
        let nic = VirtualNic::new(NicConfig::new(2).with_faults(FaultInjector::new(0.0, 1.0, 5)));
        // Every frame corrupted => every frame must fail parsing, never
        // silently deliver wrong bytes.
        for _ in 0..100 {
            let d = nic.deliver_frame(frame_to_queue(0));
            assert_eq!(d, Delivery::DroppedMalformed);
        }
        assert_eq!(nic.stats().rx_malformed, 100);
        assert_eq!(nic.stats().rx_delivered, 0);
    }

    #[test]
    fn drop_faults_counted() {
        let nic = VirtualNic::new(NicConfig::new(2).with_faults(FaultInjector::new(1.0, 0.0, 5)));
        assert_eq!(nic.deliver_frame(frame_to_queue(0)), Delivery::DroppedFault);
        assert_eq!(nic.stats().rx_faulted, 1);
    }

    #[test]
    fn ring_full_tail_drops() {
        let nic = VirtualNic::new(NicConfig::new(1).with_queue_capacity(2));
        assert_eq!(nic.deliver_frame(frame_to_queue(0)), Delivery::Queued(0));
        assert_eq!(nic.deliver_frame(frame_to_queue(0)), Delivery::Queued(0));
        assert_eq!(
            nic.deliver_frame(frame_to_queue(0)),
            Delivery::DroppedFull(0)
        );
        assert_eq!(nic.stats().rx_ring_full, 1);
    }

    #[test]
    fn tx_roundtrip() {
        let nic = VirtualNic::new(NicConfig::new(2));
        let pkt = minos_wire::packet::parse_frame(frame_to_queue(1)).unwrap();
        assert!(nic.tx_push(1, pkt));
        let mut out = Vec::new();
        assert_eq!(nic.tx_drain(1, &mut out, 32), 1);
        assert_eq!(nic.stats().tx_sent, 1);
        assert!(nic.stats().tx_bytes > 0);
    }

    #[test]
    fn rx_burst_respects_batch_size() {
        let nic = VirtualNic::new(NicConfig::new(1));
        for _ in 0..50 {
            nic.deliver_frame(frame_to_queue(0));
        }
        let mut out = Vec::new();
        assert_eq!(nic.rx_burst(0, &mut out, 32), 32);
        assert_eq!(nic.rx_burst(0, &mut out, 32), 18);
    }
}
