//! Probabilistic fault injection on the receive path.
//!
//! Borrowed straight from the smoltcp examples' philosophy: adverse
//! network conditions (random drop, random single-byte corruption) are a
//! first-class configuration knob so tests can exercise the loss paths —
//! e.g. that a dropped fragment leaves the reassembler pending rather
//! than delivering a corrupt message, and that the client's zero-loss
//! accounting (paper §5.4 only reports runs with 0 packet loss) notices.
//!
//! The injector uses its own tiny deterministic RNG (xorshift64*) so a
//! seeded run replays exactly.

/// Deterministic fault injector.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    /// Probability in [0, 1] that a frame is silently dropped.
    drop_chance: f64,
    /// Probability in [0, 1] that one byte of a frame is flipped.
    corrupt_chance: f64,
    state: u64,
    /// Number of frames dropped so far.
    pub dropped: u64,
    /// Number of frames corrupted so far.
    pub corrupted: u64,
}

/// What the injector decided for one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver the frame untouched.
    Deliver,
    /// Drop the frame.
    Drop,
    /// Deliver a corrupted copy (byte at `offset` XORed with `mask`).
    Corrupt {
        /// Byte offset to corrupt (modulo frame length).
        offset: usize,
        /// Non-zero XOR mask.
        mask: u8,
    },
}

impl FaultInjector {
    /// A fault-free injector.
    pub fn none() -> Self {
        Self::new(0.0, 0.0, 1)
    }

    /// Creates an injector with the given probabilities and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]`.
    pub fn new(drop_chance: f64, corrupt_chance: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&drop_chance));
        assert!((0.0..=1.0).contains(&corrupt_chance));
        Self {
            drop_chance,
            corrupt_chance,
            state: seed.max(1),
            dropped: 0,
            corrupted: 0,
        }
    }

    /// True if no faults can ever be injected.
    pub fn is_noop(&self) -> bool {
        self.drop_chance == 0.0 && self.corrupt_chance == 0.0
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64* — adequate and fully deterministic.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decides the fate of one frame of `frame_len` bytes.
    pub fn decide(&mut self, frame_len: usize) -> FaultDecision {
        if self.drop_chance > 0.0 && self.next_f64() < self.drop_chance {
            self.dropped += 1;
            return FaultDecision::Drop;
        }
        if self.corrupt_chance > 0.0 && frame_len > 0 && self.next_f64() < self.corrupt_chance {
            self.corrupted += 1;
            let offset = (self.next_u64() as usize) % frame_len;
            let mask = ((self.next_u64() as u8) | 1).max(1);
            return FaultDecision::Corrupt { offset, mask };
        }
        FaultDecision::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_always_delivers() {
        let mut f = FaultInjector::none();
        assert!(f.is_noop());
        for _ in 0..1000 {
            assert_eq!(f.decide(100), FaultDecision::Deliver);
        }
        assert_eq!(f.dropped, 0);
    }

    #[test]
    fn drop_rate_is_respected() {
        let mut f = FaultInjector::new(0.3, 0.0, 42);
        let mut drops = 0;
        for _ in 0..10_000 {
            if f.decide(100) == FaultDecision::Drop {
                drops += 1;
            }
        }
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
        assert_eq!(f.dropped, drops);
    }

    #[test]
    fn corruption_offset_in_bounds_and_mask_nonzero() {
        let mut f = FaultInjector::new(0.0, 1.0, 7);
        for len in 1..50usize {
            match f.decide(len) {
                FaultDecision::Corrupt { offset, mask } => {
                    assert!(offset < len);
                    assert_ne!(mask, 0);
                }
                other => panic!("expected corruption, got {other:?}"),
            }
        }
    }

    #[test]
    fn deterministic_replay() {
        let mut a = FaultInjector::new(0.5, 0.2, 99);
        let mut b = FaultInjector::new(0.5, 0.2, 99);
        for _ in 0..1000 {
            assert_eq!(a.decide(64), b.decide(64));
        }
    }

    #[test]
    #[should_panic]
    fn invalid_probability_panics() {
        let _ = FaultInjector::new(1.5, 0.0, 1);
    }
}
