//! Receive-Side Scaling: the Toeplitz hash plus an indirection table.
//!
//! This is the same algorithm commodity NICs implement in hardware
//! (Microsoft's RSS specification): the 5-tuple is serialized
//! big-endian (src IP, dst IP, src port, dst port — the protocol is part
//! of rule selection, not the hash input) and hashed against a secret
//! key by accumulating, for every *set bit* of the input, the 32-bit
//! window of the key at that bit offset. The low bits of the hash index
//! an indirection table that maps to an RX queue.

use minos_wire::packet::FiveTuple;

/// The well-known default RSS key used by Microsoft's documentation and
/// most NIC drivers ("the Microsoft key").
pub const DEFAULT_RSS_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// Size of the indirection table (128 entries, as on many real NICs).
pub const INDIRECTION_ENTRIES: usize = 128;

/// The RSS unit: Toeplitz hash + indirection table.
#[derive(Clone, Debug)]
pub struct RssHasher {
    key: [u8; 40],
    table: [u16; INDIRECTION_ENTRIES],
}

impl RssHasher {
    /// Creates an RSS unit distributing across `num_queues` queues
    /// round-robin in the indirection table (the standard default).
    pub fn new(num_queues: u16) -> Self {
        assert!(num_queues > 0, "need at least one queue");
        let mut table = [0u16; INDIRECTION_ENTRIES];
        for (i, e) in table.iter_mut().enumerate() {
            *e = (i % num_queues as usize) as u16;
        }
        Self {
            key: DEFAULT_RSS_KEY,
            table,
        }
    }

    /// Replaces the secret key.
    pub fn with_key(mut self, key: [u8; 40]) -> Self {
        self.key = key;
        self
    }

    /// Computes the 32-bit Toeplitz hash of `t`.
    pub fn toeplitz(&self, t: &FiveTuple) -> u32 {
        let mut input = [0u8; 12];
        input[0..4].copy_from_slice(&t.src_ip.to_be_bytes());
        input[4..8].copy_from_slice(&t.dst_ip.to_be_bytes());
        input[8..10].copy_from_slice(&t.src_port.to_be_bytes());
        input[10..12].copy_from_slice(&t.dst_port.to_be_bytes());
        self.toeplitz_bytes(&input)
    }

    fn toeplitz_bytes(&self, input: &[u8]) -> u32 {
        debug_assert!(input.len() + 4 <= self.key.len());
        let mut result: u32 = 0;
        // The sliding 32-bit window of the key starting at bit offset 0.
        let mut window: u32 = u32::from_be_bytes(self.key[0..4].try_into().unwrap());
        let mut next_byte = 4usize;
        let mut next_bits = u32::from(self.key[next_byte]);
        let mut bits_left = 8u32;
        for &b in input {
            for bit in (0..8).rev() {
                if (b >> bit) & 1 == 1 {
                    result ^= window;
                }
                // Slide the window one bit, pulling from the key stream.
                window = (window << 1) | ((next_bits >> (bits_left - 1)) & 1);
                bits_left -= 1;
                if bits_left == 0 {
                    next_byte += 1;
                    next_bits = if next_byte < self.key.len() {
                        u32::from(self.key[next_byte])
                    } else {
                        0
                    };
                    bits_left = 8;
                }
            }
        }
        result
    }

    /// The RX queue RSS selects for 5-tuple `t`.
    pub fn queue_for(&self, t: &FiveTuple) -> u16 {
        let h = self.toeplitz(t);
        self.table[(h as usize) & (INDIRECTION_ENTRIES - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> FiveTuple {
        FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: 17,
        }
    }

    /// Known-answer tests from the Microsoft RSS verification suite
    /// (IPv4 with ports). These exact vectors appear in the Windows DDK
    /// documentation and in the DPDK test suite.
    #[test]
    fn microsoft_known_answers() {
        let rss = RssHasher::new(1);
        // 66.9.149.187:2794 -> 161.142.100.80:1766  => 0x51ccc178
        let t = tuple(0x420995bb, 0xa18e6450, 2794, 1766);
        assert_eq!(rss.toeplitz(&t), 0x51ccc178);
        // 199.92.111.2:14230 -> 65.69.140.83:4739 => 0xc626b0ea
        let t = tuple(0xc75c6f02, 0x41458c53, 14230, 4739);
        assert_eq!(rss.toeplitz(&t), 0xc626b0ea);
        // 24.19.198.95:12898 -> 12.22.207.184:38024 => 0x5c2b394a
        let t = tuple(0x1813c65f, 0x0c16cfb8, 12898, 38024);
        assert_eq!(rss.toeplitz(&t), 0x5c2b394a);
    }

    #[test]
    fn queue_in_range_and_deterministic() {
        let rss = RssHasher::new(8);
        for i in 0..1000u32 {
            let t = tuple(i, !i, (i % 60000) as u16, ((i * 7) % 60000) as u16);
            let q = rss.queue_for(&t);
            assert!(q < 8);
            assert_eq!(q, rss.queue_for(&t), "deterministic");
        }
    }

    #[test]
    fn spreads_across_queues() {
        // Distinct source ports from one client must spread over all
        // queues reasonably evenly — this is what lets Minos clients
        // find "a port that lands in RX queue q" (paper §5.1).
        let rss = RssHasher::new(8);
        let mut counts = [0u32; 8];
        for port in 1000..3000u16 {
            let t = tuple(0x0A000001, 0x0A000002, port, 9000);
            counts[rss.queue_for(&t) as usize] += 1;
        }
        let total: u32 = counts.iter().sum();
        assert_eq!(total, 2000);
        for (q, &c) in counts.iter().enumerate() {
            let share = c as f64 / total as f64;
            assert!(
                (share - 1.0 / 8.0).abs() < 0.05,
                "queue {q} got share {share:.3}"
            );
        }
    }

    #[test]
    fn different_key_different_hash() {
        let a = RssHasher::new(4);
        let b = RssHasher::new(4).with_key([0x55; 40]);
        let t = tuple(1, 2, 3, 4);
        assert_ne!(a.toeplitz(&t), b.toeplitz(&t));
    }
}
