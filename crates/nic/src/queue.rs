//! Bounded lock-free packet queues with DPDK-style burst access.
//!
//! Each RX and TX queue is a multi-producer/multi-consumer lock-free ring
//! (`crossbeam::queue::ArrayQueue`). In the Minos datapath each RX queue
//! has exactly one *primary* consumer (its owning core), but small cores
//! also drain the RX queues of large cores — "synchronization on the RX
//! queue ... for which we found contention to be low" (paper §3) — so
//! MPMC is the honest choice.
//!
//! Packets are moved in batches ("Requests are moved in batches to
//! further limit overhead", §4.1): [`PacketQueue::rx_burst`] dequeues up
//! to a caller-chosen batch (32 by default across the system).

use crossbeam::queue::ArrayQueue;
use minos_wire::Packet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Statistics for one queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets rejected because the ring was full (tail drop).
    pub dropped_full: u64,
    /// Packets removed from the queue.
    pub dequeued: u64,
    /// Payload + header bytes accepted.
    pub bytes: u64,
}

/// A bounded lock-free packet ring.
#[derive(Debug)]
pub struct PacketQueue {
    ring: ArrayQueue<Packet>,
    enqueued: AtomicU64,
    dropped_full: AtomicU64,
    dequeued: AtomicU64,
    bytes: AtomicU64,
}

impl PacketQueue {
    /// Creates a ring holding at most `capacity` packets.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            ring: ArrayQueue::new(capacity),
            enqueued: AtomicU64::new(0),
            dropped_full: AtomicU64::new(0),
            dequeued: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Enqueues one packet; on a full ring the packet is tail-dropped
    /// (as NIC hardware does) and `false` is returned.
    pub fn push(&self, packet: Packet) -> bool {
        let len = packet.wire_len() as u64;
        match self.ring.push(packet) {
            Ok(()) => {
                self.enqueued.fetch_add(1, Ordering::Relaxed);
                self.bytes.fetch_add(len, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.dropped_full.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Dequeues up to `max` packets into `out`, returning how many were
    /// moved. This is the DPDK `rx_burst` idiom.
    pub fn rx_burst(&self, out: &mut Vec<Packet>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.ring.pop() {
                Some(p) => {
                    out.push(p);
                    n += 1;
                }
                None => break,
            }
        }
        if n > 0 {
            self.dequeued.fetch_add(n as u64, Ordering::Relaxed);
        }
        n
    }

    /// Dequeues a single packet (used for one-at-a-time stealing, where
    /// batching would re-introduce head-of-line blocking — paper §5.2).
    pub fn pop_one(&self) -> Option<Packet> {
        let p = self.ring.pop();
        if p.is_some() {
            self.dequeued.fetch_add(1, Ordering::Relaxed);
        }
        p
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if the queue holds no packets.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Snapshot of the statistics counters.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            dropped_full: self.dropped_full.load(Ordering::Relaxed),
            dequeued: self.dequeued.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_wire::packet::{build_frame, parse_frame, Endpoint};

    fn mk_packet(tag: u8) -> Packet {
        let frame = build_frame(Endpoint::host(1, 100), Endpoint::host(2, 9000), &[tag; 8]);
        parse_frame(frame).unwrap()
    }

    #[test]
    fn fifo_order_and_burst() {
        let q = PacketQueue::new(16);
        for i in 0..10 {
            assert!(q.push(mk_packet(i)));
        }
        assert_eq!(q.len(), 10);
        let mut out = Vec::new();
        assert_eq!(q.rx_burst(&mut out, 4), 4);
        assert_eq!(q.rx_burst(&mut out, 100), 6);
        assert_eq!(q.len(), 0);
        for (i, p) in out.iter().enumerate() {
            assert_eq!(p.payload[0], i as u8, "FIFO order");
        }
    }

    #[test]
    fn tail_drop_when_full() {
        let q = PacketQueue::new(2);
        assert!(q.push(mk_packet(0)));
        assert!(q.push(mk_packet(1)));
        assert!(!q.push(mk_packet(2)));
        let s = q.stats();
        assert_eq!(s.enqueued, 2);
        assert_eq!(s.dropped_full, 1);
    }

    #[test]
    fn pop_one() {
        let q = PacketQueue::new(4);
        assert!(q.pop_one().is_none());
        q.push(mk_packet(7));
        assert_eq!(q.pop_one().unwrap().payload[0], 7);
        assert_eq!(q.stats().dequeued, 1);
    }

    #[test]
    fn bytes_accounting() {
        let q = PacketQueue::new(4);
        let p = mk_packet(0);
        let expect = p.wire_len() as u64;
        q.push(p);
        assert_eq!(q.stats().bytes, expect);
    }

    #[test]
    fn concurrent_producers_consumers() {
        use std::sync::Arc;
        let q = Arc::new(PacketQueue::new(1024));
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        while !q.push(mk_packet((i % 256) as u8)) {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = 0usize;
                let mut out = Vec::new();
                while got < 2000 {
                    out.clear();
                    got += q.rx_burst(&mut out, 32);
                }
                got
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(consumer.join().unwrap(), 2000);
    }
}
