//! Flow-Director-style exact-match steering.
//!
//! Intel's Flow Director lets software install exact-match filters that
//! override RSS: "Minos can use Flow Director to set the target RX queue
//! as UDP destination port of a packet" (paper §5.1). This module
//! implements that: a rule table from UDP destination port to RX queue,
//! consulted before RSS.

/// Exact-match rules from UDP destination port to RX queue.
#[derive(Clone, Debug, Default)]
pub struct FlowDirector {
    rules: std::collections::HashMap<u16, u16>,
}

impl FlowDirector {
    /// An empty rule table (everything falls through to RSS).
    pub fn new() -> Self {
        Self::default()
    }

    /// A table with the Minos convention pre-installed: port
    /// `QUEUE_PORT_BASE + q` steers to queue `q`, for `q < num_queues`.
    pub fn with_queue_ports(num_queues: u16) -> Self {
        let mut fd = Self::new();
        for q in 0..num_queues {
            fd.add_rule(minos_wire::udp::UdpHeader::port_for_queue(q), q);
        }
        fd
    }

    /// Installs (or replaces) a rule steering `dst_port` to `queue`.
    pub fn add_rule(&mut self, dst_port: u16, queue: u16) {
        self.rules.insert(dst_port, queue);
    }

    /// Removes the rule for `dst_port`, returning the queue it pointed to.
    pub fn remove_rule(&mut self, dst_port: u16) -> Option<u16> {
        self.rules.remove(&dst_port)
    }

    /// The queue for `dst_port`, or `None` to fall through to RSS.
    pub fn lookup(&self, dst_port: u16) -> Option<u16> {
        self.rules.get(&dst_port).copied()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_port_convention() {
        let fd = FlowDirector::with_queue_ports(8);
        assert_eq!(fd.len(), 8);
        for q in 0..8u16 {
            assert_eq!(fd.lookup(9000 + q), Some(q));
        }
        assert_eq!(fd.lookup(8999), None);
        assert_eq!(fd.lookup(9008), None);
    }

    #[test]
    fn add_replace_remove() {
        let mut fd = FlowDirector::new();
        assert!(fd.is_empty());
        fd.add_rule(1234, 3);
        assert_eq!(fd.lookup(1234), Some(3));
        fd.add_rule(1234, 5);
        assert_eq!(fd.lookup(1234), Some(5));
        assert_eq!(fd.remove_rule(1234), Some(5));
        assert_eq!(fd.lookup(1234), None);
    }
}
