//! A virtual multi-queue NIC.
//!
//! Minos "relies on the availability of a multi-queue NIC with support for
//! redirecting, in hardware, a packet to a specific queue" (paper §4.1).
//! The paper's testbed used a 40 GbE Mellanox ConnectX-3 with RSS; this
//! crate provides the in-process equivalent so the rest of the system can
//! be built and tested on any machine:
//!
//! * [`rss`] — a real **Toeplitz hash** over the 5-tuple with an
//!   indirection table, exactly the algorithm hardware RSS implements.
//! * [`flow_director`] — exact-match steering on the UDP destination
//!   port (Intel Flow Director style). Rules take priority over RSS, and
//!   the default configuration maps port `9000 + q` to queue `q`, which is
//!   how Minos clients address a specific RX queue.
//! * [`queue`] — lock-free bounded RX/TX queues with DPDK-style
//!   `rx_burst`/`tx_burst` batched access.
//! * [`device`] — the [`VirtualNic`] combining the above, with per-queue
//!   statistics and link-level byte accounting.
//! * [`faults`] — optional fault injection (probabilistic drop and
//!   corruption), an idiom borrowed from the smoltcp examples: adverse
//!   network conditions are a configuration knob, not a patch.
//!
//! The crucial property preserved from real hardware: **once configured,
//! packet steering costs no server CPU** — `deliver` runs on the sender's
//! (client's) context, and a server core only ever touches packets that
//! are already in its RX ring. That is what "hardware dispatch" means for
//! Minos small requests.

#![warn(missing_docs)]

pub mod device;
pub mod faults;
pub mod flow_director;
pub mod queue;
pub mod rss;

pub use device::{Delivery, NicConfig, NicStats, VirtualNic};
pub use faults::FaultInjector;
pub use flow_director::FlowDirector;
pub use queue::{PacketQueue, QueueStats};
pub use rss::RssHasher;
