//! Property tests on the queueing models: conservation, stability and
//! dominance relations that must hold for any parameter choice.

use minos_queue_sim::{run_model, Bimodal, Model};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// At sub-saturation loads every model completes the requested
    /// number of measured operations with finite latencies, and p50 <=
    /// p99 <= max plausible bound.
    #[test]
    fn stable_runs_complete_and_order_quantiles(
        k in prop::sample::select(vec![1u64, 10, 100]),
        load in 0.1f64..0.6,
        seed in any::<u64>(),
    ) {
        for model in Model::ALL {
            let r = run_model(model, 8, Bimodal::paper(k), load, 2_000, 20_000, seed);
            prop_assert_eq!(r.completed, 20_000);
            prop_assert!(r.p50_units >= 1.0, "{}: sojourn >= service", model.label());
            prop_assert!(r.p99_units >= r.p50_units);
            prop_assert!(r.mean_units.is_finite());
        }
    }

    /// Throughput below saturation tracks the offered load for every
    /// model (within simulation noise).
    #[test]
    fn throughput_tracks_offered_load(
        load in 0.1f64..0.5,
        seed in any::<u64>(),
    ) {
        for model in Model::ALL {
            let r = run_model(model, 8, Bimodal::paper(10), load, 2_000, 30_000, seed);
            let offered = load * 8.0;
            prop_assert!(
                (r.throughput - offered).abs() / offered < 0.15,
                "{}: throughput {} vs offered {}",
                model.label(),
                r.throughput,
                offered
            );
        }
    }

    /// Higher K never improves the p99 (at fixed seed and load).
    #[test]
    fn p99_monotone_in_k(load in 0.2f64..0.7) {
        for model in Model::ALL {
            let p99_small = run_model(model, 8, Bimodal::paper(1), load, 2_000, 30_000, 7).p99_units;
            let p99_large = run_model(model, 8, Bimodal::paper(1000), load, 2_000, 30_000, 7).p99_units;
            prop_assert!(
                p99_large >= p99_small * 0.95,
                "{}: K=1000 p99 {} < K=1 p99 {}",
                model.label(),
                p99_large,
                p99_small
            );
        }
    }
}
