//! Queueing-model simulation behind the paper's Section 2.2 (Figure 2).
//!
//! The paper motivates size-aware sharding with an idealized simulation
//! of three size-unaware dispatching strategies on an `n`-core server:
//!
//! * **nxM/G/1** — every request is bound to a random core's queue on
//!   arrival (early binding, like keyhash sharding in MICA's EREW/CREW).
//! * **M/G/n** — a single queue; cores take the next request when they
//!   go idle (late binding, like RAMCloud's dispatch).
//! * **nxM/G/1 + work stealing** — early binding, but idle cores steal
//!   queued requests from other cores (like ZygOS).
//!
//! The workload is bimodal: a fraction `p_L = 0.125 %` of requests costs
//! `K` time units (`K ∈ {1, 10, 100, 1000}`), the rest cost 1 unit.
//! Arrivals are Poisson. Dispatching, synchronization and locality are
//! free — the *only* effect measured is queueing, which is exactly the
//! paper's point: even under ideal assumptions, a tiny fraction of large
//! requests wrecks the 99th percentile of all three strategies.
//!
//! [`models::run_model`] reproduces one curve point; the Figure 2 bench
//! sweeps load and `K` for all three models.

#![warn(missing_docs)]

pub mod bimodal;
pub mod des;
pub mod models;

pub use bimodal::Bimodal;
pub use des::EventQueue;
pub use models::{run_model, Model, SimResult};

/// Ticks per small-request service time: internal integer time base.
pub const TICKS_PER_UNIT: u64 = 1_000;
