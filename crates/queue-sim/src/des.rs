//! A minimal discrete-event core: a time-ordered event queue.
//!
//! Ties are broken by insertion order (FIFO among simultaneous events),
//! which keeps runs deterministic under a seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64, EventBox<E>)>>,
    seq: u64,
}

/// Wrapper so the payload never participates in the ordering.
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: u64, event: E) {
        self.heap.push(Reverse((time, self.seq, EventBox(event))));
        self.seq += 1;
    }

    /// Pops the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e.0))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(7, ());
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
    }
}
