//! The three size-unaware dispatching models and their event loops.

use crate::bimodal::Bimodal;
use crate::des::EventQueue;
use crate::TICKS_PER_UNIT;
use minos_stats::LatencyHistogram;
use minos_workload::Rng;
use std::collections::VecDeque;

/// Which dispatching strategy to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Model {
    /// Early binding to a random per-core queue (keyhash sharding).
    MultiQueue,
    /// A single shared queue, late binding (software handoff).
    SingleQueue,
    /// Early binding plus work stealing by idle cores.
    MultiQueueStealing,
}

impl Model {
    /// All three models, in the paper's Figure 2 order.
    pub const ALL: [Model; 3] = [
        Model::MultiQueue,
        Model::SingleQueue,
        Model::MultiQueueStealing,
    ];

    /// The paper's label for the model.
    pub fn label(&self) -> &'static str {
        match self {
            Model::MultiQueue => "nxM/G/1",
            Model::SingleQueue => "M/G/n",
            Model::MultiQueueStealing => "nxM/G/1+WS",
        }
    }
}

/// Results of one simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// The model simulated.
    pub model: Model,
    /// Offered load, normalized to the all-small capacity (`n` requests
    /// per time unit).
    pub offered_load: f64,
    /// Completed requests in the measurement window.
    pub completed: u64,
    /// Achieved throughput in requests per time unit.
    pub throughput: f64,
    /// Mean response (sojourn) time in time units.
    pub mean_units: f64,
    /// Median response time in time units.
    pub p50_units: f64,
    /// 99th percentile response time in time units — Figure 2's y-axis.
    pub p99_units: f64,
    /// Fraction of measured requests that were large.
    pub large_frac: f64,
}

#[derive(Clone, Copy, Debug)]
struct Request {
    arrival: u64,
    service: u64,
    large: bool,
}

enum Event {
    Arrival(Request),
    Departure { core: usize },
}

/// Simulates `model` on `n` cores under the bimodal law.
///
/// * `offered_load` — arrival rate normalized so `1.0` equals the
///   capacity of an all-small workload (`n` requests per unit time),
///   matching Figure 2's x-axis ("throughput norm. w.r.t. max with
///   K = 1").
/// * `measured_ops` — completed requests to measure after `warmup_ops`
///   completions are discarded.
///
/// Returns the response-time statistics of the measurement window.
pub fn run_model(
    model: Model,
    n: usize,
    law: Bimodal,
    offered_load: f64,
    warmup_ops: u64,
    measured_ops: u64,
    seed: u64,
) -> SimResult {
    assert!(n > 0);
    assert!(offered_load > 0.0);
    let mut rng = Rng::new(seed);
    // Arrival rate in requests per tick.
    let rate = offered_load * n as f64 / TICKS_PER_UNIT as f64;
    let mean_gap = 1.0 / rate;

    let mut events: EventQueue<Event> = EventQueue::new();
    // Per-core FIFO queues (MultiQueue variants) or one shared queue.
    let queues = if model == Model::SingleQueue { 1 } else { n };
    let mut queue: Vec<VecDeque<Request>> = vec![VecDeque::new(); queues];
    let mut busy: Vec<bool> = vec![false; n];
    let mut in_service: Vec<Option<Request>> = vec![None; n];

    let mut hist = LatencyHistogram::new();
    let mut completed_total = 0u64;
    let mut measured = 0u64;
    let mut large_measured = 0u64;
    let mut measure_start_tick = 0u64;
    let mut last_tick = 0u64;
    let mut sum_units = 0.0f64;

    // Prime the first arrival.
    let mut next_arrival = rng.exponential(mean_gap) as u64;
    events.push(
        next_arrival,
        Event::Arrival(draw(&law, next_arrival, &mut rng)),
    );

    let target = warmup_ops + measured_ops;
    while completed_total < target {
        let Some((now, event)) = events.pop() else {
            unreachable!("arrivals never stop");
        };
        last_tick = now;
        match event {
            Event::Arrival(req) => {
                // Schedule the subsequent arrival.
                next_arrival = now + rng.exponential(mean_gap).max(1.0) as u64;
                events.push(
                    next_arrival,
                    Event::Arrival(draw(&law, next_arrival, &mut rng)),
                );

                match model {
                    Model::SingleQueue => {
                        // Late binding: any idle core takes it.
                        if let Some(core) = busy.iter().position(|&b| !b) {
                            start(core, req, now, &mut busy, &mut in_service, &mut events);
                        } else {
                            queue[0].push_back(req);
                        }
                    }
                    Model::MultiQueue | Model::MultiQueueStealing => {
                        // Early binding to a uniformly random core — the
                        // keyhash of a random key.
                        let core = rng.index(n);
                        if !busy[core] {
                            start(core, req, now, &mut busy, &mut in_service, &mut events);
                        } else {
                            queue[core].push_back(req);
                        }
                    }
                }
            }
            Event::Departure { core } => {
                let req = in_service[core].take().expect("departing core was busy");
                busy[core] = false;
                completed_total += 1;
                if completed_total == warmup_ops {
                    measure_start_tick = now;
                }
                if completed_total > warmup_ops {
                    let sojourn = now - req.arrival;
                    hist.record_ns(sojourn);
                    sum_units += sojourn as f64 / TICKS_PER_UNIT as f64;
                    measured += 1;
                    if req.large {
                        large_measured += 1;
                    }
                }

                // Pick the next request for this core.
                let next = match model {
                    Model::SingleQueue => queue[0].pop_front(),
                    Model::MultiQueue => queue[core].pop_front(),
                    Model::MultiQueueStealing => queue[core].pop_front().or_else(|| {
                        // Idle core steals the head of the first
                        // non-empty victim queue (one request at a time;
                        // batched stealing would re-introduce
                        // head-of-line blocking).
                        (1..n)
                            .map(|d| (core + d) % n)
                            .find_map(|v| queue[v].pop_front())
                    }),
                };
                if let Some(req) = next {
                    start(core, req, now, &mut busy, &mut in_service, &mut events);
                }
            }
        }
    }

    let measured_span_ticks = (last_tick - measure_start_tick).max(1);
    SimResult {
        model,
        offered_load,
        completed: measured,
        throughput: measured as f64 / (measured_span_ticks as f64 / TICKS_PER_UNIT as f64),
        mean_units: sum_units / measured.max(1) as f64,
        p50_units: hist.percentile_ns(50.0).unwrap_or(0) as f64 / TICKS_PER_UNIT as f64,
        p99_units: hist.percentile_ns(99.0).unwrap_or(0) as f64 / TICKS_PER_UNIT as f64,
        large_frac: large_measured as f64 / measured.max(1) as f64,
    }
}

fn draw(law: &Bimodal, arrival: u64, rng: &mut Rng) -> Request {
    let (service, large) = law.sample(rng);
    Request {
        arrival,
        service,
        large,
    }
}

fn start(
    core: usize,
    req: Request,
    now: u64,
    busy: &mut [bool],
    in_service: &mut [Option<Request>],
    events: &mut EventQueue<Event>,
) {
    busy[core] = true;
    in_service[core] = Some(req);
    events.push(now + req.service, Event::Departure { core });
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPS: u64 = 150_000;
    const WARMUP: u64 = 20_000;

    fn run(model: Model, k: u64, load: f64) -> SimResult {
        run_model(model, 8, Bimodal::paper(k), load, WARMUP, OPS, 42)
    }

    #[test]
    fn md1_mean_wait_matches_theory() {
        // With K = 1 the MultiQueue model is n independent M/D/1 queues.
        // Pollaczek–Khinchine for M/D/1: E[W] = rho / (2 (1 - rho)) * S,
        // so at rho = 0.5 the mean sojourn is 1.5 service units.
        let r = run(Model::MultiQueue, 1, 0.5);
        assert!(
            (r.mean_units - 1.5).abs() < 0.1,
            "mean sojourn {} vs theory 1.5",
            r.mean_units
        );
    }

    #[test]
    fn mgn_beats_multiqueue_at_same_load() {
        // Late binding dominates early binding — a classic result the
        // paper cites from queueing theory.
        let mq = run(Model::MultiQueue, 100, 0.5);
        let sq = run(Model::SingleQueue, 100, 0.5);
        assert!(
            sq.p99_units < mq.p99_units,
            "M/G/n p99 {} should beat nxM/G/1 p99 {}",
            sq.p99_units,
            mq.p99_units
        );
    }

    #[test]
    fn stealing_beats_plain_multiqueue() {
        let mq = run(Model::MultiQueue, 100, 0.5);
        let ws = run(Model::MultiQueueStealing, 100, 0.5);
        assert!(
            ws.p99_units < mq.p99_units,
            "WS p99 {} should beat plain p99 {}",
            ws.p99_units,
            mq.p99_units
        );
    }

    #[test]
    fn large_requests_inflate_p99_by_orders_of_magnitude() {
        // The paper's core claim (Figure 2): 0.125 % of K = 1000
        // requests push the p99 up by orders of magnitude even at
        // moderate load.
        for model in Model::ALL {
            let small_only = run_model(model, 8, Bimodal::paper(1), 0.4, WARMUP, OPS, 7);
            let with_large = run_model(model, 8, Bimodal::paper(1000), 0.4, WARMUP, OPS, 7);
            assert!(
                with_large.p99_units > small_only.p99_units * 10.0,
                "{}: p99 {} vs small-only {}",
                model.label(),
                with_large.p99_units,
                small_only.p99_units
            );
        }
    }

    #[test]
    fn k1_p99_is_small_at_low_load() {
        for model in Model::ALL {
            let r = run(model, 1, 0.2);
            assert!(
                r.p99_units < 3.0,
                "{}: uncongested p99 {}",
                model.label(),
                r.p99_units
            );
        }
    }

    #[test]
    fn throughput_tracks_offered_load_below_saturation() {
        let r = run(Model::MultiQueue, 10, 0.4);
        // Offered: 0.4 * 8 = 3.2 requests per unit.
        assert!(
            (r.throughput - 3.2).abs() / 3.2 < 0.05,
            "throughput {}",
            r.throughput
        );
    }

    #[test]
    fn large_fraction_observed() {
        let r = run(Model::SingleQueue, 100, 0.5);
        assert!(
            (r.large_frac - 0.00125).abs() < 0.001,
            "large frac {}",
            r.large_frac
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_model(
            Model::MultiQueueStealing,
            8,
            Bimodal::paper(100),
            0.6,
            1000,
            20_000,
            9,
        );
        let b = run_model(
            Model::MultiQueueStealing,
            8,
            Bimodal::paper(100),
            0.6,
            1000,
            20_000,
            9,
        );
        assert_eq!(a.p99_units, b.p99_units);
        assert_eq!(a.completed, b.completed);
    }
}
