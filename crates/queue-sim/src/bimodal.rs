//! The bimodal service-time law of Section 2.2.
//!
//! "Small requests form 99.875 % of the workload, and have a service
//! time of 1 time unit. Large requests form the remaining 0.125 %. ...
//! the service time of these large requests is, respectively, K = 10,
//! 100 and 1,000 time units."

use crate::TICKS_PER_UNIT;
use minos_workload::Rng;

/// A bimodal service-time distribution.
#[derive(Clone, Copy, Debug)]
pub struct Bimodal {
    /// Fraction of large requests (0.00125 in the paper).
    pub p_large: f64,
    /// Large-to-small service-time ratio `K`.
    pub k: u64,
}

impl Bimodal {
    /// The paper's configuration for a given `K`.
    pub fn paper(k: u64) -> Self {
        Bimodal {
            p_large: 0.00125,
            k,
        }
    }

    /// Draws one service time in ticks, tagged with whether it was a
    /// large request.
    pub fn sample(&self, rng: &mut Rng) -> (u64, bool) {
        if rng.chance(self.p_large) {
            (self.k * TICKS_PER_UNIT, true)
        } else {
            (TICKS_PER_UNIT, false)
        }
    }

    /// Mean service time in ticks.
    pub fn mean_ticks(&self) -> f64 {
        (1.0 - self.p_large) * TICKS_PER_UNIT as f64
            + self.p_large * (self.k * TICKS_PER_UNIT) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_matches_mixture() {
        let b = Bimodal::paper(1000);
        // 0.99875 * 1 + 0.00125 * 1000 = 2.24875 units.
        assert!((b.mean_ticks() - 2_248.75).abs() < 1e-9);
    }

    #[test]
    fn sample_frequencies() {
        let b = Bimodal::paper(100);
        let mut rng = Rng::new(1);
        let n = 1_000_000;
        let large = (0..n).filter(|_| b.sample(&mut rng).1).count();
        let frac = large as f64 / n as f64;
        assert!((frac - 0.00125).abs() < 0.0002, "large fraction {frac}");
    }

    #[test]
    fn sample_values() {
        let b = Bimodal::paper(10);
        let mut rng = Rng::new(2);
        for _ in 0..10_000 {
            let (s, large) = b.sample(&mut rng);
            if large {
                assert_eq!(s, 10 * TICKS_PER_UNIT);
            } else {
                assert_eq!(s, TICKS_PER_UNIT);
            }
        }
    }

    #[test]
    fn k_equals_one_is_deterministic_service() {
        let b = Bimodal::paper(1);
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            assert_eq!(b.sample(&mut rng).0, TICKS_PER_UNIT);
        }
    }
}
