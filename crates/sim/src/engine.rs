//! Event-level models of the four server designs.
//!
//! One event loop serves all four systems; the scheduling decisions —
//! who picks which request up, and at what cost — are the per-system
//! logic under test:
//!
//! * **HKH**: a request enqueued on core `c`'s RX queue is served by
//!   core `c`, run-to-completion, FIFO.
//! * **HKH+WS**: as HKH, but an idle core with an empty queue steals
//!   one queued request from another core (at [`CostModel::steal_ns`]
//!   extra).
//! * **SHO**: RX queues belong to the `h` handoff cores, which spend
//!   [`CostModel::sho_dispatch_ns`] per request moving it to a central
//!   queue; idle workers take from the central queue (late binding).
//! * **Minos**: small cores serve their own RX queues plus the large
//!   cores' RX queues; small requests run to completion, large ones
//!   cost a dispatch and move to the software queue of the large core
//!   whose size range matches. The plan (threshold, allocation, ranges)
//!   is recomputed every epoch by the **real** `minos-core` controller.
//!
//! Item sizes, key skew and arrival times come from the real
//! `minos-workload` generator over the paper's 16 M-key dataset.
//!
//! Beyond the four paper systems, [`System::Discipline`] runs the
//! server crate's queue-discipline policy space ([`DisciplineKind`]) in
//! simulation: `size-aware` is exactly [`System::Minos`], `cfcfs` is a
//! single central queue any core pulls from, and the rest differ only
//! in which RX queue an arrival joins (key-hash for `dfcfs`, shortest
//! for `jsq`, rotating for `round-robin`, uniform for `random`) before
//! own-queue FIFO service — the same placement semantics the real
//! server applies in `minos-core`.

use crate::cost_model::CostModel;
use minos_core::config::{AllocationPolicy, ThresholdMode};
use minos_core::dispatch::{Dfcfs, DisciplineKind};
use minos_core::plan::{Destination, ShardingPlan};
use minos_core::threshold::ThresholdController;
use minos_queue_sim::EventQueue;
use minos_stats::{LatencyHistogram, SizeHistogram};
use minos_workload::{AccessGenerator, OpenLoop, Operation, PhaseSchedule, Rng};
use std::collections::VecDeque;

/// Which server design to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum System {
    /// Size-aware sharding (the paper's contribution).
    Minos,
    /// Hardware keyhash sharding (MICA-style, nxM/G/1).
    Hkh,
    /// Software handoff (RAMCloud-style, M/G/n) with this many handoff
    /// cores (the paper sweeps 1–3 and reports the best).
    Sho {
        /// Number of dispatch cores.
        handoff: usize,
    },
    /// HKH plus ZygOS-style work stealing.
    HkhWs,
    /// One of the server crate's queue disciplines, simulated with the
    /// same placement semantics the real server applies.
    Discipline(DisciplineKind),
}

impl System {
    /// Display label matching the paper's figures (discipline systems
    /// use their CLI/JSON name).
    pub fn label(&self) -> &'static str {
        match self {
            System::Minos => "Minos",
            System::Hkh => "HKH",
            System::Sho { .. } => "SHO",
            System::HkhWs => "HKH+WS",
            System::Discipline(kind) => kind.name(),
        }
    }

    /// Whether this system is the paper's size-aware sharding (and so
    /// runs the epoch controller and the asymmetric RX drain).
    fn size_aware(&self) -> bool {
        matches!(
            self,
            System::Minos | System::Discipline(DisciplineKind::SizeAware)
        )
    }

    /// Whether arrivals land in the single central queue rather than a
    /// per-core RX queue (cFCFS; SHO routes through dispatch cores
    /// instead).
    fn central_rx(&self) -> bool {
        matches!(self, System::Discipline(DisciplineKind::Cfcfs))
    }
}

/// Static configuration of the simulated server.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// The design to simulate.
    pub system: System,
    /// Server cores (8 in the paper).
    pub n_cores: usize,
    /// The calibrated cost model.
    pub cost: CostModel,
    /// NIC bandwidth per direction, Gbit/s (40 in the paper).
    pub nic_gbit: f64,
    /// Minos controller epoch (1 s in the paper).
    pub epoch_ns: u64,
    /// Fraction of replies actually transmitted (Figure 8's `S`; 1.0
    /// everywhere else). Suppressed replies cost no NIC bandwidth.
    pub reply_sampling: f64,
    /// Minos threshold mode.
    pub threshold_mode: ThresholdMode,
    /// Minos allocation policy (`LargeSteals` is the §6.1 ablation).
    pub allocation_policy: AllocationPolicy,
}

impl SystemConfig {
    /// The paper's server for a given design.
    pub fn paper(system: System) -> Self {
        SystemConfig {
            system,
            n_cores: 8,
            cost: CostModel::default(),
            nic_gbit: 40.0,
            epoch_ns: 1_000_000_000,
            reply_sampling: 1.0,
            threshold_mode: ThresholdMode::Dynamic,
            allocation_policy: AllocationPolicy::Standard,
        }
    }
}

/// What a busy core is currently doing.
#[derive(Clone, Copy, Debug)]
enum Stage {
    /// Full service; completion sends the reply.
    Full { req: u32, stolen: bool },
    /// Minos small-core dispatch of a large request to `target`.
    MinosDispatch { req: u32, target: usize },
    /// SHO handoff-core dispatch to the central queue.
    ShoDispatch { req: u32 },
}

#[derive(Clone, Copy, Debug)]
struct Req {
    arrival_ns: u64,
    size: u64,
    is_get: bool,
    is_large_class: bool,
    measured: bool,
}

#[derive(Debug)]
enum Ev {
    /// Generate the next request (and its successor).
    Arrival,
    /// A core finished its current stage.
    CoreDone { core: usize },
    /// Minos epoch tick.
    Epoch,
    /// One packet finished serializing on the TX wire.
    TxPacketDone,
    /// One packet finished serializing on the RX wire.
    RxPacketDone,
}

/// A message being serialized onto a wire, packet by packet.
#[derive(Clone, Copy, Debug)]
struct WireJob {
    req: u32,
    pkts_left: u64,
    bytes_left: u64,
    /// TX: reply completion. RX: the target RX queue.
    queue: usize,
}

/// A packet-interleaving wire: one packet at a time, round-robin across
/// per-queue job lists — how a real multi-queue NIC DMA engine behaves.
/// A single-packet reply never waits behind an entire multi-hundred-
/// packet large reply; it waits at most a few packet times.
#[derive(Debug)]
struct PacketWire {
    queues: Vec<VecDeque<WireJob>>,
    rr: usize,
    busy: bool,
    bytes_per_ns: f64,
    bytes_total: u64,
    busy_ns: f64,
}

impl PacketWire {
    fn new(n_queues: usize, gbit: f64) -> Self {
        PacketWire {
            queues: vec![VecDeque::new(); n_queues],
            rr: 0,
            busy: false,
            bytes_per_ns: gbit / 8.0,
            bytes_total: 0,
            busy_ns: 0.0,
        }
    }

    fn submit(&mut self, queue: usize, job: WireJob) {
        self.queues[queue].push_back(job);
    }

    /// Starts serializing the next packet (round-robin); returns its
    /// duration in ns, or `None` if all queues are empty.
    fn next_packet_ns(&mut self) -> Option<f64> {
        let n = self.queues.len();
        for d in 0..n {
            let q = (self.rr + d) % n;
            if let Some(job) = self.queues[q].front_mut() {
                let pkt_bytes = job.bytes_left.div_ceil(job.pkts_left);
                job.bytes_left -= pkt_bytes.min(job.bytes_left);
                job.pkts_left -= 1;
                self.rr = (q + 1) % n;
                self.busy = true;
                self.bytes_total += pkt_bytes;
                let dur = pkt_bytes as f64 / self.bytes_per_ns;
                self.busy_ns += dur;
                return Some(dur);
            }
        }
        self.busy = false;
        None
    }

    /// Pops the front job of the queue the last packet belonged to if
    /// that job is finished. (`rr` already advanced past it.)
    fn finished_job(&mut self) -> Option<WireJob> {
        let n = self.queues.len();
        let q = (self.rr + n - 1) % n;
        if self.queues[q].front().is_some_and(|j| j.pkts_left == 0) {
            return self.queues[q].pop_front();
        }
        None
    }

    fn utilization(&self, span_ns: f64) -> f64 {
        if span_ns <= 0.0 {
            0.0
        } else {
            (self.busy_ns / span_ns).min(1.0)
        }
    }
}

/// Per-core load counters (Figure 9).
#[derive(Clone, Copy, Debug, Default)]
pub struct CoreLoad {
    /// Requests completed by this core.
    pub ops: u64,
    /// Packets handled (inbound at pickup + outbound at reply).
    pub packets: u64,
}

/// The simulator.
pub struct SystemSim {
    cfg: SystemConfig,
    rng: Rng,
    gen: AccessGenerator,
    arrivals: OpenLoop,
    schedule: Option<PhaseSchedule>,
    events: EventQueue<Ev>,
    now_ns: u64,

    // Request slab.
    reqs: Vec<Req>,
    free: Vec<u32>,

    // Queues.
    rx: Vec<VecDeque<u32>>,
    soft: Vec<VecDeque<u32>>,
    central: VecDeque<u32>, // SHO

    // Cores.
    busy: Vec<Option<Stage>>,

    // Minos control plane (the real one).
    controller: ThresholdController,
    plan: ShardingPlan,
    epoch_hist: SizeHistogram,

    // Network: packet-interleaving wires.
    tx_wire: PacketWire,
    rx_wire: PacketWire,

    // Measurement.
    measure_start_ns: u64,
    measure_end_ns: u64,
    hist: LatencyHistogram,
    hist_small: LatencyHistogram,
    hist_large: LatencyHistogram,
    window_ns: u64,
    windows: Vec<WindowAccum>,
    /// Measured-request completions.
    pub completed: u64,
    /// Measured-request generations.
    pub generated: u64,
    per_core: Vec<CoreLoad>,
    steals: u64,
    /// Round-robin arrival cursor (`Discipline(RoundRobin)` only).
    rr_arrival: usize,
    /// Requests committed to an RX queue but still serializing on the
    /// RX wire. JSQ's depth gauge must count them: choosing by
    /// `rx[q].len()` alone herds a burst of arrivals onto the same
    /// "shortest" queue before any of them become visible in it.
    rx_inflight: Vec<u32>,
}

/// Accumulator for one reporting window (Figure 10).
#[derive(Debug)]
pub struct WindowAccum {
    /// Window latency histogram.
    pub hist: LatencyHistogram,
    /// Large cores in the plan during this window (Minos; 0 otherwise).
    pub n_large: usize,
    /// Completions in this window.
    pub completed: u64,
}

impl SystemSim {
    /// Builds a simulator.
    ///
    /// * `gen` — the workload generator (dataset + p_L + mix).
    /// * `rate_mops` — offered load in millions of requests/second.
    /// * `schedule` — optional time-varying p_L (Figure 10).
    /// * `window_ns` — reporting-window length (0 disables windows).
    pub fn new(
        cfg: SystemConfig,
        gen: AccessGenerator,
        rate_mops: f64,
        schedule: Option<PhaseSchedule>,
        window_ns: u64,
        seed: u64,
    ) -> Self {
        assert!(cfg.n_cores > 0);
        assert!((0.0..=1.0).contains(&cfg.reply_sampling));
        if let System::Sho { handoff } = cfg.system {
            assert!(handoff >= 1 && handoff < cfg.n_cores);
        }
        let mut rng = Rng::new(seed);
        let arrivals = OpenLoop::new(rate_mops * 1e6, 0);
        let controller = ThresholdController::new(
            cfg.threshold_mode,
            99.0,
            0.9,
            minos_core::cost::CostFn::Packets,
        );
        let plan = ShardingPlan::bootstrap(cfg.n_cores);
        let mut events = EventQueue::new();
        events.push(0, Ev::Arrival);
        if cfg.system.size_aware() {
            events.push(cfg.epoch_ns, Ev::Epoch);
        }
        let n = cfg.n_cores;
        let _ = rng.next_u64(); // decouple seed streams a little
        SystemSim {
            rng,
            gen,
            arrivals,
            schedule,
            events,
            now_ns: 0,
            reqs: Vec::with_capacity(1 << 16),
            free: Vec::new(),
            rx: vec![VecDeque::new(); n],
            soft: vec![VecDeque::new(); n],
            central: VecDeque::new(),
            busy: vec![None; n],
            rx_inflight: vec![0; n],
            controller,
            plan,
            epoch_hist: SizeHistogram::new(),
            tx_wire: PacketWire::new(n, cfg.nic_gbit),
            rx_wire: PacketWire::new(n, cfg.nic_gbit),
            measure_start_ns: 0,
            measure_end_ns: u64::MAX,
            hist: LatencyHistogram::new(),
            hist_small: LatencyHistogram::new(),
            hist_large: LatencyHistogram::new(),
            window_ns,
            windows: Vec::new(),
            completed: 0,
            generated: 0,
            per_core: vec![CoreLoad::default(); n],
            steals: 0,
            rr_arrival: 0,
            cfg,
        }
    }

    /// Sets the measurement window (requests generated inside it are
    /// measured; the paper discards the first and last 10 s of 60 s
    /// runs).
    pub fn set_measure_window(&mut self, start_ns: u64, end_ns: u64) {
        self.measure_start_ns = start_ns;
        self.measure_end_ns = end_ns;
    }

    /// Runs until simulated time `end_ns`.
    pub fn run_until(&mut self, end_ns: u64) {
        while let Some(t) = self.events.peek_time() {
            if t > end_ns {
                break;
            }
            let (t, ev) = self.events.pop().expect("peeked");
            self.now_ns = t;
            self.handle(ev);
            self.schedule_idle();
        }
        self.now_ns = end_ns;
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Arrival => self.on_arrival(),
            Ev::CoreDone { core } => self.on_core_done(core),
            Ev::Epoch => self.on_epoch(),
            Ev::TxPacketDone => {
                if let Some(job) = self.tx_wire.finished_job() {
                    self.finalize(job.req, self.now_ns);
                }
                if let Some(dur) = self.tx_wire.next_packet_ns() {
                    self.events
                        .push(self.now_ns + dur.ceil() as u64, Ev::TxPacketDone);
                }
            }
            Ev::RxPacketDone => {
                if let Some(job) = self.rx_wire.finished_job() {
                    let q = job.queue % self.cfg.n_cores;
                    self.rx_inflight[q] = self.rx_inflight[q].saturating_sub(1);
                    if self.cfg.system.central_rx() {
                        self.central.push_back(job.req);
                    } else {
                        self.rx[job.queue].push_back(job.req);
                    }
                }
                if let Some(dur) = self.rx_wire.next_packet_ns() {
                    self.events
                        .push(self.now_ns + dur.ceil() as u64, Ev::RxPacketDone);
                }
            }
        }
    }

    fn kick_tx(&mut self) {
        if !self.tx_wire.busy {
            if let Some(dur) = self.tx_wire.next_packet_ns() {
                self.events
                    .push(self.now_ns + dur.ceil() as u64, Ev::TxPacketDone);
            }
        }
    }

    fn kick_rx(&mut self) {
        if !self.rx_wire.busy {
            if let Some(dur) = self.rx_wire.next_packet_ns() {
                self.events
                    .push(self.now_ns + dur.ceil() as u64, Ev::RxPacketDone);
            }
        }
    }

    fn on_arrival(&mut self) {
        let t = self.arrivals.next_arrival(&mut self.rng);
        // (The first event fires at time 0 with t == 0; subsequent
        // arrivals schedule themselves.)
        if let Some(schedule) = &self.schedule {
            self.gen.set_p_large(schedule.value_at(t));
        }
        let spec = self.gen.next_op(&mut self.rng);
        let measured = (self.measure_start_ns..self.measure_end_ns).contains(&t);
        if measured {
            self.generated += 1;
        }
        let req = Req {
            arrival_ns: t,
            size: spec.item_size,
            is_get: spec.op == Operation::Get,
            is_large_class: spec.is_large,
            measured,
        };
        let idx = self.alloc(req);

        // RX queue choice. The default is uniformly random (GETs are
        // explicitly random in the paper; PUT queues follow the keyhash,
        // which is uniform over the dataset's keys); the disciplines
        // replace it with their own placement rule. Under cFCFS the
        // queue only identifies the RX wire — the request lands in the
        // central queue once serialized.
        let n = self.cfg.n_cores;
        let queue = match self.cfg.system {
            System::Sho { handoff } => self.rng.index(handoff),
            System::Discipline(DisciplineKind::Dfcfs) => Dfcfs::owner(spec.key, n),
            System::Discipline(DisciplineKind::Jsq) => (0..n)
                .min_by_key(|&q| {
                    self.rx[q].len()
                        + self.rx_inflight[q] as usize
                        + usize::from(self.busy[q].is_some())
                })
                .expect("n_cores > 0"),
            System::Discipline(DisciplineKind::RoundRobin) => {
                self.rr_arrival = (self.rr_arrival + 1) % n;
                self.rr_arrival
            }
            _ => self.rng.index(n),
        };

        // The request serializes on the RX wire, packet-interleaved
        // with other inbound traffic, before it is visible in an RX
        // queue (this is what makes large PUT uploads consume inbound
        // bandwidth without stalling unrelated small requests).
        let bytes = self.cfg.cost.request_wire_bytes(req.is_get, req.size);
        let pkts = self
            .cfg
            .cost
            .packets_for_inbound(self.cfg.cost.inbound_size(req.is_get, req.size));
        self.rx_inflight[queue % self.cfg.n_cores] += 1;
        self.rx_wire.submit(
            queue % self.cfg.n_cores,
            WireJob {
                req: idx,
                pkts_left: pkts,
                bytes_left: bytes,
                queue,
            },
        );
        self.kick_rx();
        self.events.push(self.arrivals.peek(), Ev::Arrival);
    }

    fn on_core_done(&mut self, core: usize) {
        let stage = self.busy[core].take().expect("core was busy");
        match stage {
            Stage::Full { req, stolen } => {
                if stolen {
                    self.steals += 1;
                }
                self.complete(core, req);
            }
            Stage::MinosDispatch { req, target } => {
                self.soft[target].push_back(req);
            }
            Stage::ShoDispatch { req } => {
                self.central.push_back(req);
            }
        }
    }

    fn on_epoch(&mut self) {
        let hist = self.epoch_hist.take();
        let decision = self.controller.epoch_update(&hist);
        self.plan = ShardingPlan::from_decision(
            self.controller.epochs(),
            self.cfg.n_cores,
            decision,
            self.controller.smoothed_buckets(),
            minos_core::cost::CostFn::Packets,
        );
        self.events.push(self.now_ns + self.cfg.epoch_ns, Ev::Epoch);
    }

    /// Assigns work to every idle core according to its role.
    fn schedule_idle(&mut self) {
        loop {
            let mut assigned = false;
            for core in 0..self.cfg.n_cores {
                if self.busy[core].is_some() {
                    continue;
                }
                if self.assign(core) {
                    assigned = true;
                }
            }
            if !assigned {
                break;
            }
        }
    }

    /// Tries to start work on idle `core`; returns whether it did.
    fn assign(&mut self, core: usize) -> bool {
        match self.cfg.system {
            System::Hkh => {
                if let Some(req) = self.rx[core].pop_front() {
                    self.start_full(core, req, false);
                    return true;
                }
                false
            }
            System::HkhWs => {
                if let Some(req) = self.rx[core].pop_front() {
                    self.start_full(core, req, false);
                    return true;
                }
                // Steal one queued request from the longest victim queue.
                let victim = (0..self.cfg.n_cores)
                    .filter(|&v| v != core && !self.rx[v].is_empty())
                    .max_by_key(|&v| self.rx[v].len());
                if let Some(v) = victim {
                    let req = self.rx[v].pop_front().expect("non-empty");
                    self.start_full(core, req, true);
                    return true;
                }
                false
            }
            System::Sho { handoff } => {
                if core < handoff {
                    if let Some(req) = self.rx[core].pop_front() {
                        let occ = self.cfg.cost.sho_dispatch_ns(self.cfg.cost.inbound_size(
                            self.reqs[req as usize].is_get,
                            self.reqs[req as usize].size,
                        ));
                        self.charge_rx_packets(core, req);
                        self.busy[core] = Some(Stage::ShoDispatch { req });
                        self.events
                            .push(self.now_ns + occ.ceil() as u64, Ev::CoreDone { core });
                        return true;
                    }
                    false
                } else {
                    if let Some(req) = self.central.pop_front() {
                        let r = self.reqs[req as usize];
                        let occ = self
                            .cfg
                            .cost
                            .sho_worker_ns(r.size, self.cfg.cost.inbound_size(r.is_get, r.size));
                        self.busy[core] = Some(Stage::Full { req, stolen: false });
                        self.events
                            .push(self.now_ns + occ.ceil() as u64, Ev::CoreDone { core });
                        return true;
                    }
                    false
                }
            }
            System::Minos | System::Discipline(DisciplineKind::SizeAware) => {
                self.assign_minos(core)
            }
            System::Discipline(DisciplineKind::Cfcfs) => {
                // Centralized FCFS: any idle core pulls the global queue.
                if let Some(req) = self.central.pop_front() {
                    self.start_full(core, req, false);
                    return true;
                }
                false
            }
            System::Discipline(_) => {
                // dfcfs/jsq/round-robin/random all serve their own RX
                // queue FIFO, run-to-completion; they differ only in the
                // queue an arrival joined.
                if let Some(req) = self.rx[core].pop_front() {
                    self.start_full(core, req, false);
                    return true;
                }
                false
            }
        }
    }

    fn assign_minos(&mut self, core: usize) -> bool {
        let alloc = self.plan.allocation;
        let is_small = alloc.is_small_core(core);
        let is_handoff = alloc.is_handoff_core(core);

        // Handoff cores live off their software queues first — the
        // standby core too ("if a large request arrives, it is sent to
        // this core, which then becomes a large core").
        if is_handoff {
            if let Some(req) = self.soft[core].pop_front() {
                self.start_full(core, req, false);
                return true;
            }
        }

        if is_small {
            // Own RX queue first, then the handoff cores' RX queues
            // (small cores drain those so large cores never touch RX).
            if let Some(req) = self.rx[core].pop_front() {
                self.minos_pickup(core, req);
                return true;
            }
            for q in alloc.handoff_cores() {
                if q == core {
                    continue;
                }
                if let Some(req) = self.rx[q].pop_front() {
                    self.minos_pickup(core, req);
                    return true;
                }
            }
            return false;
        }

        // Dedicated large core with an empty software queue.
        if self.cfg.allocation_policy == AllocationPolicy::LargeSteals {
            // §6.1 ablation: large cores steal small requests one at a
            // time from small cores' RX queues to use spare capacity.
            let victim = alloc
                .small_cores()
                .filter(|&v| !self.rx[v].is_empty())
                .max_by_key(|&v| self.rx[v].len());
            if let Some(v) = victim {
                let req = self.rx[v].pop_front().expect("non-empty");
                self.minos_pickup(core, req);
                return true;
            }
        }
        false
    }

    /// A small core picked `req` up from an RX queue: profile it,
    /// classify it, and either serve it or dispatch it.
    fn minos_pickup(&mut self, core: usize, req: u32) {
        let r = self.reqs[req as usize];
        self.epoch_hist.record(r.size);
        let profile = if matches!(self.cfg.threshold_mode, ThresholdMode::Dynamic) {
            self.cfg.cost.minos_profile_ns
        } else {
            0.0
        };
        match self.plan.classify(r.size) {
            Destination::Local => {
                self.charge_rx_packets(core, req);
                let occ = profile + self.cfg.cost.service_ns(r.size);
                self.busy[core] = Some(Stage::Full { req, stolen: false });
                self.events
                    .push(self.now_ns + occ.ceil() as u64, Ev::CoreDone { core });
            }
            Destination::Handoff(target) => {
                self.charge_rx_packets(core, req);
                let occ = profile + self.cfg.cost.handoff_ns;
                self.busy[core] = Some(Stage::MinosDispatch { req, target });
                self.events
                    .push(self.now_ns + occ.ceil() as u64, Ev::CoreDone { core });
            }
        }
    }

    fn start_full(&mut self, core: usize, req: u32, stolen: bool) {
        let r = self.reqs[req as usize];
        // For non-size-aware systems the pickup core is the serving
        // core (size-aware charges at `minos_pickup`).
        if !self.cfg.system.size_aware() {
            self.charge_rx_packets(core, req);
        }
        let mut occ = self.cfg.cost.service_ns(r.size);
        if stolen {
            occ += self.cfg.cost.steal_ns;
        }
        if self.cfg.system.size_aware()
            && matches!(self.cfg.threshold_mode, ThresholdMode::Dynamic)
            && self.plan.allocation.is_small_core(core)
        {
            // Standby-core small service still profiles.
            occ += self.cfg.cost.minos_profile_ns;
        }
        self.busy[core] = Some(Stage::Full { req, stolen });
        self.events
            .push(self.now_ns + occ.ceil() as u64, Ev::CoreDone { core });
    }

    fn charge_rx_packets(&mut self, core: usize, req: u32) {
        let r = self.reqs[req as usize];
        let inbound = self.cfg.cost.inbound_size(r.is_get, r.size);
        self.per_core[core].packets += self.cfg.cost.packets_for_inbound(inbound);
    }

    /// A core finished serving `req`: emit the reply onto the TX wire
    /// (subject to Figure 8's sampling) or finalize immediately.
    fn complete(&mut self, core: usize, req: u32) {
        let r = self.reqs[req as usize];
        self.per_core[core].ops += 1;

        let send_reply = self.cfg.reply_sampling >= 1.0 || self.rng.chance(self.cfg.reply_sampling);
        if send_reply {
            let bytes = self.cfg.cost.reply_wire_bytes(r.is_get, r.size);
            let pkts = if r.is_get {
                self.cfg.cost.packets(r.size)
            } else {
                1
            };
            self.per_core[core].packets += pkts;
            self.tx_wire.submit(
                core,
                WireJob {
                    req,
                    pkts_left: pkts,
                    bytes_left: bytes,
                    queue: core,
                },
            );
            self.kick_tx();
        } else {
            // Reply dropped at the server (Figure 8): the operation is
            // complete now; no latency is observable at a client.
            if (self.measure_start_ns..self.measure_end_ns).contains(&self.now_ns) {
                self.completed += 1;
            }
            self.release(req);
        }
    }

    /// The reply's last packet left the wire: the client-visible end of
    /// the request.
    fn finalize(&mut self, req: u32, finish_ns: u64) {
        let r = self.reqs[req as usize];
        if (self.measure_start_ns..self.measure_end_ns).contains(&finish_ns) {
            self.completed += 1;
        }
        if r.measured {
            let latency = finish_ns.saturating_sub(r.arrival_ns);
            self.hist.record_ns(latency);
            if r.is_large_class {
                self.hist_large.record_ns(latency);
            } else {
                self.hist_small.record_ns(latency);
            }
            if let Some(window) = r.arrival_ns.checked_div(self.window_ns) {
                let w = window as usize;
                while self.windows.len() <= w {
                    self.windows.push(WindowAccum {
                        hist: LatencyHistogram::new(),
                        n_large: 0,
                        completed: 0,
                    });
                }
                let acc = &mut self.windows[w];
                acc.hist.record_ns(latency);
                acc.completed += 1;
                acc.n_large =
                    self.plan.allocation.n_large + usize::from(self.plan.allocation.standby);
            }
        }
        self.release(req);
    }

    fn alloc(&mut self, r: Req) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.reqs[i as usize] = r;
                i
            }
            None => {
                self.reqs.push(r);
                (self.reqs.len() - 1) as u32
            }
        }
    }

    fn release(&mut self, idx: u32) {
        self.free.push(idx);
    }

    /// The overall latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// The small-request latency histogram — the tail the paper
    /// protects and the one the discipline shoot-out compares.
    pub fn latency_small(&self) -> &LatencyHistogram {
        &self.hist_small
    }

    /// The large-request latency histogram (Figure 4).
    pub fn latency_large(&self) -> &LatencyHistogram {
        &self.hist_large
    }

    /// Per-core load counters (Figure 9).
    pub fn per_core(&self) -> &[CoreLoad] {
        &self.per_core
    }

    /// Per-window accumulators (Figure 10).
    pub fn windows(&self) -> &[WindowAccum] {
        &self.windows
    }

    /// The Minos plan currently in force.
    pub fn plan(&self) -> &ShardingPlan {
        &self.plan
    }

    /// Successful steals (HKH+WS).
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// TX-wire utilization over `span_ns`.
    pub fn tx_utilization(&self, span_ns: f64) -> f64 {
        self.tx_wire.utilization(span_ns)
    }

    /// RX-wire utilization over `span_ns`.
    pub fn rx_utilization(&self, span_ns: f64) -> f64 {
        self.rx_wire.utilization(span_ns)
    }

    /// Total bytes transmitted (TX wire).
    pub fn tx_bytes(&self) -> u64 {
        self.tx_wire.bytes_total
    }
}

impl CostModel {
    /// Inbound packets of a request (1 for GETs and small PUTs, the
    /// fragment count for large PUTs).
    pub fn packets_for_inbound(&self, inbound_size: u64) -> u64 {
        if inbound_size == 0 {
            1
        } else {
            self.packets(inbound_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_workload::{AccessGenerator, Dataset};

    fn gen(p_large: f64) -> AccessGenerator {
        AccessGenerator::new(Dataset::paper_scaled(100, 500_000), p_large, 0.95, 0.99)
    }

    fn quick_sim(system: System, p_large: f64, rate_mops: f64) -> SystemSim {
        let mut cfg = SystemConfig::paper(system);
        cfg.epoch_ns = 20_000_000; // 20 ms: several epochs in a short run
        SystemSim::new(cfg, gen(p_large), rate_mops, None, 0, 9)
    }

    #[test]
    fn minos_standby_core_serves_both_classes() {
        // An all-small workload keeps Minos in standby mode; large
        // requests still complete through the standby core's queue.
        let mut sim = quick_sim(System::Minos, 0.0, 0.3);
        sim.set_measure_window(0, u64::MAX);
        sim.run_until(60_000_000);
        assert!(sim.plan().allocation.standby, "all-small => standby");
        assert!(sim.completed > 1_000, "completed {}", sim.completed);
    }

    #[test]
    fn minos_large_steals_policy_completes_work() {
        let mut cfg = SystemConfig::paper(System::Minos);
        cfg.epoch_ns = 20_000_000;
        cfg.allocation_policy = AllocationPolicy::LargeSteals;
        let mut sim = SystemSim::new(cfg, gen(0.01), 2.0, None, 0, 9);
        sim.set_measure_window(0, u64::MAX);
        sim.run_until(60_000_000);
        let done = sim.completed;
        assert!(done > 50_000, "completed {done}");
        // Large cores exist (1% large at high packet weight) and some
        // completed ops on them (steals or handoffs).
        assert!(!sim.plan().allocation.standby);
    }

    #[test]
    fn sho_handoff_cores_never_execute_requests() {
        let mut sim = quick_sim(System::Sho { handoff: 2 }, 0.00125, 1.0);
        sim.set_measure_window(0, u64::MAX);
        sim.run_until(60_000_000);
        assert!(sim.completed > 10_000);
        let per_core = sim.per_core();
        assert_eq!(per_core[0].ops + per_core[1].ops, 0, "dispatch-only");
        assert!(per_core[0].packets > 0, "but they handle packets");
        // Workers execute everything that completes; a request can still
        // be in flight (on the wire or queued) when the run ends.
        let worker_ops: u64 = per_core[2..].iter().map(|c| c.ops).sum();
        assert!(
            worker_ops >= sim.completed,
            "{worker_ops} < {}",
            sim.completed
        );
        assert!(
            worker_ops <= sim.generated,
            "{worker_ops} > {}",
            sim.generated
        );
    }

    #[test]
    fn static_threshold_minos_skips_profiling_but_still_shards() {
        let mut cfg = SystemConfig::paper(System::Minos);
        cfg.threshold_mode = ThresholdMode::Static(1_456);
        cfg.epoch_ns = 20_000_000;
        let mut sim = SystemSim::new(cfg, gen(0.00125), 1.0, None, 0, 9);
        sim.set_measure_window(0, u64::MAX);
        sim.run_until(60_000_000);
        assert!(sim.completed > 10_000);
        assert_eq!(sim.plan().decision.threshold, 1_456, "threshold pinned");
    }

    #[test]
    fn every_discipline_system_completes_work() {
        for kind in DisciplineKind::ALL {
            let mut sim = quick_sim(System::Discipline(kind), 0.00125, 1.0);
            sim.set_measure_window(0, u64::MAX);
            sim.run_until(60_000_000);
            assert!(
                sim.completed > 10_000,
                "{}: completed {}",
                kind.name(),
                sim.completed
            );
            assert_eq!(System::Discipline(kind).label(), kind.name());
        }
    }

    #[test]
    fn size_aware_discipline_is_exactly_minos() {
        // Same seed, same workload: the size-aware discipline system and
        // the Minos system are the same code path and must agree
        // request-for-request.
        let mut a = quick_sim(System::Minos, 0.00125, 1.0);
        let mut b = quick_sim(System::Discipline(DisciplineKind::SizeAware), 0.00125, 1.0);
        for sim in [&mut a, &mut b] {
            sim.set_measure_window(0, u64::MAX);
            sim.run_until(60_000_000);
        }
        assert_eq!(a.completed, b.completed);
        assert_eq!(
            a.latency().quantiles().map(|q| q.p99_us),
            b.latency().quantiles().map(|q| q.p99_us)
        );
        assert_eq!(a.plan().decision.threshold, b.plan().decision.threshold);
    }

    #[test]
    fn jsq_beats_random_p99_under_skewed_load() {
        // Skewed service times (heavy-tailed item sizes): random
        // placement keeps joining queues that already hold a large
        // request, JSQ routes around them. The e2e claim of the
        // discipline lab, deterministic under the fixed seed. The
        // operating point must sit below the saturation knee — past it
        // every size-blind discipline collapses to the same overloaded
        // tail and the comparison measures nothing.
        let p99 = |system: System| {
            let mut sim = quick_sim(system, 0.01, 1.0);
            sim.set_measure_window(5_000_000, u64::MAX);
            sim.run_until(80_000_000);
            // Small-class p99: with 1 % large requests the overall p99
            // sits exactly on the class boundary, where it measures the
            // size mix instead of the placement rule.
            sim.latency_small().quantiles().expect("completions").p99_us
        };
        let jsq = p99(System::Discipline(DisciplineKind::Jsq));
        let random = p99(System::Discipline(DisciplineKind::Random));
        assert!(
            jsq < random,
            "JSQ p99 {jsq} ns should beat Random p99 {random} ns"
        );
    }

    #[test]
    fn reply_sampling_zero_sends_nothing_on_the_wire() {
        let mut cfg = SystemConfig::paper(System::Hkh);
        cfg.reply_sampling = 0.0;
        let mut sim = SystemSim::new(cfg, gen(0.0), 0.5, None, 0, 9);
        sim.set_measure_window(0, u64::MAX);
        sim.run_until(40_000_000);
        assert!(sim.completed > 1_000, "ops complete server-side");
        assert_eq!(sim.tx_bytes(), 0, "no replies transmitted");
        assert!(sim.latency().quantiles().is_none(), "no client latencies");
    }
}
