//! SLO-constrained throughput search (Figures 6 and 7).
//!
//! "We measure the maximum throughput achievable under different SLOs on
//! the 99th percentile latency of 10 and 20 times the mean service
//! time, i.e., 50 µsec and 100 µsec" (§6.3). The search ladders the
//! offered load upward and then bisects between the last rate that met
//! the SLO and the first that missed it.

use crate::engine::System;
use crate::runner::{run, RunConfig, RunResult};
use minos_workload::Profile;

/// Parameters of the SLO search.
#[derive(Clone, Debug)]
pub struct SloSearch {
    /// The SLO on the 99th percentile, µs.
    pub slo_us: f64,
    /// Rate ladder start, Mops.
    pub start_mops: f64,
    /// Rate ladder ceiling, Mops (a bit above any system's capacity).
    pub max_mops: f64,
    /// Ladder step, Mops.
    pub step_mops: f64,
    /// Bisection refinement iterations.
    pub refine_iters: usize,
    /// Per-point run duration (seconds).
    pub duration_s: f64,
    /// Per-point warmup (seconds).
    pub warmup_s: f64,
    /// Seed.
    pub seed: u64,
}

impl SloSearch {
    /// A search for the given SLO with paper-scale bounds.
    pub fn new(slo_us: f64) -> Self {
        SloSearch {
            slo_us,
            start_mops: 0.25,
            max_mops: 8.0,
            step_mops: 0.5,
            refine_iters: 3,
            duration_s: 1.0,
            warmup_s: 0.25,
            seed: 42,
        }
    }

    /// Shrinks per-point runs for smoke tests.
    pub fn quick(mut self) -> Self {
        self.duration_s = 0.4;
        self.warmup_s = 0.1;
        self.refine_iters = 2;
        self.step_mops = 0.75;
        self
    }
}

fn point(system: System, profile: Profile, rate: f64, search: &SloSearch) -> RunResult {
    let mut cfg = RunConfig::new(system, profile, rate);
    cfg.duration_s = search.duration_s;
    cfg.warmup_s = search.warmup_s;
    cfg.seed = search.seed;
    run(&cfg)
}

fn meets(result: &RunResult, slo_us: f64) -> bool {
    result.kept_up() && result.p99_us() <= slo_us
}

/// The maximum throughput (Mops) at which `system` meets the SLO on the
/// given profile. Returns the *achieved* throughput at the best passing
/// rate (0 if even the lowest rate misses).
pub fn max_throughput_under_slo(system: System, profile: Profile, search: &SloSearch) -> f64 {
    let mut best_pass: Option<(f64, f64)> = None; // (offered, achieved)
    let mut first_fail: Option<f64> = None;

    // Ladder.
    let mut rate = search.start_mops;
    while rate <= search.max_mops {
        let r = point(system, profile, rate, search);
        if meets(&r, search.slo_us) {
            best_pass = Some((rate, r.throughput_mops));
        } else {
            first_fail = Some(rate);
            break;
        }
        rate += search.step_mops;
    }

    let Some((mut lo, mut achieved)) = best_pass else {
        return 0.0;
    };
    let mut hi = first_fail.unwrap_or(search.max_mops + search.step_mops);

    // Bisection refinement.
    for _ in 0..search.refine_iters {
        let mid = (lo + hi) / 2.0;
        let r = point(system, profile, mid, search);
        if meets(&r, search.slo_us) {
            lo = mid;
            achieved = r.throughput_mops;
        } else {
            hi = mid;
        }
    }
    achieved
}

/// SHO's best configuration: the paper sweeps 1–3 handoff cores and
/// reports the best per workload.
pub fn sho_best_under_slo(profile: Profile, search: &SloSearch) -> f64 {
    (1..=3)
        .map(|h| max_throughput_under_slo(System::Sho { handoff: h }, profile, search))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_workload::DEFAULT_PROFILE;

    #[test]
    fn minos_beats_hkh_under_strict_slo() {
        // The paper's headline: under the 50 µs SLO Minos sustains
        // multiples of HKH's throughput on the default workload.
        let search = SloSearch::new(50.0).quick();
        let minos = max_throughput_under_slo(System::Minos, DEFAULT_PROFILE, &search);
        let hkh = max_throughput_under_slo(System::Hkh, DEFAULT_PROFILE, &search);
        assert!(minos > 3.0, "Minos under 50us: {minos} Mops");
        assert!(
            minos > hkh * 1.5,
            "Minos {minos} vs HKH {hkh} under the strict SLO"
        );
    }

    #[test]
    fn looser_slo_helps_every_system() {
        let strict = SloSearch::new(50.0).quick();
        let loose = SloSearch::new(100.0).quick();
        for system in [System::Hkh, System::HkhWs] {
            let s = max_throughput_under_slo(system, DEFAULT_PROFILE, &strict);
            let l = max_throughput_under_slo(system, DEFAULT_PROFILE, &loose);
            assert!(
                l >= s,
                "{}: loose {l} must be >= strict {s}",
                system.label()
            );
        }
    }
}
