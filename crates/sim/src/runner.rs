//! Run orchestration: the paper's measurement methodology on top of the
//! event loop.

use crate::engine::{CoreLoad, System, SystemConfig, SystemSim};
use minos_obs::{HistSummary, MetricValue, Snapshot};
use minos_stats::Quantiles;
use minos_workload::{AccessGenerator, Dataset, PhaseSchedule, Profile};

/// Configuration of one simulated run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// The server.
    pub system: SystemConfig,
    /// The workload profile (p_L, s_L, GET ratio, skew).
    pub profile: Profile,
    /// Offered load, millions of requests per second.
    pub rate_mops: f64,
    /// Total simulated seconds.
    pub duration_s: f64,
    /// Warm-up (and symmetric cool-down) seconds discarded, mirroring
    /// the paper's "first and last 10 seconds are not included".
    pub warmup_s: f64,
    /// RNG seed.
    pub seed: u64,
    /// Dataset scale divisor (1 = the paper's 16 M keys).
    pub dataset_scale: u64,
    /// Optional time-varying p_L schedule (Figure 10).
    pub schedule: Option<PhaseSchedule>,
    /// Reporting-window seconds (0 = no windows).
    pub window_s: f64,
    /// Telemetry snapshot interval in simulated seconds (0 = off);
    /// when set, [`RunResult::snapshots`] holds one [`Snapshot`] per
    /// interval — the simulator's analogue of the live server's
    /// `--stats-interval-ms` timeline.
    pub stats_interval_s: f64,
}

impl RunConfig {
    /// A default-workload run at `rate_mops` for `system`.
    pub fn new(system: System, profile: Profile, rate_mops: f64) -> Self {
        RunConfig {
            system: SystemConfig::paper(system),
            profile,
            rate_mops,
            duration_s: 2.0,
            warmup_s: 0.5,
            seed: 42,
            dataset_scale: 1,
            schedule: None,
            window_s: 0.0,
            stats_interval_s: 0.0,
        }
    }

    /// Shrinks durations for smoke tests / quick sweeps.
    pub fn quick(mut self) -> Self {
        self.duration_s = 0.6;
        self.warmup_s = 0.15;
        self
    }
}

/// One reporting window of a run (Figure 10's time series).
#[derive(Clone, Copy, Debug)]
pub struct WindowStat {
    /// Window start, seconds.
    pub t_s: f64,
    /// 99th percentile latency in the window, µs.
    pub p99_us: f64,
    /// Large cores in the Minos plan at window end.
    pub n_large_cores: usize,
    /// Completions in the window.
    pub completed: u64,
}

/// Results of one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The simulated design's label.
    pub system: &'static str,
    /// Offered load, Mops.
    pub offered_mops: f64,
    /// Achieved throughput over the measurement window, Mops.
    pub throughput_mops: f64,
    /// Overall latency quantiles (µs), if any request completed.
    pub latency: Option<Quantiles>,
    /// Large-request latency quantiles (Figure 4).
    pub latency_large: Option<Quantiles>,
    /// TX-side NIC utilization over the whole run.
    pub nic_tx_util: f64,
    /// RX-side NIC utilization.
    pub nic_rx_util: f64,
    /// Per-core ops/packets (Figure 9).
    pub per_core: Vec<CoreLoad>,
    /// Per-window stats (Figure 10), when windows were enabled.
    pub windows: Vec<WindowStat>,
    /// Requests generated in the measurement window.
    pub generated: u64,
    /// Requests completed in the measurement window.
    pub completed: u64,
    /// HKH+WS steals.
    pub steals: u64,
    /// Periodic telemetry snapshots (simulated clock), when
    /// [`RunConfig::stats_interval_s`] was set.
    pub snapshots: Vec<Snapshot>,
}

impl RunResult {
    /// p99 in µs, infinity when nothing completed (saturated).
    pub fn p99_us(&self) -> f64 {
        self.latency.map_or(f64::INFINITY, |q| q.p99_us)
    }

    /// True when the system kept up with the offered load (the paper's
    /// zero-loss criterion, within a completion tolerance for requests
    /// in flight at the window edge).
    pub fn kept_up(&self) -> bool {
        self.completed as f64 >= self.generated as f64 * 0.995
    }
}

/// Runs one configuration to completion.
pub fn run(config: &RunConfig) -> RunResult {
    let dataset = if config.dataset_scale <= 1 {
        Dataset::paper(config.profile.large_max)
    } else {
        Dataset::paper_scaled(config.dataset_scale, config.profile.large_max)
    };
    let gen = AccessGenerator::new(
        dataset,
        config.profile.p_large,
        config.profile.get_ratio,
        config.profile.zipf_s,
    );
    let window_ns = (config.window_s * 1e9) as u64;
    // The paper's 60 s runs see ~50 controller epochs; short simulated
    // runs must still let the controller converge, so the epoch shrinks
    // with the run (to at most duration/6) unless a dynamic schedule is
    // in play (Figure 10 uses the real 1 s epoch over 140 s).
    let mut system = config.system.clone();
    if config.schedule.is_none() {
        let scaled = ((config.duration_s * 1e9) as u64 / 6).max(10_000_000);
        system.epoch_ns = system.epoch_ns.min(scaled);
    }
    let mut sim = SystemSim::new(
        system,
        gen,
        config.rate_mops,
        config.schedule.clone(),
        window_ns,
        config.seed,
    );
    let total_ns = (config.duration_s * 1e9) as u64;
    let warm_ns = (config.warmup_s * 1e9) as u64;
    let measure_end = total_ns.saturating_sub(warm_ns);
    sim.set_measure_window(warm_ns, measure_end);
    let interval_ns = (config.stats_interval_s * 1e9) as u64;
    let mut snapshots = Vec::new();
    if interval_ns == 0 {
        sim.run_until(total_ns);
    } else {
        // Chunk the event loop at snapshot boundaries so each snapshot
        // reflects the simulated clock, not wall time.
        let mut t = 0u64;
        while t < total_ns {
            t = (t + interval_ns).min(total_ns);
            sim.run_until(t);
            snapshots.push(sim_snapshot(snapshots.len() as u64, t, &sim));
        }
    }

    let span = (measure_end - warm_ns).max(1) as f64;
    let windows = sim
        .windows()
        .iter()
        .enumerate()
        .filter(|(_, w)| w.completed > 0)
        .map(|(i, w)| WindowStat {
            t_s: i as f64 * config.window_s,
            p99_us: w.hist.percentile_us(99.0).unwrap_or(0.0),
            n_large_cores: w.n_large,
            completed: w.completed,
        })
        .collect();

    RunResult {
        system: config.system.system.label(),
        offered_mops: config.rate_mops,
        throughput_mops: sim.completed as f64 / span * 1e3,
        latency: sim.latency().quantiles(),
        latency_large: sim.latency_large().quantiles(),
        nic_tx_util: sim.tx_utilization(total_ns as f64),
        nic_rx_util: sim.rx_utilization(total_ns as f64),
        per_core: sim.per_core().to_vec(),
        windows,
        generated: sim.generated,
        completed: sim.completed,
        steals: sim.steals(),
        snapshots,
    }
}

/// One telemetry snapshot of the simulator at simulated time `now_ns`,
/// under the same dotted names the live server emits where the concepts
/// coincide (`core.{i}.ops`) and `sim.*` where they are simulator-only.
fn sim_snapshot(seq: u64, now_ns: u64, sim: &SystemSim) -> Snapshot {
    let mut entries = vec![
        (
            "sim.generated".to_string(),
            MetricValue::Counter(sim.generated),
        ),
        (
            "sim.completed".to_string(),
            MetricValue::Counter(sim.completed),
        ),
        ("sim.steals".to_string(), MetricValue::Counter(sim.steals())),
        (
            "latency_ns".to_string(),
            MetricValue::Hist(HistSummary::from_hist(sim.latency().inner())),
        ),
        (
            "latency_large_ns".to_string(),
            MetricValue::Hist(HistSummary::from_hist(sim.latency_large().inner())),
        ),
    ];
    for (i, load) in sim.per_core().iter().enumerate() {
        entries.push((format!("core.{i}.ops"), MetricValue::Counter(load.ops)));
        entries.push((
            format!("core.{i}.packets"),
            MetricValue::Counter(load.packets),
        ));
    }
    Snapshot::new(seq, now_ns / 1_000_000, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_workload::DEFAULT_PROFILE;

    fn quick(system: System, rate: f64) -> RunResult {
        run(&RunConfig::new(system, DEFAULT_PROFILE, rate).quick())
    }

    #[test]
    fn all_systems_complete_at_low_load() {
        for system in [
            System::Minos,
            System::Hkh,
            System::Sho { handoff: 2 },
            System::HkhWs,
        ] {
            let r = quick(system, 0.5);
            assert!(r.kept_up(), "{}: {}/{}", r.system, r.completed, r.generated);
            assert!(r.latency.is_some());
            assert!(r.p99_us() < 1_000.0, "{}: p99 {}", r.system, r.p99_us());
        }
    }

    #[test]
    fn minos_p99_beats_hkh_at_moderate_load() {
        // The headline claim at 3 Mops (~half of peak): Minos' p99 stays
        // near the small service time; HKH's suffers head-of-line
        // blocking behind ~100 µs large requests.
        let minos = quick(System::Minos, 3.0);
        let hkh = quick(System::Hkh, 3.0);
        assert!(minos.kept_up() && hkh.kept_up());
        assert!(
            minos.p99_us() * 5.0 < hkh.p99_us(),
            "Minos p99 {} vs HKH p99 {}",
            minos.p99_us(),
            hkh.p99_us()
        );
    }

    #[test]
    fn minos_meets_strict_slo_at_high_load() {
        // The paper holds the 50 µs SLO to ~90 % of the ~6.2 Mops peak;
        // our calibration crosses 50 µs near 4.7 Mops (~75 % of peak) —
        // same shape, slightly earlier knee. Probe inside the knee.
        let r = quick(System::Minos, 4.5);
        assert!(r.kept_up(), "{}/{}", r.completed, r.generated);
        assert!(r.p99_us() <= 50.0, "p99 {}", r.p99_us());
    }

    #[test]
    fn saturation_caps_throughput() {
        // Offered load far beyond the ~6.2 Mops NIC bound: throughput
        // must cap near the bound, not track the offered rate.
        let r = quick(System::Hkh, 9.0);
        assert!(
            r.throughput_mops < 7.5,
            "throughput {} should cap near the NIC bound",
            r.throughput_mops
        );
        assert!(!r.kept_up());
    }

    #[test]
    fn nic_utilization_grows_with_load() {
        let lo = quick(System::Minos, 1.0);
        let hi = quick(System::Minos, 5.0);
        assert!(
            hi.nic_tx_util > lo.nic_tx_util * 3.0,
            "tx util {} -> {}",
            lo.nic_tx_util,
            hi.nic_tx_util
        );
        assert!(hi.nic_tx_util > 0.5, "high load should load the NIC");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = quick(System::Minos, 2.0);
        let b = quick(System::Minos, 2.0);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.p99_us(), b.p99_us());
    }

    #[test]
    fn ws_steals_at_low_load_but_rarely_at_high_load() {
        let lo = quick(System::HkhWs, 1.0);
        let hi = quick(System::HkhWs, 5.5);
        assert!(lo.steals > 0, "stealing happens at low load");
        // Normalize by completions: stealing fades as idleness vanishes.
        let lo_rate = lo.steals as f64 / lo.completed.max(1) as f64;
        let hi_rate = hi.steals as f64 / hi.completed.max(1) as f64;
        assert!(
            hi_rate < lo_rate,
            "steal rate must fall with load: {lo_rate} -> {hi_rate}"
        );
    }

    #[test]
    fn minos_allocates_one_large_core_on_default_workload() {
        let r = run(&RunConfig::new(System::Minos, DEFAULT_PROFILE, 3.0));
        // Paper §6.1: "For this particular workload, it allocates only
        // one core to the large requests."
        let w: Vec<usize> = r.windows.iter().map(|w| w.n_large_cores).collect();
        // Windows are only recorded when window_s > 0; rerun with them.
        let mut cfg = RunConfig::new(System::Minos, DEFAULT_PROFILE, 3.0);
        cfg.window_s = 0.5;
        let r = run(&cfg);
        let counts: Vec<usize> = r.windows.iter().map(|w| w.n_large_cores).collect();
        assert!(
            counts.iter().skip(2).all(|&c| c == 1),
            "late windows should settle on one large core: {counts:?} {w:?}"
        );
    }
}
