//! The NIC as a pair of serialization channels.
//!
//! Each direction of the 40 GbE link is a FIFO resource: a message of
//! `b` bytes occupies the channel for `b / bandwidth` seconds starting
//! no earlier than the previous message finished. Queueing on the TX
//! channel is how NIC saturation turns into latency in the simulation —
//! exactly the mechanism that caps the paper's Figure 3 curves at
//! ≈ 6.2 Mops.

/// A unidirectional serialization channel.
#[derive(Clone, Debug)]
pub struct Wire {
    bytes_per_ns: f64,
    busy_until_ns: f64,
    /// Total bytes ever transmitted.
    pub bytes_total: u64,
    /// Busy time accumulated, ns (for utilization accounting).
    pub busy_ns: f64,
}

impl Wire {
    /// A channel of `gbit_per_sec` gigabits per second.
    pub fn new_gbit(gbit_per_sec: f64) -> Self {
        assert!(gbit_per_sec > 0.0);
        Wire {
            bytes_per_ns: gbit_per_sec / 8.0, // Gbit/s == bytes/ns / 8
            busy_until_ns: 0.0,
            bytes_total: 0,
            busy_ns: 0.0,
        }
    }

    /// Serializes `bytes` starting no earlier than `now_ns`; returns the
    /// time the last bit leaves the wire.
    pub fn transmit(&mut self, now_ns: f64, bytes: u64) -> f64 {
        let start = now_ns.max(self.busy_until_ns);
        let dur = bytes as f64 / self.bytes_per_ns;
        self.busy_until_ns = start + dur;
        self.bytes_total += bytes;
        self.busy_ns += dur;
        self.busy_until_ns
    }

    /// Utilization over a window of `span_ns`.
    pub fn utilization(&self, span_ns: f64) -> f64 {
        if span_ns <= 0.0 {
            return 0.0;
        }
        (self.busy_ns / span_ns).min(1.0)
    }

    /// Current backlog: how far `busy_until` extends past `now_ns`.
    pub fn backlog_ns(&self, now_ns: f64) -> f64 {
        (self.busy_until_ns - now_ns).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_matches_bandwidth() {
        let mut w = Wire::new_gbit(40.0); // 5 bytes per ns
        let done = w.transmit(0.0, 5_000);
        assert!((done - 1_000.0).abs() < 1e-9, "5000 B at 5 B/ns = 1 us");
    }

    #[test]
    fn fifo_backlog_accumulates() {
        let mut w = Wire::new_gbit(40.0);
        let first = w.transmit(0.0, 5_000);
        let second = w.transmit(0.0, 5_000); // queued behind the first
        assert!((second - first - 1_000.0).abs() < 1e-9);
        assert!((w.backlog_ns(0.0) - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn idle_gaps_are_not_busy() {
        let mut w = Wire::new_gbit(40.0);
        w.transmit(0.0, 5_000);
        w.transmit(10_000.0, 5_000); // idle gap between the two
        assert!((w.busy_ns - 2_000.0).abs() < 1e-9);
        assert!((w.utilization(20_000.0) - 0.1).abs() < 1e-9);
        assert_eq!(w.bytes_total, 10_000);
    }

    #[test]
    fn utilization_clamps_at_one() {
        let mut w = Wire::new_gbit(1.0);
        w.transmit(0.0, 1_000_000);
        assert_eq!(w.utilization(1.0), 1.0);
    }
}
