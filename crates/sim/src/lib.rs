//! Full-system discrete-event simulator of the Minos evaluation testbed.
//!
//! The paper's performance experiments ran on 8 machines with 8-core
//! Xeons and 40 GbE NICs. This container has one CPU core, so wall-clock
//! tail latencies of eight busy-polling threads would measure the host
//! scheduler, not the paper's subject. Instead, this crate models the
//! testbed as a deterministic discrete-event simulation:
//!
//! * **Cores** are servers whose per-request occupancy comes from a
//!   [`cost_model`] calibrated to the paper's operating points (a small
//!   GET costs ~1 µs of core time; the default workload saturates the
//!   40 GbE NIC at ≈ 6.2 Mops, the paper's Figure 3 peak).
//! * **The NIC** is a pair of 40 Gbit/s serialization channels
//!   ([`network`]) with per-packet framing overhead — the same wire
//!   arithmetic as `minos-wire`.
//! * **The four engines** (Minos, HKH, SHO, HKH+WS) are event-level
//!   models ([`engine`]) of the same scheduling logic the threaded
//!   runtimes implement. Crucially, the Minos model does not
//!   re-implement the controller: it *runs the real one* —
//!   `minos-core`'s `ThresholdController`, `allocate` and `LargeRanges`
//!   drive the simulated plan exactly as they drive the threaded server.
//! * **The workload** is the real `minos-workload` generator (zipfian
//!   keys over the 16 M-key paper dataset, trimodal sizes, open-loop
//!   Poisson arrivals).
//!
//! [`runner`] adds the paper's measurement methodology (warm-up/
//! cool-down discard, 1 s windows for the dynamic experiment);
//! [`sweep`] searches the maximum throughput under an SLO (Figures
//! 6/7).

#![warn(missing_docs)]

pub mod cost_model;
pub mod engine;
pub mod network;
pub mod runner;
pub mod sweep;

pub use cost_model::CostModel;
pub use engine::{System, SystemConfig};
pub use runner::{RunConfig, RunResult, WindowStat};
pub use sweep::{max_throughput_under_slo, SloSearch};
