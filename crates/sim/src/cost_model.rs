//! The calibrated service-time and wire-cost model.
//!
//! Calibration targets, all taken from the paper:
//!
//! 1. **Figure 1 shape**: GET service time grows from under a
//!    microsecond for tiny items to hundreds of microseconds for
//!    megabyte items (orders of magnitude, roughly linear in size).
//! 2. **Figure 3 peak**: the default workload (95:5, p_L = 0.125 %,
//!    s_L = 500 KB) peaks at ≈ 6.2 Mops with the NIC ≈ 93 % utilized —
//!    i.e. the NIC binds just before the CPU does.
//! 3. **§6.2**: under 50:50 the bottleneck shifts to the CPU and Minos
//!    pays its profiling overhead (~10 % lower peak than HKH).
//! 4. **§5.2/§6.1**: SHO's peak is bounded by its handoff cores'
//!    dispatch rate, ~10 % below the others on the default workload.
//!
//! With `CPU_BASE_NS = 600`, `CPU_PER_PACKET_NS = 250` and
//! `CPU_PER_BYTE_NS = 0.3`:
//! * small GET (427 B mean): ≈ 0.98 µs → CPU capacity ≈ 7.1 Mops on 8
//!   cores;
//! * mean TX bytes/op on the default workload ≈ 810 B → 40 Gbit/s caps
//!   at ≈ 6.2 Mops (matches the paper's peak);
//! * a 250 KB item costs ≈ 119 µs of core time and a 1 MB item
//!   ≈ 470 µs (Figure 1's orders of magnitude).

use minos_wire::message::MSG_HEADER_LEN;
use minos_wire::{packets_for_payload, ETH_FCS_LEN, ETH_HEADER_LEN, IP_HEADER_LEN, UDP_HEADER_LEN};

/// Per-packet wire overhead: Ethernet + IP + UDP + FCS + fragment header.
pub const PACKET_OVERHEAD: u64 =
    (ETH_HEADER_LEN + IP_HEADER_LEN + UDP_HEADER_LEN + ETH_FCS_LEN + 16) as u64;

/// The service-time model.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Fixed per-request CPU cost, ns.
    pub base_ns: f64,
    /// CPU cost per network packet handled, ns.
    pub per_packet_ns: f64,
    /// CPU cost per payload byte copied, ns.
    pub per_byte_ns: f64,
    /// Extra per-request cost on Minos small cores in dynamic-threshold
    /// mode (histogram update + plan read) — the profiling overhead
    /// §6.2 blames for Minos' lower 50:50 peak.
    pub minos_profile_ns: f64,
    /// Cost for a small core to classify and enqueue one large request
    /// onto a software queue (Minos' only software dispatch).
    pub handoff_ns: f64,
    /// SHO handoff-core cost per request: fixed part.
    pub sho_dispatch_base_ns: f64,
    /// SHO handoff-core cost per inbound packet.
    pub sho_dispatch_per_packet_ns: f64,
    /// Extra cost charged to a stolen request (HKH+WS).
    pub steal_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            base_ns: 600.0,
            per_packet_ns: 250.0,
            per_byte_ns: 0.3,
            minos_profile_ns: 100.0,
            handoff_ns: 250.0,
            sho_dispatch_base_ns: 500.0,
            sho_dispatch_per_packet_ns: 40.0,
            steal_ns: 200.0,
        }
    }
}

impl CostModel {
    /// Packets needed to carry an item of `size` bytes (plus the message
    /// header) — identical arithmetic to the real wire layer.
    pub fn packets(&self, size: u64) -> u64 {
        u64::from(packets_for_payload(size as usize + MSG_HEADER_LEN))
    }

    /// Total core occupancy (ns) to serve a request for an item of
    /// `size` bytes, run-to-completion.
    pub fn service_ns(&self, size: u64) -> f64 {
        self.base_ns
            + self.per_packet_ns * self.packets(size) as f64
            + self.per_byte_ns * size as f64
    }

    /// SHO: handoff-core occupancy for one request of `size` bytes
    /// (packet RX + enqueue; the handoff core never touches the value).
    pub fn sho_dispatch_ns(&self, inbound_size: u64) -> f64 {
        self.sho_dispatch_base_ns
            + self.sho_dispatch_per_packet_ns * self.packets(inbound_size) as f64
    }

    /// SHO: worker occupancy (the remainder of the service).
    pub fn sho_worker_ns(&self, size: u64, inbound_size: u64) -> f64 {
        (self.service_ns(size) - self.sho_dispatch_ns(inbound_size)).max(150.0)
    }

    /// Wire bytes for a message carrying `payload` application bytes
    /// (headers + FCS + fragment headers included).
    pub fn wire_bytes(&self, payload: u64) -> u64 {
        let pkts = u64::from(packets_for_payload(payload as usize));
        payload + pkts * PACKET_OVERHEAD
    }

    /// Wire bytes of a request: GETs carry only the message header;
    /// PUTs carry the value.
    pub fn request_wire_bytes(&self, is_get: bool, size: u64) -> u64 {
        if is_get {
            self.wire_bytes(MSG_HEADER_LEN as u64)
        } else {
            self.wire_bytes(MSG_HEADER_LEN as u64 + size)
        }
    }

    /// Wire bytes of a reply: GET replies carry the value; PUT replies
    /// are bare headers.
    pub fn reply_wire_bytes(&self, is_get: bool, size: u64) -> u64 {
        if is_get {
            self.wire_bytes(MSG_HEADER_LEN as u64 + size)
        } else {
            self.wire_bytes(MSG_HEADER_LEN as u64)
        }
    }

    /// Inbound item size as seen by the server for cost purposes: the
    /// value for PUTs, nothing for GETs.
    pub fn inbound_size(&self, is_get: bool, size: u64) -> u64 {
        if is_get {
            0
        } else {
            size
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBIT40_BYTES_PER_SEC: f64 = 5e9;

    #[test]
    fn figure1_shape_orders_of_magnitude() {
        let m = CostModel::default();
        let tiny = m.service_ns(7);
        let small = m.service_ns(707);
        let quarter_mb = m.service_ns(250_000);
        let megabyte = m.service_ns(1_000_000);
        assert!(tiny < 1_000.0, "tiny {tiny}");
        assert!(small < 1_500.0, "small {small}");
        assert!(quarter_mb > 50_000.0, "250KB {quarter_mb}");
        assert!(megabyte > 300_000.0, "1MB {megabyte}");
        assert!(
            megabyte / tiny > 300.0,
            "orders of magnitude spread: {}",
            megabyte / tiny
        );
    }

    #[test]
    fn service_monotonic_in_size() {
        let m = CostModel::default();
        let mut prev = 0.0;
        for size in (0..1_000_000u64).step_by(25_000) {
            let s = m.service_ns(size);
            assert!(s >= prev);
            prev = s;
        }
    }

    /// The calibration target behind Figure 3: the default workload
    /// saturates the 40 GbE NIC at ≈ 6.2 Mops, slightly before the CPU
    /// would bind (≈ 7 Mops).
    #[test]
    fn default_workload_is_nic_bound_near_paper_peak() {
        let m = CostModel::default();
        let p_large = 0.00125;
        let get_ratio = 0.95;
        let small_mean = 427.0; // 0.4*7 + 0.6*707
        let large_mean = 250_750.0;

        // CPU capacity.
        let occ = |size: u64| m.service_ns(size);
        let mean_occ = (1.0 - p_large) * occ(427) + p_large * occ(250_750);
        let cpu_cap = 8.0 / (mean_occ * 1e-9) / 1e6;

        // NIC TX capacity.
        let reply = |size: u64, is_get: bool| m.reply_wire_bytes(is_get, size) as f64;
        let mean_tx = get_ratio
            * ((1.0 - p_large) * reply(small_mean as u64, true)
                + p_large * reply(large_mean as u64, true))
            + (1.0 - get_ratio) * reply(0, false);
        let nic_cap = GBIT40_BYTES_PER_SEC / mean_tx / 1e6;

        assert!(
            (5.5..7.0).contains(&nic_cap),
            "NIC-bound peak {nic_cap:.2} Mops should be near the paper's 6.2"
        );
        assert!(
            cpu_cap > nic_cap,
            "CPU cap {cpu_cap:.2} must exceed NIC cap {nic_cap:.2} (the paper's NIC is 93% utilized at peak)"
        );
        assert!(
            cpu_cap < nic_cap * 1.3,
            "CPU cap {cpu_cap:.2} must be close above NIC cap {nic_cap:.2}"
        );
    }

    /// §6.2: at 50:50 the bottleneck shifts to the CPU, and Minos'
    /// profiling overhead costs ~10 %.
    #[test]
    fn write_intensive_is_cpu_bound_and_profiling_costs_ten_percent() {
        let m = CostModel::default();
        let mean_occ = 0.99875 * m.service_ns(427) + 0.00125 * m.service_ns(250_750);
        let cpu_cap_hkh = 8.0 / (mean_occ * 1e-9) / 1e6;
        let mean_occ_minos = mean_occ + m.minos_profile_ns;
        let cpu_cap_minos = 8.0 / (mean_occ_minos * 1e-9) / 1e6;

        let mean_tx_5050 =
            0.5 * m.reply_wire_bytes(true, 427) as f64 + 0.5 * m.reply_wire_bytes(false, 0) as f64;
        let nic_cap_5050 = GBIT40_BYTES_PER_SEC / mean_tx_5050 / 1e6;

        assert!(nic_cap_5050 > cpu_cap_hkh, "50:50 must be CPU-bound");
        let ratio = cpu_cap_minos / cpu_cap_hkh;
        assert!(
            (0.85..0.97).contains(&ratio),
            "Minos/HKH CPU-cap ratio {ratio:.3}, paper reports ~0.9"
        );
    }

    /// §5.2: SHO's dispatch rate with its best handoff-core count is
    /// ~10 % below the NIC-bound peak.
    #[test]
    fn sho_dispatch_binds_below_nic() {
        let m = CostModel::default();
        let dispatch = m.sho_dispatch_ns(0); // GETs dominate
        let best_cap = (1..=3)
            .map(|h| h as f64 / (dispatch * 1e-9) / 1e6)
            .fold(f64::MIN, f64::max);
        assert!(
            (5.0..6.1).contains(&best_cap),
            "SHO dispatch cap {best_cap:.2} Mops should sit ~10% under 6.2"
        );
    }

    #[test]
    fn wire_bytes_accounting() {
        let m = CostModel::default();
        // One-packet message: payload + one overhead.
        assert_eq!(m.wire_bytes(100), 100 + PACKET_OVERHEAD);
        // 500 KB: ceil(500032/1456) packets.
        let pkts = u64::from(packets_for_payload(500_032));
        assert_eq!(
            m.request_wire_bytes(false, 500_000),
            500_032 + pkts * PACKET_OVERHEAD
        );
        // GET requests are header-only regardless of item size.
        assert_eq!(m.request_wire_bytes(true, 500_000), 32 + PACKET_OVERHEAD);
        // PUT replies are header-only.
        assert_eq!(m.reply_wire_bytes(false, 500_000), 32 + PACKET_OVERHEAD);
    }

    #[test]
    fn sho_split_conserves_total() {
        let m = CostModel::default();
        for &(size, inbound) in &[(427u64, 0u64), (250_000, 0), (250_000, 250_000)] {
            let total = m.sho_dispatch_ns(inbound) + m.sho_worker_ns(size, inbound);
            assert!(
                total >= m.service_ns(size) * 0.99,
                "split {total} below service {}",
                m.service_ns(size)
            );
        }
    }
}
