//! Typed metric values carried by a [`crate::Snapshot`].

use minos_stats::LogHistogram;

/// A point-in-time value of one named metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonically non-decreasing event count.
    Counter(u64),
    /// Instantaneous level (may go up and down). Non-finite values are
    /// serialized as `0` — JSON has no NaN/Infinity.
    Gauge(f64),
    /// Distribution summary extracted from a log-linear histogram.
    Hist(HistSummary),
}

impl MetricValue {
    /// The counter value, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge value, if this is a gauge.
    pub fn as_gauge(&self) -> Option<f64> {
        match self {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram summary, if this is a histogram.
    pub fn as_hist(&self) -> Option<&HistSummary> {
        match self {
            MetricValue::Hist(h) => Some(h),
            _ => None,
        }
    }
}

/// Summary of a histogram at snapshot time: count, extrema, mean, and
/// the tail percentiles the paper's evaluation reads (p50/p90/p99/p99.9).
///
/// Percentiles are bucket upper bounds (never under-estimates); units
/// are whatever the histogram records — nanoseconds for the `*_ns`
/// metrics, bytes for size histograms.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// 50th percentile.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl HistSummary {
    /// Summarizes a [`LogHistogram`]; an empty histogram yields the
    /// all-zero summary (and `count == 0` marks it empty).
    pub fn from_hist(h: &LogHistogram) -> Self {
        if h.is_empty() {
            return HistSummary::default();
        }
        HistSummary {
            count: h.total(),
            min: h.min().unwrap_or(0),
            max: h.max().unwrap_or(0),
            mean: h.mean().unwrap_or(0.0),
            p50: h.percentile(50.0).unwrap_or(0),
            p90: h.percentile(90.0).unwrap_or(0),
            p99: h.percentile(99.0).unwrap_or(0),
            p999: h.percentile(99.9).unwrap_or(0),
        }
    }
}
