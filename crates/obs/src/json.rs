//! A minimal hand-rolled JSON reader/writer.
//!
//! The build environment is offline (no serde); the snapshot emitter
//! writes JSON by direct string construction and this module supplies
//! the *reader* side: enough of RFC 8259 to parse back our own snapshot
//! lines and the loadgen/server reports. Numbers keep their raw source
//! token so `u64` counters round-trip exactly (an `f64` detour would
//! corrupt counters above 2^53).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its raw token (see [`Number`]).
    Num(Number),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order preserved, duplicate keys kept as-is.
    Obj(Vec<(String, JsonValue)>),
}

/// A JSON number as its raw source token, with typed accessors.
#[derive(Clone, Debug, PartialEq)]
pub struct Number {
    raw: String,
}

impl Number {
    /// Wraps an already-valid JSON number token.
    fn from_raw(raw: String) -> Self {
        Number { raw }
    }

    /// The raw token as written in the source.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// Exact `u64` value, if the token is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        self.raw.parse().ok()
    }

    /// The value as `f64` (always succeeds for valid JSON numbers).
    pub fn as_f64(&self) -> f64 {
        self.raw.parse().unwrap_or(0.0)
    }
}

impl JsonValue {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<&Number> {
        match self {
            JsonValue::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document, requiring nothing but whitespace after it.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

/// Appends `s` to `out` as a quoted JSON string with escaping.
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` as a JSON number token. Rust's shortest-round-trip
/// `Display` never produces exponents for the magnitudes we emit, and we
/// patch the two spots where `Display` output is not valid JSON: non-
/// finite values become `0`, and scientific notation (possible for very
/// large/small magnitudes, e.g. `1e300`) is rendered via `{:?}`-free
/// fallback formatting with a decimal expansion guard.
pub fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{}", v);
    if s.contains('e') || s.contains('E') {
        // Shortest-display chose scientific notation; emit a fixed
        // expansion instead (precision loss is acceptable here — the
        // snapshot gauges never reach these magnitudes).
        format!("{:.0}", v)
    } else {
        s
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: parse the low half if the
                            // high half announces one.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    if self.pos > self.bytes.len() {
                        return Err("truncated UTF-8".to_string());
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err("invalid UTF-8 in string".to_string()),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while let Some(b'0'..=b'9') = self.peek() {
            self.pos += 1;
            saw_digit = true;
        }
        if !saw_digit {
            return Err(format!("bad number at offset {}", start));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .to_string();
        Ok(JsonValue::Num(Number::from_raw(raw)))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = JsonValue::parse(r#"{"a": 1, "b": [true, null, "x\n\"y\""], "c": {"d": -2.5e3}}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_num().unwrap().as_u64(), Some(1));
        let arr = match v.get("b").unwrap() {
            JsonValue::Arr(a) => a,
            _ => panic!(),
        };
        assert_eq!(arr[0], JsonValue::Bool(true));
        assert_eq!(arr[1], JsonValue::Null);
        assert_eq!(arr[2].as_str(), Some("x\n\"y\""));
        let d = v.get("c").unwrap().get("d").unwrap().as_num().unwrap();
        assert_eq!(d.as_f64(), -2500.0);
        assert_eq!(d.as_u64(), None);
    }

    #[test]
    fn u64_counters_round_trip_exactly() {
        let big = u64::MAX;
        let v = JsonValue::parse(&format!("{{\"c\": {}}}", big)).unwrap();
        assert_eq!(v.get("c").unwrap().as_num().unwrap().as_u64(), Some(big));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("\"abc").is_err());
    }

    #[test]
    fn string_escaping_round_trips() {
        let mut out = String::new();
        write_json_str(&mut out, "a\"b\\c\nd\u{1}é");
        let v = JsonValue::parse(&out).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{1}é"));
    }
}
