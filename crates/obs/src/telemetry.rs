//! Per-core, per-class request-lifecycle histograms (the paper's
//! Fig. 5/6 decomposition).

use crate::registry::{Histogram, MetricsRegistry};

/// Which side of the size threshold a work item landed on — i.e. which
/// execution route it took, not a guess from its byte size.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum ReqClass {
    /// Executed inline on the core that drained it from the NIC.
    Small,
    /// Handed off through a software queue to a large core (or streamed
    /// as a multi-fragment ingest).
    Large,
}

/// Queue-wait and service-time histograms for one request class on one
/// core.
#[derive(Clone, Debug)]
pub struct ClassTelemetry {
    /// Nanoseconds between rx-dequeue (arrival stamp) and service start.
    pub queue_wait_ns: Histogram,
    /// Nanoseconds between service start and tx-handoff (reply handed
    /// to the transport, or fragment absorbed).
    pub service_ns: Histogram,
}

/// The four lifecycle histograms of one server core: queue wait and
/// service time, each split small/large.
///
/// Registered under stable dotted names:
/// `core.{i}.{small|large}.queue_wait_ns` and
/// `core.{i}.{small|large}.service_ns`. Recording is two relaxed
/// atomic adds — no locks, no allocation — so it stays on the
/// datagram hot path unconditionally.
#[derive(Clone, Debug)]
pub struct CoreTelemetry {
    /// Inline-executed (small-class) work.
    pub small: ClassTelemetry,
    /// Handed-off (large-class) work.
    pub large: ClassTelemetry,
}

impl CoreTelemetry {
    /// Creates (or re-attaches to) core `core`'s four histograms in
    /// `registry`.
    pub fn register(registry: &MetricsRegistry, core: usize) -> Self {
        let class = |name: &str| ClassTelemetry {
            queue_wait_ns: registry.histogram_ns(&format!("core.{core}.{name}.queue_wait_ns")),
            service_ns: registry.histogram_ns(&format!("core.{core}.{name}.service_ns")),
        };
        CoreTelemetry {
            small: class("small"),
            large: class("large"),
        }
    }

    /// Records one completed work item.
    #[inline]
    pub fn record(&self, class: ReqClass, queue_wait_ns: u64, service_ns: u64) {
        let c = match class {
            ReqClass::Small => &self.small,
            ReqClass::Large => &self.large,
        };
        c.queue_wait_ns.record(queue_wait_ns);
        c.service_ns.record(service_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_stable_names_and_records_by_class() {
        let reg = MetricsRegistry::new();
        let t = CoreTelemetry::register(&reg, 3);
        t.record(ReqClass::Small, 100, 500);
        t.record(ReqClass::Large, 2_000, 90_000);
        t.record(ReqClass::Large, 3_000, 80_000);
        let snap = reg.snapshot();
        assert_eq!(snap.hist("core.3.small.queue_wait_ns").unwrap().count, 1);
        assert_eq!(snap.hist("core.3.small.service_ns").unwrap().count, 1);
        assert_eq!(snap.hist("core.3.large.queue_wait_ns").unwrap().count, 2);
        let svc = snap.hist("core.3.large.service_ns").unwrap();
        assert_eq!(svc.count, 2);
        assert!(svc.p99 >= 80_000);
    }
}
