//! A cheap per-core monotonic nanosecond clock.

use std::time::Instant;

/// Per-core monotonic clock for request-lifecycle timestamps.
///
/// Each server core owns one `CoreClock` on its stack; reading it is a
/// single `Instant::now()` (a vDSO call on Linux, ~20 ns, no syscall)
/// converted to nanoseconds since a shared zero point. Clocks built
/// from the same zero ([`CoreClock::starting_at`], typically the
/// registry's [`crate::MetricsRegistry::start`]) produce timestamps
/// that are directly comparable across cores, which is what lets a
/// large core compute queue wait from an arrival stamp taken on a
/// small core.
#[derive(Clone, Copy, Debug)]
pub struct CoreClock {
    start: Instant,
}

impl CoreClock {
    /// A clock whose zero point is now.
    pub fn new() -> Self {
        CoreClock {
            start: Instant::now(),
        }
    }

    /// A clock sharing an existing zero point.
    pub fn starting_at(start: Instant) -> Self {
        CoreClock { start }
    }

    /// Nanoseconds since the zero point. Saturates at `u64::MAX`
    /// (~584 years), i.e. never in practice.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        let d = self.start.elapsed();
        d.as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(d.subsec_nanos() as u64)
    }
}

impl Default for CoreClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clocks_sharing_a_zero_are_comparable() {
        let base = Instant::now();
        let a = CoreClock::starting_at(base);
        let b = CoreClock::starting_at(base);
        let t0 = a.now_ns();
        let t1 = b.now_ns();
        // b read after a: must not run backwards relative to a.
        assert!(t1 >= t0);
    }
}
