//! Point-in-time registry snapshots and their JSON-line wire format.

use crate::json::{json_f64, write_json_str, JsonValue};
use crate::value::{HistSummary, MetricValue};
use std::fmt::Write as _;

/// A point-in-time copy of every metric in a registry.
///
/// Entries are sorted by metric name, so consecutive snapshot lines are
/// diffable and lookups are `O(log n)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Monotone sequence number (0 for the first snapshot a registry
    /// emits).
    pub seq: u64,
    /// Milliseconds since the registry was created (or, for simulator
    /// snapshots, simulated time).
    pub elapsed_ms: u64,
    /// `(name, value)` pairs, sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Builds a snapshot from unsorted entries.
    pub fn new(seq: u64, elapsed_ms: u64, mut entries: Vec<(String, MetricValue)>) -> Self {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot {
            seq,
            elapsed_ms,
            entries,
        }
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// The value of counter `name`, or `None` if absent or not a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.get(name).and_then(MetricValue::as_counter)
    }

    /// The value of gauge `name`, or `None` if absent or not a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(MetricValue::as_gauge)
    }

    /// The summary of histogram `name`, or `None` if absent or not a
    /// histogram.
    pub fn hist(&self, name: &str) -> Option<&HistSummary> {
        self.get(name).and_then(MetricValue::as_hist)
    }

    /// Serializes the snapshot as one JSON line (no trailing newline):
    ///
    /// ```json
    /// {"seq":3,"elapsed_ms":600,"metrics":{"engine.epochs":{"type":"counter","value":2}, ...}}
    /// ```
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64 + self.entries.len() * 48);
        let _ = write!(
            out,
            "{{\"seq\":{},\"elapsed_ms\":{},\"metrics\":",
            self.seq, self.elapsed_ms
        );
        self.write_metrics_json(&mut out);
        out.push('}');
        out
    }

    /// Serializes just the `metrics` object (`{"name":{...}, ...}`) —
    /// the exit reports embed this under their own top-level keys.
    pub fn metrics_json(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 48);
        self.write_metrics_json(&mut out);
        out
    }

    fn write_metrics_json(&self, out: &mut String) {
        out.push('{');
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(out, name);
            out.push(':');
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{{\"type\":\"counter\",\"value\":{}}}", v);
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{}}}", json_f64(*v));
                }
                MetricValue::Hist(h) => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"hist\",\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\
                         \"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                        h.count,
                        h.min,
                        h.max,
                        json_f64(h.mean),
                        h.p50,
                        h.p90,
                        h.p99,
                        h.p999
                    );
                }
            }
        }
        out.push('}');
    }

    /// Parses a snapshot previously produced by
    /// [`Snapshot::to_json_line`].
    pub fn parse_json_line(line: &str) -> Result<Snapshot, String> {
        let doc = JsonValue::parse(line.trim())?;
        let seq = doc
            .get("seq")
            .and_then(|v| v.as_num())
            .and_then(|n| n.as_u64())
            .ok_or("missing seq")?;
        let elapsed_ms = doc
            .get("elapsed_ms")
            .and_then(|v| v.as_num())
            .and_then(|n| n.as_u64())
            .ok_or("missing elapsed_ms")?;
        let metrics = doc
            .get("metrics")
            .and_then(|v| v.as_obj())
            .ok_or("missing metrics object")?;
        let mut entries = Vec::with_capacity(metrics.len());
        for (name, body) in metrics {
            entries.push((name.clone(), parse_metric(name, body)?));
        }
        Ok(Snapshot::new(seq, elapsed_ms, entries))
    }
}

fn parse_metric(name: &str, body: &JsonValue) -> Result<MetricValue, String> {
    let ty = body
        .get("type")
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("metric {name}: missing type"))?;
    let num = |key: &str| -> Result<u64, String> {
        body.get(key)
            .and_then(|v| v.as_num())
            .and_then(|n| n.as_u64())
            .ok_or_else(|| format!("metric {name}: bad field {key}"))
    };
    let fnum = |key: &str| -> Result<f64, String> {
        body.get(key)
            .and_then(|v| v.as_num())
            .map(|n| n.as_f64())
            .ok_or_else(|| format!("metric {name}: bad field {key}"))
    };
    match ty {
        "counter" => Ok(MetricValue::Counter(num("value")?)),
        "gauge" => Ok(MetricValue::Gauge(fnum("value")?)),
        "hist" => Ok(MetricValue::Hist(HistSummary {
            count: num("count")?,
            min: num("min")?,
            max: num("max")?,
            mean: fnum("mean")?,
            p50: num("p50")?,
            p90: num("p90")?,
            p99: num("p99")?,
            p999: num("p999")?,
        })),
        other => Err(format!("metric {name}: unknown type {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_mixed_snapshot() {
        let snap = Snapshot::new(
            7,
            1400,
            vec![
                ("z.counter".to_string(), MetricValue::Counter(u64::MAX)),
                ("a.gauge".to_string(), MetricValue::Gauge(0.123456789)),
                (
                    "m.hist".to_string(),
                    MetricValue::Hist(HistSummary {
                        count: 10,
                        min: 1,
                        max: 999,
                        mean: 42.5,
                        p50: 40,
                        p90: 90,
                        p99: 990,
                        p999: 999,
                    }),
                ),
            ],
        );
        let line = snap.to_json_line();
        let back = Snapshot::parse_json_line(&line).unwrap();
        assert_eq!(back, snap);
        // Entries come back sorted.
        assert_eq!(back.entries[0].0, "a.gauge");
        assert_eq!(back.counter("z.counter"), Some(u64::MAX));
        assert_eq!(back.gauge("a.gauge"), Some(0.123456789));
        assert_eq!(back.hist("m.hist").unwrap().p999, 999);
    }

    #[test]
    fn non_finite_gauges_serialize_as_zero() {
        let snap = Snapshot::new(0, 0, vec![("g".to_string(), MetricValue::Gauge(f64::NAN))]);
        let back = Snapshot::parse_json_line(&snap.to_json_line()).unwrap();
        assert_eq!(back.gauge("g"), Some(0.0));
    }
}
