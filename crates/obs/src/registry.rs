//! The process-wide metric registry.

use crate::snapshot::Snapshot;
use crate::value::{HistSummary, MetricValue};
use minos_stats::AtomicLogHistogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A named monotone counter handle. Cloning is cheap (`Arc` bump); all
/// clones update the same underlying atomic, so hot paths keep a clone
/// and never touch the registry again.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one (relaxed).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the value. For counters fed from an external monotone
    /// source (e.g. an epoch id) rather than incremented in place.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value (relaxed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named gauge handle storing an `f64` level (bit-cast into an atomic
/// word). Cloning is cheap; all clones share the value.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

/// A named histogram handle over a lock-free [`AtomicLogHistogram`].
/// Recording is one relaxed `fetch_add`; snapshotting takes a
/// non-destructive cumulative load, so successive snapshot counts never
/// decrease.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<AtomicLogHistogram>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.0.record(value);
    }

    /// Number of recorded observations (racy; monotone).
    pub fn count(&self) -> u64 {
        self.0.total()
    }

    /// Cumulative summary right now.
    pub fn summary(&self) -> HistSummary {
        HistSummary::from_hist(&self.0.load())
    }
}

/// A subsystem that contributes metrics at snapshot time instead of
/// holding registry handles — the adapter for crates that already keep
/// their own atomic stats structs (transport, store, mempool).
///
/// `collect` is called outside the hot path (snapshot cadence), so it
/// may read mutex-protected or aggregate state; it must not block for
/// long. Emit stable dotted names; see the README metric table.
pub trait Collector: Send + Sync {
    /// Appends `(name, value)` pairs for every metric this subsystem
    /// owns.
    fn collect(&self, out: &mut Vec<(String, MetricValue)>);
}

impl<C: Collector + ?Sized> Collector for Arc<C> {
    fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
        (**self).collect(out)
    }
}

/// The unified metric registry: owns named counters/gauges/histograms
/// and a list of [`Collector`]s, and renders everything into a
/// [`Snapshot`].
///
/// Handle creation and collector registration take a mutex (cold path,
/// startup only); recording through handles is lock-free. Creating the
/// same name twice returns the same underlying metric, so independent
/// subsystems can idempotently claim their names.
pub struct MetricsRegistry {
    start: Instant,
    seq: AtomicU64,
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    hists: BTreeMap<String, Histogram>,
    collectors: Vec<Box<dyn Collector>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn check_name(name: &str) {
    assert!(
        !name.is_empty()
            && name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'.' || b == b'_'),
        "metric names are dotted lowercase ASCII: {name:?}"
    );
}

impl MetricsRegistry {
    /// Creates an empty registry; `elapsed_ms` counts from now.
    pub fn new() -> Self {
        MetricsRegistry {
            start: Instant::now(),
            seq: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Returns (creating on first use) the counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not dotted lowercase ASCII
    /// (`[a-z0-9_.]+`).
    pub fn counter(&self, name: &str) -> Counter {
        check_name(name);
        let mut inner = self.inner.lock().unwrap();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns (creating on first use) the gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics on invalid names (see [`MetricsRegistry::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        check_name(name);
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Returns (creating on first use) a nanosecond-geometry histogram
    /// named `name` (64 sub-buckets per octave, values to 2^40).
    ///
    /// # Panics
    ///
    /// Panics on invalid names (see [`MetricsRegistry::counter`]).
    pub fn histogram_ns(&self, name: &str) -> Histogram {
        check_name(name);
        let mut inner = self.inner.lock().unwrap();
        inner
            .hists
            .entry(name.to_string())
            .or_insert_with(|| Histogram(Arc::new(AtomicLogHistogram::latency())))
            .clone()
    }

    /// Registers a snapshot-time collector.
    pub fn register_collector(&self, collector: Box<dyn Collector>) {
        self.inner.lock().unwrap().collectors.push(collector);
    }

    /// Milliseconds since the registry was created.
    pub fn elapsed_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// The registry's creation instant — the zero point hot-path clocks
    /// ([`crate::CoreClock`]) should share so timestamps are comparable.
    pub fn start(&self) -> Instant {
        self.start
    }

    /// Renders every owned metric and every collector's contribution
    /// into a sorted [`Snapshot`], bumping the sequence number.
    ///
    /// If a collector emits a name an owned metric also uses, the owned
    /// metric wins (first occurrence after sorting is kept).
    pub fn snapshot(&self) -> Snapshot {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let elapsed_ms = self.elapsed_ms();
        let inner = self.inner.lock().unwrap();
        let mut entries: Vec<(String, MetricValue)> =
            Vec::with_capacity(inner.counters.len() + inner.gauges.len() + inner.hists.len() + 16);
        for (name, c) in &inner.counters {
            entries.push((name.clone(), MetricValue::Counter(c.get())));
        }
        for (name, g) in &inner.gauges {
            entries.push((name.clone(), MetricValue::Gauge(g.get())));
        }
        for (name, h) in &inner.hists {
            entries.push((name.clone(), MetricValue::Hist(h.summary())));
        }
        for collector in &inner.collectors {
            collector.collect(&mut entries);
        }
        // Stable sort + first-wins dedup: owned metrics were pushed
        // first, so they shadow any collector echoing the same name.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.dedup_by(|b, a| a.0 == b.0);
        Snapshot {
            seq,
            elapsed_ms,
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.events");
        let b = reg.counter("x.events");
        a.add(2);
        b.inc();
        assert_eq!(reg.counter("x.events").get(), 3);

        let g = reg.gauge("x.level");
        g.set(1.5);
        assert_eq!(reg.gauge("x.level").get(), 1.5);

        let h = reg.histogram_ns("x.lat_ns");
        h.record(1000);
        assert_eq!(reg.histogram_ns("x.lat_ns").summary().count, 1);
    }

    #[test]
    #[should_panic(expected = "dotted lowercase")]
    fn rejects_bad_names() {
        MetricsRegistry::new().counter("Bad Name");
    }

    #[test]
    fn snapshot_merges_collectors_and_bumps_seq() {
        struct Fixed;
        impl Collector for Fixed {
            fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
                out.push(("ext.count".to_string(), MetricValue::Counter(9)));
                // Colliding name: the owned metric must win.
                out.push(("own.count".to_string(), MetricValue::Counter(999)));
            }
        }
        let reg = MetricsRegistry::new();
        reg.counter("own.count").add(5);
        reg.register_collector(Box::new(Fixed));
        let s0 = reg.snapshot();
        let s1 = reg.snapshot();
        assert_eq!(s0.seq, 0);
        assert_eq!(s1.seq, 1);
        assert_eq!(s1.counter("ext.count"), Some(9));
        assert_eq!(s1.counter("own.count"), Some(5));
    }
}
