//! Unified telemetry for the Minos reproduction.
//!
//! The paper's headline claim (Didona & Zwaenepoel, NSDI'19, Figures 5
//! and 6) is a *decomposition*: size-aware sharding keeps the **queue
//! wait** of small requests flat while large requests rise, because
//! large requests are executed on disjoint cores. Demonstrating that
//! requires the server itself to report time-in-queue vs. service time,
//! split by core and by request class — not just end-to-end client
//! percentiles.
//!
//! This crate provides the substrate:
//!
//! * [`MetricsRegistry`] — a process-wide registry of named metrics.
//!   Hot-path writers hold cloned [`Counter`] / [`Gauge`] / [`Histogram`]
//!   handles (one relaxed atomic op to record, no locks, no allocation);
//!   subsystems with existing stats structs register a [`Collector`]
//!   that is only invoked at snapshot time.
//! * [`CoreTelemetry`] — per-core, per-class (small/large) queue-wait
//!   and service-time histograms under stable dotted names
//!   (`core.3.small.queue_wait_ns`, …).
//! * [`CoreClock`] — a cheap monotonic nanosecond clock for lifecycle
//!   timestamps (rx-dequeue, dispatch-enqueue, service start/end).
//! * [`Snapshot`] — a point-in-time copy of every metric, serializable
//!   as a single JSON line ([`Snapshot::to_json_line`]) and parseable
//!   back ([`Snapshot::parse_json_line`]) without any serde dependency.
//!
//! Metric names are dotted ASCII paths (`transport.tx_copied_bytes`).
//! The full table of names lives in the repository README under
//! "Observability".

#![warn(missing_docs)]

pub mod clock;
pub mod json;
pub mod registry;
pub mod snapshot;
pub mod telemetry;
pub mod value;

pub use clock::CoreClock;
pub use json::{JsonValue, Number};
pub use registry::{Collector, Counter, Gauge, Histogram, MetricsRegistry};
pub use snapshot::Snapshot;
pub use telemetry::{ClassTelemetry, CoreTelemetry, ReqClass};
pub use value::{HistSummary, MetricValue};
