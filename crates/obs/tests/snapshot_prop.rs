//! Property test: a snapshot serialized as a JSON line parses back to
//! an identical snapshot — names escaped, `u64` counters exact (no f64
//! detour), gauge `f64`s bit-exact via shortest-round-trip formatting,
//! histogram summaries field-for-field.

use minos_obs::{HistSummary, MetricValue, Snapshot};
use proptest::prelude::*;

fn metric_name() -> impl Strategy<Value = String> {
    (
        prop::sample::select(vec![
            "core",
            "transport",
            "pool",
            "ingest",
            "engine",
            "client",
            "mempool",
            "store",
        ]),
        0u32..64,
        prop::sample::select(vec![
            "queue_wait_ns",
            "service_ns",
            "tx_copied_bytes",
            "hits",
            "outstanding",
            "put_copied_bytes",
        ]),
    )
        .prop_map(|(ns, idx, leaf)| format!("{ns}.{idx}.{leaf}"))
}

fn metric_value() -> impl Strategy<Value = MetricValue> {
    prop_oneof![
        any::<u64>().prop_map(MetricValue::Counter),
        (0.0f64..1e12).prop_map(MetricValue::Gauge),
        (-1e9f64..1e9).prop_map(MetricValue::Gauge),
        (
            (any::<u64>(), any::<u64>(), any::<u64>(), 0.0f64..1e15),
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        )
            .prop_map(|((count, min, max, mean), (p50, p90, p99, p999))| {
                MetricValue::Hist(HistSummary {
                    count,
                    min,
                    max,
                    mean,
                    p50,
                    p90,
                    p99,
                    p999,
                })
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Serialize → parse is the identity on snapshots.
    #[test]
    fn snapshot_round_trips(
        seq in any::<u64>(),
        elapsed_ms in any::<u64>(),
        entries in prop::collection::vec((metric_name(), metric_value()), 0..40),
    ) {
        let snap = Snapshot::new(seq, elapsed_ms, entries);
        let line = snap.to_json_line();
        prop_assert!(!line.contains('\n'), "snapshot must be one line");
        let back = match Snapshot::parse_json_line(&line) {
            Ok(s) => s,
            Err(e) => return Err(proptest::TestCaseError::fail(format!(
                "parse failed: {e} in {line}"
            ))),
        };
        prop_assert_eq!(back, snap);
    }

    /// Lookups read through the line format: every counter written is
    /// retrievable by name after a round trip.
    #[test]
    fn counters_survive_exactly(v in any::<u64>(), idx in 0u32..1000) {
        let name = format!("engine.{idx}.events");
        let snap = Snapshot::new(0, 0, vec![(name.clone(), MetricValue::Counter(v))]);
        let back = Snapshot::parse_json_line(&snap.to_json_line()).unwrap();
        prop_assert_eq!(back.counter(&name), Some(v));
    }
}
