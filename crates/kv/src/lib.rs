//! MICA-style key-value storage substrate (paper §4.2).
//!
//! Minos "employs the KV data structures used in MICA": keys are split in
//! partitions; each partition is a hash table whose entries are
//! cache-line-sized buckets; each bucket holds slots of a *tag* and a
//! pointer to the key-value item; overflow buckets are chained when a
//! bucket fills up. Reads use an optimistic scheme built on a 64-bit
//! per-bucket epoch; writes are serialized per key with CREW ownership or
//! a per-bucket spinlock (Minos' variant, because large-core handoff means
//! a PUT can execute on a core other than the key's master).
//!
//! Module map:
//!
//! * [`mod@keyhash`] — the keyhash and its split into partition /
//!   bucket / tag portions, exactly the three-way split MICA describes.
//! * [`mem`] — a DPDK-`rte_mempool`-style memory manager: size-class
//!   freelists of fixed blocks with a hard capacity, handing out
//!   reference-counted value buffers that return to the pool on drop.
//! * [`bucket`] — the cache-line bucket: packed tag+index slots, the
//!   64-bit epoch, and the overflow chain link.
//! * [`store`] — the partitioned table with the optimistic-GET /
//!   locked-PUT protocol and statistics.
//! * [`crew`] — Concurrent Read Exclusive Write core-ownership helpers.
//! * [`evict`] — capacity tiering policy: eviction schemes and dual
//!   watermarks over mempool occupancy.
//! * [`ttl`] — per-key time-to-live deadlines on the coarse store clock.

#![warn(missing_docs)]

pub mod bucket;
pub mod crew;
pub mod evict;
pub mod keyhash;
pub mod mem;
pub mod store;
pub mod ttl;

pub use evict::{CapacityConfig, EvictionPolicy, Watermarks};
pub use keyhash::{keyhash, KeyhashParts};
pub use mem::{Mempool, MempoolStats, PoolBytes, PoolBytesMut};
pub use store::{PutError, Store, StoreConfig, StoreStats};
pub use ttl::NO_EXPIRY;
