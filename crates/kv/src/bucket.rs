//! The cache-line bucket with its 64-bit epoch and overflow link.
//!
//! Paper §4.2: "Each partition is a hash table, each entry of which
//! points to a bucket, equal in size to a cache line. Each bucket
//! contains a number of slots, each of which contains a tag and a pointer
//! to a key-value item. ... Each bucket has a 64-bit epoch, which is
//! incremented when starting and ending a write on a key stored in that
//! bucket."
//!
//! Slot encoding (one `AtomicU64` per slot):
//!
//! ```text
//!   63          48 47           32 31                    0
//!  +--------------+---------------+-----------------------+
//!  |   tag (16)   |  unused (16)  |   item index + 1 (32) |
//!  +--------------+---------------+-----------------------+
//! ```
//!
//! A raw value of `0` is an empty slot; the item index is stored
//! offset by one so that index 0 is representable.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Slots per bucket: 7 slot words + epoch + link ≈ one cache line pair,
/// matching MICA's layout spirit (MICA uses 8-way buckets; we reserve one
/// word for the overflow link).
pub const SLOTS_PER_BUCKET: usize = 7;

/// Sentinel for "no overflow bucket chained".
pub const NO_OVERFLOW: u32 = u32::MAX;

/// A packed slot value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// The 15-bit non-zero tag from the keyhash.
    pub tag: u16,
    /// Index of the item in the partition's item table.
    pub item: u32,
}

impl Slot {
    /// Packs the slot into its atomic representation.
    #[inline]
    pub fn pack(self) -> u64 {
        debug_assert_ne!(self.tag, 0, "tag 0 is the empty marker");
        (u64::from(self.tag) << 48) | u64::from(self.item + 1)
    }

    /// Unpacks a raw slot word; `None` for an empty slot.
    #[inline]
    pub fn unpack(raw: u64) -> Option<Slot> {
        if raw == 0 {
            return None;
        }
        Some(Slot {
            tag: (raw >> 48) as u16,
            item: (raw as u32) - 1,
        })
    }
}

/// A bucket: epoch, slots, overflow link.
#[derive(Debug)]
pub struct Bucket {
    /// The optimistic-concurrency epoch: odd while a write is in
    /// progress, even otherwise.
    pub epoch: AtomicU64,
    slots: [AtomicU64; SLOTS_PER_BUCKET],
    /// Index of the chained overflow bucket in the partition's overflow
    /// pool, or [`NO_OVERFLOW`].
    pub next: AtomicU32,
}

impl Default for Bucket {
    fn default() -> Self {
        Self::new()
    }
}

impl Bucket {
    /// An empty bucket.
    pub fn new() -> Self {
        Bucket {
            epoch: AtomicU64::new(0),
            slots: Default::default(),
            next: AtomicU32::new(NO_OVERFLOW),
        }
    }

    /// Reads slot `i` (atomic, tear-free).
    #[inline]
    pub fn slot(&self, i: usize) -> Option<Slot> {
        Slot::unpack(self.slots[i].load(Ordering::Acquire))
    }

    /// Writes slot `i`. Must only be called by the bucket's writer while
    /// the epoch is odd.
    #[inline]
    pub fn set_slot(&self, i: usize, slot: Option<Slot>) {
        let raw = slot.map_or(0, Slot::pack);
        self.slots[i].store(raw, Ordering::Release);
    }

    /// Iterates over occupied slots as `(slot_index, Slot)`.
    pub fn occupied(&self) -> impl Iterator<Item = (usize, Slot)> + '_ {
        (0..SLOTS_PER_BUCKET).filter_map(|i| self.slot(i).map(|s| (i, s)))
    }

    /// Finds the first empty slot index, if any.
    pub fn first_empty(&self) -> Option<usize> {
        (0..SLOTS_PER_BUCKET).find(|&i| self.slot(i).is_none())
    }

    /// Begins a write: bumps the epoch to odd. Callers must hold the
    /// partition/bucket write lock.
    #[inline]
    pub fn write_begin(&self) {
        let e = self.epoch.fetch_add(1, Ordering::AcqRel);
        debug_assert_eq!(e % 2, 0, "nested write_begin");
    }

    /// Ends a write: bumps the epoch back to even.
    #[inline]
    pub fn write_end(&self) {
        let e = self.epoch.fetch_add(1, Ordering::AcqRel);
        debug_assert_eq!(e % 2, 1, "write_end without write_begin");
    }

    /// Snapshot of the epoch for optimistic readers.
    #[inline]
    pub fn epoch_snapshot(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for tag in [1u16, 2, 0x7FFF] {
            for item in [0u32, 1, 12345, u32::MAX - 1] {
                let s = Slot { tag, item };
                assert_eq!(Slot::unpack(s.pack()), Some(s));
            }
        }
        assert_eq!(Slot::unpack(0), None);
    }

    #[test]
    fn empty_bucket() {
        let b = Bucket::new();
        assert_eq!(b.occupied().count(), 0);
        assert_eq!(b.first_empty(), Some(0));
        assert_eq!(b.next.load(Ordering::Relaxed), NO_OVERFLOW);
    }

    #[test]
    fn slot_set_get() {
        let b = Bucket::new();
        let s = Slot { tag: 7, item: 99 };
        b.set_slot(3, Some(s));
        assert_eq!(b.slot(3), Some(s));
        assert_eq!(b.occupied().count(), 1);
        assert_eq!(b.first_empty(), Some(0));
        b.set_slot(3, None);
        assert_eq!(b.slot(3), None);
    }

    #[test]
    fn epoch_protocol() {
        let b = Bucket::new();
        assert_eq!(b.epoch_snapshot() % 2, 0);
        b.write_begin();
        assert_eq!(b.epoch_snapshot() % 2, 1, "odd during write");
        b.write_end();
        assert_eq!(b.epoch_snapshot(), 2, "even after write");
    }

    #[test]
    fn fills_all_slots() {
        let b = Bucket::new();
        for i in 0..SLOTS_PER_BUCKET {
            assert_eq!(b.first_empty(), Some(i));
            b.set_slot(
                i,
                Some(Slot {
                    tag: 1,
                    item: i as u32,
                }),
            );
        }
        assert_eq!(b.first_empty(), None);
        assert_eq!(b.occupied().count(), SLOTS_PER_BUCKET);
    }
}
