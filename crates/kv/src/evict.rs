//! Capacity tiering: CLOCK-style eviction under dual watermarks.
//!
//! The seed store answered [`crate::PutError::OutOfMemory`] the moment
//! the mempool filled — every churn-heavy scenario died at a cliff.
//! This module holds the *policy* side of the capacity subsystem: which
//! victim-selection scheme runs ([`EvictionPolicy`]), and where the
//! watermarks sit ([`CapacityConfig`] → [`Watermarks`]). The
//! *mechanism* — clock hands, victim removal, the per-core capacity
//! tick — lives in [`crate::store`], because it needs the partition
//! internals.
//!
//! ## Dual watermarks
//!
//! Eviction is driven by two thresholds over mempool occupancy plus an
//! absolute floor (the relative + absolute pattern of disk-pressure
//! eviction tasks):
//!
//! ```text
//!  0 ───────────────── low ──────── high ───────── capacity
//!                       ▲            ▲    ▲
//!                       │            │    └ min_headroom_bytes can pull
//!                       │            │      `high` further left: at least
//!                       │            │      that many bytes stay free
//!                       │            └ occupancy > high ⇒ start evicting
//!                       └ evict down to here, then stop (hysteresis:
//!                         the gap keeps eviction from thrashing at one
//!                         threshold)
//! ```
//!
//! After each eviction pass the store *re-measures* occupancy; a pass
//! that could not reclaim anything while still over the high watermark
//! increments an accounting-warning counter (`store.accounting_warnings`)
//! — the signal that occupancy and the item table disagree, gated to
//! zero in CI.
//!
//! ## Size-aware victim selection
//!
//! [`EvictionPolicy::Clock`] evicts the first unreferenced item the
//! hand finds — the classic second-chance scheme, size-blind.
//! [`EvictionPolicy::SizeAwareClock`] is the size-aware twist the paper
//! never explored: the hand collects a small window of unreferenced
//! candidates and evicts the one holding the *largest* block, so
//! reclaiming one large value replaces evicting hundreds of small ones.
//! Under a mixed-size churn the small working set stays resident and
//! the eviction work per reclaimed byte drops by orders of magnitude —
//! which is exactly what keeps the small-request tail flat while the
//! store runs pinned at the high watermark.

/// Which eviction scheme reclaims mempool capacity under pressure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// No eviction: a full mempool answers `OutOfMemory`, the seed
    /// behavior. TTL expiry still runs.
    #[default]
    None,
    /// Classic CLOCK (second chance): evict the first unreferenced item
    /// the hand finds, regardless of its size.
    Clock,
    /// CLOCK with size-aware victim selection: scan a window of
    /// unreferenced candidates and evict the one with the largest
    /// block, preferring one large reclaim over many small ones.
    SizeAwareClock,
}

impl EvictionPolicy {
    /// The canonical CLI/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::None => "none",
            EvictionPolicy::Clock => "clock",
            EvictionPolicy::SizeAwareClock => "size-aware-clock",
        }
    }

    /// Inverse of [`EvictionPolicy::name`].
    pub fn from_name(name: &str) -> Option<EvictionPolicy> {
        match name {
            "none" => Some(EvictionPolicy::None),
            "clock" => Some(EvictionPolicy::Clock),
            "size-aware-clock" => Some(EvictionPolicy::SizeAwareClock),
            _ => None,
        }
    }
}

/// Capacity-subsystem configuration, carried in
/// [`crate::StoreConfig::capacity`]. The defaults keep the subsystem
/// off ([`EvictionPolicy::None`]) so existing stores behave exactly as
/// before; churn deployments turn it on explicitly.
#[derive(Clone, Copy, Debug)]
pub struct CapacityConfig {
    /// Victim-selection scheme; `None` disables eviction and admission
    /// control entirely.
    pub policy: EvictionPolicy,
    /// Relative high watermark: occupancy above
    /// `high_fraction * capacity` triggers eviction.
    pub high_fraction: f64,
    /// Relative low watermark: eviction stops once occupancy is back
    /// under `low_fraction * capacity`.
    pub low_fraction: f64,
    /// Absolute floor: at least this many bytes stay free regardless of
    /// the fractions (pulls the high watermark down on small pools
    /// where a fraction alone leaves too little room for one large
    /// value).
    pub min_headroom_bytes: usize,
    /// Admission control: while occupancy sits at or above the high
    /// watermark, a PUT of at least this many bytes is rejected
    /// *before* reservation (and before any fragment is streamed)
    /// instead of discard-streamed to an `OutOfMemory` reply.
    pub admission_cutoff_bytes: usize,
    /// How many unreferenced candidates the size-aware hand collects
    /// per scan; the pass reclaims them largest-block-first and stops
    /// at the target, so the window's small items survive (ignored by
    /// plain CLOCK, which takes candidates in hand order). Wider
    /// windows find large blocks the hand would otherwise take many
    /// small victims to reach; the scan itself costs the same as plain
    /// CLOCK either way — each slot is passed once per sweep.
    pub candidate_window: usize,
    /// Item slots each TTL sweep scans per partition per capacity tick.
    pub sweep_budget: usize,
    /// Victim budget per capacity tick: bounds how long one tick can
    /// stall its core evicting, so reclaim is spread across ticks
    /// instead of draining `high − low` bytes in one latency spike.
    /// The reservation path is not budgeted — it evicts until the
    /// failed PUT fits.
    pub tick_victims: usize,
}

impl Default for CapacityConfig {
    fn default() -> Self {
        CapacityConfig {
            policy: EvictionPolicy::None,
            high_fraction: 0.90,
            low_fraction: 0.80,
            min_headroom_bytes: 0,
            admission_cutoff_bytes: 64 << 10,
            candidate_window: 32,
            sweep_budget: 128,
            tick_victims: 64,
        }
    }
}

/// The watermarks of a [`CapacityConfig`] resolved against a concrete
/// mempool capacity, in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Watermarks {
    /// Occupancy above this starts an eviction pass.
    pub high_bytes: usize,
    /// Eviction passes stop once occupancy is back at or under this.
    pub low_bytes: usize,
}

impl CapacityConfig {
    /// Resolves the relative fractions and the absolute floor against
    /// `capacity_bytes`. The floor caps the high watermark at
    /// `capacity − min_headroom_bytes`; the low watermark is clamped to
    /// never exceed the high one.
    pub fn watermarks(&self, capacity_bytes: usize) -> Watermarks {
        let frac = |f: f64| (capacity_bytes as f64 * f.clamp(0.0, 1.0)) as usize;
        let floor_cap = capacity_bytes.saturating_sub(self.min_headroom_bytes);
        let high_bytes = frac(self.high_fraction).min(floor_cap);
        let low_bytes = frac(self.low_fraction).min(high_bytes);
        Watermarks {
            high_bytes,
            low_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for p in [
            EvictionPolicy::None,
            EvictionPolicy::Clock,
            EvictionPolicy::SizeAwareClock,
        ] {
            assert_eq!(EvictionPolicy::from_name(p.name()), Some(p));
        }
        assert_eq!(EvictionPolicy::from_name("lru"), None);
    }

    #[test]
    fn watermarks_from_fractions() {
        let cfg = CapacityConfig::default();
        let wm = cfg.watermarks(1000);
        assert_eq!(wm.high_bytes, 900);
        assert_eq!(wm.low_bytes, 800);
    }

    #[test]
    fn absolute_floor_pulls_high_down() {
        let cfg = CapacityConfig {
            min_headroom_bytes: 300,
            ..CapacityConfig::default()
        };
        let wm = cfg.watermarks(1000);
        assert_eq!(wm.high_bytes, 700, "floor beats the 90% fraction");
        assert_eq!(wm.low_bytes, 700, "low clamped to high");
    }

    #[test]
    fn degenerate_fractions_stay_ordered() {
        let cfg = CapacityConfig {
            high_fraction: 0.5,
            low_fraction: 0.9,
            ..CapacityConfig::default()
        };
        let wm = cfg.watermarks(1000);
        assert!(wm.low_bytes <= wm.high_bytes);
    }
}
