//! Per-key time-to-live: deadlines on the store clock, lazy + active
//! expiry.
//!
//! The store keeps a **coarse monotonic clock** (`store.clock_ns`,
//! nanoseconds since store creation) advanced externally — by the
//! serving cores' existing per-round housekeeping tick, never by a
//! dedicated thread — and checked with one relaxed atomic load on the
//! hot path. A PUT carrying a TTL stamps its item with an absolute
//! deadline ([`expires_at`]); an item whose deadline has passed is dead
//! the moment the clock crosses it, whether or not anything has removed
//! it yet.
//!
//! Expiry is enforced twice, the Redis/Valkey split:
//!
//! * **lazily** — a GET that lands on an expired item reports a miss
//!   and removes the item on the spot (so an expired key is *never*
//!   served, regardless of sweep progress);
//! * **actively** — each capacity tick sweeps a budgeted window of item
//!   slots per partition behind a rotating cursor, reclaiming expired
//!   items that nothing reads anymore (so cold expired values cannot
//!   squat in the mempool forever).
//!
//! Deadlines are compared against the store clock, not wall time: tests
//! drive the clock explicitly and expiry becomes fully deterministic.

/// The deadline value meaning "never expires" — the default for every
/// PUT without a TTL.
pub const NO_EXPIRY: u64 = u64::MAX;

/// Converts a wire-level TTL (milliseconds, `0` = no TTL) into an
/// absolute store-clock deadline in nanoseconds. Saturates instead of
/// wrapping, so an absurd TTL degrades to "effectively never".
pub fn expires_at(now_ns: u64, ttl_ms: u64) -> u64 {
    if ttl_ms == 0 {
        return NO_EXPIRY;
    }
    match ttl_ms.checked_mul(1_000_000) {
        Some(ttl_ns) => now_ns.saturating_add(ttl_ns),
        None => NO_EXPIRY,
    }
}

/// Whether an item with deadline `deadline` is expired at store-clock
/// `now_ns`. `NO_EXPIRY` never expires (it saturates the clock range).
#[inline]
pub fn is_expired(deadline: u64, now_ns: u64) -> bool {
    deadline != NO_EXPIRY && deadline <= now_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_ttl_means_no_expiry() {
        assert_eq!(expires_at(123, 0), NO_EXPIRY);
        assert!(!is_expired(NO_EXPIRY, u64::MAX - 1));
    }

    #[test]
    fn deadline_is_absolute() {
        let d = expires_at(1_000, 2); // 2 ms TTL
        assert_eq!(d, 1_000 + 2_000_000);
        assert!(!is_expired(d, d - 1));
        assert!(is_expired(d, d));
        assert!(is_expired(d, d + 1));
    }

    #[test]
    fn overflow_saturates_to_never() {
        assert_eq!(expires_at(u64::MAX - 5, u64::MAX / 1_000), NO_EXPIRY);
        assert_eq!(expires_at(0, u64::MAX), NO_EXPIRY);
    }
}
