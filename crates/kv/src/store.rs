//! The partitioned store: optimistic GETs, locked PUTs, overflow chains.
//!
//! Protocol summary (paper §4.2):
//!
//! * **GET** (any core): read the bucket epoch; if odd, a write is in
//!   progress — wait. Once even, remember the epoch, scan the bucket
//!   chain for slots whose tag matches, fetch the candidate item, then
//!   re-read the epoch. If unchanged the read is consistent; otherwise
//!   retry. Item bytes are reference-counted pool buffers, so a
//!   concurrent replacement can never free memory under a reader.
//! * **PUT/DELETE**: serialized per bucket by a spinlock (Minos' scheme —
//!   under CREW ownership of partitions the lock is uncontended, and the
//!   store exposes [`Store::partition_of_key`] so engines can route
//!   writes to the master core). Writers bump the epoch to odd, mutate
//!   slots, bump back to even.

use crate::bucket::{Bucket, Slot, NO_OVERFLOW, SLOTS_PER_BUCKET};
use crate::keyhash::{keyhash, split};
use crate::mem::{Mempool, PoolBytes};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration for a [`Store`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Number of partitions; the paper assigns one master core per
    /// partition (CREW), so this is typically a multiple of the core
    /// count.
    pub partitions: usize,
    /// Buckets per partition (rounded up to a power of two).
    pub buckets_per_partition: usize,
    /// Overflow buckets per partition.
    pub overflow_per_partition: usize,
    /// Item capacity per partition.
    pub items_per_partition: usize,
    /// Value-memory budget for the whole store, in bytes.
    pub mempool_bytes: usize,
    /// Largest storable value, in bytes.
    pub max_value_bytes: usize,
}

impl StoreConfig {
    /// A configuration sized for roughly `n_items` items of mixed sizes,
    /// with `partitions` partitions.
    pub fn for_items(partitions: usize, n_items: usize, mempool_bytes: usize) -> Self {
        let per_part = n_items.div_ceil(partitions);
        // Aim for ~50 % bucket occupancy.
        let buckets = (per_part * 2 / SLOTS_PER_BUCKET).next_power_of_two().max(8);
        StoreConfig {
            partitions,
            buckets_per_partition: buckets,
            overflow_per_partition: (buckets / 4).max(8),
            items_per_partition: per_part * 2,
            mempool_bytes,
            max_value_bytes: 1 << 20, // 1 MiB, the paper's largest item
        }
    }
}

/// Why a PUT failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PutError {
    /// The value memory pool is exhausted (or the value exceeds the
    /// maximum block size).
    OutOfMemory,
    /// The bucket chain and overflow pool are full.
    TableFull,
}

/// Store-wide statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    /// Completed GETs that found the key.
    pub get_hits: u64,
    /// Completed GETs that missed.
    pub get_misses: u64,
    /// Optimistic-read retries (epoch changed during the read).
    pub get_retries: u64,
    /// Successful PUTs.
    pub puts: u64,
    /// Failed PUTs.
    pub put_failures: u64,
    /// Successful DELETEs.
    pub deletes: u64,
    /// Overflow buckets currently in use across all partitions.
    pub overflow_in_use: u64,
    /// Items currently stored.
    pub items: u64,
}

#[derive(Debug)]
struct ItemEntry {
    key: u64,
    value: PoolBytes,
}

#[derive(Debug)]
struct ItemTable {
    slots: Vec<Mutex<Option<ItemEntry>>>,
    freelist: Mutex<Vec<u32>>,
}

impl ItemTable {
    fn new(capacity: usize) -> Self {
        ItemTable {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            freelist: Mutex::new((0..capacity as u32).rev().collect()),
        }
    }

    fn alloc(&self, key: u64, value: PoolBytes) -> Option<u32> {
        let idx = self.freelist.lock().pop()?;
        *self.slots[idx as usize].lock() = Some(ItemEntry { key, value });
        Some(idx)
    }

    fn replace(&self, idx: u32, value: PoolBytes) {
        let mut slot = self.slots[idx as usize].lock();
        let entry = slot.as_mut().expect("replace of a live item");
        entry.value = value;
    }

    fn free(&self, idx: u32) {
        *self.slots[idx as usize].lock() = None;
        self.freelist.lock().push(idx);
    }

    /// Reads the item at `idx` if it currently holds `key`.
    fn read(&self, idx: u32, key: u64) -> Option<PoolBytes> {
        let slot = self.slots[idx as usize].lock();
        match &*slot {
            Some(e) if e.key == key => Some(e.value.clone()),
            _ => None,
        }
    }

    /// The key stored at `idx`, if any (writer-side use only).
    fn key_at(&self, idx: u32) -> Option<u64> {
        self.slots[idx as usize].lock().as_ref().map(|e| e.key)
    }
}

#[derive(Debug)]
struct Partition {
    buckets: Box<[Bucket]>,
    /// Per-primary-bucket writer locks. One lock guards a primary bucket
    /// and its entire overflow chain.
    locks: Box<[Mutex<()>]>,
    overflow: Box<[Bucket]>,
    overflow_freelist: Mutex<Vec<u32>>,
    items: ItemTable,
}

impl Partition {
    fn new(config: &StoreConfig) -> Self {
        let buckets = config.buckets_per_partition.next_power_of_two();
        Partition {
            buckets: (0..buckets).map(|_| Bucket::new()).collect(),
            locks: (0..buckets).map(|_| Mutex::new(())).collect(),
            overflow: (0..config.overflow_per_partition)
                .map(|_| Bucket::new())
                .collect(),
            overflow_freelist: Mutex::new(
                (0..config.overflow_per_partition as u32).rev().collect(),
            ),
            items: ItemTable::new(config.items_per_partition),
        }
    }

    /// Walks the bucket chain starting at primary `b`, yielding bucket
    /// references (primary first).
    fn chain(&self, b: usize) -> ChainIter<'_> {
        ChainIter {
            part: self,
            next: ChainPos::Primary(b),
        }
    }
}

enum ChainPos {
    Primary(usize),
    Overflow(u32),
    End,
}

struct ChainIter<'a> {
    part: &'a Partition,
    next: ChainPos,
}

impl<'a> Iterator for ChainIter<'a> {
    type Item = &'a Bucket;

    fn next(&mut self) -> Option<&'a Bucket> {
        let bucket = match self.next {
            ChainPos::Primary(b) => &self.part.buckets[b],
            ChainPos::Overflow(i) => &self.part.overflow[i as usize],
            ChainPos::End => return None,
        };
        let link = bucket.next.load(Ordering::Acquire);
        self.next = if link == NO_OVERFLOW {
            ChainPos::End
        } else {
            ChainPos::Overflow(link)
        };
        Some(bucket)
    }
}

/// The partitioned MICA-style store.
#[derive(Debug)]
pub struct Store {
    partitions: Vec<Partition>,
    mempool: Mempool,
    num_buckets: usize,
    get_hits: AtomicU64,
    get_misses: AtomicU64,
    get_retries: AtomicU64,
    puts: AtomicU64,
    put_failures: AtomicU64,
    deletes: AtomicU64,
    overflow_in_use: AtomicU64,
    items: AtomicU64,
}

impl Store {
    /// Builds an empty store.
    pub fn new(config: StoreConfig) -> Self {
        assert!(config.partitions > 0);
        let num_buckets = config.buckets_per_partition.next_power_of_two();
        Store {
            partitions: (0..config.partitions)
                .map(|_| Partition::new(&config))
                .collect(),
            mempool: Mempool::new(config.mempool_bytes, config.max_value_bytes),
            num_buckets,
            get_hits: AtomicU64::new(0),
            get_misses: AtomicU64::new(0),
            get_retries: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            put_failures: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            overflow_in_use: AtomicU64::new(0),
            items: AtomicU64::new(0),
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The partition `key` lives in — the CREW routing input.
    pub fn partition_of_key(&self, key: u64) -> usize {
        split(keyhash(key), self.partitions.len(), self.num_buckets).partition
    }

    /// Optimistic GET: returns the value if present.
    pub fn get(&self, key: u64) -> Option<PoolBytes> {
        let h = keyhash(key);
        let parts = split(h, self.partitions.len(), self.num_buckets);
        let partition = &self.partitions[parts.partition];
        let primary = &partition.buckets[parts.bucket];

        loop {
            let e1 = primary.epoch_snapshot();
            if e1 % 2 == 1 {
                // A write is in progress; spin until it completes.
                std::hint::spin_loop();
                continue;
            }
            let mut found: Option<PoolBytes> = None;
            'scan: for bucket in partition.chain(parts.bucket) {
                for (_, slot) in bucket.occupied() {
                    if slot.tag == parts.tag {
                        if let Some(v) = partition.items.read(slot.item, key) {
                            found = Some(v);
                            break 'scan;
                        }
                    }
                }
            }
            let e2 = primary.epoch_snapshot();
            if e1 == e2 {
                match found {
                    Some(v) => {
                        self.get_hits.fetch_add(1, Ordering::Relaxed);
                        return Some(v);
                    }
                    None => {
                        self.get_misses.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                }
            }
            self.get_retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The stored size of `key`'s value in bytes, if present. This is the
    /// lookup a small core performs to classify a GET as small or large
    /// (paper §3: "a small core looks up the item associated with the
    /// requested key; if its size is below the threshold ...").
    pub fn value_len(&self, key: u64) -> Option<usize> {
        self.get(key).map(|v| v.len())
    }

    /// PUT: stores `value` under `key`, replacing any existing value.
    ///
    /// Implemented as a one-shot two-phase PUT: [`Store::reserve`] the
    /// pool block, fill it with the single wire → pool copy, and commit
    /// it with [`Store::put_reserved`]. Streaming callers (the large-PUT
    /// ingest path) use the phases directly so each network fragment is
    /// copied straight into its final offset of the block.
    pub fn put(&self, key: u64, value: &[u8]) -> Result<(), PutError> {
        // Copy the value into pool memory *before* taking the bucket
        // lock: the critical section stays O(1) regardless of item size.
        let Some(mut reservation) = self.reserve(value.len()) else {
            return Err(PutError::OutOfMemory);
        };
        reservation.write_at(0, value);
        self.put_reserved(key, reservation.seal())
    }

    /// Phase one of a two-phase PUT: reserves a writable mempool block
    /// for a value of `len` bytes (see [`Mempool::reserve`]). A failed
    /// reservation is counted as a PUT failure, mirroring [`Store::put`]
    /// under memory pressure. Commit the filled reservation with
    /// [`Store::put_reserved`]; dropping it instead releases the block.
    pub fn reserve(&self, len: usize) -> Option<crate::mem::PoolBytesMut> {
        let reservation = self.mempool.reserve(len);
        if reservation.is_none() {
            self.put_failures.fetch_add(1, Ordering::Relaxed);
        }
        reservation
    }

    /// Phase two of a two-phase PUT: commits an already-pooled value
    /// under `key`, replacing any existing value. The critical section
    /// is the same O(1) bucket-locked splice as [`Store::put`] —
    /// regardless of how the value bytes got into the pool.
    pub fn put_reserved(&self, key: u64, pooled: PoolBytes) -> Result<(), PutError> {
        let h = keyhash(key);
        let parts = split(h, self.partitions.len(), self.num_buckets);
        let partition = &self.partitions[parts.partition];
        let primary = &partition.buckets[parts.bucket];
        let _guard = partition.locks[parts.bucket].lock();

        // Find an existing slot for this key (outside the epoch-odd
        // window: we hold the lock, so slots cannot change under us).
        let existing = self.find_slot_locked(partition, parts.bucket, parts.tag, key);
        match existing {
            Some((_, slot)) => {
                primary.write_begin();
                partition.items.replace(slot.item, pooled);
                primary.write_end();
            }
            None => {
                // Need a free slot somewhere in the chain.
                let Some(item_idx) = partition.items.alloc(key, pooled) else {
                    self.put_failures.fetch_add(1, Ordering::Relaxed);
                    return Err(PutError::TableFull);
                };
                match self.claim_empty_slot(partition, parts.bucket) {
                    Some(target) => {
                        primary.write_begin();
                        target.0.set_slot(
                            target.1,
                            Some(Slot {
                                tag: parts.tag,
                                item: item_idx,
                            }),
                        );
                        primary.write_end();
                        self.items.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        partition.items.free(item_idx);
                        self.put_failures.fetch_add(1, Ordering::Relaxed);
                        return Err(PutError::TableFull);
                    }
                }
            }
        }
        self.puts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// DELETE: removes `key`, returning whether it was present.
    pub fn delete(&self, key: u64) -> bool {
        let h = keyhash(key);
        let parts = split(h, self.partitions.len(), self.num_buckets);
        let partition = &self.partitions[parts.partition];
        let primary = &partition.buckets[parts.bucket];
        let _guard = partition.locks[parts.bucket].lock();

        match self.find_slot_locked(partition, parts.bucket, parts.tag, key) {
            Some((bucket_ref, slot)) => {
                primary.write_begin();
                bucket_ref.0.set_slot(bucket_ref.1, None);
                primary.write_end();
                partition.items.free(slot.item);
                self.items.fetch_sub(1, Ordering::Relaxed);
                self.deletes.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Scans the chain under the writer lock for the slot holding `key`.
    /// Returns the bucket + slot index and the decoded slot.
    #[allow(clippy::type_complexity)]
    fn find_slot_locked<'p>(
        &self,
        partition: &'p Partition,
        primary: usize,
        tag: u16,
        key: u64,
    ) -> Option<((&'p Bucket, usize), Slot)> {
        for bucket in partition.chain(primary) {
            for (i, slot) in bucket.occupied() {
                if slot.tag == tag && partition.items.key_at(slot.item) == Some(key) {
                    return Some(((bucket, i), slot));
                }
            }
        }
        None
    }

    /// Finds (or creates, by chaining an overflow bucket) an empty slot
    /// in the chain of `primary`. Caller holds the writer lock.
    fn claim_empty_slot<'p>(
        &self,
        partition: &'p Partition,
        primary: usize,
    ) -> Option<(&'p Bucket, usize)> {
        let mut last: &Bucket = &partition.buckets[primary];
        for bucket in partition.chain(primary) {
            if let Some(i) = bucket.first_empty() {
                return Some((bucket, i));
            }
            last = bucket;
        }
        // Chain full: dynamically assign an overflow bucket (§4.2).
        let idx = partition.overflow_freelist.lock().pop()?;
        self.overflow_in_use.fetch_add(1, Ordering::Relaxed);
        let fresh = &partition.overflow[idx as usize];
        debug_assert_eq!(fresh.occupied().count(), 0);
        last.next.store(idx, Ordering::Release);
        Some((fresh, 0))
    }

    /// Access to the value memory pool (capacity/usage reporting).
    pub fn mempool(&self) -> &Mempool {
        &self.mempool
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            get_hits: self.get_hits.load(Ordering::Relaxed),
            get_misses: self.get_misses.load(Ordering::Relaxed),
            get_retries: self.get_retries.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            put_failures: self.put_failures.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            overflow_in_use: self.overflow_in_use.load(Ordering::Relaxed),
            items: self.items.load(Ordering::Relaxed),
        }
    }

    /// Number of items currently stored.
    pub fn len(&self) -> u64 {
        self.items.load(Ordering::Relaxed)
    }

    /// True if the store holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The store contributes its own and its mempool's metrics under the
/// canonical `store.*` / `mempool.*` names, so a server registers
/// `Arc<Store>` directly as a snapshot-time collector.
impl minos_obs::Collector for Store {
    fn collect(&self, out: &mut Vec<(String, minos_obs::MetricValue)>) {
        use minos_obs::MetricValue::{Counter, Gauge};
        let s = self.stats();
        out.push(("store.get_hits".to_string(), Counter(s.get_hits)));
        out.push(("store.get_misses".to_string(), Counter(s.get_misses)));
        out.push(("store.get_retries".to_string(), Counter(s.get_retries)));
        out.push(("store.puts".to_string(), Counter(s.puts)));
        out.push(("store.put_failures".to_string(), Counter(s.put_failures)));
        out.push(("store.deletes".to_string(), Counter(s.deletes)));
        out.push((
            "store.overflow_in_use".to_string(),
            Gauge(s.overflow_in_use as f64),
        ));
        out.push(("store.items".to_string(), Gauge(s.items as f64)));
        let m = self.mempool.stats();
        out.push(("mempool.allocs".to_string(), Counter(m.allocs)));
        out.push(("mempool.reuses".to_string(), Counter(m.reuses)));
        out.push(("mempool.failures".to_string(), Counter(m.failures)));
        out.push(("mempool.frees".to_string(), Counter(m.frees)));
        out.push(("mempool.copied_bytes".to_string(), Counter(m.copied_bytes)));
        out.push(("mempool.used_bytes".to_string(), Gauge(m.used_bytes as f64)));
        out.push((
            "mempool.capacity_bytes".to_string(),
            Gauge(m.capacity_bytes as f64),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store() -> Store {
        // 4 partitions x (16 buckets x 7 slots + 32 overflow x 7 slots):
        // enough for the 1000-key test below (~250 keys per partition)
        // while still forcing overflow chains.
        Store::new(StoreConfig {
            partitions: 4,
            buckets_per_partition: 16,
            overflow_per_partition: 32,
            items_per_partition: 512,
            mempool_bytes: 16 << 20,
            max_value_bytes: 1 << 20,
        })
    }

    #[test]
    fn get_missing_returns_none() {
        let s = small_store();
        assert_eq!(s.get(42), None);
        assert_eq!(s.stats().get_misses, 1);
    }

    #[test]
    fn put_get_roundtrip() {
        let s = small_store();
        s.put(42, b"value-42").unwrap();
        assert_eq!(&s.get(42).unwrap()[..], b"value-42");
        assert_eq!(s.len(), 1);
        assert_eq!(s.value_len(42), Some(8));
    }

    #[test]
    fn put_replaces_value() {
        let s = small_store();
        s.put(1, b"old").unwrap();
        s.put(1, b"the new, longer value").unwrap();
        assert_eq!(&s.get(1).unwrap()[..], b"the new, longer value");
        assert_eq!(s.len(), 1, "replacement does not grow the store");
    }

    #[test]
    fn two_phase_put_matches_one_shot() {
        let s = small_store();
        // Fill a reservation in out-of-order chunks, as streaming
        // reassembly does, then commit.
        let value: Vec<u8> = (0..10_000).map(|i| (i % 247) as u8).collect();
        let mut r = s.reserve(value.len()).unwrap();
        r.write_at(4_000, &value[4_000..]);
        r.write_at(0, &value[..4_000]);
        s.put_reserved(9, r.seal()).unwrap();
        assert_eq!(&s.get(9).unwrap()[..], &value[..]);
        assert_eq!(s.stats().puts, 1);
        assert_eq!(
            s.mempool().stats().copied_bytes,
            value.len() as u64,
            "exactly one copy of the value, end to end"
        );
        // Replacement through the same path.
        let mut r = s.reserve(3).unwrap();
        r.write_at(0, b"new");
        s.put_reserved(9, r.seal()).unwrap();
        assert_eq!(&s.get(9).unwrap()[..], b"new");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn abandoned_reservation_releases_memory_and_counts_failure() {
        let s = Store::new(StoreConfig {
            partitions: 1,
            buckets_per_partition: 16,
            overflow_per_partition: 4,
            items_per_partition: 64,
            mempool_bytes: 4096,
            max_value_bytes: 1 << 16,
        });
        let r = s.reserve(4096).unwrap();
        assert!(s.reserve(1).is_none(), "pool fully reserved");
        assert_eq!(s.stats().put_failures, 1);
        drop(r);
        assert_eq!(
            s.mempool().used_bytes(),
            0,
            "abandoned ingest leaks nothing"
        );
        assert!(s.reserve(1).is_some());
    }

    #[test]
    fn delete_removes() {
        let s = small_store();
        s.put(7, b"x").unwrap();
        assert!(s.delete(7));
        assert!(!s.delete(7));
        assert_eq!(s.get(7), None);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn delete_frees_pool_memory() {
        let s = small_store();
        s.put(7, &[0u8; 4096]).unwrap();
        let used = s.mempool().used_bytes();
        assert!(used >= 4096);
        assert!(s.delete(7));
        assert_eq!(s.mempool().used_bytes(), 0);
    }

    #[test]
    fn many_keys_roundtrip_through_overflow() {
        // 4 partitions * 16 buckets * 7 slots = 448 primary slots; 1000
        // keys force overflow chaining.
        let s = small_store();
        for k in 0..1000u64 {
            s.put(k, format!("value-{k}").as_bytes()).unwrap();
        }
        assert!(s.stats().overflow_in_use > 0, "overflow exercised");
        for k in 0..1000u64 {
            assert_eq!(
                &s.get(k).unwrap()[..],
                format!("value-{k}").as_bytes(),
                "key {k}"
            );
        }
        assert_eq!(s.len(), 1000);
        // And delete them all again.
        for k in 0..1000u64 {
            assert!(s.delete(k), "key {k}");
        }
        assert_eq!(s.len(), 0);
        assert_eq!(s.mempool().used_bytes(), 0);
    }

    #[test]
    fn table_full_reported() {
        let s = Store::new(StoreConfig {
            partitions: 1,
            buckets_per_partition: 1,
            overflow_per_partition: 0,
            items_per_partition: 100,
            mempool_bytes: 1 << 20,
            max_value_bytes: 1 << 16,
        });
        let mut stored = 0;
        let mut failed = false;
        for k in 0..100u64 {
            match s.put(k, b"v") {
                Ok(()) => stored += 1,
                Err(PutError::TableFull) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(failed, "tiny table must fill up");
        assert_eq!(stored as u64, s.len());
    }

    #[test]
    fn out_of_memory_reported() {
        let s = Store::new(StoreConfig {
            partitions: 1,
            buckets_per_partition: 16,
            overflow_per_partition: 4,
            items_per_partition: 64,
            mempool_bytes: 1024,
            max_value_bytes: 1 << 16,
        });
        assert_eq!(s.put(1, &[0u8; 2048]), Err(PutError::OutOfMemory));
        assert_eq!(s.stats().put_failures, 1);
    }

    #[test]
    fn large_values() {
        let s = small_store();
        let big = vec![0xAB; 1 << 20];
        s.put(5, &big).unwrap();
        let got = s.get(5).unwrap();
        assert_eq!(got.len(), big.len());
        assert_eq!(&got[..], &big[..]);
    }

    #[test]
    fn reader_holds_value_across_replacement() {
        let s = small_store();
        s.put(1, b"first").unwrap();
        let held = s.get(1).unwrap();
        s.put(1, b"second").unwrap();
        // The old buffer is still alive and unchanged for the reader.
        assert_eq!(&held[..], b"first");
        assert_eq!(&s.get(1).unwrap()[..], b"second");
    }

    #[test]
    fn concurrent_readers_writers_consistency() {
        use std::sync::Arc;
        // Writers store self-describing values; readers must never see a
        // value inconsistent with its key (torn or mismatched).
        let s = Arc::new(small_store());
        let keys = 64u64;
        for k in 0..keys {
            s.put(k, &pattern(k, 0)).unwrap();
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let writers: Vec<_> = (0..2)
            .map(|w| {
                let s = Arc::clone(&s);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut round = 1u64;
                    while !stop.load(Ordering::Relaxed) {
                        for k in (w..keys).step_by(2) {
                            s.put(k, &pattern(k, round)).unwrap();
                        }
                        round += 1;
                    }
                })
            })
            .collect();

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&s);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut checked = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for k in 0..keys {
                            if let Some(v) = s.get(k) {
                                assert_valid_pattern(k, &v);
                                checked += 1;
                            }
                        }
                    }
                    checked
                })
            })
            .collect();

        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0, "readers made progress");
    }

    fn pattern(key: u64, round: u64) -> Vec<u8> {
        let mut v = Vec::with_capacity(64);
        v.extend_from_slice(&key.to_le_bytes());
        v.extend_from_slice(&round.to_le_bytes());
        let check = key.wrapping_mul(31).wrapping_add(round);
        v.extend_from_slice(&check.to_le_bytes());
        v
    }

    fn assert_valid_pattern(key: u64, v: &[u8]) {
        assert_eq!(v.len(), 24);
        let k = u64::from_le_bytes(v[0..8].try_into().unwrap());
        let round = u64::from_le_bytes(v[8..16].try_into().unwrap());
        let check = u64::from_le_bytes(v[16..24].try_into().unwrap());
        assert_eq!(k, key, "value belongs to a different key");
        assert_eq!(
            check,
            key.wrapping_mul(31).wrapping_add(round),
            "torn value"
        );
    }
}
