//! The partitioned store: optimistic GETs, locked PUTs, overflow chains.
//!
//! Protocol summary (paper §4.2):
//!
//! * **GET** (any core): read the bucket epoch; if odd, a write is in
//!   progress — wait. Once even, remember the epoch, scan the bucket
//!   chain for slots whose tag matches, fetch the candidate item, then
//!   re-read the epoch. If unchanged the read is consistent; otherwise
//!   retry. Item bytes are reference-counted pool buffers, so a
//!   concurrent replacement can never free memory under a reader.
//! * **PUT/DELETE**: serialized per bucket by a spinlock (Minos' scheme —
//!   under CREW ownership of partitions the lock is uncontended, and the
//!   store exposes [`Store::partition_of_key`] so engines can route
//!   writes to the master core). Writers bump the epoch to odd, mutate
//!   slots, bump back to even.

use crate::bucket::{Bucket, Slot, NO_OVERFLOW, SLOTS_PER_BUCKET};
use crate::evict::{CapacityConfig, EvictionPolicy, Watermarks};
use crate::keyhash::{keyhash, split};
use crate::mem::{Mempool, PoolBytes};
use crate::ttl::{expires_at, is_expired, NO_EXPIRY};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Configuration for a [`Store`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Number of partitions; the paper assigns one master core per
    /// partition (CREW), so this is typically a multiple of the core
    /// count.
    pub partitions: usize,
    /// Buckets per partition (rounded up to a power of two).
    pub buckets_per_partition: usize,
    /// Overflow buckets per partition.
    pub overflow_per_partition: usize,
    /// Item capacity per partition.
    pub items_per_partition: usize,
    /// Value-memory budget for the whole store, in bytes.
    pub mempool_bytes: usize,
    /// Largest storable value, in bytes.
    pub max_value_bytes: usize,
    /// Capacity tiering: eviction policy, watermarks, TTL sweep budget.
    /// Defaults to eviction off (the seed behavior).
    pub capacity: CapacityConfig,
}

impl StoreConfig {
    /// A configuration sized for roughly `n_items` items of mixed sizes,
    /// with `partitions` partitions.
    pub fn for_items(partitions: usize, n_items: usize, mempool_bytes: usize) -> Self {
        let per_part = n_items.div_ceil(partitions);
        // Aim for ~50 % bucket occupancy.
        let buckets = (per_part * 2 / SLOTS_PER_BUCKET).next_power_of_two().max(8);
        StoreConfig {
            partitions,
            buckets_per_partition: buckets,
            overflow_per_partition: (buckets / 4).max(8),
            items_per_partition: per_part * 2,
            mempool_bytes,
            max_value_bytes: 1 << 20, // 1 MiB, the paper's largest item
            capacity: CapacityConfig::default(),
        }
    }
}

/// Why a PUT failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PutError {
    /// The value memory pool is exhausted (or the value exceeds the
    /// maximum block size).
    OutOfMemory,
    /// The bucket chain and overflow pool are full.
    TableFull,
}

/// Store-wide statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    /// Completed GETs that found the key.
    pub get_hits: u64,
    /// Completed GETs that missed.
    pub get_misses: u64,
    /// Optimistic-read retries (epoch changed during the read).
    pub get_retries: u64,
    /// Successful PUTs.
    pub puts: u64,
    /// Failed PUTs.
    pub put_failures: u64,
    /// Successful DELETEs.
    pub deletes: u64,
    /// Overflow buckets currently in use across all partitions.
    pub overflow_in_use: u64,
    /// Items currently stored.
    pub items: u64,
    /// Items removed by capacity eviction.
    pub evictions: u64,
    /// Mempool bytes (class-rounded) reclaimed by capacity eviction.
    pub evicted_bytes: u64,
    /// Items removed because their TTL deadline passed (lazily on GET
    /// or by the active sweep).
    pub expired_keys: u64,
    /// PUTs rejected by admission control before reservation.
    pub admission_rejects: u64,
    /// Eviction passes that could reclaim nothing while occupancy was
    /// still over the high watermark — the accounting cross-check
    /// alarm, expected to stay 0.
    pub accounting_warnings: u64,
}

#[derive(Debug)]
struct ItemEntry {
    key: u64,
    value: PoolBytes,
    /// Store-clock deadline in ns; [`NO_EXPIRY`] when the key never
    /// expires.
    expires_at: u64,
    /// CLOCK reference bit: set on every GET hit and on replacement,
    /// cleared by the eviction hand's first pass over the slot. New
    /// items start *unreferenced* (scan resistance): a churned key that
    /// is written once and never read again holds no second chance, so
    /// one-touch traffic cannot flush the actually-hot set.
    referenced: bool,
}

/// What a keyed item-table read found.
enum ItemRead {
    /// Live value (the reference bit was set).
    Hit(PoolBytes),
    /// The key is present but its TTL deadline has passed: report a
    /// miss and let the caller reclaim it lazily.
    Expired,
    /// Slot empty or holding a different key.
    Absent,
}

/// Why the capacity subsystem is removing an item (selects the counter
/// it feeds and whether removal re-validates the TTL deadline).
#[derive(Clone, Copy, Debug)]
enum RemoveCause {
    /// Watermark eviction picked it as a victim.
    Evict,
    /// Its TTL deadline passed (lazy GET-side reclaim or active sweep);
    /// `now` is the store-clock reading that condemned it, re-checked
    /// under the write lock.
    Expire { now: u64 },
}

#[derive(Debug)]
struct ItemTable {
    slots: Vec<Mutex<Option<ItemEntry>>>,
    freelist: Mutex<Vec<u32>>,
}

impl ItemTable {
    fn new(capacity: usize) -> Self {
        ItemTable {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            freelist: Mutex::new((0..capacity as u32).rev().collect()),
        }
    }

    fn alloc(&self, key: u64, value: PoolBytes, expires_at: u64) -> Option<u32> {
        let idx = self.freelist.lock().pop()?;
        *self.slots[idx as usize].lock() = Some(ItemEntry {
            key,
            value,
            expires_at,
            referenced: false,
        });
        Some(idx)
    }

    fn replace(&self, idx: u32, value: PoolBytes, expires_at: u64) {
        let mut slot = self.slots[idx as usize].lock();
        let entry = slot.as_mut().expect("replace of a live item");
        entry.value = value;
        entry.expires_at = expires_at;
        entry.referenced = true;
    }

    /// Frees the slot, returning the entry it held (the value's pool
    /// charge releases when the returned entry drops).
    fn free(&self, idx: u32) -> Option<ItemEntry> {
        let entry = self.slots[idx as usize].lock().take();
        self.freelist.lock().push(idx);
        entry
    }

    /// Reads the item at `idx` if it currently holds `key`, checking
    /// its TTL deadline against the store clock and setting the CLOCK
    /// reference bit on a hit.
    fn read(&self, idx: u32, key: u64, now_ns: u64) -> ItemRead {
        let mut slot = self.slots[idx as usize].lock();
        match &mut *slot {
            Some(e) if e.key == key => {
                if is_expired(e.expires_at, now_ns) {
                    ItemRead::Expired
                } else {
                    e.referenced = true;
                    ItemRead::Hit(e.value.clone())
                }
            }
            _ => ItemRead::Absent,
        }
    }

    /// The key stored at `idx`, if any (writer-side use only).
    fn key_at(&self, idx: u32) -> Option<u64> {
        self.slots[idx as usize].lock().as_ref().map(|e| e.key)
    }

    /// The TTL deadline of the item at `idx`, if live (writer-side).
    fn expires_at(&self, idx: u32) -> Option<u64> {
        self.slots[idx as usize]
            .lock()
            .as_ref()
            .map(|e| e.expires_at)
    }
}

#[derive(Debug)]
struct Partition {
    buckets: Box<[Bucket]>,
    /// Per-primary-bucket writer locks. One lock guards a primary bucket
    /// and its entire overflow chain.
    locks: Box<[Mutex<()>]>,
    overflow: Box<[Bucket]>,
    overflow_freelist: Mutex<Vec<u32>>,
    items: ItemTable,
    /// The CLOCK eviction hand: next item slot the victim scan visits.
    clock_hand: AtomicUsize,
    /// The active TTL sweep's rotating cursor over item slots.
    sweep_cursor: AtomicUsize,
}

impl Partition {
    fn new(config: &StoreConfig) -> Self {
        let buckets = config.buckets_per_partition.next_power_of_two();
        Partition {
            buckets: (0..buckets).map(|_| Bucket::new()).collect(),
            locks: (0..buckets).map(|_| Mutex::new(())).collect(),
            overflow: (0..config.overflow_per_partition)
                .map(|_| Bucket::new())
                .collect(),
            overflow_freelist: Mutex::new(
                (0..config.overflow_per_partition as u32).rev().collect(),
            ),
            items: ItemTable::new(config.items_per_partition),
            clock_hand: AtomicUsize::new(0),
            sweep_cursor: AtomicUsize::new(0),
        }
    }

    /// Walks the bucket chain starting at primary `b`, yielding bucket
    /// references (primary first).
    fn chain(&self, b: usize) -> ChainIter<'_> {
        ChainIter {
            part: self,
            next: ChainPos::Primary(b),
        }
    }
}

enum ChainPos {
    Primary(usize),
    Overflow(u32),
    End,
}

struct ChainIter<'a> {
    part: &'a Partition,
    next: ChainPos,
}

impl<'a> Iterator for ChainIter<'a> {
    type Item = &'a Bucket;

    fn next(&mut self) -> Option<&'a Bucket> {
        let bucket = match self.next {
            ChainPos::Primary(b) => &self.part.buckets[b],
            ChainPos::Overflow(i) => &self.part.overflow[i as usize],
            ChainPos::End => return None,
        };
        let link = bucket.next.load(Ordering::Acquire);
        self.next = if link == NO_OVERFLOW {
            ChainPos::End
        } else {
            ChainPos::Overflow(link)
        };
        Some(bucket)
    }
}

/// The partitioned MICA-style store.
#[derive(Debug)]
pub struct Store {
    partitions: Vec<Partition>,
    mempool: Mempool,
    num_buckets: usize,
    capacity: CapacityConfig,
    watermarks: Watermarks,
    /// Coarse monotonic store clock, ns. Advanced by
    /// [`Store::capacity_tick`] (or [`Store::set_clock_ns`] directly in
    /// tests); read with one relaxed load on the GET path.
    clock_ns: AtomicU64,
    /// Latches true on the first PUT carrying a TTL, so TTL-free stores
    /// skip the active sweep entirely.
    ttl_used: AtomicBool,
    /// Rotates the partition an eviction pass starts from, spreading
    /// reclaim across partitions instead of hammering partition 0.
    evict_rotor: AtomicUsize,
    get_hits: AtomicU64,
    get_misses: AtomicU64,
    get_retries: AtomicU64,
    puts: AtomicU64,
    put_failures: AtomicU64,
    deletes: AtomicU64,
    overflow_in_use: AtomicU64,
    items: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    expired_keys: AtomicU64,
    admission_rejects: AtomicU64,
    accounting_warnings: AtomicU64,
}

impl Store {
    /// Builds an empty store.
    pub fn new(config: StoreConfig) -> Self {
        assert!(config.partitions > 0);
        let num_buckets = config.buckets_per_partition.next_power_of_two();
        let watermarks = config.capacity.watermarks(config.mempool_bytes);
        Store {
            partitions: (0..config.partitions)
                .map(|_| Partition::new(&config))
                .collect(),
            mempool: Mempool::new(config.mempool_bytes, config.max_value_bytes),
            num_buckets,
            capacity: config.capacity,
            watermarks,
            clock_ns: AtomicU64::new(0),
            ttl_used: AtomicBool::new(false),
            evict_rotor: AtomicUsize::new(0),
            get_hits: AtomicU64::new(0),
            get_misses: AtomicU64::new(0),
            get_retries: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            put_failures: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            overflow_in_use: AtomicU64::new(0),
            items: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            expired_keys: AtomicU64::new(0),
            admission_rejects: AtomicU64::new(0),
            accounting_warnings: AtomicU64::new(0),
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The partition `key` lives in — the CREW routing input.
    pub fn partition_of_key(&self, key: u64) -> usize {
        split(keyhash(key), self.partitions.len(), self.num_buckets).partition
    }

    /// Optimistic GET: returns the value if present and not expired. A
    /// GET landing on an item whose TTL deadline has passed reports a
    /// miss and reclaims the item lazily (Redis-style lazy expiry), so
    /// an expired key is never served no matter how far behind the
    /// active sweep runs.
    pub fn get(&self, key: u64) -> Option<PoolBytes> {
        let h = keyhash(key);
        let parts = split(h, self.partitions.len(), self.num_buckets);
        let partition = &self.partitions[parts.partition];
        let primary = &partition.buckets[parts.bucket];
        let now = self.clock_ns.load(Ordering::Relaxed);

        loop {
            let e1 = primary.epoch_snapshot();
            if e1 % 2 == 1 {
                // A write is in progress; spin until it completes.
                std::hint::spin_loop();
                continue;
            }
            let mut found: Option<PoolBytes> = None;
            let mut lazily_expired = false;
            'scan: for bucket in partition.chain(parts.bucket) {
                for (_, slot) in bucket.occupied() {
                    if slot.tag == parts.tag {
                        match partition.items.read(slot.item, key, now) {
                            ItemRead::Hit(v) => {
                                found = Some(v);
                                break 'scan;
                            }
                            ItemRead::Expired => {
                                lazily_expired = true;
                                break 'scan;
                            }
                            ItemRead::Absent => {}
                        }
                    }
                }
            }
            let e2 = primary.epoch_snapshot();
            if e1 == e2 {
                match found {
                    Some(v) => {
                        self.get_hits.fetch_add(1, Ordering::Relaxed);
                        return Some(v);
                    }
                    None => {
                        if lazily_expired {
                            // Reclaim outside the optimistic window; the
                            // removal re-validates under the write lock.
                            self.remove_victim(key, RemoveCause::Expire { now });
                        }
                        self.get_misses.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                }
            }
            self.get_retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The stored size of `key`'s value in bytes, if present. This is the
    /// lookup a small core performs to classify a GET as small or large
    /// (paper §3: "a small core looks up the item associated with the
    /// requested key; if its size is below the threshold ...").
    pub fn value_len(&self, key: u64) -> Option<usize> {
        self.get(key).map(|v| v.len())
    }

    /// PUT: stores `value` under `key`, replacing any existing value.
    ///
    /// Implemented as a one-shot two-phase PUT: [`Store::reserve`] the
    /// pool block, fill it with the single wire → pool copy, and commit
    /// it with [`Store::put_reserved`]. Streaming callers (the large-PUT
    /// ingest path) use the phases directly so each network fragment is
    /// copied straight into its final offset of the block.
    pub fn put(&self, key: u64, value: &[u8]) -> Result<(), PutError> {
        self.put_with_ttl(key, value, 0)
    }

    /// [`Store::put`] with a per-key TTL in milliseconds (`0` = never
    /// expires). The deadline is stamped against the store clock; under
    /// memory pressure the reservation may evict first (see
    /// [`Store::reserve`]).
    pub fn put_with_ttl(&self, key: u64, value: &[u8], ttl_ms: u64) -> Result<(), PutError> {
        // Copy the value into pool memory *before* taking the bucket
        // lock: the critical section stays O(1) regardless of item size.
        let Some(mut reservation) = self.reserve(value.len()) else {
            return Err(PutError::OutOfMemory);
        };
        reservation.write_at(0, value);
        self.put_reserved_with_ttl(key, reservation.seal(), ttl_ms)
    }

    /// Phase one of a two-phase PUT: reserves a writable mempool block
    /// for a value of `len` bytes (see [`Mempool::reserve`]). With an
    /// eviction policy configured, a reservation that fails on capacity
    /// triggers one eviction pass (evict until the block fits, aiming
    /// for the low watermark) and retries once — then reports an honest
    /// failure. A final failure is counted as a PUT failure, mirroring
    /// [`Store::put`] under memory pressure. Commit the filled
    /// reservation with [`Store::put_reserved`]; dropping it instead
    /// releases the block.
    pub fn reserve(&self, len: usize) -> Option<crate::mem::PoolBytesMut> {
        if let Some(r) = self.mempool.reserve(len) {
            return Some(r);
        }
        let reservation = match (self.capacity.policy, self.mempool.charged_bytes(len)) {
            (EvictionPolicy::None, _) | (_, None) => None,
            (_, Some(charge)) => {
                // Make room for this block *and* head toward the low
                // watermark, so the next few PUTs don't each pay an
                // eviction pass of their own.
                let capacity = self.mempool.capacity_bytes();
                let target = self
                    .watermarks
                    .low_bytes
                    .min(capacity.saturating_sub(charge));
                self.evict_until(target, None, u64::MAX);
                self.mempool.reserve(len)
            }
        };
        if reservation.is_none() {
            self.put_failures.fetch_add(1, Ordering::Relaxed);
        }
        reservation
    }

    /// Phase two of a two-phase PUT: commits an already-pooled value
    /// under `key`, replacing any existing value. The critical section
    /// is the same O(1) bucket-locked splice as [`Store::put`] —
    /// regardless of how the value bytes got into the pool.
    pub fn put_reserved(&self, key: u64, pooled: PoolBytes) -> Result<(), PutError> {
        self.put_reserved_with_ttl(key, pooled, 0)
    }

    /// [`Store::put_reserved`] with a per-key TTL in milliseconds (`0` =
    /// never expires).
    pub fn put_reserved_with_ttl(
        &self,
        key: u64,
        pooled: PoolBytes,
        ttl_ms: u64,
    ) -> Result<(), PutError> {
        let deadline = if ttl_ms == 0 {
            NO_EXPIRY
        } else {
            self.ttl_used.store(true, Ordering::Relaxed);
            expires_at(self.clock_ns.load(Ordering::Relaxed), ttl_ms)
        };
        let h = keyhash(key);
        let parts = split(h, self.partitions.len(), self.num_buckets);
        let partition = &self.partitions[parts.partition];
        let primary = &partition.buckets[parts.bucket];
        let _guard = partition.locks[parts.bucket].lock();

        // Find an existing slot for this key (outside the epoch-odd
        // window: we hold the lock, so slots cannot change under us).
        let existing = self.find_slot_locked(partition, parts.bucket, parts.tag, key);
        match existing {
            Some((_, slot)) => {
                primary.write_begin();
                partition.items.replace(slot.item, pooled, deadline);
                primary.write_end();
            }
            None => {
                // Need a free slot somewhere in the chain.
                let Some(item_idx) = partition.items.alloc(key, pooled, deadline) else {
                    self.put_failures.fetch_add(1, Ordering::Relaxed);
                    return Err(PutError::TableFull);
                };
                match self.claim_empty_slot(partition, parts.bucket) {
                    Some(target) => {
                        primary.write_begin();
                        target.0.set_slot(
                            target.1,
                            Some(Slot {
                                tag: parts.tag,
                                item: item_idx,
                            }),
                        );
                        primary.write_end();
                        self.items.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        partition.items.free(item_idx);
                        self.put_failures.fetch_add(1, Ordering::Relaxed);
                        return Err(PutError::TableFull);
                    }
                }
            }
        }
        self.puts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// DELETE: removes `key`, returning whether it was present.
    pub fn delete(&self, key: u64) -> bool {
        let h = keyhash(key);
        let parts = split(h, self.partitions.len(), self.num_buckets);
        let partition = &self.partitions[parts.partition];
        let primary = &partition.buckets[parts.bucket];
        let _guard = partition.locks[parts.bucket].lock();

        match self.find_slot_locked(partition, parts.bucket, parts.tag, key) {
            Some((bucket_ref, slot)) => {
                primary.write_begin();
                bucket_ref.0.set_slot(bucket_ref.1, None);
                primary.write_end();
                partition.items.free(slot.item);
                self.items.fetch_sub(1, Ordering::Relaxed);
                self.deletes.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    // ---- Capacity tiering: clock, watermark eviction, TTL expiry ----

    /// The coarse store clock, ns (see [`Store::set_clock_ns`]).
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns.load(Ordering::Relaxed)
    }

    /// Advances the store clock to `now_ns` (monotone: a stale caller
    /// can never turn it back). Serving cores call this through
    /// [`Store::capacity_tick`]; tests drive it directly for
    /// deterministic expiry.
    pub fn set_clock_ns(&self, now_ns: u64) {
        self.clock_ns.fetch_max(now_ns, Ordering::Relaxed);
    }

    /// The configured capacity policy and knobs.
    pub fn capacity_config(&self) -> &CapacityConfig {
        &self.capacity
    }

    /// The watermarks resolved against this store's mempool capacity.
    pub fn watermarks(&self) -> Watermarks {
        self.watermarks
    }

    /// Admission control: may a PUT of `len` value bytes proceed to
    /// reservation right now? With eviction off, always. Otherwise a
    /// PUT at or past the admission cutoff is turned away *before*
    /// reservation when it could never fit under the high watermark, or
    /// while occupancy currently sits at or above it (eviction is
    /// behind; streaming a huge value now would only deepen the hole).
    /// A rejection is counted in `store.admission_rejects` and should
    /// be answered with an immediate `OutOfMemory` — the caller skips
    /// the reservation AND the discard-mode streaming it replaces.
    pub fn admit_put(&self, len: usize) -> bool {
        if self.capacity.policy == EvictionPolicy::None
            || len < self.capacity.admission_cutoff_bytes
        {
            return true;
        }
        let oversized = match self.mempool.charged_bytes(len) {
            Some(charge) => charge > self.watermarks.high_bytes,
            None => true,
        };
        if oversized || self.mempool.used_bytes() >= self.watermarks.high_bytes {
            self.admission_rejects.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// One capacity-housekeeping tick, called by serving core `core` of
    /// `n_cores` from its existing per-round housekeeping (no dedicated
    /// threads): advances the store clock, runs the budgeted active TTL
    /// sweep over this core's partitions (partition `p` belongs to core
    /// `p % n_cores`), and — when occupancy is over the high watermark —
    /// evicts toward the low watermark under the per-tick victim
    /// budget.
    ///
    /// Cross-checked accounting: occupancy is re-measured after the
    /// eviction pass; a tick that reclaimed *nothing* while still over
    /// the high watermark first widens the scan to every partition, and
    /// if even the global pass finds no victim, increments
    /// `store.accounting_warnings` — occupancy then disagrees with the
    /// item table (leaked reservations or stuck references), which CI
    /// gates to zero.
    pub fn capacity_tick(&self, core: usize, n_cores: usize, now_ns: u64) {
        self.set_clock_ns(now_ns);
        let now = self.clock_ns();
        let n_cores = n_cores.max(1);
        if self.ttl_used.load(Ordering::Relaxed) {
            for p in (core % n_cores..self.partitions.len()).step_by(n_cores) {
                self.sweep_expired(p, now);
            }
        }
        if self.capacity.policy == EvictionPolicy::None {
            return;
        }
        if self.mempool.used_bytes() <= self.watermarks.high_bytes {
            return;
        }
        let budget = self.capacity.tick_victims.max(1) as u64;
        let mut evicted =
            self.evict_until(self.watermarks.low_bytes, Some((core, n_cores)), budget);
        if evicted == 0 {
            // This core's partitions had nothing evictable; re-measure
            // and widen to the whole store before crying foul.
            evicted = self.evict_until(self.watermarks.low_bytes, None, budget);
            if evicted == 0 && self.mempool.used_bytes() > self.watermarks.high_bytes {
                self.accounting_warnings.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Evicts until mempool occupancy is at or under `target_used`, no
    /// victims remain, or `max_victims` were reclaimed. `owned` narrows
    /// the scan to one core's partitions (`p % n_cores == core`); `None`
    /// scans all. Returns the number of items evicted.
    fn evict_until(
        &self,
        target_used: usize,
        owned: Option<(usize, usize)>,
        max_victims: u64,
    ) -> u64 {
        let n_parts = self.partitions.len();
        let start = self.evict_rotor.fetch_add(1, Ordering::Relaxed);
        let parts: Vec<usize> = match owned {
            Some((core, n_cores)) => (core % n_cores..n_parts).step_by(n_cores).collect(),
            None => (0..n_parts).map(|i| (start + i) % n_parts).collect(),
        };
        let mut evicted = 0u64;
        'pass: while evicted < max_victims {
            if self.mempool.used_bytes() <= target_used {
                break;
            }
            let mut progressed = false;
            for &p in &parts {
                if self.mempool.used_bytes() <= target_used || evicted >= max_victims {
                    break 'pass;
                }
                for (key, _) in self.find_victims(p) {
                    if self.mempool.used_bytes() <= target_used || evicted >= max_victims {
                        break;
                    }
                    if self.remove_victim(key, RemoveCause::Evict) {
                        evicted += 1;
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        evicted
    }

    /// Advances partition `p`'s CLOCK hand past the next victim window.
    /// Plain CLOCK yields the first unreferenced item; size-aware CLOCK
    /// collects a window of unreferenced candidates and yields them
    /// largest-block-first, so the caller reclaims the big blocks and
    /// stops before touching the small ones — the hand traffic per pass
    /// is the same as plain CLOCK's (each slot is passed once either
    /// way), but fewer, bigger victims satisfy the target and the
    /// window's small items survive. Reference bits are cleared as the
    /// hand passes (second chance), so a fully-hot partition yields a
    /// victim on the wrap-around at the latest. Returns the candidate
    /// keys with their charges, best victim first; empty when the
    /// partition holds nothing evictable.
    fn find_victims(&self, p: usize) -> Vec<(u64, usize)> {
        let partition = &self.partitions[p];
        let slots = &partition.items.slots;
        let cap = slots.len();
        if cap == 0 {
            return Vec::new();
        }
        let window = match self.capacity.policy {
            EvictionPolicy::SizeAwareClock => self.capacity.candidate_window.max(1),
            _ => 1,
        };
        let start = partition.clock_hand.load(Ordering::Relaxed);
        let mut candidates: Vec<(u64, usize)> = Vec::with_capacity(window);
        let mut steps = 0usize;
        // Up to two sweeps: the first may only clear reference bits.
        while steps < cap * 2 && candidates.len() < window {
            let idx = (start + steps) % cap;
            steps += 1;
            let mut slot = slots[idx].lock();
            if let Some(e) = slot.as_mut() {
                if e.referenced {
                    e.referenced = false;
                } else {
                    candidates.push((e.key, e.value.charged_bytes()));
                }
            }
        }
        partition
            .clock_hand
            .store((start + steps) % cap, Ordering::Relaxed);
        candidates.sort_unstable_by_key(|&(_, charge)| std::cmp::Reverse(charge));
        candidates
    }

    /// Scans a [`CapacityConfig::sweep_budget`]-sized window of
    /// partition `p`'s item slots behind its rotating cursor, reclaiming
    /// every expired item found (the active half of TTL expiry).
    fn sweep_expired(&self, p: usize, now_ns: u64) {
        let partition = &self.partitions[p];
        let slots = &partition.items.slots;
        let cap = slots.len();
        if cap == 0 {
            return;
        }
        let budget = self.capacity.sweep_budget.min(cap);
        let start = partition.sweep_cursor.load(Ordering::Relaxed);
        for step in 0..budget {
            let idx = (start + step) % cap;
            let expired_key = {
                let slot = slots[idx].lock();
                match &*slot {
                    Some(e) if is_expired(e.expires_at, now_ns) => Some(e.key),
                    _ => None,
                }
            };
            if let Some(key) = expired_key {
                self.remove_victim(key, RemoveCause::Expire { now: now_ns });
            }
        }
        partition
            .sweep_cursor
            .store((start + budget) % cap, Ordering::Relaxed);
    }

    /// Removes `key` for the capacity subsystem — eviction or expiry —
    /// mirroring [`Store::delete`]'s locked splice but feeding the
    /// capacity counters instead of `store.deletes`. An `Expire`
    /// removal re-validates the deadline under the write lock, so a
    /// concurrent PUT that refreshed the key is never clobbered.
    fn remove_victim(&self, key: u64, cause: RemoveCause) -> bool {
        let h = keyhash(key);
        let parts = split(h, self.partitions.len(), self.num_buckets);
        let partition = &self.partitions[parts.partition];
        let primary = &partition.buckets[parts.bucket];
        let _guard = partition.locks[parts.bucket].lock();

        let Some((bucket_ref, slot)) =
            self.find_slot_locked(partition, parts.bucket, parts.tag, key)
        else {
            return false;
        };
        if let RemoveCause::Expire { now } = cause {
            match partition.items.expires_at(slot.item) {
                Some(deadline) if is_expired(deadline, now) => {}
                _ => return false,
            }
        }
        primary.write_begin();
        bucket_ref.0.set_slot(bucket_ref.1, None);
        primary.write_end();
        let freed = partition
            .items
            .free(slot.item)
            .map(|e| e.value.charged_bytes() as u64)
            .unwrap_or(0);
        self.items.fetch_sub(1, Ordering::Relaxed);
        match cause {
            RemoveCause::Evict => {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.evicted_bytes.fetch_add(freed, Ordering::Relaxed);
            }
            RemoveCause::Expire { .. } => {
                self.expired_keys.fetch_add(1, Ordering::Relaxed);
            }
        }
        true
    }

    /// Sums the capacity charge of every live item — the item table's
    /// own view of mempool occupancy. With no outstanding reservations
    /// and no reader-held value references, this equals
    /// [`Mempool::used_bytes`] exactly; the proptest suite holds the
    /// store to that identity across arbitrary PUT/GET/TTL/evict
    /// interleavings. O(items) with a lock per slot: an audit, not a
    /// hot-path call.
    pub fn audit_charged_bytes(&self) -> usize {
        self.partitions
            .iter()
            .flat_map(|p| p.items.slots.iter())
            .map(|s| s.lock().as_ref().map_or(0, |e| e.value.charged_bytes()))
            .sum()
    }

    /// Scans the chain under the writer lock for the slot holding `key`.
    /// Returns the bucket + slot index and the decoded slot.
    #[allow(clippy::type_complexity)]
    fn find_slot_locked<'p>(
        &self,
        partition: &'p Partition,
        primary: usize,
        tag: u16,
        key: u64,
    ) -> Option<((&'p Bucket, usize), Slot)> {
        for bucket in partition.chain(primary) {
            for (i, slot) in bucket.occupied() {
                if slot.tag == tag && partition.items.key_at(slot.item) == Some(key) {
                    return Some(((bucket, i), slot));
                }
            }
        }
        None
    }

    /// Finds (or creates, by chaining an overflow bucket) an empty slot
    /// in the chain of `primary`. Caller holds the writer lock.
    fn claim_empty_slot<'p>(
        &self,
        partition: &'p Partition,
        primary: usize,
    ) -> Option<(&'p Bucket, usize)> {
        let mut last: &Bucket = &partition.buckets[primary];
        for bucket in partition.chain(primary) {
            if let Some(i) = bucket.first_empty() {
                return Some((bucket, i));
            }
            last = bucket;
        }
        // Chain full: dynamically assign an overflow bucket (§4.2).
        let idx = partition.overflow_freelist.lock().pop()?;
        self.overflow_in_use.fetch_add(1, Ordering::Relaxed);
        let fresh = &partition.overflow[idx as usize];
        debug_assert_eq!(fresh.occupied().count(), 0);
        last.next.store(idx, Ordering::Release);
        Some((fresh, 0))
    }

    /// Access to the value memory pool (capacity/usage reporting).
    pub fn mempool(&self) -> &Mempool {
        &self.mempool
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            get_hits: self.get_hits.load(Ordering::Relaxed),
            get_misses: self.get_misses.load(Ordering::Relaxed),
            get_retries: self.get_retries.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            put_failures: self.put_failures.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            overflow_in_use: self.overflow_in_use.load(Ordering::Relaxed),
            items: self.items.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            expired_keys: self.expired_keys.load(Ordering::Relaxed),
            admission_rejects: self.admission_rejects.load(Ordering::Relaxed),
            accounting_warnings: self.accounting_warnings.load(Ordering::Relaxed),
        }
    }

    /// Number of items currently stored.
    pub fn len(&self) -> u64 {
        self.items.load(Ordering::Relaxed)
    }

    /// True if the store holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The store contributes its own and its mempool's metrics under the
/// canonical `store.*` / `mempool.*` names, so a server registers
/// `Arc<Store>` directly as a snapshot-time collector.
impl minos_obs::Collector for Store {
    fn collect(&self, out: &mut Vec<(String, minos_obs::MetricValue)>) {
        use minos_obs::MetricValue::{Counter, Gauge};
        let s = self.stats();
        out.push(("store.get_hits".to_string(), Counter(s.get_hits)));
        out.push(("store.get_misses".to_string(), Counter(s.get_misses)));
        out.push(("store.get_retries".to_string(), Counter(s.get_retries)));
        out.push(("store.puts".to_string(), Counter(s.puts)));
        out.push(("store.put_failures".to_string(), Counter(s.put_failures)));
        out.push(("store.deletes".to_string(), Counter(s.deletes)));
        out.push((
            "store.overflow_in_use".to_string(),
            Gauge(s.overflow_in_use as f64),
        ));
        out.push(("store.items".to_string(), Gauge(s.items as f64)));
        out.push(("store.evictions".to_string(), Counter(s.evictions)));
        out.push(("store.evicted_bytes".to_string(), Counter(s.evicted_bytes)));
        out.push(("store.expired_keys".to_string(), Counter(s.expired_keys)));
        out.push((
            "store.admission_rejects".to_string(),
            Counter(s.admission_rejects),
        ));
        out.push((
            "store.accounting_warnings".to_string(),
            Counter(s.accounting_warnings),
        ));
        let m = self.mempool.stats();
        out.push(("mempool.allocs".to_string(), Counter(m.allocs)));
        out.push(("mempool.reuses".to_string(), Counter(m.reuses)));
        out.push(("mempool.failures".to_string(), Counter(m.failures)));
        out.push(("mempool.frees".to_string(), Counter(m.frees)));
        out.push(("mempool.copied_bytes".to_string(), Counter(m.copied_bytes)));
        out.push(("mempool.used_bytes".to_string(), Gauge(m.used_bytes as f64)));
        out.push((
            "mempool.capacity_bytes".to_string(),
            Gauge(m.capacity_bytes as f64),
        ));
        out.push((
            "mempool.occupancy".to_string(),
            Gauge(if m.capacity_bytes == 0 {
                0.0
            } else {
                m.used_bytes as f64 / m.capacity_bytes as f64
            }),
        ));
        out.push((
            "mempool.high_watermark_bytes".to_string(),
            Gauge(self.watermarks.high_bytes as f64),
        ));
        out.push((
            "mempool.low_watermark_bytes".to_string(),
            Gauge(self.watermarks.low_bytes as f64),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store() -> Store {
        // 4 partitions x (16 buckets x 7 slots + 32 overflow x 7 slots):
        // enough for the 1000-key test below (~250 keys per partition)
        // while still forcing overflow chains.
        Store::new(StoreConfig {
            partitions: 4,
            buckets_per_partition: 16,
            overflow_per_partition: 32,
            items_per_partition: 512,
            mempool_bytes: 16 << 20,
            max_value_bytes: 1 << 20,
            capacity: CapacityConfig::default(),
        })
    }

    #[test]
    fn get_missing_returns_none() {
        let s = small_store();
        assert_eq!(s.get(42), None);
        assert_eq!(s.stats().get_misses, 1);
    }

    #[test]
    fn put_get_roundtrip() {
        let s = small_store();
        s.put(42, b"value-42").unwrap();
        assert_eq!(&s.get(42).unwrap()[..], b"value-42");
        assert_eq!(s.len(), 1);
        assert_eq!(s.value_len(42), Some(8));
    }

    #[test]
    fn put_replaces_value() {
        let s = small_store();
        s.put(1, b"old").unwrap();
        s.put(1, b"the new, longer value").unwrap();
        assert_eq!(&s.get(1).unwrap()[..], b"the new, longer value");
        assert_eq!(s.len(), 1, "replacement does not grow the store");
    }

    #[test]
    fn two_phase_put_matches_one_shot() {
        let s = small_store();
        // Fill a reservation in out-of-order chunks, as streaming
        // reassembly does, then commit.
        let value: Vec<u8> = (0..10_000).map(|i| (i % 247) as u8).collect();
        let mut r = s.reserve(value.len()).unwrap();
        r.write_at(4_000, &value[4_000..]);
        r.write_at(0, &value[..4_000]);
        s.put_reserved(9, r.seal()).unwrap();
        assert_eq!(&s.get(9).unwrap()[..], &value[..]);
        assert_eq!(s.stats().puts, 1);
        assert_eq!(
            s.mempool().stats().copied_bytes,
            value.len() as u64,
            "exactly one copy of the value, end to end"
        );
        // Replacement through the same path.
        let mut r = s.reserve(3).unwrap();
        r.write_at(0, b"new");
        s.put_reserved(9, r.seal()).unwrap();
        assert_eq!(&s.get(9).unwrap()[..], b"new");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn abandoned_reservation_releases_memory_and_counts_failure() {
        let s = Store::new(StoreConfig {
            partitions: 1,
            buckets_per_partition: 16,
            overflow_per_partition: 4,
            items_per_partition: 64,
            mempool_bytes: 4096,
            max_value_bytes: 1 << 16,
            capacity: CapacityConfig::default(),
        });
        let r = s.reserve(4096).unwrap();
        assert!(s.reserve(1).is_none(), "pool fully reserved");
        assert_eq!(s.stats().put_failures, 1);
        drop(r);
        assert_eq!(
            s.mempool().used_bytes(),
            0,
            "abandoned ingest leaks nothing"
        );
        assert!(s.reserve(1).is_some());
    }

    #[test]
    fn delete_removes() {
        let s = small_store();
        s.put(7, b"x").unwrap();
        assert!(s.delete(7));
        assert!(!s.delete(7));
        assert_eq!(s.get(7), None);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn delete_frees_pool_memory() {
        let s = small_store();
        s.put(7, &[0u8; 4096]).unwrap();
        let used = s.mempool().used_bytes();
        assert!(used >= 4096);
        assert!(s.delete(7));
        assert_eq!(s.mempool().used_bytes(), 0);
    }

    #[test]
    fn many_keys_roundtrip_through_overflow() {
        // 4 partitions * 16 buckets * 7 slots = 448 primary slots; 1000
        // keys force overflow chaining.
        let s = small_store();
        for k in 0..1000u64 {
            s.put(k, format!("value-{k}").as_bytes()).unwrap();
        }
        assert!(s.stats().overflow_in_use > 0, "overflow exercised");
        for k in 0..1000u64 {
            assert_eq!(
                &s.get(k).unwrap()[..],
                format!("value-{k}").as_bytes(),
                "key {k}"
            );
        }
        assert_eq!(s.len(), 1000);
        // And delete them all again.
        for k in 0..1000u64 {
            assert!(s.delete(k), "key {k}");
        }
        assert_eq!(s.len(), 0);
        assert_eq!(s.mempool().used_bytes(), 0);
    }

    #[test]
    fn table_full_reported() {
        let s = Store::new(StoreConfig {
            partitions: 1,
            buckets_per_partition: 1,
            overflow_per_partition: 0,
            items_per_partition: 100,
            mempool_bytes: 1 << 20,
            max_value_bytes: 1 << 16,
            capacity: CapacityConfig::default(),
        });
        let mut stored = 0;
        let mut failed = false;
        for k in 0..100u64 {
            match s.put(k, b"v") {
                Ok(()) => stored += 1,
                Err(PutError::TableFull) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(failed, "tiny table must fill up");
        assert_eq!(stored as u64, s.len());
    }

    #[test]
    fn out_of_memory_reported() {
        let s = Store::new(StoreConfig {
            partitions: 1,
            buckets_per_partition: 16,
            overflow_per_partition: 4,
            items_per_partition: 64,
            mempool_bytes: 1024,
            max_value_bytes: 1 << 16,
            capacity: CapacityConfig::default(),
        });
        assert_eq!(s.put(1, &[0u8; 2048]), Err(PutError::OutOfMemory));
        assert_eq!(s.stats().put_failures, 1);
    }

    #[test]
    fn large_values() {
        let s = small_store();
        let big = vec![0xAB; 1 << 20];
        s.put(5, &big).unwrap();
        let got = s.get(5).unwrap();
        assert_eq!(got.len(), big.len());
        assert_eq!(&got[..], &big[..]);
    }

    #[test]
    fn reader_holds_value_across_replacement() {
        let s = small_store();
        s.put(1, b"first").unwrap();
        let held = s.get(1).unwrap();
        s.put(1, b"second").unwrap();
        // The old buffer is still alive and unchanged for the reader.
        assert_eq!(&held[..], b"first");
        assert_eq!(&s.get(1).unwrap()[..], b"second");
    }

    #[test]
    fn concurrent_readers_writers_consistency() {
        use std::sync::Arc;
        // Writers store self-describing values; readers must never see a
        // value inconsistent with its key (torn or mismatched).
        let s = Arc::new(small_store());
        let keys = 64u64;
        for k in 0..keys {
            s.put(k, &pattern(k, 0)).unwrap();
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let writers: Vec<_> = (0..2)
            .map(|w| {
                let s = Arc::clone(&s);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut round = 1u64;
                    while !stop.load(Ordering::Relaxed) {
                        for k in (w..keys).step_by(2) {
                            s.put(k, &pattern(k, round)).unwrap();
                        }
                        round += 1;
                    }
                })
            })
            .collect();

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&s);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut checked = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for k in 0..keys {
                            if let Some(v) = s.get(k) {
                                assert_valid_pattern(k, &v);
                                checked += 1;
                            }
                        }
                    }
                    checked
                })
            })
            .collect();

        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0, "readers made progress");
    }

    fn pattern(key: u64, round: u64) -> Vec<u8> {
        let mut v = Vec::with_capacity(64);
        v.extend_from_slice(&key.to_le_bytes());
        v.extend_from_slice(&round.to_le_bytes());
        let check = key.wrapping_mul(31).wrapping_add(round);
        v.extend_from_slice(&check.to_le_bytes());
        v
    }

    fn assert_valid_pattern(key: u64, v: &[u8]) {
        assert_eq!(v.len(), 24);
        let k = u64::from_le_bytes(v[0..8].try_into().unwrap());
        let round = u64::from_le_bytes(v[8..16].try_into().unwrap());
        let check = u64::from_le_bytes(v[16..24].try_into().unwrap());
        assert_eq!(k, key, "value belongs to a different key");
        assert_eq!(
            check,
            key.wrapping_mul(31).wrapping_add(round),
            "torn value"
        );
    }

    // ---- Capacity tiering ----

    /// A 64 KiB mempool with eviction on: 64 one-class (1 KiB) values
    /// fill it exactly.
    fn evicting_store(policy: EvictionPolicy) -> Store {
        Store::new(StoreConfig {
            partitions: 1,
            buckets_per_partition: 64,
            overflow_per_partition: 32,
            items_per_partition: 256,
            mempool_bytes: 64 << 10,
            max_value_bytes: 1 << 16,
            capacity: CapacityConfig {
                policy,
                ..CapacityConfig::default()
            },
        })
    }

    #[test]
    fn churn_past_capacity_evicts_instead_of_oom() {
        let s = evicting_store(EvictionPolicy::Clock);
        // 4x the pool's worth of distinct 1 KiB keys.
        for k in 0..256u64 {
            s.put(k, &[k as u8; 1024]).unwrap();
        }
        let stats = s.stats();
        assert_eq!(stats.put_failures, 0, "no OOM under churn");
        assert!(stats.evictions > 0);
        assert!(stats.evicted_bytes >= stats.evictions * 1024);
        // PUTs refill between reservation-path passes; a housekeeping
        // tick restores the watermark invariant.
        s.capacity_tick(0, 1, 1);
        assert!(s.mempool().used_bytes() <= s.watermarks().low_bytes);
        assert_eq!(s.stats().accounting_warnings, 0);
    }

    #[test]
    fn clock_second_chance_prefers_cold_keys() {
        let s = evicting_store(EvictionPolicy::Clock);
        for k in 0..56u64 {
            s.put(k, &[0u8; 1024]).unwrap();
        }
        // Churn well past the high watermark while keys 0..8 stay hot:
        // their reference bits are re-set between eviction passes, so the
        // hand's second chance spares them while cold keys go.
        for k in 100..140u64 {
            for hot in 0..8u64 {
                s.get(hot);
            }
            s.put(k, &[1u8; 1024]).unwrap();
        }
        assert!(s.stats().evictions > 0);
        let hot_alive = (0..8u64).filter(|&k| s.get(k).is_some()).count();
        assert!(
            hot_alive >= 6,
            "second chance kept the hot set ({hot_alive}/8 alive)"
        );
    }

    /// Fills a store with 32 cold small values plus two cold 12 KiB
    /// (16 KiB-class) large ones — exactly pool capacity — then churns
    /// 16 more smalls so eviction must reclaim ~13 KiB. Returns
    /// (evictions, smalls still alive).
    fn mixed_churn(policy: EvictionPolicy) -> (u64, usize) {
        let s = evicting_store(policy);
        for k in 0..32u64 {
            s.put(k, &[0u8; 1024]).unwrap();
        }
        s.put(1000, &[2u8; 12 << 10]).unwrap();
        s.put(1001, &[2u8; 12 << 10]).unwrap();
        for k in 2000..2016u64 {
            s.put(k, &[3u8; 1024]).unwrap();
        }
        let alive = (0..32u64).filter(|&k| s.get(k).is_some()).count();
        (s.stats().evictions, alive)
    }

    #[test]
    fn size_aware_clock_prefers_large_victims() {
        // Plain CLOCK is size-blind: freeing ~13 KiB costs it a dozen
        // small victims before the hand ever reaches a large block.
        // Size-aware CLOCK weighs the candidate window and reclaims a
        // 16 KiB block within a few victims.
        let (clock_evictions, clock_alive) = mixed_churn(EvictionPolicy::Clock);
        let (sa_evictions, sa_alive) = mixed_churn(EvictionPolicy::SizeAwareClock);
        assert!(sa_evictions > 0);
        assert!(
            sa_evictions < clock_evictions,
            "size-aware took {sa_evictions} victims, plain clock {clock_evictions}"
        );
        assert!(
            sa_alive > clock_alive,
            "size-aware kept {sa_alive}/32 smalls resident, plain clock {clock_alive}/32"
        );
    }

    #[test]
    fn expired_key_never_served_and_reclaimed_lazily() {
        let s = small_store();
        s.put_with_ttl(1, b"short-lived", 5).unwrap();
        s.put(2, b"forever").unwrap();
        assert_eq!(&s.get(1).unwrap()[..], b"short-lived");
        s.set_clock_ns(5_000_000); // exactly the 5 ms deadline
        assert_eq!(s.get(1), None, "expired key must miss");
        assert_eq!(s.stats().expired_keys, 1, "lazy reclaim fired");
        assert_eq!(s.len(), 1, "only the TTL'd key is gone");
        assert_eq!(&s.get(2).unwrap()[..], b"forever");
    }

    #[test]
    fn put_refreshes_ttl() {
        let s = small_store();
        s.put_with_ttl(1, b"v1", 5).unwrap();
        s.set_clock_ns(4_000_000);
        s.put_with_ttl(1, b"v2", 5).unwrap(); // deadline now 9 ms
        s.set_clock_ns(6_000_000);
        assert_eq!(&s.get(1).unwrap()[..], b"v2", "refreshed TTL holds");
        s.set_clock_ns(9_000_000);
        assert_eq!(s.get(1), None);
    }

    #[test]
    fn active_sweep_reclaims_cold_expired_keys() {
        let s = small_store();
        for k in 0..100u64 {
            s.put_with_ttl(k, b"ttl", 1).unwrap();
        }
        for k in 100..110u64 {
            s.put(k, b"keep").unwrap();
        }
        let used_before = s.mempool().used_bytes();
        s.set_clock_ns(2_000_000);
        // Ticks sweep a budgeted window per partition; a few rounds
        // cover every slot. Nothing GETs the expired keys.
        for _ in 0..8 {
            s.capacity_tick(0, 1, s.clock_ns());
        }
        assert_eq!(s.stats().expired_keys, 100);
        assert_eq!(s.len(), 10);
        assert!(s.mempool().used_bytes() < used_before);
        for k in 100..110u64 {
            assert!(s.get(k).is_some(), "TTL-free key {k} untouched");
        }
    }

    #[test]
    fn admission_rejects_large_puts_at_high_watermark() {
        let s = evicting_store(EvictionPolicy::Clock);
        // Park occupancy just under capacity (above the 90 % watermark).
        for k in 0..60u64 {
            s.put(k, &[0u8; 1024]).unwrap();
        }
        assert!(s.mempool().used_bytes() >= s.watermarks().high_bytes);
        assert!(s.admit_put(1024), "small PUTs always admitted");
        assert!(
            !s.admit_put(s.capacity_config().admission_cutoff_bytes),
            "cutoff-sized PUT rejected at the high watermark"
        );
        assert_eq!(s.stats().admission_rejects, 1);
        // And regardless of occupancy, a value whose charge can never
        // fit under the high watermark is turned away (cutoff lowered so
        // the size check, not the cutoff, decides).
        let s2 = Store::new(StoreConfig {
            partitions: 1,
            buckets_per_partition: 64,
            overflow_per_partition: 32,
            items_per_partition: 256,
            mempool_bytes: 64 << 10,
            max_value_bytes: 1 << 16,
            capacity: CapacityConfig {
                policy: EvictionPolicy::Clock,
                admission_cutoff_bytes: 4096,
                ..CapacityConfig::default()
            },
        });
        assert!(!s2.admit_put(s2.watermarks().high_bytes + 1));
        assert!(s2.admit_put(4095), "below the cutoff is always admitted");
    }

    #[test]
    fn capacity_tick_enforces_watermarks() {
        let s = evicting_store(EvictionPolicy::Clock);
        let wm = s.watermarks();
        for k in 0..63u64 {
            s.put(k, &[0u8; 1024]).unwrap();
        }
        assert!(s.mempool().used_bytes() > wm.high_bytes);
        assert_eq!(s.stats().evictions, 0, "no eviction below a reserve miss");
        s.capacity_tick(0, 1, 1);
        assert!(
            s.mempool().used_bytes() <= wm.low_bytes,
            "tick evicted down to the low watermark"
        );
        assert!(s.stats().evictions > 0);
        assert_eq!(s.stats().accounting_warnings, 0);
    }

    #[test]
    fn audit_matches_mempool_accounting() {
        let s = evicting_store(EvictionPolicy::SizeAwareClock);
        for k in 0..200u64 {
            // Mixed size classes, some replaced, some deleted.
            let len = 64 + (k as usize * 37) % 3000;
            s.put(k % 80, &vec![k as u8; len]).unwrap();
            if k % 11 == 0 {
                s.delete(k % 80);
            }
        }
        s.capacity_tick(0, 1, 1);
        assert_eq!(
            s.audit_charged_bytes(),
            s.mempool().used_bytes(),
            "item-table charges equal mempool occupancy"
        );
        assert_eq!(s.stats().accounting_warnings, 0);
    }

    #[test]
    fn eviction_off_store_unchanged_under_pressure() {
        // The seed behavior: policy None answers OOM, evicts nothing.
        let s = evicting_store(EvictionPolicy::None);
        let mut oom = 0;
        for k in 0..80u64 {
            match s.put(k, &[0u8; 1024]) {
                Ok(()) => {}
                Err(PutError::OutOfMemory) => oom += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(oom > 0, "no eviction: pool exhaustion surfaces");
        assert_eq!(s.stats().evictions, 0);
        assert_eq!(s.stats().admission_rejects, 0);
    }
}
