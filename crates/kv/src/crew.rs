//! CREW (Concurrent Read Exclusive Write) core-ownership helpers.
//!
//! Under CREW (paper §4.2), "each core is the master of one partition,
//! and a given key can be written only by the master core of the
//! corresponding partition", which serializes writes per key without a
//! lock. Minos deviates slightly: keys mastered by *large* cores may be
//! written by any core (the request may be dispatched), so those PUTs
//! take the bucket spinlock — which the [`crate::Store`] always does
//! anyway; under CREW routing the lock is simply never contended.
//!
//! This module provides the routing arithmetic shared by all engines.

/// The master core of `partition` on a server with `n_cores` cores.
///
/// Partitions are striped over cores round-robin, the standard MICA
/// assignment. With `partitions % n_cores == 0` every core masters the
/// same number of partitions.
#[inline]
pub fn master_core(partition: usize, n_cores: usize) -> usize {
    debug_assert!(n_cores > 0);
    partition % n_cores
}

/// The partitions mastered by `core` given `partitions` total partitions
/// and `n_cores` cores.
pub fn partitions_of_core(core: usize, partitions: usize, n_cores: usize) -> Vec<usize> {
    (0..partitions)
        .filter(|&p| master_core(p, n_cores) == core)
        .collect()
}

/// Validates a CREW-friendly configuration: every core masters at least
/// one partition, and mastering is balanced (max - min <= 1).
pub fn is_balanced(partitions: usize, n_cores: usize) -> bool {
    if partitions < n_cores {
        return false;
    }
    let per = partitions / n_cores;
    let rem = partitions % n_cores;
    // Round-robin striping gives `per + 1` to the first `rem` cores.
    (0..n_cores).all(|c| {
        let owned = per + usize::from(c < rem);
        partitions_of_core(c, partitions, n_cores).len() == owned
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_assignment() {
        assert_eq!(master_core(0, 8), 0);
        assert_eq!(master_core(7, 8), 7);
        assert_eq!(master_core(8, 8), 0);
        assert_eq!(master_core(13, 8), 5);
    }

    #[test]
    fn partitions_of_core_inverts_master() {
        let n_cores = 8;
        let partitions = 32;
        for core in 0..n_cores {
            let owned = partitions_of_core(core, partitions, n_cores);
            assert_eq!(owned.len(), 4);
            for p in owned {
                assert_eq!(master_core(p, n_cores), core);
            }
        }
    }

    #[test]
    fn balance_check() {
        assert!(is_balanced(32, 8));
        assert!(is_balanced(9, 8)); // one core gets 2, others 1
        assert!(!is_balanced(4, 8)); // some cores master nothing
    }
}
