//! A DPDK-`rte_mempool`-style memory manager.
//!
//! "The current prototype of Minos employs the memory manager of the DPDK
//! library to handle allocation of memory regions for key-value entries"
//! (paper §4.2). The essential properties of that allocator, reproduced
//! here, are:
//!
//! * **fixed capacity**: the pool owns a budget of bytes decided up
//!   front (DPDK pre-allocates hugepages); allocation beyond it fails
//!   rather than growing;
//! * **size-class freelists**: freed blocks of a class are recycled
//!   without touching the system allocator (segregated fits, the
//!   MICA-style extension the paper mentions);
//! * **O(1) alloc/free** on the hot path once a class is warm.
//!
//! Values are handed out as [`PoolBytes`]: cheaply clonable,
//! reference-counted, read-only buffers that return their block to the
//! pool when the last reference drops. This is what makes MICA-style
//! optimistic GETs safe in Rust: a reader that won the epoch validation
//! holds a reference, so a concurrent PUT replacing the item can never
//! free the bytes under the reader.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Smallest block class, bytes.
const MIN_CLASS: usize = 64;

/// Statistics for a [`Mempool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Allocations satisfied from a freelist (no system allocation).
    pub reuses: u64,
    /// Failed allocations (capacity exhausted or oversized).
    pub failures: u64,
    /// Blocks returned to freelists.
    pub frees: u64,
    /// Value bytes copied *into* pool blocks — by [`Mempool::alloc_from`]
    /// and [`PoolBytesMut::write_at`], the only two write paths. This is
    /// the per-PUT copy budget made a number: a store whose ingest is
    /// one-copy moves exactly `value_len` bytes through this counter per
    /// successful PUT, which the server surfaces as `put_copied_bytes`.
    pub copied_bytes: u64,
    /// Bytes currently charged against the capacity.
    pub used_bytes: usize,
    /// Configured capacity in bytes.
    pub capacity_bytes: usize,
}

#[derive(Debug)]
struct Inner {
    /// Freelists per size class; class `i` holds blocks of
    /// `MIN_CLASS << i` bytes.
    classes: Vec<Mutex<Vec<Box<[u8]>>>>,
    max_class_bytes: usize,
    capacity: usize,
    used: AtomicUsize,
    allocs: AtomicU64,
    reuses: AtomicU64,
    failures: AtomicU64,
    frees: AtomicU64,
    copied: AtomicU64,
}

impl Inner {
    fn class_of(&self, len: usize) -> Option<usize> {
        let block = len.max(1).next_power_of_two().max(MIN_CLASS);
        if block > self.max_class_bytes {
            return None;
        }
        Some(block.trailing_zeros() as usize - MIN_CLASS.trailing_zeros() as usize)
    }

    fn class_bytes(class: usize) -> usize {
        MIN_CLASS << class
    }

    fn release(&self, block: Box<[u8]>, class: usize) {
        self.frees.fetch_add(1, Ordering::Relaxed);
        self.used
            .fetch_sub(Self::class_bytes(class), Ordering::Relaxed);
        let mut freelist = self.classes[class].lock();
        freelist.push(block);
    }
}

/// A fixed-capacity size-class memory pool for item values.
#[derive(Clone, Debug)]
pub struct Mempool {
    inner: Arc<Inner>,
}

impl Mempool {
    /// Creates a pool with a budget of `capacity_bytes` and a maximum
    /// block size of `max_item_bytes` (rounded up to a power of two).
    pub fn new(capacity_bytes: usize, max_item_bytes: usize) -> Self {
        let max_class_bytes = max_item_bytes.max(MIN_CLASS).next_power_of_two();
        let num_classes = (max_class_bytes / MIN_CLASS).trailing_zeros() as usize + 1;
        Mempool {
            inner: Arc::new(Inner {
                classes: (0..num_classes).map(|_| Mutex::new(Vec::new())).collect(),
                max_class_bytes,
                capacity: capacity_bytes,
                used: AtomicUsize::new(0),
                allocs: AtomicU64::new(0),
                reuses: AtomicU64::new(0),
                failures: AtomicU64::new(0),
                frees: AtomicU64::new(0),
                copied: AtomicU64::new(0),
            }),
        }
    }

    /// Allocates a buffer holding a copy of `data`. Returns `None` if the
    /// pool is out of capacity or `data` exceeds the maximum block size.
    /// Equivalent to a [`Mempool::reserve`] filled in one write and
    /// sealed.
    pub fn alloc_from(&self, data: &[u8]) -> Option<PoolBytes> {
        let mut reservation = self.reserve(data.len())?;
        reservation.write_at(0, data);
        Some(reservation.seal())
    }

    /// Reserves a writable block for a value of `len` bytes *without
    /// copying anything yet* — the first phase of a two-phase PUT.
    ///
    /// The returned [`PoolBytesMut`] is filled incrementally (e.g. one
    /// network fragment at a time, via [`PoolBytesMut::write_at`]) and
    /// then sealed into an immutable, refcounted [`PoolBytes`] with
    /// [`PoolBytesMut::seal`]. Dropping an unsealed reservation returns
    /// the block to the pool. Returns `None` if the pool is out of
    /// capacity or `len` exceeds the maximum block size.
    pub fn reserve(&self, len: usize) -> Option<PoolBytesMut> {
        let inner = &self.inner;
        let Some(class) = inner.class_of(len) else {
            inner.failures.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let class_bytes = Inner::class_bytes(class);

        // Charge capacity first (optimistically), back out on failure.
        let prev = inner.used.fetch_add(class_bytes, Ordering::Relaxed);
        if prev + class_bytes > inner.capacity {
            inner.used.fetch_sub(class_bytes, Ordering::Relaxed);
            inner.failures.fetch_add(1, Ordering::Relaxed);
            return None;
        }

        let recycled = inner.classes[class].lock().pop();
        let block = match recycled {
            Some(b) => {
                inner.reuses.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => vec![0u8; class_bytes].into_boxed_slice(),
        };
        inner.allocs.fetch_add(1, Ordering::Relaxed);
        Some(PoolBytesMut {
            block: Some(block),
            len,
            class,
            pool: Arc::clone(inner),
        })
    }

    /// Bytes currently charged against the capacity.
    pub fn used_bytes(&self) -> usize {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// The capacity charge for a value of `len` bytes: its size class
    /// rounded up, exactly what [`Mempool::reserve`] debits and what a
    /// free credits back. `None` if `len` exceeds the maximum block
    /// size. This is the unit the eviction accounting cross-check sums
    /// in — occupancy moves in class-rounded steps, never raw lengths.
    pub fn charged_bytes(&self, len: usize) -> Option<usize> {
        self.inner.class_of(len).map(Inner::class_bytes)
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.inner.capacity
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> MempoolStats {
        let i = &self.inner;
        MempoolStats {
            allocs: i.allocs.load(Ordering::Relaxed),
            reuses: i.reuses.load(Ordering::Relaxed),
            failures: i.failures.load(Ordering::Relaxed),
            frees: i.frees.load(Ordering::Relaxed),
            copied_bytes: i.copied.load(Ordering::Relaxed),
            used_bytes: i.used.load(Ordering::Relaxed),
            capacity_bytes: i.capacity,
        }
    }
}

/// A reserved, writable pool block: the first phase of a two-phase PUT.
///
/// Produced by [`Mempool::reserve`]; filled incrementally with
/// [`PoolBytesMut::write_at`] (every written byte is counted in
/// [`MempoolStats::copied_bytes`]) and turned into an immutable
/// [`PoolBytes`] by [`PoolBytesMut::seal`]. Dropping an unsealed
/// reservation returns the block to the pool, so an abandoned ingest
/// (e.g. an evicted partial reassembly) can never leak pool capacity.
///
/// Bytes never written keep whatever the recycled block last held; a
/// caller must cover the whole `[0, len)` range before sealing if it
/// intends the value to be well-defined (the streaming reassembler only
/// completes once every fragment has been written, which guarantees
/// exactly that).
#[derive(Debug)]
pub struct PoolBytesMut {
    /// `Some` until sealed or dropped.
    block: Option<Box<[u8]>>,
    len: usize,
    class: usize,
    pool: Arc<Inner>,
}

impl PoolBytesMut {
    /// Length of the reserved value in bytes (not the block size).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length reservation.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies `data` into the reservation at `offset`, counting the
    /// bytes in [`MempoolStats::copied_bytes`]. This is the one wire →
    /// pool copy of the one-copy ingest path.
    ///
    /// # Panics
    ///
    /// Panics if `offset + data.len()` exceeds the reserved length.
    pub fn write_at(&mut self, offset: usize, data: &[u8]) {
        let end = offset
            .checked_add(data.len())
            .expect("write range overflows");
        assert!(
            end <= self.len,
            "write of {} bytes at {offset} exceeds the {}-byte reservation",
            data.len(),
            self.len
        );
        let block = self.block.as_mut().expect("live until consumed");
        block[offset..end].copy_from_slice(data);
        self.pool
            .copied
            .fetch_add(data.len() as u64, Ordering::Relaxed);
    }

    /// Shrinks the reservation to `new_len` bytes. The capacity charge
    /// is unchanged (the block keeps its size class); only the sealed
    /// value's visible length shrinks. Used by the streaming PUT ingest
    /// to strip a wire-level trailer (the optional TTL extension) that
    /// rode along inside the reserved range but is not part of the
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if `new_len` exceeds the current reserved length.
    pub fn truncate(&mut self, new_len: usize) {
        assert!(
            new_len <= self.len,
            "truncate to {new_len} grows the {}-byte reservation",
            self.len
        );
        self.len = new_len;
    }

    /// Seals the reservation into an immutable, refcounted
    /// [`PoolBytes`] — the second phase of a two-phase PUT, ready for
    /// [`crate::Store::put_reserved`]. No bytes are copied.
    pub fn seal(mut self) -> PoolBytes {
        let block = self.block.take().expect("live until consumed");
        PoolBytes(Arc::new(PoolBuf {
            block: Some(block),
            len: self.len,
            class: self.class,
            pool: Arc::downgrade(&self.pool),
        }))
    }
}

impl Drop for PoolBytesMut {
    fn drop(&mut self) {
        // An unsealed reservation was never published: its block (and
        // capacity charge) go straight back to the pool.
        if let Some(block) = self.block.take() {
            self.pool.release(block, self.class);
        }
    }
}

#[derive(Debug)]
struct PoolBuf {
    /// `Some` until dropped; taken in `Drop` to return to the pool.
    block: Option<Box<[u8]>>,
    len: usize,
    class: usize,
    pool: std::sync::Weak<Inner>,
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        if let Some(block) = self.block.take() {
            if let Some(pool) = self.pool.upgrade() {
                pool.release(block, self.class);
            }
            // If the pool is gone the block just drops normally.
        }
    }
}

/// A reference-counted, read-only value buffer backed by a [`Mempool`]
/// block. Cloning is O(1); the block returns to the pool when the last
/// clone drops.
#[derive(Clone, Debug)]
pub struct PoolBytes(Arc<PoolBuf>);

impl PoolBytes {
    /// Length of the value in bytes (not the block size).
    pub fn len(&self) -> usize {
        self.0.len
    }

    /// True if the value is empty.
    pub fn is_empty(&self) -> bool {
        self.0.len == 0
    }

    /// The capacity charge this buffer holds against its pool: the
    /// block's class size, which can exceed
    /// [`Mempool::charged_bytes`]`(len)` when the reservation was
    /// [`PoolBytesMut::truncate`]d after being sized. Accounting
    /// cross-checks must sum this, not recompute from `len`.
    pub fn charged_bytes(&self) -> usize {
        Inner::class_bytes(self.0.class)
    }
}

impl std::ops::Deref for PoolBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0.block.as_ref().expect("live buffer")[..self.0.len]
    }
}

impl AsRef<[u8]> for PoolBytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for PoolBytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for PoolBytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_copies_data() {
        let pool = Mempool::new(1 << 20, 1 << 16);
        let v = pool.alloc_from(b"hello world").unwrap();
        assert_eq!(&v[..], b"hello world");
        assert_eq!(v.len(), 11);
    }

    #[test]
    fn capacity_is_enforced_and_freed_on_drop() {
        let pool = Mempool::new(256, 256);
        let a = pool.alloc_from(&[0u8; 100]).unwrap(); // 128-byte class
        let b = pool.alloc_from(&[0u8; 100]).unwrap(); // 128-byte class
        assert_eq!(pool.used_bytes(), 256);
        assert!(pool.alloc_from(&[0u8; 10]).is_none(), "over capacity");
        drop(a);
        assert_eq!(pool.used_bytes(), 128);
        let c = pool.alloc_from(&[0u8; 10]).unwrap();
        drop(b);
        drop(c);
        assert_eq!(pool.used_bytes(), 0);
    }

    #[test]
    fn freelist_reuse() {
        let pool = Mempool::new(1 << 20, 1 << 16);
        let a = pool.alloc_from(&[1u8; 1000]).unwrap();
        drop(a);
        let _b = pool.alloc_from(&[2u8; 1000]).unwrap();
        let s = pool.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.reuses, 1);
        assert_eq!(s.frees, 1);
    }

    #[test]
    fn oversized_allocation_fails() {
        let pool = Mempool::new(1 << 30, 1 << 10);
        assert!(pool.alloc_from(&vec![0u8; 4096]).is_none());
        assert_eq!(pool.stats().failures, 1);
    }

    #[test]
    fn clone_shares_block() {
        let pool = Mempool::new(1 << 20, 1 << 16);
        let a = pool.alloc_from(b"shared").unwrap();
        let used = pool.used_bytes();
        let b = a.clone();
        assert_eq!(pool.used_bytes(), used, "clone allocates nothing");
        drop(a);
        assert_eq!(&b[..], b"shared");
        assert_eq!(pool.used_bytes(), used, "block alive while a clone lives");
        drop(b);
        assert_eq!(pool.used_bytes(), 0);
    }

    #[test]
    fn survives_pool_drop() {
        let pool = Mempool::new(1 << 20, 1 << 16);
        let v = pool.alloc_from(b"orphan").unwrap();
        drop(pool);
        assert_eq!(&v[..], b"orphan"); // block outlives the pool
    }

    #[test]
    fn zero_length_values() {
        let pool = Mempool::new(1 << 20, 1 << 16);
        let v = pool.alloc_from(b"").unwrap();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn reserve_write_seal_roundtrip() {
        let pool = Mempool::new(1 << 20, 1 << 16);
        let mut r = pool.reserve(11).unwrap();
        assert_eq!(r.len(), 11);
        r.write_at(0, b"hello ");
        r.write_at(6, b"world");
        let sealed = r.seal();
        assert_eq!(&sealed[..], b"hello world");
        assert_eq!(pool.stats().copied_bytes, 11, "exactly the value bytes");
        drop(sealed);
        assert_eq!(pool.used_bytes(), 0);
    }

    #[test]
    fn unsealed_reservation_returns_capacity_on_drop() {
        let pool = Mempool::new(256, 256);
        let r = pool.reserve(100).unwrap();
        assert_eq!(pool.used_bytes(), 128, "reservation charges its class");
        drop(r);
        assert_eq!(pool.used_bytes(), 0, "abandoned reservation released");
        assert_eq!(pool.stats().frees, 1);
        // And the block is recycled, not lost.
        let _again = pool.reserve(100).unwrap();
        assert_eq!(pool.stats().reuses, 1);
    }

    #[test]
    fn reserve_enforces_capacity_and_size() {
        let pool = Mempool::new(256, 1 << 16);
        assert!(pool.reserve(1 << 17).is_none(), "oversized");
        let _a = pool.reserve(200).unwrap();
        assert!(pool.reserve(200).is_none(), "over capacity");
        assert_eq!(pool.stats().failures, 2);
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn write_beyond_reservation_panics() {
        let pool = Mempool::new(1 << 20, 1 << 16);
        let mut r = pool.reserve(4).unwrap();
        r.write_at(2, b"abc");
    }

    #[test]
    fn charged_bytes_is_the_class_size() {
        let pool = Mempool::new(1 << 20, 1 << 16);
        assert_eq!(pool.charged_bytes(0), Some(64));
        assert_eq!(pool.charged_bytes(64), Some(64));
        assert_eq!(pool.charged_bytes(65), Some(128));
        assert_eq!(pool.charged_bytes(1 << 16), Some(1 << 16));
        assert_eq!(pool.charged_bytes((1 << 16) + 1), None, "oversized");
    }

    #[test]
    fn truncate_shrinks_value_but_not_charge() {
        let pool = Mempool::new(1 << 20, 1 << 16);
        let mut r = pool.reserve(1032).unwrap(); // 2048-byte class
        r.write_at(0, &[7u8; 1032]);
        r.truncate(1024);
        assert_eq!(r.len(), 1024);
        let sealed = r.seal();
        assert_eq!(sealed.len(), 1024);
        assert_eq!(&sealed[..], &[7u8; 1024][..]);
        // The block keeps its original class: the charge did not shrink
        // to 1024's class, and the sealed buffer reports the truth.
        assert_eq!(pool.used_bytes(), 2048);
        assert_eq!(sealed.charged_bytes(), 2048);
        drop(sealed);
        assert_eq!(pool.used_bytes(), 0, "full class released");
    }

    #[test]
    #[should_panic(expected = "grows the")]
    fn truncate_cannot_grow() {
        let pool = Mempool::new(1 << 20, 1 << 16);
        let mut r = pool.reserve(4).unwrap();
        r.truncate(5);
    }

    #[test]
    fn alloc_from_counts_copied_bytes() {
        let pool = Mempool::new(1 << 20, 1 << 16);
        let _v = pool.alloc_from(&[7u8; 1000]).unwrap();
        assert_eq!(pool.stats().copied_bytes, 1000);
    }

    #[test]
    fn concurrent_alloc_free() {
        let pool = Mempool::new(64 << 20, 1 << 20);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for i in 0..2000usize {
                        let data = vec![(t ^ i) as u8; (i % 2000) + 1];
                        let v = pool.alloc_from(&data).unwrap();
                        assert_eq!(&v[..], &data[..]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.used_bytes(), 0);
        let s = pool.stats();
        assert_eq!(s.allocs, 8000);
        assert_eq!(s.frees, 8000);
    }
}
