//! A DPDK-`rte_mempool`-style memory manager.
//!
//! "The current prototype of Minos employs the memory manager of the DPDK
//! library to handle allocation of memory regions for key-value entries"
//! (paper §4.2). The essential properties of that allocator, reproduced
//! here, are:
//!
//! * **fixed capacity**: the pool owns a budget of bytes decided up
//!   front (DPDK pre-allocates hugepages); allocation beyond it fails
//!   rather than growing;
//! * **size-class freelists**: freed blocks of a class are recycled
//!   without touching the system allocator (segregated fits, the
//!   MICA-style extension the paper mentions);
//! * **O(1) alloc/free** on the hot path once a class is warm.
//!
//! Values are handed out as [`PoolBytes`]: cheaply clonable,
//! reference-counted, read-only buffers that return their block to the
//! pool when the last reference drops. This is what makes MICA-style
//! optimistic GETs safe in Rust: a reader that won the epoch validation
//! holds a reference, so a concurrent PUT replacing the item can never
//! free the bytes under the reader.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Smallest block class, bytes.
const MIN_CLASS: usize = 64;

/// Statistics for a [`Mempool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Allocations satisfied from a freelist (no system allocation).
    pub reuses: u64,
    /// Failed allocations (capacity exhausted or oversized).
    pub failures: u64,
    /// Blocks returned to freelists.
    pub frees: u64,
    /// Bytes currently charged against the capacity.
    pub used_bytes: usize,
    /// Configured capacity in bytes.
    pub capacity_bytes: usize,
}

#[derive(Debug)]
struct Inner {
    /// Freelists per size class; class `i` holds blocks of
    /// `MIN_CLASS << i` bytes.
    classes: Vec<Mutex<Vec<Box<[u8]>>>>,
    max_class_bytes: usize,
    capacity: usize,
    used: AtomicUsize,
    allocs: AtomicU64,
    reuses: AtomicU64,
    failures: AtomicU64,
    frees: AtomicU64,
}

impl Inner {
    fn class_of(&self, len: usize) -> Option<usize> {
        let block = len.max(1).next_power_of_two().max(MIN_CLASS);
        if block > self.max_class_bytes {
            return None;
        }
        Some(block.trailing_zeros() as usize - MIN_CLASS.trailing_zeros() as usize)
    }

    fn class_bytes(class: usize) -> usize {
        MIN_CLASS << class
    }

    fn release(&self, block: Box<[u8]>, class: usize) {
        self.frees.fetch_add(1, Ordering::Relaxed);
        self.used
            .fetch_sub(Self::class_bytes(class), Ordering::Relaxed);
        let mut freelist = self.classes[class].lock();
        freelist.push(block);
    }
}

/// A fixed-capacity size-class memory pool for item values.
#[derive(Clone, Debug)]
pub struct Mempool {
    inner: Arc<Inner>,
}

impl Mempool {
    /// Creates a pool with a budget of `capacity_bytes` and a maximum
    /// block size of `max_item_bytes` (rounded up to a power of two).
    pub fn new(capacity_bytes: usize, max_item_bytes: usize) -> Self {
        let max_class_bytes = max_item_bytes.max(MIN_CLASS).next_power_of_two();
        let num_classes = (max_class_bytes / MIN_CLASS).trailing_zeros() as usize + 1;
        Mempool {
            inner: Arc::new(Inner {
                classes: (0..num_classes).map(|_| Mutex::new(Vec::new())).collect(),
                max_class_bytes,
                capacity: capacity_bytes,
                used: AtomicUsize::new(0),
                allocs: AtomicU64::new(0),
                reuses: AtomicU64::new(0),
                failures: AtomicU64::new(0),
                frees: AtomicU64::new(0),
            }),
        }
    }

    /// Allocates a buffer holding a copy of `data`. Returns `None` if the
    /// pool is out of capacity or `data` exceeds the maximum block size.
    pub fn alloc_from(&self, data: &[u8]) -> Option<PoolBytes> {
        let inner = &self.inner;
        let Some(class) = inner.class_of(data.len()) else {
            inner.failures.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let class_bytes = Inner::class_bytes(class);

        // Charge capacity first (optimistically), back out on failure.
        let prev = inner.used.fetch_add(class_bytes, Ordering::Relaxed);
        if prev + class_bytes > inner.capacity {
            inner.used.fetch_sub(class_bytes, Ordering::Relaxed);
            inner.failures.fetch_add(1, Ordering::Relaxed);
            return None;
        }

        let recycled = inner.classes[class].lock().pop();
        let mut block = match recycled {
            Some(b) => {
                inner.reuses.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => vec![0u8; class_bytes].into_boxed_slice(),
        };
        block[..data.len()].copy_from_slice(data);
        inner.allocs.fetch_add(1, Ordering::Relaxed);
        Some(PoolBytes(Arc::new(PoolBuf {
            block: Some(block),
            len: data.len(),
            class,
            pool: Arc::downgrade(inner),
        })))
    }

    /// Bytes currently charged against the capacity.
    pub fn used_bytes(&self) -> usize {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.inner.capacity
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> MempoolStats {
        let i = &self.inner;
        MempoolStats {
            allocs: i.allocs.load(Ordering::Relaxed),
            reuses: i.reuses.load(Ordering::Relaxed),
            failures: i.failures.load(Ordering::Relaxed),
            frees: i.frees.load(Ordering::Relaxed),
            used_bytes: i.used.load(Ordering::Relaxed),
            capacity_bytes: i.capacity,
        }
    }
}

#[derive(Debug)]
struct PoolBuf {
    /// `Some` until dropped; taken in `Drop` to return to the pool.
    block: Option<Box<[u8]>>,
    len: usize,
    class: usize,
    pool: std::sync::Weak<Inner>,
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        if let Some(block) = self.block.take() {
            if let Some(pool) = self.pool.upgrade() {
                pool.release(block, self.class);
            }
            // If the pool is gone the block just drops normally.
        }
    }
}

/// A reference-counted, read-only value buffer backed by a [`Mempool`]
/// block. Cloning is O(1); the block returns to the pool when the last
/// clone drops.
#[derive(Clone, Debug)]
pub struct PoolBytes(Arc<PoolBuf>);

impl PoolBytes {
    /// Length of the value in bytes (not the block size).
    pub fn len(&self) -> usize {
        self.0.len
    }

    /// True if the value is empty.
    pub fn is_empty(&self) -> bool {
        self.0.len == 0
    }
}

impl std::ops::Deref for PoolBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0.block.as_ref().expect("live buffer")[..self.0.len]
    }
}

impl AsRef<[u8]> for PoolBytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for PoolBytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for PoolBytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_copies_data() {
        let pool = Mempool::new(1 << 20, 1 << 16);
        let v = pool.alloc_from(b"hello world").unwrap();
        assert_eq!(&v[..], b"hello world");
        assert_eq!(v.len(), 11);
    }

    #[test]
    fn capacity_is_enforced_and_freed_on_drop() {
        let pool = Mempool::new(256, 256);
        let a = pool.alloc_from(&[0u8; 100]).unwrap(); // 128-byte class
        let b = pool.alloc_from(&[0u8; 100]).unwrap(); // 128-byte class
        assert_eq!(pool.used_bytes(), 256);
        assert!(pool.alloc_from(&[0u8; 10]).is_none(), "over capacity");
        drop(a);
        assert_eq!(pool.used_bytes(), 128);
        let c = pool.alloc_from(&[0u8; 10]).unwrap();
        drop(b);
        drop(c);
        assert_eq!(pool.used_bytes(), 0);
    }

    #[test]
    fn freelist_reuse() {
        let pool = Mempool::new(1 << 20, 1 << 16);
        let a = pool.alloc_from(&[1u8; 1000]).unwrap();
        drop(a);
        let _b = pool.alloc_from(&[2u8; 1000]).unwrap();
        let s = pool.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.reuses, 1);
        assert_eq!(s.frees, 1);
    }

    #[test]
    fn oversized_allocation_fails() {
        let pool = Mempool::new(1 << 30, 1 << 10);
        assert!(pool.alloc_from(&vec![0u8; 4096]).is_none());
        assert_eq!(pool.stats().failures, 1);
    }

    #[test]
    fn clone_shares_block() {
        let pool = Mempool::new(1 << 20, 1 << 16);
        let a = pool.alloc_from(b"shared").unwrap();
        let used = pool.used_bytes();
        let b = a.clone();
        assert_eq!(pool.used_bytes(), used, "clone allocates nothing");
        drop(a);
        assert_eq!(&b[..], b"shared");
        assert_eq!(pool.used_bytes(), used, "block alive while a clone lives");
        drop(b);
        assert_eq!(pool.used_bytes(), 0);
    }

    #[test]
    fn survives_pool_drop() {
        let pool = Mempool::new(1 << 20, 1 << 16);
        let v = pool.alloc_from(b"orphan").unwrap();
        drop(pool);
        assert_eq!(&v[..], b"orphan"); // block outlives the pool
    }

    #[test]
    fn zero_length_values() {
        let pool = Mempool::new(1 << 20, 1 << 16);
        let v = pool.alloc_from(b"").unwrap();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn concurrent_alloc_free() {
        let pool = Mempool::new(64 << 20, 1 << 20);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for i in 0..2000usize {
                        let data = vec![(t ^ i) as u8; (i % 2000) + 1];
                        let v = pool.alloc_from(&data).unwrap();
                        assert_eq!(&v[..], &data[..]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.used_bytes(), 0);
        let s = pool.stats();
        assert_eq!(s.allocs, 8000);
        assert_eq!(s.frees, 8000);
    }
}
