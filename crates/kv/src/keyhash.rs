//! The keyhash and its three-way split.
//!
//! MICA (and Minos, §4.2) derive three things from one hash of the key:
//! "A first portion of the keyhash is used to determine the partition, a
//! second portion to map a key to a bucket within a partition, and a
//! third portion forms the tag" used to filter slot candidates without
//! touching item memory.
//!
//! Keys are fixed 8-byte values in this reproduction (paper §5.3), so the
//! hash is a 64-bit finalizer (the SplitMix64 mixer, which passes full
//! avalanche tests) rather than a byte-stream hash.

/// Hashes an 8-byte key.
#[inline]
pub fn keyhash(key: u64) -> u64 {
    // SplitMix64 finalizer: full-avalanche 64-bit mixing.
    let mut z = key.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The three portions of a keyhash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyhashParts {
    /// Partition index in `[0, num_partitions)` — from the high bits.
    pub partition: usize,
    /// Bucket index within the partition — from the middle bits.
    pub bucket: usize,
    /// 15-bit non-zero tag — from the low bits (`0` means "empty slot"
    /// in the bucket encoding, so tag 0 is remapped to 1).
    pub tag: u16,
}

/// Splits `hash` for a table with `num_partitions` partitions of
/// `num_buckets` buckets each. `num_buckets` must be a power of two
/// (MICA sizes tables this way to make the mask cheap).
#[inline]
pub fn split(hash: u64, num_partitions: usize, num_buckets: usize) -> KeyhashParts {
    debug_assert!(num_buckets.is_power_of_two());
    debug_assert!(num_partitions > 0);
    let partition = ((hash >> 48) as usize) % num_partitions;
    let bucket = ((hash >> 16) as usize) & (num_buckets - 1);
    let mut tag = (hash & 0x7FFF) as u16;
    if tag == 0 {
        tag = 1;
    }
    KeyhashParts {
        partition,
        bucket,
        tag,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(keyhash(42), keyhash(42));
        assert_ne!(keyhash(42), keyhash(43));
    }

    #[test]
    fn avalanche_smoke() {
        // Flipping one input bit should flip ~32 output bits on average.
        let mut total = 0u32;
        let samples = 1000;
        for i in 0..samples {
            let a = keyhash(i);
            let b = keyhash(i ^ 1);
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / samples as f64;
        assert!((avg - 32.0).abs() < 2.0, "avalanche average {avg}");
    }

    #[test]
    fn tag_never_zero() {
        for key in 0..100_000u64 {
            let parts = split(keyhash(key), 16, 1 << 10);
            assert_ne!(parts.tag, 0);
            assert!(parts.partition < 16);
            assert!(parts.bucket < 1 << 10);
        }
    }

    #[test]
    fn partitions_are_balanced() {
        let parts = 8;
        let mut counts = vec![0u32; parts];
        for key in 0..80_000u64 {
            counts[split(keyhash(key), parts, 1 << 10).partition] += 1;
        }
        for (p, &c) in counts.iter().enumerate() {
            let share = c as f64 / 80_000.0;
            assert!(
                (share - 1.0 / parts as f64).abs() < 0.01,
                "partition {p} share {share}"
            );
        }
    }

    #[test]
    fn portions_are_independent() {
        // Keys in the same partition must still spread over buckets.
        let mut bucket_counts = std::collections::HashMap::new();
        let mut n = 0;
        for key in 0..200_000u64 {
            let parts = split(keyhash(key), 8, 1 << 8);
            if parts.partition == 3 {
                *bucket_counts.entry(parts.bucket).or_insert(0u32) += 1;
                n += 1;
            }
        }
        assert!(bucket_counts.len() == 256, "all buckets hit");
        let expect = n as f64 / 256.0;
        for (&b, &c) in &bucket_counts {
            assert!(
                (c as f64) < expect * 2.0 && (c as f64) > expect * 0.4,
                "bucket {b} count {c} vs expected {expect}"
            );
        }
    }
}
