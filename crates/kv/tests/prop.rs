//! Model-based property test: any sequence of PUT/GET/DELETE on the
//! MICA-style store must agree with a plain `HashMap` executed
//! sequentially, and pool accounting must balance when the store drains.

use minos_kv::{CapacityConfig, Store, StoreConfig};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Put(u64, Vec<u8>),
    Get(u64),
    Delete(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // A small key space maximizes collisions, replacements and deletes.
    let key = 0u64..32;
    prop_oneof![
        (key.clone(), prop::collection::vec(any::<u8>(), 0..512)).prop_map(|(k, v)| Op::Put(k, v)),
        key.clone().prop_map(Op::Get),
        key.prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn store_matches_hashmap_model(ops in prop::collection::vec(arb_op(), 1..200)) {
        let store = Store::new(StoreConfig {
            partitions: 4,
            buckets_per_partition: 8,
            overflow_per_partition: 16,
            items_per_partition: 128,
            mempool_bytes: 4 << 20,
            max_value_bytes: 1 << 16,
            capacity: CapacityConfig::default(),
        });
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();

        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    store.put(*k, v).expect("capacity is ample for 32 keys");
                    model.insert(*k, v.clone());
                }
                Op::Get(k) => {
                    let got = store.get(*k);
                    let want = model.get(k);
                    match (got, want) {
                        (None, None) => {}
                        (Some(g), Some(w)) => prop_assert_eq!(&g[..], &w[..]),
                        (g, w) => prop_assert!(
                            false,
                            "mismatch on key {}: store={:?} model={:?}",
                            k, g.map(|x| x.len()), w.map(|x| x.len())
                        ),
                    }
                }
                Op::Delete(k) => {
                    let got = store.delete(*k);
                    let want = model.remove(k).is_some();
                    prop_assert_eq!(got, want);
                }
            }
        }

        prop_assert_eq!(store.len() as usize, model.len());

        // Drain the store: all pool memory must come back.
        for (&k, v) in &model {
            prop_assert_eq!(&store.get(k).unwrap()[..], &v[..]);
            prop_assert!(store.delete(k));
        }
        prop_assert_eq!(store.len(), 0);
        prop_assert_eq!(store.mempool().used_bytes(), 0);
    }

    /// partition_of_key is stable and within range — engines rely on it
    /// for CREW routing.
    #[test]
    fn partitioning_is_stable(keys in prop::collection::vec(any::<u64>(), 1..100)) {
        let store = Store::new(StoreConfig::for_items(8, 1024, 1 << 20));
        for &k in &keys {
            let p = store.partition_of_key(k);
            prop_assert!(p < 8);
            prop_assert_eq!(p, store.partition_of_key(k));
        }
    }
}
